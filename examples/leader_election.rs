//! Wake-up + leader election (Theorems 4–5): scattered sensors activate
//! spontaneously, wake the whole network, then elect a unique leader by
//! binary search over ID ranges.
//!
//! ```sh
//! cargo run --release --example leader_election
//! ```

use dcluster::prelude::*;

fn main() {
    let mut rng = Rng64::new(55);
    let pts = deploy::corridor_with_spine(30, 6.0, 1.2, 0.5, &mut rng);
    let net = Network::builder(pts)
        .seed(3)
        .max_id(10_000)
        .build()
        .expect("valid deployment");
    println!(
        "network: n = {}, Δ = {}, N (ID space) = {}",
        net.len(),
        net.max_degree(),
        net.max_id()
    );

    // Theorem 4: three scattered nodes activate spontaneously.
    let params = ProtocolParams::practical();
    let mut seeds = SeedSeq::new(params.seed);
    let mut engine = Engine::from_env(&net);
    let spontaneous = vec![0, net.len() / 2, net.len() - 1];
    let w = wakeup(
        &mut engine,
        &params,
        &mut seeds,
        &spontaneous,
        net.density(),
    );
    println!(
        "\nwake-up: {} spontaneous → everyone awake in {} rounds ({} centers)",
        spontaneous.len(),
        w.rounds,
        w.centers
    );
    assert!(w.all_awake);

    // Theorem 5: leader election over the whole network.
    let mut seeds2 = SeedSeq::new(params.seed);
    let mut engine2 = Engine::from_env(&net);
    let le = leader_election(&mut engine2, &params, &mut seeds2, net.density());
    println!(
        "leader election: id {} elected in {} rounds ({} binary-search probes)",
        le.leader_id, le.rounds, le.probes
    );
    let leader_idx = net.index_of(le.leader_id).expect("leader must exist");
    println!("leader position: {}", net.pos(leader_idx));
}
