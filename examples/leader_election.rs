//! Wake-up + leader election (Theorems 4–5): scattered sensors activate
//! spontaneously, wake the whole network, then elect a unique leader by
//! binary search over ID ranges — both as Runner workloads over one
//! scenario spec with a sparse shuffled ID space.
//!
//! ```sh
//! cargo run --release --example leader_election
//! ```

use dcluster::prelude::*;

fn main() {
    let spec = ScenarioSpec::corridor("leader-election", 55, 30, 6.0, 1.2, 0.5)
        .max_id(10_000)
        .id_seed(3);
    let runner = Runner::new(spec);
    let net = runner.build_network().expect("example spec is valid");
    println!(
        "network: n = {}, Δ = {}, N (ID space) = {}",
        net.len(),
        net.max_degree(),
        net.max_id()
    );

    // Theorem 4: three scattered nodes activate spontaneously.
    let spontaneous = vec![0, net.len() / 2, net.len() - 1];
    let w = runner
        .run_on(
            net.clone(),
            &Workload::Wakeup {
                sources: spontaneous.clone(),
            },
        )
        .expect("example spec is valid");
    let WorkloadOutcome::Wakeup { all_awake, centers } = w.outcome else {
        unreachable!("wakeup workload returns a wakeup outcome");
    };
    println!(
        "\nwake-up: {} spontaneous → everyone awake in {} rounds ({} centers)",
        spontaneous.len(),
        w.rounds,
        centers
    );
    assert!(all_awake);

    // Theorem 5: leader election over the whole network.
    let le = runner
        .run_on(net.clone(), &Workload::LeaderElection)
        .expect("example spec is valid");
    let WorkloadOutcome::Leader { leader_id, probes } = le.outcome else {
        unreachable!("leader workload returns a leader outcome");
    };
    println!(
        "leader election: id {leader_id} elected in {} rounds ({probes} binary-search probes)",
        le.rounds
    );
    let leader_idx = net.index_of(leader_id).expect("leader must exist");
    println!("leader position: {}", net.pos(leader_idx));
}
