//! Sensor field neighbor discovery — the paper's motivating scenario
//! (§1: "large sets of sensors distributed in an area of rescue operation
//! or environment monitoring").
//!
//! Every sensor must announce itself to all neighbors (local broadcast)
//! with no infrastructure, no GPS, no randomness. The hotspot-heavy field
//! is a layered scenario spec (clumps over a uniform background); this
//! work runs through the Runner's local-broadcast workload, the
//! randomized and feedback baselines on the identical deployment.
//!
//! ```sh
//! cargo run --release --example sensor_field
//! ```

use dcluster::baselines::local;
use dcluster::prelude::*;

fn main() {
    // A hotspot-heavy field: three dense sensor clumps plus background.
    let spec = ScenarioSpec::new("sensor-field", 33)
        .layer(DeployLayer::Clumped {
            centers: 3,
            per: 15,
            sigma: 0.25,
            side: 5.0,
        })
        .layer(DeployLayer::Uniform { n: 40, side: 5.0 })
        .workload(Workload::LocalBroadcast);
    let runner = Runner::new(spec);
    let net = runner.build_network().expect("example spec is valid");
    let delta = net.max_degree().max(1);
    println!(
        "sensor field: n = {}, Γ = {}, Δ = {}",
        net.len(),
        net.density(),
        delta
    );

    // This work: deterministic local broadcast (Theorem 2).
    let ours = runner
        .run_on(net.clone(), &Workload::LocalBroadcast)
        .expect("example spec is valid");
    let WorkloadOutcome::LocalBroadcast {
        complete,
        max_label,
        clusters,
        ..
    } = ours.outcome
    else {
        unreachable!("local workload returns a local outcome");
    };
    println!(
        "\nTHIS WORK  : {} rounds, complete = {complete}, labels ≤ {max_label}, clusters = {clusters}",
        ours.rounds,
    );
    assert!(complete);

    // Randomized baseline (needs Δ and a random tape).
    let gmw = local::gmw_known_delta(&net, delta, 7, 5_000_000);
    println!(
        "[16] rand  : {} rounds, complete = {}",
        gmw.rounds, gmw.complete
    );

    // Feedback baseline (needs the feedback model feature).
    let fb = local::feedback(
        &net,
        delta,
        local::FeedbackPreset::HalldorssonMitra,
        7,
        5_000_000,
    );
    println!(
        "[19] fdbck : {} rounds, complete = {}",
        fb.rounds, fb.complete
    );

    println!(
        "\nThe paper's point: our deterministic time is only polylog away from \
         these feature-assisted baselines — features don't substantially help \
         locally."
    );
}
