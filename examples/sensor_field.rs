//! Sensor field neighbor discovery — the paper's motivating scenario
//! (§1: "large sets of sensors distributed in an area of rescue operation
//! or environment monitoring").
//!
//! Every sensor must announce itself to all neighbors (local broadcast)
//! with no infrastructure, no GPS, no randomness. Compares this work
//! against the randomized and feedback baselines on the same field.
//!
//! ```sh
//! cargo run --release --example sensor_field
//! ```

use dcluster::baselines::local;
use dcluster::prelude::*;

fn main() {
    // A hotspot-heavy field: three dense sensor clumps plus background.
    let mut rng = Rng64::new(33);
    let mut pts = deploy::gaussian_clusters(3, 15, 0.25, 5.0, &mut rng);
    pts.extend(deploy::uniform_square(40, 5.0, &mut rng));
    let net = Network::builder(pts).build().expect("valid deployment");
    let delta = net.max_degree().max(1);
    println!(
        "sensor field: n = {}, Γ = {}, Δ = {}",
        net.len(),
        net.density(),
        delta
    );

    // This work: deterministic local broadcast (Theorem 2).
    let params = ProtocolParams::practical();
    let mut seeds = SeedSeq::new(params.seed);
    let mut engine = Engine::from_env(&net);
    let ours = local_broadcast(&mut engine, &params, &mut seeds, net.density());
    println!(
        "\nTHIS WORK  : {} rounds, complete = {}, labels ≤ {}, clusters = {}",
        ours.rounds,
        ours.complete,
        ours.labeling.max_label(),
        ours.clustering.centers.len()
    );
    assert!(ours.complete);

    // Randomized baseline (needs Δ and a random tape).
    let gmw = local::gmw_known_delta(&net, delta, 7, 5_000_000);
    println!(
        "[16] rand  : {} rounds, complete = {}",
        gmw.rounds, gmw.complete
    );

    // Feedback baseline (needs the feedback model feature).
    let fb = local::feedback(
        &net,
        delta,
        local::FeedbackPreset::HalldorssonMitra,
        7,
        5_000_000,
    );
    println!(
        "[19] fdbck : {} rounds, complete = {}",
        fb.rounds, fb.complete
    );

    println!(
        "\nThe paper's point: our deterministic time is only polylog away from \
         these feature-assisted baselines — features don't substantially help \
         locally."
    );
}
