//! Multi-hop broadcast relay: a message crosses a corridor network hop by
//! hop (Algorithm 8), with an ASCII view of the awake frontier per phase.
//!
//! ```sh
//! cargo run --release --example broadcast_relay
//! ```

use dcluster::prelude::*;

fn main() {
    let spec = ScenarioSpec::corridor("broadcast-relay", 77, 40, 10.0, 1.2, 0.5);
    let runner = Runner::new(spec);
    let net = runner.build_network().expect("example spec is valid");
    let d = net.comm_graph().diameter().expect("connected corridor");
    println!(
        "corridor: n = {}, D = {}, Δ = {}",
        net.len(),
        d,
        net.max_degree()
    );

    // Source: the left-most node.
    let source = (0..net.len())
        .min_by(|&a, &b| net.pos(a).x.partial_cmp(&net.pos(b).x).unwrap())
        .unwrap();
    let out = runner
        .run_on(
            net.clone(),
            &Workload::GlobalBroadcast {
                source,
                token: 0xBEEF,
            },
        )
        .expect("example spec is valid");
    let WorkloadOutcome::GlobalBroadcast {
        delivered_all,
        local_broadcast_ok,
        phases,
        cluster_of,
        ..
    } = &out.outcome
    else {
        unreachable!("global workload returns a global outcome");
    };

    println!("\nphase | newly awake | awake | rounds");
    for p in phases {
        println!(
            "{:>5} | {:>11} | {:>5} | {:>6}",
            p.phase, p.newly_awake, p.awake_total, p.rounds
        );
    }
    println!("\ntotal rounds: {}", out.rounds);
    assert!(delivered_all, "broadcast must reach the whole corridor");
    assert!(
        local_broadcast_ok,
        "every relay must also serve its own neighbors"
    );

    // ASCII frontier: bucket nodes by x, show how many are awake (all, by
    // the end) and their cluster count per bucket.
    let buckets = 20usize;
    let max_x = (0..net.len()).map(|v| net.pos(v).x).fold(0.0f64, f64::max);
    let mut per_bucket: Vec<std::collections::HashSet<u64>> = vec![Default::default(); buckets];
    for (v, c) in cluster_of.iter().enumerate() {
        let b = ((net.pos(v).x / (max_x + 1e-9)) * buckets as f64) as usize;
        if let Some(c) = *c {
            per_bucket[b.min(buckets - 1)].insert(c);
        }
    }
    let line: String = per_bucket
        .iter()
        .map(|s| std::char::from_digit(s.len().min(9) as u32, 10).unwrap_or('+'))
        .collect();
    println!("clusters per x-bucket: [{line}]  (source at the left)");
}
