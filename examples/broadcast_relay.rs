//! Multi-hop broadcast relay: a message crosses a corridor network hop by
//! hop (Algorithm 8), with an ASCII view of the awake frontier per phase.
//!
//! ```sh
//! cargo run --release --example broadcast_relay
//! ```

use dcluster::prelude::*;

fn main() {
    let mut rng = Rng64::new(77);
    let pts = deploy::corridor_with_spine(40, 10.0, 1.2, 0.5, &mut rng);
    let net = Network::builder(pts).build().expect("valid deployment");
    let d = net.comm_graph().diameter().expect("connected corridor");
    println!(
        "corridor: n = {}, D = {}, Δ = {}",
        net.len(),
        d,
        net.max_degree()
    );

    let params = ProtocolParams::practical();
    let mut seeds = SeedSeq::new(params.seed);
    let mut engine = Engine::from_env(&net);
    // Source: the left-most node.
    let source = (0..net.len())
        .min_by(|&a, &b| net.pos(a).x.partial_cmp(&net.pos(b).x).unwrap())
        .unwrap();
    let out = global_broadcast(
        &mut engine,
        &params,
        &mut seeds,
        source,
        net.density(),
        0xBEEF,
    );

    println!("\nphase | newly awake | awake | rounds");
    for p in &out.phases {
        println!(
            "{:>5} | {:>11} | {:>5} | {:>6}",
            p.phase, p.newly_awake, p.awake_total, p.rounds
        );
    }
    println!("\ntotal rounds: {}", out.rounds);
    assert!(out.delivered_all, "broadcast must reach the whole corridor");
    assert!(
        out.local_broadcast_ok,
        "every relay must also serve its own neighbors"
    );

    // ASCII frontier: bucket nodes by x, show how many are awake (all, by
    // the end) and their cluster count per bucket.
    let buckets = 20usize;
    let max_x = (0..net.len()).map(|v| net.pos(v).x).fold(0.0f64, f64::max);
    let mut per_bucket: Vec<std::collections::HashSet<u64>> = vec![Default::default(); buckets];
    for v in 0..net.len() {
        let b = ((net.pos(v).x / (max_x + 1e-9)) * buckets as f64) as usize;
        if let Some(c) = out.cluster_of[v] {
            per_bucket[b.min(buckets - 1)].insert(c);
        }
    }
    let line: String = per_bucket
        .iter()
        .map(|s| std::char::from_digit(s.len().min(9) as u32, 10).unwrap_or('+'))
        .collect();
    println!("clusters per x-bucket: [{line}]  (source at the left)");
}
