//! Quickstart: deploy a sensor field, run the paper's clustering, inspect
//! the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dcluster::prelude::*;

fn main() {
    // 60 sensors dropped uniformly over a 4×4 area (range = 1).
    let mut rng = Rng64::new(2024);
    let net = Network::builder(deploy::uniform_square(60, 4.0, &mut rng))
        .build()
        .expect("valid deployment");
    println!(
        "network: n = {}, density Γ = {}, max degree Δ = {}",
        net.len(),
        net.density(),
        net.max_degree()
    );

    // Theorem 1: deterministic 1-clustering, no randomness, no GPS.
    let params = ProtocolParams::practical();
    let mut seeds = SeedSeq::new(params.seed);
    // Scale-aware default backend, overridable via DCLUSTER_RESOLVER —
    // the same selection path the bench binaries use.
    let mut engine = Engine::from_env(&net);
    let all: Vec<usize> = (0..net.len()).collect();
    let cl = clustering(&mut engine, &params, &mut seeds, &all, net.density());

    let report = check_clustering(&net, &cl.cluster_of);
    println!(
        "clustering: {} clusters in {} simulated rounds",
        report.clusters, cl.rounds
    );
    println!(
        "  max radius            : {:.3}  (paper: ≤ 1)",
        report.max_radius
    );
    println!(
        "  clusters per unit ball: {}      (paper: O(1))",
        report.max_clusters_per_unit_ball
    );
    println!(
        "  center separation     : {:.3}  (paper: ≥ 1−ε = {:.2})",
        report.min_center_separation,
        net.params().comm_radius()
    );
    assert_eq!(report.unassigned, 0, "every node must belong to a cluster");

    // Show a few clusters.
    let mut by_cluster: std::collections::BTreeMap<u64, Vec<usize>> = Default::default();
    for v in 0..net.len() {
        by_cluster
            .entry(cl.cluster_of[v].unwrap())
            .or_default()
            .push(v);
    }
    for (c, members) in by_cluster.iter().take(5) {
        println!("  cluster {c}: {} nodes", members.len());
    }
    println!("ok.");
}
