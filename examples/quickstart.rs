//! Quickstart: describe a sensor field as a scenario, run the paper's
//! clustering through the unified Runner, inspect the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dcluster::prelude::*;

fn main() {
    // 60 sensors dropped uniformly over a 4×4 area (range = 1) — the same
    // spec could live in a `scenarios/*.scn` file (`spec.to_text()`).
    let spec = ScenarioSpec::uniform("quickstart", 2024, 60, 4.0);
    let runner = Runner::new(spec);
    let net = runner.build_network().expect("example spec is valid");
    println!(
        "network: n = {}, density Γ = {}, max degree Δ = {}",
        net.len(),
        net.density(),
        net.max_degree()
    );

    // Theorem 1: deterministic 1-clustering, no randomness, no GPS. The
    // Runner picks the scale-aware default backend, overridable via
    // DCLUSTER_RESOLVER — the same selection path the bench binaries use.
    let out = runner
        .run_on(net.clone(), &Workload::Clustering)
        .expect("example spec is valid");
    let WorkloadOutcome::Clustering {
        cluster_of, report, ..
    } = &out.outcome
    else {
        unreachable!("clustering workload returns a clustering outcome");
    };
    println!(
        "clustering: {} clusters in {} simulated rounds",
        report.clusters, out.rounds
    );
    println!(
        "  max radius            : {:.3}  (paper: ≤ 1)",
        report.max_radius
    );
    println!(
        "  clusters per unit ball: {}      (paper: O(1))",
        report.max_clusters_per_unit_ball
    );
    println!(
        "  center separation     : {:.3}  (paper: ≥ 1−ε = {:.2})",
        report.min_center_separation,
        net.params().comm_radius()
    );
    assert_eq!(report.unassigned, 0, "every node must belong to a cluster");

    // Show a few clusters.
    let mut by_cluster: std::collections::BTreeMap<u64, Vec<usize>> = Default::default();
    for (v, c) in cluster_of.iter().enumerate() {
        by_cluster.entry(c.unwrap()).or_default().push(v);
    }
    for (c, members) in by_cluster.iter().take(5) {
        println!("  cluster {c}: {} nodes", members.len());
    }
    println!("ok.");
}
