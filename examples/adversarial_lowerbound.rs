//! The Theorem 6 lower bound, live: watch the Lemma 13 adversary hold a
//! deterministic algorithm hostage inside a gadget for Ω(Δ) rounds.
//!
//! ```sh
//! cargo run --release --example adversarial_lowerbound
//! ```

use dcluster::lowerbound::adversary::{HashedCoin, RoundRobin};
use dcluster::lowerbound::{adversarial_assignment, lower_bound_params, measure_gadget, Gadget};

fn main() {
    let p = lower_bound_params();
    println!(
        "SINR regime: α = {}, β = {} (> 2^α = {:.2}), ε = {}",
        p.alpha,
        p.beta,
        2f64.powf(p.alpha),
        p.epsilon
    );
    println!("\n  Δ | strategy     | adversary events | rounds until t hears | Δ/2");
    println!("----|--------------|------------------|----------------------|----");
    for delta in [8usize, 16, 24, 32] {
        let g = Gadget::new(delta, &p, 0.0);
        let ids: Vec<u64> = (1..=(delta as u64 + 2)).collect();

        let rr = RoundRobin {
            period: (delta + 8) as u64,
        };
        let game = adversarial_assignment(&rr, delta, &ids, 1_000_000);
        let t = measure_gadget(&g, &p, &game.assignment, 900, 901, &rr, 1_000_000);
        println!(
            "{delta:>3} | round-robin  | {:>16} | {:>20} | {:>3}",
            game.events,
            t.map_or("—".into(), |v| v.to_string()),
            delta / 2
        );

        let hc = HashedCoin {
            seed: 9,
            k: (delta / 2).max(2) as u64,
        };
        let game2 = adversarial_assignment(&hc, delta, &ids, 1_000_000);
        let t2 = measure_gadget(&g, &p, &game2.assignment, 900, 901, &hc, 1_000_000);
        println!(
            "{delta:>3} | hashed-coin  | {:>16} | {:>20} | {:>3}",
            game2.events,
            t2.map_or("—".into(), |v| v.to_string()),
            delta / 2
        );
    }
    println!(
        "\nEvery deterministic strategy pays Ω(Δ) per gadget — chaining \
         gadgets (fig7_lowerbound_chain) gives Ω(D·Δ^(1−1/α))."
    );
}
