//! Minimal, dependency-free stand-in for the [`proptest`] crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate reimplements exactly the subset of proptest's public
//! surface the test suites use:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//!   header and `arg in strategy` parameter lists;
//! * [`ProptestConfig`] with a `cases` knob;
//! * integer-range strategies (`0u64..1000`, `2usize..5`, …) via the
//!   [`Strategy`] trait;
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Semantics differ from real proptest in two deliberate ways: sampling is
//! fully deterministic (seeded from the test name, overridable with the
//! `PROPTEST_SEED` environment variable), and there is no shrinking — the
//! failing case's arguments are printed verbatim instead.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Run-time configuration for a [`proptest!`] block.
///
/// Mirrors the fields of real proptest's config that this workspace touches,
/// plus `max_shrink_iters` so that functional-update syntax
/// (`ProptestConfig { cases: 8, ..ProptestConfig::default() }`) stays
/// meaningful.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
    /// Accepted for compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A deterministic SplitMix64 generator driving case sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from `name` (typically the property's
    /// function name) and, if set, the `PROPTEST_SEED` environment variable.
    pub fn for_property(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // lint:allow(D4, reason = "mirrors the real crate's PROPTEST_SEED override")
        if let Ok(env) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = env.parse::<u64>() {
                seed ^= extra;
            }
        }
        Self { state: seed }
    }

    /// Next raw 64-bit output (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Anything a `proptest!` parameter can be drawn from.
///
/// Real proptest's `Strategy` is far richer; this shim only needs uniform
/// sampling, so a strategy is simply "a thing that can produce a value from
/// a [`TestRng`]".
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // i128 arithmetic: wide signed ranges (e.g. -100i8..100)
                // must not overflow the element type.
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                if span == 0 {
                    // Full u64/i64 domain: the offset itself spans 2^64.
                    return rng.next_u64() as $t;
                }
                (*self.start() as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A strategy always yielding clones of one value (`Just` in real proptest).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Defines deterministic property tests over sampled inputs.
///
/// Accepts the same shape the real crate does for the patterns used in this
/// workspace:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]
///
///     // In test code this carries `#[test]`; the attribute is passed through.
///     fn sum_is_commutative(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// sum_is_commutative(); // run the 16 cases
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::for_property(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let outcome = (|| -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!(
                            "property '{}' failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            msg,
                            format!(
                                concat!($(stringify!($arg), " = {:?}; "),+),
                                $(&$arg),+
                            ),
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Fails the current property case when `cond` is false.
///
/// Only usable inside a [`proptest!`] body (it returns an `Err` from the
/// generated case closure, like the real macro).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the current property case when the two sides are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "{} (left: {:?}, right: {:?})",
                ::std::format!($($fmt)+), l, r
            ));
        }
    }};
}

/// Fails the current property case when the two sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// The imports every proptest suite starts from.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_property("p");
        let mut b = TestRng::for_property("p");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn signed_and_full_width_ranges_sample_safely() {
        let mut rng = TestRng::for_property("wide");
        for _ in 0..500 {
            let v = Strategy::sample(&(-100i8..100), &mut rng);
            assert!((-100..100).contains(&v));
            let w = Strategy::sample(&(i64::MIN..=i64::MAX), &mut rng);
            let _ = w; // whole domain: must not panic
            let u = Strategy::sample(&(0u64..=u64::MAX), &mut rng);
            let _ = u;
        }
    }

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = TestRng::for_property("bounds");
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::sample(&(2usize..=4), &mut rng);
            assert!((2..=4).contains(&w));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_runnable_tests(a in 0u32..50, b in 1u32..50) {
            prop_assert!(a < 50, "a out of range: {a}");
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(b, 0);
        }
    }
}
