//! Minimal, dependency-free stand-in for the [`criterion`] benchmark crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate reimplements the subset of criterion's API that the
//! `dcluster-bench` benches use: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple — a fixed warm-up followed by timed
//! batches, reporting the median per-iteration time — which is plenty for
//! relative comparisons on one machine. Swap the real criterion back in by
//! pointing the workspace dependency at crates.io once network access
//! exists; no bench source changes are needed.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 30 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size, &mut f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `self.name/id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `self.name/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group (name plus parameter).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        Self {
            id: format!("{name}/{param}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(param: impl Display) -> Self {
        Self {
            id: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`, recording one duration per batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and size the batch so one batch takes ~1ms.
        let warmup = Instant::now();
        black_box(routine());
        let once = warmup.elapsed().max(Duration::from_nanos(1));
        let per_batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).max(1) as u64;
        self.iters_per_sample = per_batch;

        for _ in 0..self.sample_size.max(1) {
            let t = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
        iters_per_sample: 1,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {label}: no samples (closure never called iter)");
        return;
    }
    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / b.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    println!(
        "  {label}: median {} per iter ({} samples x {} iters)",
        human_ns(median),
        per_iter.len(),
        b.iters_per_sample
    );
}

fn human_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Bundles benchmark functions into one runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("tiny");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &x| b.iter(|| x * 3));
        group.finish();
    }

    criterion_group!(benches, tiny_bench);

    #[test]
    fn harness_runs_end_to_end() {
        benches();
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
