//! Minimal, dependency-free stand-in for the [`scoped_threadpool`] crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate reimplements the subset of the real crate's public
//! surface the parallel SINR resolver uses:
//!
//! * [`Pool::new`] / [`Pool::thread_count`];
//! * [`Pool::scoped`] with a [`Scope`] whose [`Scope::execute`] closures
//!   may borrow stack data of the calling frame (the `'scope` lifetime);
//! * [`Scope::join_all`], which blocks until every queued job has run.
//!
//! Semantics differ from the real crate in one deliberate way: workers are
//! not kept alive between `scoped` calls. Jobs are queued while the scope
//! closure runs and executed — on `join_all` or at scope exit — by
//! `min(threads, jobs)` threads spawned under [`std::thread::scope`],
//! draining a shared queue. For the coarse-grained, few-jobs-per-round
//! batches this workspace submits, per-scope spawning is noise next to the
//! work itself, and the API stays drop-in swappable for the real crate.
//!
//! Everything is safe code: scoped borrows are expressed through
//! [`std::thread::scope`] rather than the real crate's unsafe queue. A
//! panicking job propagates its panic to the caller (after the remaining
//! jobs in flight finish), matching the real crate's behavior.
//!
//! [`scoped_threadpool`]: https://crates.io/crates/scoped_threadpool

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Mutex;

type Job<'scope> = Box<dyn FnOnce() + Send + 'scope>;

/// A thread pool capable of running scoped jobs that borrow from the
/// caller's stack frame.
#[derive(Debug)]
pub struct Pool {
    threads: u32,
}

impl Pool {
    /// Creates a pool that will run jobs on up to `threads` threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero (mirrors the real crate).
    pub fn new(threads: u32) -> Pool {
        assert!(threads >= 1, "a thread pool needs at least one thread");
        Pool { threads }
    }

    /// The number of threads this pool runs jobs on.
    pub fn thread_count(&self) -> u32 {
        self.threads
    }

    /// Runs `f` with a [`Scope`]; every job queued via [`Scope::execute`]
    /// is guaranteed to have completed when `scoped` returns, so jobs may
    /// borrow (even mutably, disjointly) from the caller's stack.
    pub fn scoped<'pool, 'scope, F, R>(&'pool mut self, f: F) -> R
    where
        F: FnOnce(&Scope<'pool, 'scope>) -> R,
    {
        let scope = Scope {
            pool: std::marker::PhantomData::<&'pool ()>,
            threads: self.threads,
            jobs: RefCell::new(Vec::new()),
        };
        let r = f(&scope);
        scope.join_all();
        r
    }
}

/// Handle for queueing jobs onto a [`Pool`] from inside [`Pool::scoped`].
pub struct Scope<'pool, 'scope> {
    pool: std::marker::PhantomData<&'pool ()>,
    threads: u32,
    jobs: RefCell<Vec<Job<'scope>>>,
}

impl<'pool, 'scope> Scope<'pool, 'scope> {
    /// Queues a job. Jobs run on the pool's threads no later than when the
    /// surrounding [`Pool::scoped`] call returns (or on the next
    /// [`Scope::join_all`], whichever comes first).
    pub fn execute<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.jobs.borrow_mut().push(Box::new(f));
    }

    /// Runs every queued job to completion, on up to the pool's thread
    /// count. Returns once all of them have finished; a panicking job
    /// re-panics here after the batch drains.
    pub fn join_all(&self) {
        let jobs = std::mem::take(&mut *self.jobs.borrow_mut());
        run_batch(self.threads as usize, jobs);
    }
}

/// Executes `jobs` on up to `threads` OS threads. Single-thread pools and
/// single-job batches run inline on the caller's thread — no spawn, no
/// synchronization — which is also what keeps 1-thread parallel resolvers
/// allocation- and contention-free.
fn run_batch(threads: usize, jobs: Vec<Job<'_>>) {
    if threads <= 1 || jobs.len() <= 1 {
        for job in jobs {
            job();
        }
        return;
    }
    let workers = threads.min(jobs.len());
    let queue = Mutex::new(jobs.into_iter());
    // First panic payload, if any: re-raised on the caller's thread so the
    // original message survives (std::thread::scope alone would replace it
    // with a generic "a scoped thread panicked").
    let panicked: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                // Hold the lock only while popping: a panicking job cannot
                // poison the queue, so the rest of the batch still drains.
                let job = queue.lock().unwrap_or_else(|e| e.into_inner()).next();
                match job {
                    Some(job) => {
                        if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                            panicked
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .get_or_insert(payload);
                        }
                    }
                    None => break,
                }
            });
        }
    });
    if let Some(payload) = panicked.into_inner().unwrap_or_else(|e| e.into_inner()) {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_mutate_disjoint_slices() {
        let mut data = vec![0u64; 64];
        let mut pool = Pool::new(4);
        pool.scoped(|scope| {
            for (i, chunk) in data.chunks_mut(16).enumerate() {
                scope.execute(move || {
                    for (j, x) in chunk.iter_mut().enumerate() {
                        *x = (i * 16 + j) as u64;
                    }
                });
            }
        });
        assert!(data.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let count = AtomicUsize::new(0);
        for threads in [1, 2, 8] {
            count.store(0, Ordering::SeqCst);
            let mut pool = Pool::new(threads);
            assert_eq!(pool.thread_count(), threads);
            pool.scoped(|scope| {
                for _ in 0..100 {
                    scope.execute(|| {
                        count.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(count.load(Ordering::SeqCst), 100, "threads={threads}");
        }
    }

    #[test]
    fn join_all_completes_queued_jobs_mid_scope() {
        let count = AtomicUsize::new(0);
        let mut pool = Pool::new(2);
        pool.scoped(|scope| {
            for _ in 0..10 {
                scope.execute(|| {
                    count.fetch_add(1, Ordering::SeqCst);
                });
            }
            scope.join_all();
            assert_eq!(count.load(Ordering::SeqCst), 10);
        });
    }

    #[test]
    fn scoped_returns_the_closure_value() {
        let mut pool = Pool::new(2);
        let got = pool.scoped(|_| 42);
        assert_eq!(got, 42);
    }

    #[test]
    #[should_panic(expected = "job panicked")]
    fn a_panicking_job_propagates() {
        let mut pool = Pool::new(2);
        pool.scoped(|scope| {
            scope.execute(|| panic!("job panicked"));
            scope.execute(|| {});
        });
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_is_rejected() {
        let _ = Pool::new(0);
    }
}
