//! The downstream-user story: establish the stack once, then exchange
//! payloads repeatedly at steady-state cost.

use dcluster::prelude::*;

#[test]
fn stack_delivers_changing_payloads_every_epoch() {
    let mut rng = Rng64::new(501);
    let net = Network::builder(deploy::uniform_square(30, 2.2, &mut rng))
        .build()
        .unwrap();
    let params = ProtocolParams::practical();
    let mut seeds = SeedSeq::new(params.seed);
    let mut engine = Engine::new(&net);
    let stack = Stack::establish(&mut engine, &params, &mut seeds, net.density());

    // Three epochs of sensor readings; all must reach all neighbors.
    let mut per_epoch_rounds = Vec::new();
    for epoch in 0..3u64 {
        let (rounds, heard) =
            stack.local_broadcast_round(&mut engine, &mut seeds, |v| epoch << 32 | v as u64);
        assert!(stack.complete(&engine, &heard), "epoch {epoch} incomplete");
        per_epoch_rounds.push(rounds);
    }
    // Steady-state cost is stable across epochs (same labels, same SNS
    // length class).
    let min = *per_epoch_rounds.iter().min().unwrap() as f64;
    let max = *per_epoch_rounds.iter().max().unwrap() as f64;
    assert!(
        max / min < 1.5,
        "steady-state rounds vary too much: {per_epoch_rounds:?}"
    );
}

#[test]
fn stack_setup_matches_standalone_clustering_quality() {
    let mut rng = Rng64::new(502);
    let net = Network::builder(deploy::uniform_square(28, 2.0, &mut rng))
        .build()
        .unwrap();
    let params = ProtocolParams::practical();
    let mut seeds = SeedSeq::new(params.seed);
    let mut engine = Engine::new(&net);
    let stack = Stack::establish(&mut engine, &params, &mut seeds, net.density());
    let rep = check_clustering(&net, &stack.clustering().cluster_of);
    assert_eq!(rep.unassigned, 0);
    assert!(rep.max_radius <= 1.0 + 1e-9);
    // Labels bounded by the largest cluster.
    assert!(stack.labeling().max_label() as usize <= net.len());
}

#[test]
fn stack_amortizes_over_many_rounds() {
    let mut rng = Rng64::new(503);
    let net = Network::builder(deploy::uniform_square(25, 2.0, &mut rng))
        .build()
        .unwrap();
    let params = ProtocolParams::practical();
    let mut seeds = SeedSeq::new(params.seed);
    let mut engine = Engine::new(&net);
    let stack = Stack::establish(&mut engine, &params, &mut seeds, net.density());
    let setup = stack.setup_rounds;
    let mut steady_total = 0;
    for _ in 0..5 {
        let (r, heard) = stack.local_broadcast_round(&mut engine, &mut seeds, |v| v as u64);
        assert!(stack.complete(&engine, &heard));
        steady_total += r;
    }
    assert!(
        steady_total < setup,
        "five steady rounds ({steady_total}) should cost less than setup ({setup})"
    );
}
