//! Theorem 1 invariants across random deployments (property-based).

use dcluster::prelude::*;
use proptest::prelude::*;

fn run_clustering(
    n: usize,
    side_tenths: u32,
    seed: u64,
) -> (Network, dcluster::core::clustering::Clustering) {
    let mut rng = Rng64::new(seed);
    let side = side_tenths as f64 / 10.0;
    let net = Network::builder(deploy::uniform_square(n, side, &mut rng))
        .build()
        .expect("nonempty");
    let params = ProtocolParams::practical();
    let mut seeds = SeedSeq::new(params.seed);
    let mut engine = Engine::new(&net);
    let all: Vec<usize> = (0..net.len()).collect();
    let cl = clustering(&mut engine, &params, &mut seeds, &all, net.density());
    (net, cl)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// (i) every node clustered within radius 1 of its center;
    /// (ii) O(1) clusters per unit ball; centers separated.
    #[test]
    fn theorem1_invariants(n in 12usize..35, side in 8u32..35, seed in 0u64..500) {
        let (net, cl) = run_clustering(n, side, seed);
        let rep = check_clustering(&net, &cl.cluster_of);
        prop_assert_eq!(rep.unassigned, 0, "unassigned nodes");
        prop_assert!(rep.max_radius <= 1.0 + 1e-9, "radius {} > 1", rep.max_radius);
        prop_assert!(
            rep.max_clusters_per_unit_ball <= 40,
            "clusters per unit ball {}",
            rep.max_clusters_per_unit_ball
        );
        prop_assert!(rep.clusters >= 1);
        prop_assert!(rep.clusters <= net.len());
    }
}

#[test]
fn clustering_works_on_a_line_topology() {
    let pts = deploy::line(15, 0.6);
    let net = Network::builder(pts).build().unwrap();
    let params = ProtocolParams::practical();
    let mut seeds = SeedSeq::new(params.seed);
    let mut engine = Engine::new(&net);
    let all: Vec<usize> = (0..net.len()).collect();
    let cl = clustering(&mut engine, &params, &mut seeds, &all, net.density());
    let rep = check_clustering(&net, &cl.cluster_of);
    assert_eq!(rep.unassigned, 0);
    assert!(rep.max_radius <= 1.0 + 1e-9);
    // A 8.4-length line needs at least ~4 clusters of radius 1.
    assert!(
        rep.clusters >= 4,
        "line split into only {} clusters",
        rep.clusters
    );
}

#[test]
fn clustering_works_on_hotspots() {
    let mut rng = Rng64::new(5);
    let pts = deploy::gaussian_clusters(3, 12, 0.2, 6.0, &mut rng);
    let net = Network::builder(pts).build().unwrap();
    let params = ProtocolParams::practical();
    let mut seeds = SeedSeq::new(params.seed);
    let mut engine = Engine::new(&net);
    let all: Vec<usize> = (0..net.len()).collect();
    let cl = clustering(&mut engine, &params, &mut seeds, &all, net.density());
    let rep = check_clustering(&net, &cl.cluster_of);
    assert_eq!(rep.unassigned, 0);
    assert!(rep.max_radius <= 1.0 + 1e-9);
}

#[test]
fn cluster_ids_are_member_ids() {
    // Cluster IDs must be IDs of actual nodes (the centers).
    let (net, cl) = run_clustering(25, 20, 9);
    for c in cl.cluster_of.iter().flatten() {
        assert!(
            net.index_of(*c).is_some(),
            "cluster id {c} is not a node id"
        );
    }
    // Centers list matches the distinct cluster ids.
    let mut ids: Vec<u64> = cl.cluster_of.iter().flatten().copied().collect();
    ids.sort_unstable();
    ids.dedup();
    let mut centers: Vec<u64> = cl.centers.iter().map(|&v| net.id(v)).collect();
    centers.sort_unstable();
    centers.dedup();
    for id in &ids {
        assert!(centers.contains(id), "cluster {id} has no recorded center");
    }
}
