//! Bit-for-bit determinism: the whole point of the paper is that nothing
//! is random — two executions must agree exactly.

use dcluster::prelude::*;

fn field(seed: u64) -> Network {
    let mut rng = Rng64::new(seed);
    Network::builder(deploy::uniform_square(30, 2.5, &mut rng))
        .build()
        .unwrap()
}

#[test]
fn clustering_is_reproducible() {
    let net = field(71);
    let params = ProtocolParams::practical();
    let run = || {
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::new(&net);
        let all: Vec<usize> = (0..net.len()).collect();
        let cl = clustering(&mut engine, &params, &mut seeds, &all, net.density());
        (cl.cluster_of.clone(), cl.rounds, engine.stats())
    };
    let (a_cl, a_rounds, a_stats) = run();
    let (b_cl, b_rounds, b_stats) = run();
    assert_eq!(a_cl, b_cl);
    assert_eq!(a_rounds, b_rounds);
    assert_eq!(a_stats, b_stats, "transmission/reception counts must agree");
}

#[test]
fn different_protocol_seeds_give_different_schedules_same_guarantees() {
    let net = field(72);
    let mut outcomes = Vec::new();
    for seed in [1u64, 2] {
        let params = ProtocolParams {
            seed,
            ..ProtocolParams::practical()
        };
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::new(&net);
        let out = local_broadcast(&mut engine, &params, &mut seeds, net.density());
        assert!(out.complete, "guarantee must hold under any protocol seed");
        outcomes.push(out.rounds);
    }
    // Round counts will almost surely differ (different selector families).
    assert_ne!(
        outcomes[0], outcomes[1],
        "distinct seeds should yield distinct schedules"
    );
}

#[test]
fn global_broadcast_is_reproducible() {
    let mut rng = Rng64::new(73);
    let pts = deploy::corridor_with_spine(22, 5.0, 1.0, 0.5, &mut rng);
    let net = Network::builder(pts).build().unwrap();
    let params = ProtocolParams::practical();
    let run = || {
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::new(&net);
        let out = global_broadcast(&mut engine, &params, &mut seeds, 0, net.density(), 9);
        (out.rounds, out.phases.clone(), out.cluster_of.clone())
    };
    assert_eq!(run(), run());
}

/// Flattens a cluster assignment to a canonical byte string (little-endian
/// cluster id per node, `u64::MAX` for unassigned).
fn cluster_bytes(cluster_of: &[Option<u64>]) -> Vec<u8> {
    cluster_of
        .iter()
        .flat_map(|c| c.unwrap_or(u64::MAX).to_le_bytes())
        .collect()
}

#[test]
fn identical_seedseq_runs_yield_byte_identical_cluster_assignments() {
    // Stronger than `clustering_is_reproducible`: everything — network,
    // engine, seed sequence — is rebuilt from scratch per run, and the
    // resulting `cluster_of` vectors are compared byte for byte.
    let run = || {
        let net = field(2718);
        let params = ProtocolParams::practical();
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::new(&net);
        let all: Vec<usize> = (0..net.len()).collect();
        let cl = clustering(&mut engine, &params, &mut seeds, &all, net.density());
        cluster_bytes(&cl.cluster_of)
    };
    let first = run();
    let second = run();
    assert!(!first.is_empty());
    assert_eq!(
        first, second,
        "identical SeedSeq must give byte-identical cluster_of"
    );
}

#[test]
fn distinct_seedseq_values_are_used_not_ignored() {
    // Guards against a SeedSeq that silently ignores its seed: two protocol
    // seeds must produce *valid but different* executions somewhere in the
    // seed range (we scan a few pairs to avoid flaking on a coincidence).
    let net = field(2719);
    let assignment = |seed: u64| {
        let params = ProtocolParams {
            seed,
            ..ProtocolParams::practical()
        };
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::new(&net);
        let all: Vec<usize> = (0..net.len()).collect();
        let cl = clustering(&mut engine, &params, &mut seeds, &all, net.density());
        (cluster_bytes(&cl.cluster_of), cl.rounds)
    };
    let baseline = assignment(1);
    let differs = (2..8u64).any(|s| assignment(s) != baseline);
    assert!(
        differs,
        "7 distinct protocol seeds all produced identical executions"
    );
}

#[test]
fn every_resolver_backend_is_byte_identical_across_runs() {
    // The determinism guarantee must hold per backend: two from-scratch
    // executions with the same backend agree byte for byte — and because
    // the backends are observationally equivalent, the assignments must
    // also agree *across* backends.
    let params = ProtocolParams::practical();
    let run = |kind: ResolverKind| {
        let net = field(424_242);
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::with_resolver_kind(&net, kind);
        let all: Vec<usize> = (0..net.len()).collect();
        let cl = clustering(&mut engine, &params, &mut seeds, &all, net.density());
        assert_eq!(engine.resolver_kind(), kind);
        (cluster_bytes(&cl.cluster_of), cl.rounds, engine.stats())
    };
    let mut outcomes = Vec::new();
    for kind in ResolverKind::ALL {
        let first = run(kind);
        let second = run(kind);
        assert!(!first.0.is_empty());
        assert_eq!(
            first, second,
            "backend {kind} must be byte-identical across runs"
        );
        outcomes.push((kind, first));
    }
    for pair in outcomes.windows(2) {
        assert_eq!(
            pair[0].1, pair[1].1,
            "backends {} and {} must produce identical executions",
            pair[0].0, pair[1].0
        );
    }
}

#[test]
fn network_construction_is_reproducible() {
    let a = field(74);
    let b = field(74);
    assert_eq!(a.ids(), b.ids());
    assert_eq!(a.points().len(), b.points().len());
    for v in 0..a.len() {
        assert_eq!(a.pos(v), b.pos(v));
    }
}
