//! Failure injection and degenerate inputs: the stack must stay honest —
//! no panics, and incomplete outcomes reported as incomplete.

use dcluster::prelude::*;

#[test]
fn starved_schedules_fail_gracefully_not_loudly() {
    // Absurdly short selector schedules: guarantees evaporate, but nothing
    // panics and the outcome reports exactly what happened.
    let mut rng = Rng64::new(91);
    let net = Network::builder(deploy::uniform_square(30, 2.0, &mut rng))
        .build()
        .unwrap();
    let params = ProtocolParams {
        min_sched_len: 2,
        len_factor: 1e-9,
        ..ProtocolParams::practical()
    };
    let mut seeds = SeedSeq::new(params.seed);
    let mut engine = Engine::new(&net);
    let out = local_broadcast(&mut engine, &params, &mut seeds, net.density());
    // With 2-round schedules the broadcast will likely fail — that must be
    // visible in the outcome, not hidden.
    let truly_complete = local_broadcast_complete(&net, &out.heard_by);
    assert_eq!(
        out.complete, truly_complete,
        "outcome must report the truth"
    );
}

#[test]
fn colocated_nodes_do_not_break_the_radio() {
    // Two nodes at the same point: distances clamp, nobody panics.
    let net = Network::builder(vec![
        Point::new(0.0, 0.0),
        Point::new(0.0, 0.0),
        Point::new(0.5, 0.0),
    ])
    .build()
    .unwrap();
    let recs = dcluster::sim::ResolverKind::Grid
        .build()
        .resolve(&net, &[0, 1]);
    // Colocated simultaneous transmitters annihilate each other.
    assert!(recs.iter().all(|r| r.receiver != 2 || r.sender == 2));
    let params = ProtocolParams::practical();
    let mut seeds = SeedSeq::new(params.seed);
    let mut engine = Engine::new(&net);
    let out = local_broadcast(&mut engine, &params, &mut seeds, net.density());
    let _ = out.complete; // no panic is the assertion
}

#[test]
fn disconnected_network_broadcast_reports_partial_delivery() {
    // Two far-apart blobs: broadcast from one can never reach the other.
    let mut rng = Rng64::new(92);
    let mut pts = deploy::uniform_square(10, 1.0, &mut rng);
    pts.extend(
        deploy::uniform_square(10, 1.0, &mut rng)
            .into_iter()
            .map(|p| Point::new(p.x + 50.0, p.y)),
    );
    let net = Network::builder(pts).build().unwrap();
    assert!(!net.comm_graph().is_connected());
    let params = ProtocolParams::practical();
    let mut seeds = SeedSeq::new(params.seed);
    let mut engine = Engine::new(&net);
    let out = global_broadcast(&mut engine, &params, &mut seeds, 0, net.density(), 1);
    assert!(!out.delivered_all, "cross-component delivery is impossible");
    assert!(out.awake[..10].iter().filter(|&&a| a).count() >= 10 - 1);
    assert!(
        out.awake[10..].iter().all(|&a| !a),
        "the far blob must stay asleep"
    );
}

#[test]
fn single_node_network_is_trivially_fine() {
    let net = Network::builder(vec![Point::new(0.0, 0.0)])
        .build()
        .unwrap();
    let params = ProtocolParams::practical();
    let mut seeds = SeedSeq::new(params.seed);
    let mut engine = Engine::new(&net);
    let lb = local_broadcast(&mut engine, &params, &mut seeds, 1);
    assert!(lb.complete, "no neighbors ⇒ vacuously complete");

    let mut seeds2 = SeedSeq::new(params.seed);
    let mut engine2 = Engine::new(&net);
    let gb = global_broadcast(&mut engine2, &params, &mut seeds2, 0, 1, 7);
    assert!(gb.delivered_all);
}

#[test]
fn theory_parameters_work_on_tiny_instances() {
    // The faithful (len_factor = 1) parameters on a 6-node toy network.
    let pts = deploy::line(6, 0.5);
    let net = Network::builder(pts).build().unwrap();
    let params = ProtocolParams::theory();
    let mut seeds = SeedSeq::new(params.seed);
    let mut engine = Engine::new(&net);
    let out = local_broadcast(&mut engine, &params, &mut seeds, net.density());
    assert!(
        out.complete,
        "theory-length schedules must certainly succeed"
    );
}

#[test]
fn huge_id_space_only_costs_logarithmically() {
    let mut rng = Rng64::new(93);
    let pts = deploy::uniform_square(20, 2.0, &mut rng);
    let small = Network::builder(pts.clone())
        .max_id(100)
        .seed(1)
        .build()
        .unwrap();
    let big = Network::builder(pts)
        .max_id(1_000_000)
        .seed(1)
        .build()
        .unwrap();
    let params = ProtocolParams::practical();
    let run = |net: &Network| {
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::new(net);
        let out = local_broadcast(&mut engine, &params, &mut seeds, net.density());
        assert!(out.complete);
        out.rounds
    };
    let (rs, rb) = (run(&small), run(&big));
    // N grows 10_000×; rounds should grow by ≈ log factor only.
    assert!(
        (rb as f64) < (rs as f64) * 6.0,
        "rounds {rs} → {rb} grew more than logarithmically"
    );
}
