//! Property-based verification of the combinatorial structures
//! (Lemmas 2–3 and the classical families they extend).

use dcluster::selectors::{verify, CoverFreeFamily, RandomSsf, RandomWcss, RandomWss, RsSsf};
use dcluster::sim::rng::Rng64;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Explicit Reed–Solomon ssf: selection property on arbitrary sets.
    #[test]
    fn rs_ssf_selects(seed in 0u64..1000, k in 2usize..5) {
        let n_univ = 400u64;
        let ssf = RsSsf::new(n_univ, k);
        let mut rng = Rng64::new(seed);
        let set: Vec<u64> =
            rng.sample_distinct(n_univ, k).into_iter().map(|v| v + 1).collect();
        prop_assert!(verify::is_ssf_for(&ssf, &set), "selection failed for {set:?}");
    }

    /// Randomized ssf at theory length: selection property w.h.p.
    #[test]
    fn random_ssf_selects(seed in 0u64..1000) {
        let n_univ = 300u64;
        let k = 4usize;
        let ssf = RandomSsf::new(12345, n_univ, k, 1.0);
        let mut rng = Rng64::new(seed);
        let set: Vec<u64> =
            rng.sample_distinct(n_univ, k).into_iter().map(|v| v + 1).collect();
        prop_assert!(verify::is_ssf_for(&ssf, &set));
    }

    /// Lemma 2: witnessed strong selection.
    #[test]
    fn wss_witnessed_selection(seed in 0u64..1000) {
        let n_univ = 200u64;
        let k = 3usize;
        let wss = RandomWss::new(777, n_univ, k, 1.0);
        let mut rng = Rng64::new(seed);
        let mut ids: Vec<u64> =
            rng.sample_distinct(n_univ, k + 1).into_iter().map(|v| v + 1).collect();
        let y = ids.pop().unwrap();
        prop_assert!(verify::is_wss_for(&wss, &ids, y));
    }

    /// Lemma 3: cluster-aware witnessed selection with conflicts.
    #[test]
    fn wcss_property(seed in 0u64..300) {
        let n_univ = 100u64;
        let (k, l) = (2usize, 2usize);
        let wcss = RandomWcss::new(4242, n_univ, k, l, 1.0);
        let mut rng = Rng64::new(seed);
        let phi = 1 + rng.range_u64(20);
        let c1 = 21 + rng.range_u64(20);
        let c2 = 41 + rng.range_u64(20);
        let mut ids: Vec<u64> =
            rng.sample_distinct(n_univ, k + 1).into_iter().map(|v| v + 1).collect();
        let y = ids.pop().unwrap();
        prop_assert!(verify::is_wcss_for(&wcss, &ids, y, phi, &[c1, c2]));
    }

    /// Cover-free families: the Linial step always finds a free color and
    /// keeps adjacent new colors distinct.
    #[test]
    fn cff_select_free(own in 0u64..5000, n1 in 0u64..5000, n2 in 0u64..5000, n3 in 0u64..5000) {
        let cff = CoverFreeFamily::for_colors(5000, 4);
        let nbrs: Vec<u64> =
            [n1, n2, n3].into_iter().filter(|&c| c != own).collect();
        let fresh = cff.select_free(own, &nbrs).expect("capacity 4 ≥ 3 neighbors");
        prop_assert!(fresh < cff.ground_size());
        // fresh ∈ S_own and ∉ S_nbr for all neighbors.
        prop_assert!(cff.set_of(own).any(|e| e == fresh));
        for &nb in &nbrs {
            prop_assert!(cff.set_of(nb).all(|e| e != fresh));
        }
    }
}

#[test]
fn wss_is_stronger_than_ssf_in_practice() {
    // On a fixed budget the wss still satisfies plain selection.
    let wss = RandomWss::new(3, 150, 3, 1.0);
    let mut rng = Rng64::new(5);
    for _ in 0..20 {
        let set: Vec<u64> = rng
            .sample_distinct(150, 3)
            .into_iter()
            .map(|v| v + 1)
            .collect();
        assert!(verify::is_ssf_for(&wss, &set));
    }
}
