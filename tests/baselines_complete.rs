//! Cross-crate comparison sanity: all Table 1/2 baselines complete on a
//! shared workload, and the model-feature ordering the paper describes
//! holds.

use dcluster::baselines::{global, local};
use dcluster::prelude::*;

fn shared_field() -> Network {
    let mut rng = Rng64::new(81);
    Network::builder(deploy::uniform_square(50, 2.8, &mut rng))
        .build()
        .unwrap()
}

#[test]
fn all_local_baselines_complete_on_the_shared_field() {
    let net = shared_field();
    let delta = net.max_degree().max(1);
    let cap = 3_000_000;
    assert!(local::gmw_known_delta(&net, delta, 7, cap).complete);
    assert!(local::gmw_unknown_delta(&net, 7, cap).complete);
    assert!(local::yu_growth(&net, delta, 7, cap).complete);
    assert!(local::feedback(&net, delta, local::FeedbackPreset::HalldorssonMitra, 7, cap).complete);
    assert!(local::feedback(&net, delta, local::FeedbackPreset::BarenboimPeleg, 7, cap).complete);
    assert!(local::location_grid(&net, delta, 4, 0.05).complete);
}

#[test]
fn this_work_completes_on_the_shared_field_too() {
    let net = shared_field();
    let params = ProtocolParams::practical();
    let mut seeds = SeedSeq::new(params.seed);
    let mut engine = Engine::new(&net);
    let out = local_broadcast(&mut engine, &params, &mut seeds, net.density());
    assert!(out.complete);
}

#[test]
fn all_global_baselines_cross_a_corridor() {
    let mut rng = Rng64::new(82);
    let pts = deploy::corridor_with_spine(25, 6.0, 1.0, 0.5, &mut rng);
    let net = Network::builder(pts).build().unwrap();
    let d = net.comm_graph().diameter().unwrap() as u64;
    let delta = net.max_degree().max(2);
    assert!(global::decay_flood(&net, 0, 3, 1_000_000).reached_all);
    assert!(global::round_robin_flood(&net, 0, (d + 2) * net.max_id() + 1).reached_all);
    assert!(global::location_grid_flood(&net, 0, delta, 4, 0.05, 3_000_000).reached_all);
    assert!(global::ssf_flood(&net, 0, delta, 0.1, 3_000_000).reached_all);
}

#[test]
fn randomized_global_beats_the_deterministic_sweep() {
    // Table 2's message: with a big ID space, no-feature deterministic
    // flooding pays Θ(D·N) while randomized decay pays D·polylog.
    let mut rng = Rng64::new(83);
    let pts = deploy::corridor_with_spine(25, 6.0, 1.0, 0.5, &mut rng);
    let net = Network::builder(pts).max_id(5000).seed(4).build().unwrap();
    let d = net.comm_graph().diameter().unwrap() as u64;
    let decay = global::decay_flood(&net, 0, 3, 1_000_000);
    let sweep = global::round_robin_flood(&net, 0, (d + 2) * net.max_id() + 1);
    assert!(decay.reached_all && sweep.reached_all);
    assert!(decay.rounds < sweep.rounds);
}

#[test]
fn feedback_trades_energy_rate_for_time() {
    // The feedback feature lets finished nodes leave while survivors ramp
    // up: fewer rounds overall, and no more *total* transmissions than the
    // rate-capped no-feedback baseline spends in its longer run.
    let net = shared_field();
    let delta = net.max_degree().max(1);
    let fb = local::feedback(
        &net,
        delta,
        local::FeedbackPreset::HalldorssonMitra,
        7,
        3_000_000,
    );
    let nofb = local::gmw_known_delta(&net, delta, 7, 3_000_000);
    assert!(fb.complete && nofb.complete);
    assert!(
        fb.rounds <= nofb.rounds,
        "feedback ({}) must finish no later than plain GMW ({})",
        fb.rounds,
        nofb.rounds
    );
    assert!(
        fb.transmissions <= nofb.transmissions * 3,
        "feedback energy {} wildly above baseline {}",
        fb.transmissions,
        nofb.transmissions
    );
}
