//! End-to-end broadcast pipelines across workload families.

use dcluster::prelude::*;

fn local_on(net: &Network) -> dcluster::core::local_broadcast::LocalBroadcastOutcome {
    let params = ProtocolParams::practical();
    let mut seeds = SeedSeq::new(params.seed);
    let mut engine = Engine::new(net);
    local_broadcast(&mut engine, &params, &mut seeds, net.density())
}

#[test]
fn local_broadcast_on_uniform_field() {
    let mut rng = Rng64::new(61);
    let net = Network::builder(deploy::uniform_square(45, 3.0, &mut rng))
        .build()
        .unwrap();
    let out = local_on(&net);
    assert!(out.complete);
    assert!(local_broadcast_complete(&net, &out.heard_by));
}

#[test]
fn local_broadcast_on_perturbed_grid() {
    let mut rng = Rng64::new(62);
    let net = Network::builder(deploy::perturbed_grid(5, 8, 0.55, 0.1, &mut rng))
        .build()
        .unwrap();
    let out = local_on(&net);
    assert!(out.complete);
}

#[test]
fn local_broadcast_on_hotspots() {
    let mut rng = Rng64::new(63);
    let net = Network::builder(deploy::gaussian_clusters(2, 14, 0.25, 4.0, &mut rng))
        .build()
        .unwrap();
    let out = local_on(&net);
    assert!(out.complete);
    // Dense hotspots force several labels.
    assert!(out.labeling.max_label() >= 2);
}

#[test]
fn global_broadcast_reaches_everyone_and_counts_phases() {
    let mut rng = Rng64::new(64);
    let pts = deploy::corridor_with_spine(30, 7.0, 1.0, 0.5, &mut rng);
    let net = Network::builder(pts).build().unwrap();
    let d = net.comm_graph().diameter().unwrap() as usize;
    let params = ProtocolParams::practical();
    let mut seeds = SeedSeq::new(params.seed);
    let mut engine = Engine::new(&net);
    let out = global_broadcast(&mut engine, &params, &mut seeds, 0, net.density(), 5);
    assert!(out.delivered_all);
    assert!(out.local_broadcast_ok);
    // Phase count is between 1 and D + slack (each phase swallows ≥1 layer).
    assert!(!out.phases.is_empty());
    assert!(
        out.phases.len() <= d + 2,
        "{} phases for diameter {d}",
        out.phases.len()
    );
}

#[test]
fn sms_broadcast_with_three_sources() {
    let mut rng = Rng64::new(65);
    let pts = deploy::corridor_with_spine(30, 9.0, 1.0, 0.5, &mut rng);
    let net = Network::builder(pts).build().unwrap();
    // Three sources spread along the corridor, pairwise > comm radius.
    let mut by_x: Vec<usize> = (0..net.len()).collect();
    by_x.sort_by(|&a, &b| net.pos(a).x.partial_cmp(&net.pos(b).x).unwrap());
    let sources = vec![by_x[0], by_x[net.len() / 2], by_x[net.len() - 1]];
    for i in 0..sources.len() {
        for j in i + 1..sources.len() {
            assert!(net.pos(sources[i]).dist(net.pos(sources[j])) > net.params().comm_radius());
        }
    }
    let params = ProtocolParams::practical();
    let mut seeds = SeedSeq::new(params.seed);
    let mut engine = Engine::new(&net);
    let out = sms_broadcast(&mut engine, &params, &mut seeds, &sources, net.density(), 1);
    assert!(out.delivered_all);
}

#[test]
fn wakeup_then_leader_election_pipeline() {
    let mut rng = Rng64::new(66);
    let pts = deploy::corridor_with_spine(20, 4.0, 1.0, 0.5, &mut rng);
    let net = Network::builder(pts).build().unwrap();
    let params = ProtocolParams::practical();

    let mut seeds = SeedSeq::new(params.seed);
    let mut engine = Engine::new(&net);
    let w = wakeup(&mut engine, &params, &mut seeds, &[3], net.density());
    assert!(w.all_awake);

    let mut seeds2 = SeedSeq::new(params.seed);
    let mut engine2 = Engine::new(&net);
    let le = leader_election(&mut engine2, &params, &mut seeds2, net.density());
    assert!(net.index_of(le.leader_id).is_some());
}
