//! Theorem 6 machinery end-to-end: facts, the adversary game, chains.

use dcluster::lowerbound::adversary::{HashedCoin, RoundRobin, SsfStrategy};
use dcluster::lowerbound::facts::{check_fact_2_1, check_fact_2_2, check_fact_3};
use dcluster::lowerbound::{
    adversarial_assignment, build_chain, lower_bound_params, measure_chain, measure_gadget, Gadget,
};
use dcluster::selectors::RandomSsf;

#[test]
fn facts_hold_across_gadget_sizes() {
    let p = lower_bound_params();
    for delta in [4usize, 10, 20, 32] {
        let g = Gadget::new(delta, &p, 0.0);
        assert_eq!(check_fact_2_1(&g, &p), None, "Fact 2.1, Δ = {delta}");
        assert!(check_fact_2_2(&g, &p), "Fact 2.2, Δ = {delta}");
    }
}

#[test]
fn adversary_forces_linear_delay_for_all_strategies() {
    let p = lower_bound_params();
    let delta = 20usize;
    let g = Gadget::new(delta, &p, 0.0);
    let ids: Vec<u64> = (1..=(delta as u64 + 2)).collect();

    let rr = RoundRobin {
        period: (delta + 8) as u64,
    };
    let game = adversarial_assignment(&rr, delta, &ids, 1_000_000);
    let t = measure_gadget(&g, &p, &game.assignment, 900, 901, &rr, 1_000_000)
        .expect("round robin delivers");
    assert!(t as usize >= delta / 2, "round-robin: {t} < Δ/2");

    let ssf = SsfStrategy(RandomSsf::with_len(3, 8, 200));
    let game2 = adversarial_assignment(&ssf, delta, &ids, 2_000_000);
    if let Some(t2) = measure_gadget(&g, &p, &game2.assignment, 900, 901, &ssf, 2_000_000) {
        assert!(t2 as usize >= delta / 4, "ssf strategy: {t2} < Δ/4");
    }
}

#[test]
fn delay_grows_with_delta() {
    let p = lower_bound_params();
    let measure = |delta: usize| {
        let g = Gadget::new(delta, &p, 0.0);
        let ids: Vec<u64> = (1..=(delta as u64 + 2)).collect();
        let strat = RoundRobin {
            period: 2 * (delta as u64 + 2),
        };
        let game = adversarial_assignment(&strat, delta, &ids, 1_000_000);
        measure_gadget(&g, &p, &game.assignment, 900, 901, &strat, 1_000_000).expect("delivers")
    };
    let small = measure(8);
    let large = measure(32);
    assert!(
        large > small,
        "Ω(Δ): delay must grow with Δ ({small} vs {large})"
    );
}

#[test]
fn chain_fact3_and_crossing() {
    let p = lower_bound_params();
    let chain = build_chain(2, 8, &p);
    assert!(check_fact_3(&chain, &p));
    let strat = HashedCoin { seed: 5, k: 4 };
    let m = measure_chain(&chain, &p, &strat, 5_000_000);
    assert!(
        m.rounds.is_some(),
        "broadcast must cross the 2-gadget chain"
    );
    assert_eq!(m.per_gadget.len(), 2);
}

#[test]
fn buffer_length_scales_with_alpha_root() {
    let p = lower_bound_params();
    let c4 = build_chain(1, 4, &p);
    let c32 = build_chain(1, 32, &p);
    let predicted_ratio = (32f64 / 4f64).powf(1.0 / p.alpha);
    let actual_ratio = c32.kappa() as f64 / c4.kappa() as f64;
    assert!(
        (actual_ratio / predicted_ratio - 1.0).abs() < 0.8,
        "κ ratio {actual_ratio:.2} vs predicted {predicted_ratio:.2}"
    );
}
