//! Golden-report determinism: the committed `scenarios/*.scn` files must
//! parse, round-trip through the canonical text form, and produce
//! byte-identical [`Report`]s (and renderings) across repeated runs —
//! the same contract the `scenario_smoke` CI job gates on, enforced here
//! at test time for every committed spec.

use dcluster_scenario::{Runner, ScenarioSpec, Workload, WorkloadOutcome};
use std::path::PathBuf;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn committed_specs() -> Vec<(PathBuf, ScenarioSpec)> {
    let mut out: Vec<(PathBuf, ScenarioSpec)> = std::fs::read_dir(scenarios_dir())
        .expect("scenarios/ directory exists")
        .filter_map(|e| {
            let path = e.expect("readable dir entry").path();
            (path.extension().is_some_and(|x| x == "scn")).then(|| {
                let spec = ScenarioSpec::load(&path)
                    .unwrap_or_else(|e| panic!("committed spec must parse: {e}"));
                (path, spec)
            })
        })
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    assert!(out.len() >= 10, "the starter scenario library is committed");
    out
}

#[test]
fn every_committed_spec_round_trips_through_the_canonical_form() {
    for (path, spec) in committed_specs() {
        let reparsed = ScenarioSpec::parse(&spec.to_text())
            .unwrap_or_else(|e| panic!("{}: canonical text must re-parse: {e}", path.display()));
        assert_eq!(reparsed, spec, "{}: lossy text round-trip", path.display());
    }
}

#[test]
fn golden_ci_specs_produce_byte_identical_reports() {
    // The two CI smoke specs run end-to-end twice; whole-report equality
    // (not just headline numbers) is the determinism contract.
    for name in ["ci_clustering.scn", "ci_maintenance.scn"] {
        let runner = Runner::from_file(scenarios_dir().join(name)).expect("committed spec");
        let first = runner.run_default().expect("committed spec runs");
        let second = runner.run_default().expect("committed spec runs");
        assert_eq!(first, second, "{name}: reports differ across reruns");
        assert_eq!(
            first.to_markdown(),
            second.to_markdown(),
            "{name}: renderings differ across reruns"
        );
        assert!(first.ok(), "{name}: workload must complete");
    }
}

#[test]
fn ci_maintenance_spec_is_resolver_invariant() {
    // Protocol outcomes must not depend on the resolver backend: pinning
    // each backend over the committed maintenance spec yields identical
    // epoch structure (only the recorded backend tag differs).
    let path = scenarios_dir().join("ci_maintenance.scn");
    let run = |kind| {
        let runner = Runner::from_file(&path)
            .expect("committed spec")
            .with_resolver_override(Some(kind));
        let report = runner
            .run(&Workload::Maintenance)
            .expect("committed spec runs");
        let WorkloadOutcome::Maintenance { epochs, summary } = report.outcome else {
            panic!("maintenance outcome expected");
        };
        (
            epochs
                .into_iter()
                .map(|e| {
                    (
                        e.epoch,
                        e.awake,
                        e.rounds,
                        e.clusters,
                        e.re_elections,
                        e.retained,
                        e.coverage_violations,
                    )
                })
                .collect::<Vec<_>>(),
            summary,
        )
    };
    let grid = run(dcluster_sim::ResolverKind::Grid);
    let agg = run(dcluster_sim::ResolverKind::Aggregated);
    let par = run(dcluster_sim::ResolverKind::Parallel);
    assert_eq!(grid, agg, "backends must agree epoch by epoch");
    assert_eq!(grid, par, "parallel backend must agree epoch by epoch");
}

#[test]
fn empty_deployment_scn_text_errors_instead_of_panicking() {
    // Regression: a syntactically valid spec whose deployment realizes to
    // zero points used to panic deep inside `Network::builder` via an
    // `expect("nonempty")`; it must surface as a `SpecError` naming the
    // deploy section instead.
    let text = "\
scenario hollow
seed 7
deploy uniform n=0 side=2.0
workload clustering
";
    let spec = ScenarioSpec::parse(text).expect("zero-node specs parse fine");
    let err = Runner::new(spec)
        .run_default()
        .expect_err("zero-point deployment must be an error, not a panic");
    let msg = err.to_string();
    assert!(
        msg.contains("deploy"),
        "error must name the deploy section, got: {msg}"
    );
}

#[test]
fn spec_workload_lines_drive_run_default() {
    for (path, spec) in committed_specs() {
        let Some(w) = spec.workload.clone() else {
            continue;
        };
        // Cheap structural check only: run_default executes the spec's own
        // workload line (full runs are covered by the smoke binary).
        assert_eq!(
            Runner::new(spec).spec().workload.as_ref().map(|x| x.name()),
            Some(w.name()),
            "{}",
            path.display()
        );
    }
}
