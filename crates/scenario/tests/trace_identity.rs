//! Trace-identity gates over the committed `scenarios/*.scn` specs:
//! attaching a `--trace` sink must not change the rendered `Report` by a
//! single byte (tracing is observation, never participation), and
//! rerunning the same traced spec must reproduce the JSONL trace
//! byte-for-byte — the same two contracts the `scenario_smoke` CI gate
//! enforces.
//!
//! Debug builds sweep the CI-sized specs (the million-round broadcast
//! scenarios take minutes each unoptimized — same scoping as
//! `runner_determinism`); release builds sweep the whole committed
//! library, and the CI workflow runs this test under `--release` so
//! every committed spec is gated.

use dcluster_scenario::Runner;
use std::fs;
use std::path::PathBuf;

fn committed_scenarios() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios");
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .expect("scenarios/ directory exists")
        .filter_map(|e| {
            let path = e.expect("readable dir entry").path();
            path.extension().is_some_and(|x| x == "scn").then_some(path)
        })
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 10,
        "the starter scenario library is committed"
    );
    if cfg!(debug_assertions) {
        paths.retain(|p| {
            p.file_stem()
                .and_then(|s| s.to_str())
                .is_some_and(|s| s.starts_with("ci_"))
        });
        assert!(!paths.is_empty(), "the ci_*.scn smoke specs are committed");
    }
    paths
}

#[test]
fn tracing_is_invisible_and_traces_rerun_byte_identical() {
    let pid = std::process::id();
    for path in committed_scenarios() {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("utf-8 spec name")
            .to_string();
        let runner = Runner::from_file(&path).expect("committed spec parses");

        let plain = runner.run_default().expect("committed spec runs");

        let trace_a = std::env::temp_dir().join(format!("trace_identity_{pid}_{name}_a.jsonl"));
        let trace_b = std::env::temp_dir().join(format!("trace_identity_{pid}_{name}_b.jsonl"));
        let traced = runner
            .clone()
            .with_trace(Some(trace_a.clone()))
            .run_default()
            .expect("traced run succeeds");
        assert_eq!(plain, traced, "{name}: tracing changed the report");
        assert_eq!(
            plain.to_markdown(),
            traced.to_markdown(),
            "{name}: tracing changed the rendering"
        );
        assert!(
            !traced.phases.is_empty(),
            "{name}: every scenario run records phase spans"
        );

        let traced_again = runner
            .clone()
            .with_trace(Some(trace_b.clone()))
            .run_default()
            .expect("traced rerun succeeds");
        assert_eq!(traced, traced_again, "{name}: traced reruns differ");

        let bytes_a = fs::read(&trace_a).expect("first trace written");
        let bytes_b = fs::read(&trace_b).expect("second trace written");
        assert!(!bytes_a.is_empty(), "{name}: trace must not be empty");
        assert_eq!(
            bytes_a, bytes_b,
            "{name}: trace reruns are not byte-identical"
        );

        let _ = fs::remove_file(&trace_a);
        let _ = fs::remove_file(&trace_b);
    }
}
