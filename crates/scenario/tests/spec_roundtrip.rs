//! Property tests for the spec text format: `parse(to_text(spec)) == spec`
//! across every deploy layer, dynamics model and workload variant, with
//! randomized numeric fields (f64 values round-trip through Rust's
//! shortest-representation `Display`).

use dcluster_core::ProtocolParams;
use dcluster_scenario::{DeployLayer, DynamicsSpec, Scale, ScenarioSpec, Workload};
use dcluster_sim::ResolverKind;
use proptest::prelude::*;

/// A "random-looking" f64 from raw integer entropy: a dyadic value plus a
/// hash-derived tail, exercising both short ("2.5") and long
/// ("0.30000000000000004"-style) decimal renderings.
fn f64_from(entropy: u64, lo: f64, hi: f64) -> f64 {
    let unit = (entropy >> 11) as f64 / (1u64 << 53) as f64;
    lo + unit * (hi - lo)
}

fn layer_from(kind: usize, a: u64, b: u64) -> DeployLayer {
    let n = 1 + (a % 500) as usize;
    match kind % 7 {
        0 => DeployLayer::Uniform {
            n,
            side: f64_from(b, 0.5, 20.0),
        },
        1 => DeployLayer::Degree {
            n,
            delta: 1 + (b % 40) as usize,
        },
        2 => DeployLayer::Clumped {
            centers: 1 + (a % 9) as usize,
            per: 1 + (b % 40) as usize,
            sigma: f64_from(a ^ b, 0.01, 1.0),
            side: f64_from(b, 0.5, 10.0),
        },
        3 => DeployLayer::Grid {
            rows: 1 + (a % 30) as usize,
            cols: 1 + (b % 30) as usize,
            spacing: f64_from(a ^ 1, 0.1, 2.0),
            jitter: f64_from(b ^ 2, 0.0, 0.5),
        },
        4 => DeployLayer::Corridor {
            n,
            length: f64_from(b, 2.0, 30.0),
            width: f64_from(a ^ 3, 0.5, 3.0),
            spine: f64_from(b ^ 4, 0.2, 1.0),
        },
        5 => DeployLayer::Line {
            n,
            spacing: f64_from(b, 0.1, 1.0),
        },
        _ => DeployLayer::Ring {
            n,
            radius: f64_from(b, 0.5, 10.0),
        },
    }
}

fn dynamics_from(kind: usize, a: u64, b: u64) -> DynamicsSpec {
    match kind % 5 {
        0 => DynamicsSpec::Waypoint {
            speed: f64_from(a, 0.01, 1.0),
            frac: f64_from(b, 0.0, 1.0),
        },
        1 => DynamicsSpec::Walk {
            step: f64_from(a, 0.01, 1.0),
            frac: f64_from(b, 0.0, 1.0),
        },
        2 => DynamicsSpec::Group {
            speed: f64_from(a, 0.01, 1.0),
            frac: f64_from(b, 0.0, 1.0),
            groups: 1 + (a % 8) as usize,
        },
        3 => DynamicsSpec::Churn {
            sleep: f64_from(a, 0.0, 1.0),
            wake: f64_from(b, 0.0, 1.0),
        },
        _ => DynamicsSpec::HetPower {
            spread: f64_from(a ^ b, 0.0, 2.0),
        },
    }
}

fn workload_from(kind: usize, a: u64) -> Workload {
    match kind % 6 {
        0 => Workload::Clustering,
        1 => Workload::LocalBroadcast,
        2 => Workload::GlobalBroadcast {
            source: (a % 100) as usize,
            token: a.rotate_left(17),
        },
        3 => Workload::Maintenance,
        4 => Workload::Wakeup {
            sources: (0..1 + a % 5).map(|i| (a ^ i) as usize % 1000).collect(),
        },
        _ => Workload::LeaderElection,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 300, ..ProptestConfig::default() })]

    /// Every representable spec survives the text round-trip exactly.
    #[test]
    fn parse_to_text_round_trips(
        seed in 0u64..=u64::MAX,
        layer_kind in 0usize..7,
        layer_a in 0u64..=u64::MAX,
        layer_b in 0u64..=u64::MAX,
        extra_layers in 0usize..3,
        dyn_count in 0usize..4,
        dyn_kind in 0usize..5,
        dyn_a in 0u64..=u64::MAX,
        dyn_b in 0u64..=u64::MAX,
        workload_kind in 0usize..8,
        scale_kind in 0usize..4,
        resolver_kind in 0usize..4,
        epochs in 0u64..50,
        max_id in 0u64..100_000,
        id_seed in 0u64..100,
    ) {
        let mut spec = ScenarioSpec::new(format!("prop-{seed:x}"), seed).epochs(epochs);
        // Degree layers cannot be stacked with others; generate either a
        // single degree layer or a stack of non-degree ones.
        let first = layer_from(layer_kind, layer_a, layer_b);
        let degree = matches!(first, DeployLayer::Degree { .. });
        spec = spec.layer(first);
        if !degree {
            for i in 0..extra_layers {
                let mut l = layer_from(layer_kind + 1 + i, layer_a ^ i as u64, layer_b ^ (i as u64) << 7);
                if matches!(l, DeployLayer::Degree { .. }) {
                    l = DeployLayer::Line { n: 3, spacing: 0.5 };
                }
                spec = spec.layer(l);
            }
        }
        for i in 0..dyn_count {
            spec = spec.dynamics(dynamics_from(dyn_kind + i, dyn_a ^ i as u64, dyn_b ^ (i as u64) << 9));
        }
        if workload_kind < 6 {
            spec = spec.workload(workload_from(workload_kind, dyn_a));
        }
        if scale_kind < 3 {
            spec = spec.scale([Scale::Ci, Scale::Quick, Scale::Full][scale_kind]);
        }
        if resolver_kind < 3 {
            spec = spec.resolver(
                [ResolverKind::Naive, ResolverKind::Grid, ResolverKind::Aggregated][resolver_kind],
            );
        }
        if max_id > 0 {
            spec = spec.max_id(max_id);
        }
        if id_seed > 0 {
            spec = spec.id_seed(id_seed);
        }
        let text = spec.to_text();
        let parsed = ScenarioSpec::parse(&text);
        prop_assert_eq!(parsed.as_ref().ok(), Some(&spec), "text was:\n{}", text);
        // Canonical text is a fixed point: re-emitting the parsed spec
        // reproduces it byte for byte.
        prop_assert_eq!(parsed.unwrap().to_text(), text);
    }

    /// Non-default protocol params (including awkward f64s) round-trip.
    #[test]
    fn params_round_trip(
        kappa in 1usize..12,
        len_entropy in 0u64..=u64::MAX,
        min_len in 1u64..500,
        pseed in 0u64..=u64::MAX,
        adaptive in 0u8..2,
        cap_entropy in 0u64..=u64::MAX,
    ) {
        let params = ProtocolParams {
            kappa,
            len_factor: f64_from(len_entropy, 0.0001, 1.0),
            min_sched_len: min_len,
            seed: pseed,
            adaptive: adaptive == 1,
            cap_factor: f64_from(cap_entropy, 1.0, 4.0),
            ..ProtocolParams::practical()
        };
        let spec = ScenarioSpec::uniform("p", 1, 10, 2.0).params(params);
        prop_assert_eq!(ScenarioSpec::parse(&spec.to_text()).unwrap(), spec);
    }
}
