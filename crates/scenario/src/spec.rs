//! The declarative scenario description and its text format.
//!
//! A [`ScenarioSpec`] is a complete, typed description of a workload:
//! deployment layers, dynamics models, protocol parameters, resolver
//! backend, seed, epochs and scale tier. Specs live in `scenarios/*.scn`
//! files using a deterministic line-based text format — hand-rolled (no
//! serde), designed so that [`ScenarioSpec::parse`] and
//! [`ScenarioSpec::to_text`] round-trip exactly:
//! `parse(&spec.to_text()) == spec` for every representable spec.
//!
//! ## Format
//!
//! One directive per line; blank lines and `#` comments are ignored.
//!
//! ```text
//! # a maintenance scenario under mobility + churn + mixed radios
//! scenario waypoint-churn
//! seed 857536
//! epochs 5
//! scale quick
//! resolver aggregated
//! workload maintenance
//! deploy degree n=150 delta=8
//! dynamics waypoint speed=0.25 frac=0.2
//! dynamics churn sleep=0.08 wake=0.35
//! dynamics het_power spread=0.3
//! ```
//!
//! `deploy` lines are **layers**: points accumulate in order, sharing one
//! deployment RNG seeded from `seed` — `clumped` hotspots over a `uniform`
//! background reproduce the paper's dense-area worry cases exactly. The
//! optional `params` line overrides [`ProtocolParams::practical`] field by
//! field; `max_id`/`id_seed` control the ID space the way
//! `NetworkBuilder::max_id`/`seed` do.

use dcluster_core::ProtocolParams;
use dcluster_sim::ResolverKind;
use std::fmt::Write as _;

use crate::Scale;

/// Error from [`ScenarioSpec::parse`] / [`ScenarioSpec::load`]: the line it
/// happened on (1-based; 0 = file-level) and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number (0 for file-level errors such as I/O).
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for SpecError {}

fn err(line: usize, msg: impl Into<String>) -> SpecError {
    SpecError {
        line,
        msg: msg.into(),
    }
}

/// One deployment layer; layers accumulate points in order, sharing a
/// single RNG seeded from the spec seed (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum DeployLayer {
    /// `n` points uniform in `[0, side]²`.
    Uniform {
        /// Node count.
        n: usize,
        /// Square side.
        side: f64,
    },
    /// A connected uniform deployment targeting max degree ≈ `delta`
    /// (retries seeds until the communication graph is connected; falls
    /// back to a spined corridor). Must be the only layer: the retry loop
    /// owns the whole deployment.
    Degree {
        /// Node count.
        n: usize,
        /// Target max communication-graph degree.
        delta: usize,
    },
    /// Gaussian hotspot clusters: `centers` cluster centers uniform in
    /// `[0, side]²`, each with `per` points at N(0, sigma²) offsets.
    Clumped {
        /// Number of hotspots.
        centers: usize,
        /// Points per hotspot.
        per: usize,
        /// Offset standard deviation.
        sigma: f64,
        /// Field side.
        side: f64,
    },
    /// `rows × cols` grid with `spacing`, jittered by up to `jitter`.
    Grid {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
        /// Grid spacing.
        spacing: f64,
        /// Per-coordinate jitter bound.
        jitter: f64,
    },
    /// A corridor `length × width` with `n` uniform points plus a spine of
    /// points every `spine` along the center line (connected backbone).
    Corridor {
        /// Uniform point count (the spine adds more).
        n: usize,
        /// Corridor length.
        length: f64,
        /// Corridor width.
        width: f64,
        /// Spine spacing.
        spine: f64,
    },
    /// `n` points on a horizontal line with the given spacing.
    Line {
        /// Node count.
        n: usize,
        /// Point spacing.
        spacing: f64,
    },
    /// `n` points evenly spaced on a circle of the given radius.
    Ring {
        /// Node count.
        n: usize,
        /// Circle radius.
        radius: f64,
    },
}

/// The deployment part of a spec: an ordered stack of [`DeployLayer`]s.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DeploySpec {
    /// Layers, applied in order over one shared deployment RNG.
    pub layers: Vec<DeployLayer>,
}

/// One dynamics model of a scenario, mirroring `dcluster-dynamics`
/// (mobility / churn) and the deploy-time heterogeneous power profile.
///
/// Sub-seeds are derived from the spec seed exactly the way the historical
/// drivers did: mobility models get `seed ^ 1`, churn `seed ^ 2`, the
/// power profile `seed ^ 3` — so specs reproduce the committed
/// `BENCH_dynamics.json` numbers bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub enum DynamicsSpec {
    /// Random waypoint mobility over a `frac` mobile subset.
    Waypoint {
        /// Distance per epoch.
        speed: f64,
        /// Mobile fraction of the nodes.
        frac: f64,
    },
    /// Bounded random walk.
    Walk {
        /// Step length per epoch.
        step: f64,
        /// Mobile fraction of the nodes.
        frac: f64,
    },
    /// Group / hotspot drift.
    Group {
        /// Group drift speed per epoch.
        speed: f64,
        /// Mobile fraction of the nodes.
        frac: f64,
        /// Number of drifting groups.
        groups: usize,
    },
    /// Deterministic sleep/wake churn (node 0 anchored awake).
    Churn {
        /// Per-epoch sleep probability for awake nodes.
        sleep: f64,
        /// Per-epoch wake probability for asleep nodes.
        wake: f64,
    },
    /// Heterogeneous transmit power, applied at deployment: node powers in
    /// `[P, (1 + spread)·P]`, hashed from the spec seed.
    HetPower {
        /// Relative spread above the model power.
        spread: f64,
    },
}

/// What the [`crate::Runner`] executes against the scenario's world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Workload {
    /// Theorem 1 clustering over the whole deployment.
    Clustering,
    /// The full stack: clustering + labeling + label-sweep local broadcast
    /// (Algorithm 7 / Theorem 2).
    LocalBroadcast,
    /// Global broadcast from `source` carrying `token` (Algorithm 8 /
    /// Theorem 3).
    GlobalBroadcast {
        /// Source node index.
        source: usize,
        /// Broadcast payload.
        token: u64,
    },
    /// Per-epoch cluster maintenance under the spec's dynamics models
    /// (`epochs` epochs of the `MaintenanceDriver` loop).
    Maintenance,
    /// Theorem 4 wake-up from the given spontaneous node indices.
    Wakeup {
        /// Spontaneously active node indices.
        sources: Vec<usize>,
    },
    /// Theorem 5 leader election over the whole network.
    LeaderElection,
}

impl Workload {
    /// Short stable name (reports, CSV, spec files).
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Clustering => "clustering",
            Workload::LocalBroadcast => "local",
            Workload::GlobalBroadcast { .. } => "global",
            Workload::Maintenance => "maintenance",
            Workload::Wakeup { .. } => "wakeup",
            Workload::LeaderElection => "leader",
        }
    }
}

/// A complete, typed description of a workload. See the module docs for
/// the text format and [`crate::Runner`] for execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (reports, CSV file names).
    pub name: String,
    /// Deployment master seed (also the root of dynamics sub-seeds).
    pub seed: u64,
    /// Epochs for the maintenance workload (ignored by the others).
    /// `0` means "tier-sized": the Runner substitutes the scale tier's
    /// standard epoch count (ci 3, quick 5, full 8).
    pub epochs: u64,
    /// Pinned scale tier, consulted through `Runner::scale` (tier-sized
    /// maintenance epochs, binaries' sweep sizing); `None` defers to
    /// `DCLUSTER_SCALE`.
    pub scale: Option<Scale>,
    /// Pinned resolver backend; `None` defers to the CLI/env/scale-aware
    /// default chain (see `Runner::resolver_for`).
    pub resolver: Option<ResolverKind>,
    /// Default workload for file-driven runs; binaries may impose their
    /// own instead.
    pub workload: Option<Workload>,
    /// ID-space bound (`NetworkBuilder::max_id`); `None` = dense IDs.
    pub max_id: Option<u64>,
    /// ID shuffle seed (`NetworkBuilder::seed`); `None` = identity.
    pub id_seed: Option<u64>,
    /// Deployment layers.
    pub deploy: DeploySpec,
    /// Dynamics models, applied in order each epoch.
    pub dynamics: Vec<DynamicsSpec>,
    /// Protocol parameters (defaults to [`ProtocolParams::practical`]).
    pub params: ProtocolParams,
}

impl ScenarioSpec {
    /// An empty spec with the given name and seed; add layers with
    /// [`ScenarioSpec::layer`].
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        Self {
            name: name.into(),
            seed,
            epochs: 1,
            scale: None,
            resolver: None,
            workload: None,
            max_id: None,
            id_seed: None,
            deploy: DeploySpec::default(),
            dynamics: Vec::new(),
            params: ProtocolParams::practical(),
        }
    }

    /// A single-layer uniform deployment (`n` nodes in `[0, side]²`).
    pub fn uniform(name: impl Into<String>, seed: u64, n: usize, side: f64) -> Self {
        Self::new(name, seed).layer(DeployLayer::Uniform { n, side })
    }

    /// A connected deployment targeting max degree ≈ `delta`.
    pub fn degree(name: impl Into<String>, seed: u64, n: usize, delta: usize) -> Self {
        Self::new(name, seed).layer(DeployLayer::Degree { n, delta })
    }

    /// A spined-corridor deployment (the multi-hop workload).
    pub fn corridor(
        name: impl Into<String>,
        seed: u64,
        n: usize,
        length: f64,
        width: f64,
        spine: f64,
    ) -> Self {
        Self::new(name, seed).layer(DeployLayer::Corridor {
            n,
            length,
            width,
            spine,
        })
    }

    /// Appends a deployment layer.
    pub fn layer(mut self, layer: DeployLayer) -> Self {
        self.deploy.layers.push(layer);
        self
    }

    /// Appends a dynamics model.
    pub fn dynamics(mut self, d: DynamicsSpec) -> Self {
        self.dynamics.push(d);
        self
    }

    /// Sets the maintenance epoch count.
    pub fn epochs(mut self, epochs: u64) -> Self {
        self.epochs = epochs;
        self
    }

    /// Pins the resolver backend.
    pub fn resolver(mut self, kind: ResolverKind) -> Self {
        self.resolver = Some(kind);
        self
    }

    /// Sets the default workload.
    pub fn workload(mut self, w: Workload) -> Self {
        self.workload = Some(w);
        self
    }

    /// Pins the scale tier.
    pub fn scale(mut self, s: Scale) -> Self {
        self.scale = Some(s);
        self
    }

    /// Replaces the protocol parameters.
    pub fn params(mut self, p: ProtocolParams) -> Self {
        self.params = p;
        self
    }

    /// Sets the ID-space bound.
    pub fn max_id(mut self, max_id: u64) -> Self {
        self.max_id = Some(max_id);
        self
    }

    /// Sets the ID shuffle seed.
    pub fn id_seed(mut self, id_seed: u64) -> Self {
        self.id_seed = Some(id_seed);
        self
    }

    /// Total node count the deployment layers request (the `Corridor`
    /// spine and `Degree` fallback may add more at build time).
    pub fn requested_nodes(&self) -> usize {
        self.deploy
            .layers
            .iter()
            .map(|l| match *l {
                DeployLayer::Uniform { n, .. }
                | DeployLayer::Degree { n, .. }
                | DeployLayer::Corridor { n, .. }
                | DeployLayer::Line { n, .. }
                | DeployLayer::Ring { n, .. } => n,
                DeployLayer::Clumped { centers, per, .. } => centers * per,
                DeployLayer::Grid { rows, cols, .. } => rows * cols,
            })
            .sum()
    }

    // ---- text format ----------------------------------------------------

    /// Renders the canonical text form. Guaranteed inverse of
    /// [`ScenarioSpec::parse`]: `parse(&spec.to_text()) == Ok(spec)`.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# dcluster scenario");
        let _ = writeln!(out, "scenario {}", self.name);
        let _ = writeln!(out, "seed {}", self.seed);
        let _ = writeln!(out, "epochs {}", self.epochs);
        if let Some(s) = self.scale {
            let _ = writeln!(out, "scale {s}");
        }
        if let Some(r) = self.resolver {
            let _ = writeln!(out, "resolver {r}");
        }
        if let Some(w) = &self.workload {
            let _ = writeln!(out, "{}", workload_line(w));
        }
        if let Some(m) = self.max_id {
            let _ = writeln!(out, "max_id {m}");
        }
        if let Some(i) = self.id_seed {
            let _ = writeln!(out, "id_seed {i}");
        }
        for l in &self.deploy.layers {
            let _ = writeln!(out, "{}", deploy_line(l));
        }
        for d in &self.dynamics {
            let _ = writeln!(out, "{}", dynamics_line(d));
        }
        if self.params != ProtocolParams::practical() {
            let p = self.params;
            let _ = writeln!(
                out,
                "params kappa={} rho={} sns_k={} mis_degree={} len_factor={} \
                 min_sched_len={} seed={} adaptive={} cap_factor={}",
                p.kappa,
                p.rho,
                p.sns_k,
                p.mis_degree,
                p.len_factor,
                p.min_sched_len,
                p.seed,
                p.adaptive,
                p.cap_factor
            );
        }
        out
    }

    /// Parses the text format (see the module docs). Unknown directives
    /// and malformed values are errors, never silently ignored.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let mut spec = ScenarioSpec::new("scenario", 0);
        let mut saw_deploy = false;
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (kw, rest) = match line.split_once(char::is_whitespace) {
                Some((k, r)) => (k, r.trim()),
                None => (line, ""),
            };
            match kw {
                "scenario" => {
                    if rest.is_empty() {
                        return Err(err(lineno, "scenario needs a name"));
                    }
                    spec.name = rest.to_string();
                }
                "seed" => spec.seed = parse_u64(rest).map_err(|m| err(lineno, m))?,
                "epochs" => spec.epochs = parse_u64(rest).map_err(|m| err(lineno, m))?,
                "scale" => {
                    spec.scale = Some(rest.parse::<Scale>().map_err(|m| err(lineno, m))?);
                }
                "resolver" => {
                    spec.resolver = Some(rest.parse::<ResolverKind>().map_err(|m| err(lineno, m))?);
                }
                "workload" => spec.workload = Some(parse_workload(rest, lineno)?),
                "max_id" => spec.max_id = Some(parse_u64(rest).map_err(|m| err(lineno, m))?),
                "id_seed" => spec.id_seed = Some(parse_u64(rest).map_err(|m| err(lineno, m))?),
                "deploy" => {
                    saw_deploy = true;
                    spec.deploy.layers.push(parse_deploy(rest, lineno)?);
                }
                "dynamics" => spec.dynamics.push(parse_dynamics(rest, lineno)?),
                "params" => {
                    let kv = KeyValues::parse(rest, lineno)?;
                    let mut p = spec.params;
                    for (k, v) in &kv.pairs {
                        match k.as_str() {
                            "kappa" => p.kappa = kv.get_usize(k)?,
                            "rho" => p.rho = kv.get_usize(k)?,
                            "sns_k" => p.sns_k = kv.get_usize(k)?,
                            "mis_degree" => p.mis_degree = kv.get_usize(k)?,
                            "len_factor" => p.len_factor = kv.get_f64(k)?,
                            "min_sched_len" => p.min_sched_len = kv.get_u64(k)?,
                            "seed" => p.seed = kv.get_u64(k)?,
                            "adaptive" => {
                                p.adaptive = match v.as_str() {
                                    "true" => true,
                                    "false" => false,
                                    other => {
                                        return Err(err(
                                            lineno,
                                            format!("adaptive: expected true|false, got '{other}'"),
                                        ))
                                    }
                                }
                            }
                            "cap_factor" => p.cap_factor = kv.get_f64(k)?,
                            other => {
                                return Err(err(lineno, format!("unknown params key '{other}'")))
                            }
                        }
                    }
                    spec.params = p;
                }
                other => return Err(err(lineno, format!("unknown directive '{other}'"))),
            }
        }
        if !saw_deploy {
            return Err(err(0, "spec has no deploy layer"));
        }
        if spec
            .deploy
            .layers
            .iter()
            .any(|l| matches!(l, DeployLayer::Degree { .. }))
            && spec.deploy.layers.len() > 1
        {
            return Err(err(
                0,
                "'deploy degree' owns the whole deployment and cannot be layered",
            ));
        }
        Ok(spec)
    }

    /// Reads and parses a `.scn` file; errors name the path.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, SpecError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| err(0, format!("cannot read {}: {e}", path.display())))?;
        Self::parse(&text).map_err(|e| err(e.line, format!("{}: {}", path.display(), e.msg)))
    }
}

fn deploy_line(l: &DeployLayer) -> String {
    match *l {
        DeployLayer::Uniform { n, side } => format!("deploy uniform n={n} side={side}"),
        DeployLayer::Degree { n, delta } => format!("deploy degree n={n} delta={delta}"),
        DeployLayer::Clumped {
            centers,
            per,
            sigma,
            side,
        } => format!("deploy clumped centers={centers} per={per} sigma={sigma} side={side}"),
        DeployLayer::Grid {
            rows,
            cols,
            spacing,
            jitter,
        } => format!("deploy grid rows={rows} cols={cols} spacing={spacing} jitter={jitter}"),
        DeployLayer::Corridor {
            n,
            length,
            width,
            spine,
        } => format!("deploy corridor n={n} length={length} width={width} spine={spine}"),
        DeployLayer::Line { n, spacing } => format!("deploy line n={n} spacing={spacing}"),
        DeployLayer::Ring { n, radius } => format!("deploy ring n={n} radius={radius}"),
    }
}

fn dynamics_line(d: &DynamicsSpec) -> String {
    match *d {
        DynamicsSpec::Waypoint { speed, frac } => {
            format!("dynamics waypoint speed={speed} frac={frac}")
        }
        DynamicsSpec::Walk { step, frac } => format!("dynamics walk step={step} frac={frac}"),
        DynamicsSpec::Group {
            speed,
            frac,
            groups,
        } => format!("dynamics group speed={speed} frac={frac} groups={groups}"),
        DynamicsSpec::Churn { sleep, wake } => format!("dynamics churn sleep={sleep} wake={wake}"),
        DynamicsSpec::HetPower { spread } => format!("dynamics het_power spread={spread}"),
    }
}

fn workload_line(w: &Workload) -> String {
    match w {
        Workload::Clustering => "workload clustering".into(),
        Workload::LocalBroadcast => "workload local".into(),
        Workload::GlobalBroadcast { source, token } => {
            format!("workload global source={source} token={token}")
        }
        Workload::Maintenance => "workload maintenance".into(),
        Workload::Wakeup { sources } => {
            let list: Vec<String> = sources.iter().map(|s| s.to_string()).collect();
            format!("workload wakeup sources={}", list.join(","))
        }
        Workload::LeaderElection => "workload leader".into(),
    }
}

fn parse_u64(s: &str) -> Result<u64, String> {
    let r = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    r.map_err(|_| format!("expected an unsigned integer, got '{s}'"))
}

/// The `k=v` tail of a directive, with typed accessors that name the key
/// in errors.
struct KeyValues {
    line: usize,
    pairs: Vec<(String, String)>,
}

impl KeyValues {
    fn parse(rest: &str, line: usize) -> Result<Self, SpecError> {
        let mut pairs = Vec::new();
        for tok in rest.split_whitespace() {
            let (k, v) = tok
                .split_once('=')
                .ok_or_else(|| err(line, format!("expected key=value, got '{tok}'")))?;
            pairs.push((k.to_string(), v.to_string()));
        }
        Ok(Self { line, pairs })
    }

    fn has(&self, key: &str) -> bool {
        self.pairs.iter().any(|(k, _)| k == key)
    }

    fn raw(&self, key: &str) -> Result<&str, SpecError> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| err(self.line, format!("missing key '{key}'")))
    }

    fn get_u64(&self, key: &str) -> Result<u64, SpecError> {
        parse_u64(self.raw(key)?).map_err(|m| err(self.line, format!("{key}: {m}")))
    }

    fn get_usize(&self, key: &str) -> Result<usize, SpecError> {
        Ok(self.get_u64(key)? as usize)
    }

    fn get_f64(&self, key: &str) -> Result<f64, SpecError> {
        let v = self.raw(key)?;
        v.parse::<f64>()
            .ok()
            .filter(|x| x.is_finite())
            .ok_or_else(|| {
                err(
                    self.line,
                    format!("{key}: expected a finite number, got '{v}'"),
                )
            })
    }

    /// Rejects keys outside `allowed` (typo protection).
    fn expect_only(&self, allowed: &[&str]) -> Result<(), SpecError> {
        for (k, _) in &self.pairs {
            if !allowed.contains(&k.as_str()) {
                return Err(err(
                    self.line,
                    format!("unknown key '{k}' (expected one of {allowed:?})"),
                ));
            }
        }
        Ok(())
    }
}

fn parse_deploy(rest: &str, line: usize) -> Result<DeployLayer, SpecError> {
    let (kind, tail) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
    let kv = KeyValues::parse(tail, line)?;
    let layer = match kind {
        "uniform" => {
            kv.expect_only(&["n", "side"])?;
            DeployLayer::Uniform {
                n: kv.get_usize("n")?,
                side: kv.get_f64("side")?,
            }
        }
        "degree" => {
            kv.expect_only(&["n", "delta"])?;
            DeployLayer::Degree {
                n: kv.get_usize("n")?,
                delta: kv.get_usize("delta")?,
            }
        }
        "clumped" => {
            kv.expect_only(&["centers", "per", "sigma", "side"])?;
            DeployLayer::Clumped {
                centers: kv.get_usize("centers")?,
                per: kv.get_usize("per")?,
                sigma: kv.get_f64("sigma")?,
                side: kv.get_f64("side")?,
            }
        }
        "grid" => {
            kv.expect_only(&["rows", "cols", "spacing", "jitter"])?;
            DeployLayer::Grid {
                rows: kv.get_usize("rows")?,
                cols: kv.get_usize("cols")?,
                spacing: kv.get_f64("spacing")?,
                jitter: kv.get_f64("jitter")?,
            }
        }
        "corridor" => {
            kv.expect_only(&["n", "length", "width", "spine"])?;
            DeployLayer::Corridor {
                n: kv.get_usize("n")?,
                length: kv.get_f64("length")?,
                width: kv.get_f64("width")?,
                spine: kv.get_f64("spine")?,
            }
        }
        "line" => {
            kv.expect_only(&["n", "spacing"])?;
            DeployLayer::Line {
                n: kv.get_usize("n")?,
                spacing: kv.get_f64("spacing")?,
            }
        }
        "ring" => {
            kv.expect_only(&["n", "radius"])?;
            DeployLayer::Ring {
                n: kv.get_usize("n")?,
                radius: kv.get_f64("radius")?,
            }
        }
        other => {
            return Err(err(
                line,
                format!(
                    "unknown deploy kind '{other}' \
                     (expected uniform|degree|clumped|grid|corridor|line|ring)"
                ),
            ))
        }
    };
    Ok(layer)
}

fn parse_dynamics(rest: &str, line: usize) -> Result<DynamicsSpec, SpecError> {
    let (kind, tail) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
    let kv = KeyValues::parse(tail, line)?;
    let d = match kind {
        "waypoint" => {
            kv.expect_only(&["speed", "frac"])?;
            DynamicsSpec::Waypoint {
                speed: kv.get_f64("speed")?,
                frac: kv.get_f64("frac")?,
            }
        }
        "walk" => {
            kv.expect_only(&["step", "frac"])?;
            DynamicsSpec::Walk {
                step: kv.get_f64("step")?,
                frac: kv.get_f64("frac")?,
            }
        }
        "group" => {
            kv.expect_only(&["speed", "frac", "groups"])?;
            DynamicsSpec::Group {
                speed: kv.get_f64("speed")?,
                frac: kv.get_f64("frac")?,
                groups: kv.get_usize("groups")?,
            }
        }
        "churn" => {
            kv.expect_only(&["sleep", "wake"])?;
            DynamicsSpec::Churn {
                sleep: kv.get_f64("sleep")?,
                wake: kv.get_f64("wake")?,
            }
        }
        "het_power" => {
            kv.expect_only(&["spread"])?;
            DynamicsSpec::HetPower {
                spread: kv.get_f64("spread")?,
            }
        }
        other => {
            return Err(err(
                line,
                format!(
                    "unknown dynamics kind '{other}' \
                     (expected waypoint|walk|group|churn|het_power)"
                ),
            ))
        }
    };
    Ok(d)
}

fn parse_workload(rest: &str, line: usize) -> Result<Workload, SpecError> {
    let (kind, tail) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
    let kv = KeyValues::parse(tail, line)?;
    let w = match kind {
        "clustering" => Workload::Clustering,
        "local" => Workload::LocalBroadcast,
        "global" => {
            kv.expect_only(&["source", "token"])?;
            // Absent keys take the defaults; present-but-malformed values
            // are errors like everywhere else in the parser.
            Workload::GlobalBroadcast {
                source: if kv.has("source") {
                    kv.get_usize("source")?
                } else {
                    0
                },
                token: if kv.has("token") {
                    kv.get_u64("token")?
                } else {
                    1
                },
            }
        }
        "maintenance" => Workload::Maintenance,
        "wakeup" => {
            kv.expect_only(&["sources"])?;
            let raw = kv.raw("sources")?;
            let mut sources = Vec::new();
            // An empty list is representable (`sources=`) so the canonical
            // text of every Wakeup value re-parses; execution rejects it.
            for part in raw.split(',').filter(|p| !p.is_empty()) {
                sources.push(
                    parse_u64(part).map_err(|m| err(line, format!("sources: {m}")))? as usize,
                );
            }
            Workload::Wakeup { sources }
        }
        "leader" => Workload::LeaderElection,
        other => {
            return Err(err(
                line,
                format!(
                    "unknown workload '{other}' \
                     (expected clustering|local|global|maintenance|wakeup|leader)"
                ),
            ))
        }
    };
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rich_spec() -> ScenarioSpec {
        ScenarioSpec::new("kitchen-sink", 0xD15C0)
            .layer(DeployLayer::Clumped {
                centers: 3,
                per: 15,
                sigma: 0.25,
                side: 5.0,
            })
            .layer(DeployLayer::Uniform { n: 40, side: 5.0 })
            .dynamics(DynamicsSpec::Waypoint {
                speed: 0.25,
                frac: 0.2,
            })
            .dynamics(DynamicsSpec::Churn {
                sleep: 0.08,
                wake: 0.35,
            })
            .dynamics(DynamicsSpec::HetPower { spread: 0.3 })
            .epochs(5)
            .scale(Scale::Quick)
            .resolver(ResolverKind::Aggregated)
            .workload(Workload::Maintenance)
            .max_id(10_000)
            .id_seed(3)
    }

    #[test]
    fn rich_spec_round_trips() {
        let spec = rich_spec();
        let text = spec.to_text();
        assert_eq!(ScenarioSpec::parse(&text).unwrap(), spec);
    }

    #[test]
    fn custom_params_round_trip() {
        let mut p = ProtocolParams::practical();
        p.len_factor = 0.004;
        p.min_sched_len = 16;
        let spec = ScenarioSpec::uniform("ablate", 60, 80, 2.0).params(p);
        let text = spec.to_text();
        assert!(
            text.contains("params "),
            "non-default params must be emitted"
        );
        assert_eq!(ScenarioSpec::parse(&text).unwrap(), spec);
        let default = ScenarioSpec::uniform("d", 1, 10, 1.0);
        assert!(
            !default.to_text().contains("params "),
            "default params stay implicit"
        );
    }

    #[test]
    fn workload_forms_round_trip() {
        for w in [
            Workload::Clustering,
            Workload::LocalBroadcast,
            Workload::GlobalBroadcast {
                source: 7,
                token: 0xBEEF,
            },
            Workload::Maintenance,
            Workload::Wakeup {
                sources: vec![0, 15, 29],
            },
            Workload::LeaderElection,
        ] {
            let spec = ScenarioSpec::uniform("w", 1, 20, 2.0).workload(w.clone());
            assert_eq!(
                ScenarioSpec::parse(&spec.to_text()).unwrap().workload,
                Some(w)
            );
        }
    }

    #[test]
    fn comments_blanks_and_hex_are_accepted() {
        let text = "\n# header\n\nscenario t\nseed 0xD15C0\ndeploy uniform n=10 side=2\n";
        let spec = ScenarioSpec::parse(text).unwrap();
        assert_eq!(spec.seed, 0xD15C0);
        assert_eq!(spec.name, "t");
        assert_eq!(spec.requested_nodes(), 10);
    }

    #[test]
    fn errors_name_the_line_and_problem() {
        let e = ScenarioSpec::parse("deploy uniform n=10 side=2\nfrobnicate 3\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("frobnicate"), "{e}");
        let e = ScenarioSpec::parse("deploy uniform n=ten side=2\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("unsigned integer"), "{e}");
        let e = ScenarioSpec::parse("seed 1\n").unwrap_err();
        assert!(e.msg.contains("no deploy layer"), "{e}");
        let e = ScenarioSpec::parse("deploy degree n=9 delta=3\ndeploy uniform n=1 side=1\n")
            .unwrap_err();
        assert!(e.msg.contains("cannot be layered"), "{e}");
        let e = ScenarioSpec::parse("deploy uniform n=10 side=2 bogus=1\n").unwrap_err();
        assert!(e.msg.contains("unknown key 'bogus'"), "{e}");
        // Present-but-malformed workload values are errors, not silent
        // defaults (absent keys still default).
        let e = ScenarioSpec::parse("deploy uniform n=9 side=2\nworkload global source=5O\n")
            .unwrap_err();
        assert!(e.msg.contains("unsigned integer"), "{e}");
        let w = ScenarioSpec::parse("deploy uniform n=9 side=2\nworkload global\n")
            .unwrap()
            .workload;
        assert_eq!(
            w,
            Some(Workload::GlobalBroadcast {
                source: 0,
                token: 1
            })
        );
    }

    #[test]
    fn malformed_lines_report_the_line_number_and_offending_token() {
        // A truncated dynamics block (missing a required key) names the
        // key and the line it was expected on.
        let e = ScenarioSpec::parse("deploy uniform n=10 side=2\ndynamics waypoint speed=0.25\n")
            .unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("missing key 'frac'"), "{e}");
        assert!(e.to_string().starts_with("line 2:"), "{e}");

        // A malformed float names the key and the rejected value.
        let e = ScenarioSpec::parse("deploy uniform n=10 side=2.O\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.msg.contains("side"), "{e}");
        assert!(e.msg.contains("2.O"), "{e}");

        // A bare key=value token with no '=' is rejected where it sits.
        let e =
            ScenarioSpec::parse("deploy uniform n=10 side=2\ndynamics churn rate\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("key=value"), "{e}");

        // A resolver typo lists every valid backend, including the
        // parallel one.
        let e = ScenarioSpec::parse("deploy uniform n=10 side=2\nresolver paralel\n").unwrap_err();
        assert_eq!(e.line, 2);
        for backend in ["naive", "grid", "aggregated", "parallel"] {
            assert!(e.msg.contains(backend), "error must list '{backend}': {e}");
        }

        // Unknown dynamics and workload names are line-numbered too.
        let e = ScenarioSpec::parse("deploy uniform n=10 side=2\ndynamics teleport frac=0.5\n")
            .unwrap_err();
        assert_eq!(e.line, 2);
        let e = ScenarioSpec::parse("deploy uniform n=10 side=2\nworkload frisbee\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn empty_wakeup_sources_round_trip() {
        // Representable ⇒ canonically encodable ⇒ re-parseable, even for
        // the degenerate empty list (execution rejects it, not the format).
        let spec = ScenarioSpec::uniform("w", 1, 20, 2.0).workload(Workload::Wakeup {
            sources: Vec::new(),
        });
        assert_eq!(ScenarioSpec::parse(&spec.to_text()).unwrap(), spec);
    }
}
