//! # dcluster-scenario — declarative workload specs and the unified runner
//!
//! The paper's protocols are one deterministic pipeline, but the
//! experiment drivers used to hand-wire deploy → `Network` → `Engine` →
//! protocol → metrics separately in every binary. This crate is the
//! replacement, mirroring the standard methodology of MANET clustering
//! evaluations (compare schemes across mobility/density/period grids):
//!
//! * [`ScenarioSpec`] — a typed, buildable description of a complete
//!   workload: deployment layers, dynamics models, resolver backend,
//!   protocol parameters, seed, epochs and scale tier, with a hand-rolled
//!   deterministic text format (`scenarios/*.scn`;
//!   [`ScenarioSpec::parse`] / [`ScenarioSpec::to_text`] round-trip);
//! * [`Runner`] — consumes a spec plus a [`Workload`] (clustering, stack +
//!   local broadcast, global broadcast, maintenance epochs, wake-up,
//!   leader election) and executes it through `Engine` /
//!   `MaintenanceDriver`;
//! * [`Report`] — the structured result (rounds, receptions, resolver
//!   stats, cluster metrics, per-epoch maintenance counters), with the
//!   markdown/CSV emitters ([`print_table`], [`write_csv`]) behind it.
//!
//! ## Quickstart
//!
//! ```
//! use dcluster_scenario::{Runner, ScenarioSpec, Workload};
//!
//! let spec = ScenarioSpec::parse(
//!     "scenario demo\nseed 7\ndeploy uniform n=40 side=3.0\nworkload clustering\n",
//! )
//! .expect("valid spec");
//! let report = Runner::new(spec).run_default().expect("spec deploys fine");
//! assert!(report.ok(), "every node ends up in a cluster");
//! assert_eq!(report.workload, "clustering");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod emit;
pub mod report;
pub mod runner;
pub mod spec;

pub use dcluster_obs::{PhaseSummary, SharedTracer, TraceMeta, Tracer, TRACE_SCHEMA};
pub use emit::{format_table, print_table, results_dir, write_csv};
pub use report::{epoch_row, phase_row, Report, WorkloadOutcome, EPOCH_HEADERS, PHASE_HEADERS};
pub use runner::{bounding_box, connected_deployment, Runner};
pub use spec::{DeployLayer, DeploySpec, DynamicsSpec, ScenarioSpec, SpecError, Workload};

/// Experiment size tier, from the spec's `scale` line or the
/// `DCLUSTER_SCALE` env var.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scale {
    /// CI smoke tier (`ci`): small enough for a gate job.
    Ci,
    /// Default interactive tier (`quick`).
    Quick,
    /// Paper-scale tier (`full`): roughly doubles network sizes and sweep
    /// points; `scale_resolvers` sweeps to 10⁵ nodes.
    Full,
}

impl Scale {
    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Ci => "ci",
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Scale {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "ci" => Ok(Scale::Ci),
            "quick" => Ok(Scale::Quick),
            "full" => Ok(Scale::Full),
            other => Err(format!("unknown scale '{other}' (expected ci|quick|full)")),
        }
    }
}

/// Scale knob for experiment sizes: `DCLUSTER_SCALE=ci|quick|full`
/// (default quick; unknown values fall back to quick).
pub fn scale() -> Scale {
    // lint:allow(D4, reason = "documented override: DCLUSTER_SCALE")
    match std::env::var("DCLUSTER_SCALE").as_deref() {
        Ok("ci") => Scale::Ci,
        Ok("full") => Scale::Full,
        _ => Scale::Quick,
    }
}

/// True iff running at the paper-scale tier (legacy helper).
pub fn full_scale() -> bool {
    scale() == Scale::Full
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_tiers_are_ordered_ci_to_full() {
        assert!(Scale::Ci < Scale::Quick);
        assert!(Scale::Quick < Scale::Full);
    }

    #[test]
    fn scale_parses_and_prints() {
        for s in [Scale::Ci, Scale::Quick, Scale::Full] {
            assert_eq!(s.name().parse::<Scale>().unwrap(), s);
            assert_eq!(format!("{s}"), s.name());
        }
        assert!("huge".parse::<Scale>().is_err());
    }
}
