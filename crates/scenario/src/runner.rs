//! The unified runner: one execution path from a [`ScenarioSpec`] to a
//! [`Report`], shared by every experiment binary and example.
//!
//! What used to be hand-wired per driver — deploy → `Network` → `Engine`
//! → protocol → metrics, with per-binary `--resolver` plumbing and ad-hoc
//! deploy code — is one deterministic pipeline here:
//!
//! 1. [`Runner::build_network`] realizes the deployment layers over a
//!    single RNG seeded from the spec, applies the heterogeneous-power
//!    profile and ID-space settings;
//! 2. [`Runner::resolver_for`] picks the backend with one precedence
//!    everywhere: explicit override (CLI flag) → spec `resolver` line →
//!    `DCLUSTER_RESOLVER` env → the network's scale-aware default;
//! 3. [`Runner::run`] executes a [`Workload`] through `Engine` /
//!    `MaintenanceDriver` and returns the structured [`Report`].
//!
//! Everything is deterministic: the same spec produces byte-identical
//! reports on every run and every machine (the `scenario_smoke` CI job
//! gates on exactly that).

use crate::report::{Report, WorkloadOutcome};
use crate::spec::{DeployLayer, DynamicsSpec, ScenarioSpec, SpecError, Workload};
use crate::{scale, Scale};
use dcluster_core::check::{check_clustering, ClusteringReport};
use dcluster_core::clustering::clustering;
use dcluster_core::global_broadcast::global_broadcast;
use dcluster_core::leader::leader_election;
use dcluster_core::local_broadcast::local_broadcast;
use dcluster_core::maintenance::MaintenanceDriver;
use dcluster_core::wakeup::wakeup;
use dcluster_core::SeedSeq;
use dcluster_dynamics::{Churn, DynamicsModel, GroupDrift, RandomWalk, RandomWaypoint, World};
use dcluster_obs::{shared, JsonlSink, SharedTracer, TraceMeta};
use dcluster_sim::rng::Rng64;
use dcluster_sim::{deploy, Engine, Network, NetworkError, Point, ResolverKind, SinrParams};
use std::path::PathBuf;

/// Builds a connected uniform deployment targeting max degree ≈ `delta`
/// with `n` nodes, retrying seeds until the communication graph is
/// connected (falling back to a spined corridor, which always is). The
/// deterministic deployment behind [`DeployLayer::Degree`].
///
/// # Errors
///
/// Returns [`NetworkError::Empty`] when `n == 0` — callers get a proper
/// error to attach context to instead of a panic deep inside the builder.
pub fn connected_deployment(n: usize, delta: usize, seed: u64) -> Result<Network, NetworkError> {
    let comm_r = SinrParams::default().comm_radius();
    for attempt in 0..50 {
        let mut rng = Rng64::new(seed + attempt * 1000);
        let pts = deploy::uniform_with_target_degree(n, delta, comm_r, &mut rng);
        let net = Network::builder(pts).build()?;
        if net.comm_graph().is_connected() {
            return Ok(net);
        }
    }
    // Fall back to a spined corridor (always connected).
    let mut rng = Rng64::new(seed);
    let pts = deploy::corridor_with_spine(
        n,
        (n as f64 / delta.max(1) as f64).max(3.0),
        1.5,
        0.5,
        &mut rng,
    );
    Network::builder(pts).build()
}

/// The resolver-selection precedence used everywhere, as a pure function
/// (testable without touching process environment): explicit override
/// (CLI `--resolver`) → the spec's `resolver` line → the
/// `DCLUSTER_RESOLVER` environment value → the scale-aware default.
///
/// # Errors
///
/// When the decision falls through to `env_value` and it does not parse,
/// returns the parse error (which names every valid backend) — a typo in
/// the environment must never silently fall back to the default.
pub fn resolver_precedence(
    override_kind: Option<ResolverKind>,
    spec_kind: Option<ResolverKind>,
    env_value: Option<&str>,
    default: ResolverKind,
) -> Result<ResolverKind, String> {
    if let Some(kind) = override_kind.or(spec_kind) {
        return Ok(kind);
    }
    match env_value {
        Some(v) => v.parse().map_err(|e| format!("DCLUSTER_RESOLVER: {e}")),
        None => Ok(default),
    }
}

/// The axis-aligned bounding box `[0, w]×[0, h]` the dynamics models
/// operate in (at least the unit square).
pub fn bounding_box(net: &Network) -> (f64, f64) {
    let mut w = 0.0f64;
    let mut h = 0.0f64;
    for p in net.points() {
        w = w.max(p.x);
        h = h.max(p.y);
    }
    (w.max(1.0), h.max(1.0))
}

/// Executes [`Workload`]s described by a [`ScenarioSpec`] (see the module
/// docs for the pipeline).
#[derive(Debug, Clone)]
pub struct Runner {
    spec: ScenarioSpec,
    override_resolver: Option<ResolverKind>,
    trace: Option<PathBuf>,
}

impl Runner {
    /// Wraps a spec.
    pub fn new(spec: ScenarioSpec) -> Self {
        Self {
            spec,
            override_resolver: None,
            trace: None,
        }
    }

    /// Loads a `.scn` file.
    pub fn from_file(path: impl AsRef<std::path::Path>) -> Result<Self, SpecError> {
        Ok(Self::new(ScenarioSpec::load(path)?))
    }

    /// Pins the resolver backend ahead of everything else (the CLI
    /// `--resolver` flag of the bench binaries); `None` is a no-op.
    pub fn with_resolver_override(mut self, kind: Option<ResolverKind>) -> Self {
        self.override_resolver = kind.or(self.override_resolver);
        self
    }

    /// Streams a versioned JSONL trace of the run to `path` (the bench
    /// binaries' `--trace` flag / `DCLUSTER_TRACE`); `None` is a no-op.
    /// An unwritable path fails the run with a [`SpecError`] naming it —
    /// same policy as `DCLUSTER_RESULTS_DIR`, never a panic. Tracing does
    /// not change the report: the per-phase aggregation is always on.
    pub fn with_trace(mut self, path: Option<PathBuf>) -> Self {
        self.trace = path.or(self.trace);
        self
    }

    /// The spec being executed.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The scale tier in force: the spec's pinned tier, else
    /// `DCLUSTER_SCALE`.
    pub fn scale(&self) -> Scale {
        self.spec.scale.unwrap_or_else(scale)
    }

    /// Realizes the deployment: layers over one shared RNG, then the
    /// heterogeneous-power profile (`dynamics het_power`) and ID-space
    /// settings. Deterministic in the spec.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the offending spec section when the
    /// deployment layers realize to zero points (e.g. every layer has
    /// `n=0`) or the ID settings are inconsistent with the node count.
    pub fn build_network(&self) -> Result<Network, SpecError> {
        let layers = &self.spec.deploy.layers;
        if layers.is_empty() {
            return Err(SpecError {
                line: 0,
                msg: "deploy section: spec has no deploy layer".into(),
            });
        }
        let base = if let [DeployLayer::Degree { n, delta }] = layers[..] {
            let net = connected_deployment(n, delta, self.spec.seed).map_err(|e| SpecError {
                line: 0,
                msg: format!("deploy degree section (n={n} delta={delta}): {e}"),
            })?;
            self.with_id_settings(net.points().to_vec())?
        } else {
            let mut rng = Rng64::new(self.spec.seed);
            let mut pts: Vec<Point> = Vec::new();
            for layer in layers {
                match *layer {
                    DeployLayer::Uniform { n, side } => {
                        pts.extend(deploy::uniform_square(n, side, &mut rng))
                    }
                    DeployLayer::Degree { .. } => {
                        unreachable!("parse/validate rejects layered degree deployments")
                    }
                    DeployLayer::Clumped {
                        centers,
                        per,
                        sigma,
                        side,
                    } => pts.extend(deploy::gaussian_clusters(
                        centers, per, sigma, side, &mut rng,
                    )),
                    DeployLayer::Grid {
                        rows,
                        cols,
                        spacing,
                        jitter,
                    } => pts.extend(deploy::perturbed_grid(
                        rows, cols, spacing, jitter, &mut rng,
                    )),
                    DeployLayer::Corridor {
                        n,
                        length,
                        width,
                        spine,
                    } => pts.extend(deploy::corridor_with_spine(
                        n, length, width, spine, &mut rng,
                    )),
                    DeployLayer::Line { n, spacing } => pts.extend(deploy::line(n, spacing)),
                    DeployLayer::Ring { n, radius } => pts.extend(deploy::ring(n, radius)),
                }
            }
            self.with_id_settings(pts)?
        };
        // Heterogeneous power applies after deployment, exactly like the
        // historical drivers (sub-seed `seed ^ 3`).
        Ok(self.spec.dynamics.iter().fold(base, |net, d| match *d {
            DynamicsSpec::HetPower { spread } => {
                dcluster_dynamics::with_power_profile(&net, spread, self.spec.seed ^ 3)
            }
            _ => net,
        }))
    }

    fn with_id_settings(&self, pts: Vec<Point>) -> Result<Network, SpecError> {
        let n = pts.len();
        let mut b = Network::builder(pts);
        if let Some(m) = self.spec.max_id {
            b = b.max_id(m);
        }
        if let Some(s) = self.spec.id_seed {
            b = b.seed(s);
        }
        b.build().map_err(|e| SpecError {
            line: 0,
            msg: format!("deploy section realized {n} nodes: {e}"),
        })
    }

    /// The backend every engine of this run uses (see
    /// [`resolver_precedence`]). A spec that pins its backend beats
    /// ambient machine state, so committed `.scn` files run
    /// environment-independently.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] when the decision falls through to a
    /// `DCLUSTER_RESOLVER` value that names no backend.
    pub fn resolver_for(&self, net: &Network) -> Result<ResolverKind, SpecError> {
        let env = std::env::var("DCLUSTER_RESOLVER").ok();
        resolver_precedence(
            self.override_resolver,
            self.spec.resolver,
            env.as_deref(),
            net.default_resolver(),
        )
        .map_err(|msg| SpecError { line: 0, msg })
    }

    /// An engine over `net` with [`Runner::resolver_for`]'s backend — the
    /// one way every driver now obtains its engine.
    ///
    /// # Errors
    ///
    /// Propagates [`Runner::resolver_for`]'s environment parse error.
    pub fn engine<'n>(&self, net: &'n Network) -> Result<Engine<'n>, SpecError> {
        Ok(Engine::with_resolver_kind(net, self.resolver_for(net)?))
    }

    /// Instantiates the spec's mobility/churn models over `net`'s bounding
    /// box ([`DynamicsSpec::HetPower`] is deploy-time and is skipped).
    /// Sub-seeds: mobility `seed ^ 1`, churn `seed ^ 2`.
    pub fn models(&self, net: &Network) -> Vec<Box<dyn DynamicsModel>> {
        let bounds = bounding_box(net);
        let n = net.len();
        let seed = self.spec.seed;
        let mut models: Vec<Box<dyn DynamicsModel>> = Vec::new();
        for d in &self.spec.dynamics {
            match *d {
                DynamicsSpec::Waypoint { speed, frac } => models.push(Box::new(
                    RandomWaypoint::new(n, bounds, speed, frac, seed ^ 1),
                )),
                DynamicsSpec::Walk { step, frac } => {
                    models.push(Box::new(RandomWalk::new(n, bounds, step, frac, seed ^ 1)))
                }
                DynamicsSpec::Group {
                    speed,
                    frac,
                    groups,
                } => models.push(Box::new(GroupDrift::new(
                    n,
                    bounds,
                    speed,
                    frac,
                    groups,
                    seed ^ 1,
                ))),
                DynamicsSpec::Churn { sleep, wake } => {
                    models.push(Box::new(Churn::new(seed ^ 2, sleep, wake)))
                }
                DynamicsSpec::HetPower { .. } => {}
            }
        }
        models
    }

    /// The maintenance epoch count in force: the spec's `epochs` line, or
    /// the scale tier's standard count when it says `0` ("tier-sized").
    pub fn epochs(&self) -> u64 {
        if self.spec.epochs > 0 {
            return self.spec.epochs;
        }
        match self.scale() {
            Scale::Ci => 3,
            Scale::Quick => 5,
            Scale::Full => 8,
        }
    }

    /// Runs the spec's own workload (`workload` line), defaulting to
    /// [`Workload::Clustering`].
    ///
    /// # Errors
    ///
    /// Propagates [`Runner::run`]'s spec errors.
    pub fn run_default(&self) -> Result<Report, SpecError> {
        let w = self.spec.workload.clone().unwrap_or(Workload::Clustering);
        self.run(&w)
    }

    /// Executes `workload` against a freshly built world and returns the
    /// structured report.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the offending spec section when the
    /// deployment realizes to zero nodes, the resolver environment value
    /// is invalid, or a workload parameter is out of range for the
    /// realized deployment.
    pub fn run(&self, workload: &Workload) -> Result<Report, SpecError> {
        self.run_on(self.build_network()?, workload)
    }

    /// [`Runner::run`] over a caller-supplied network — for drivers that
    /// already built (and inspected) the deployment, so it is not paid
    /// for twice. `net` must come from [`Runner::build_network`] on the
    /// same spec for the report to be attributable to it.
    ///
    /// # Errors
    ///
    /// As [`Runner::run`], minus the deployment errors.
    pub fn run_on(&self, net: Network, workload: &Workload) -> Result<Report, SpecError> {
        let kind = self.resolver_for(&net)?;
        let params = self.spec.params;
        let mut seeds = SeedSeq::new(params.seed);
        // The trace sink fails eagerly (header write at create) so a bad
        // path surfaces here, naming it, before any work is done.
        let sink = match &self.trace {
            Some(path) => {
                let meta = TraceMeta {
                    scenario: self.spec.name.clone(),
                    workload: workload.name().to_string(),
                    n: net.len(),
                    resolver: kind.to_string(),
                    seed: self.spec.seed,
                };
                Some(shared(JsonlSink::create(path, &meta).map_err(|e| {
                    SpecError {
                        line: 0,
                        msg: format!("cannot write trace {}: {e}", path.display()),
                    }
                })?))
            }
            None => None,
        };
        let tracer: Option<SharedTracer> = sink.as_ref().map(|s| s.clone() as SharedTracer);
        let make_engine = || {
            let mut engine = Engine::with_resolver_kind(&net, kind);
            if let Some(t) = &tracer {
                engine.set_tracer(t.clone());
            }
            engine
        };
        let mut header = Report {
            scenario: self.spec.name.clone(),
            workload: workload.name(),
            n: net.len(),
            density: net.density(),
            max_degree: net.max_degree(),
            resolver: kind,
            rounds: 0,
            transmissions: 0,
            receptions: 0,
            resolver_stats: Default::default(),
            phases: Vec::new(),
            outcome: WorkloadOutcome::Empty,
        };
        match workload {
            Workload::Clustering => {
                let mut engine = make_engine();
                let all: Vec<usize> = (0..net.len()).collect();
                let cl = clustering(&mut engine, &params, &mut seeds, &all, net.density());
                let report = check_clustering(&net, &cl.cluster_of);
                header.fill_engine(&engine);
                header.outcome = WorkloadOutcome::Clustering {
                    centers: cl.centers.len(),
                    levels: cl.levels,
                    cluster_of: cl.cluster_of,
                    report,
                };
            }
            Workload::LocalBroadcast => {
                let mut engine = make_engine();
                let out = local_broadcast(&mut engine, &params, &mut seeds, net.density());
                header.fill_engine(&engine);
                header.outcome = WorkloadOutcome::LocalBroadcast {
                    complete: out.complete,
                    sweeps: out.sweeps,
                    sweep_rounds: out.sweep_rounds,
                    max_label: out.labeling.max_label(),
                    clusters: out.clustering.centers.len(),
                };
            }
            Workload::GlobalBroadcast { source, token } => {
                if *source >= net.len() {
                    return Err(SpecError {
                        line: 0,
                        msg: format!(
                            "workload global_broadcast: source {source} out of range \
                             (deployment has {} nodes)",
                            net.len()
                        ),
                    });
                }
                let mut engine = make_engine();
                let out = global_broadcast(
                    &mut engine,
                    &params,
                    &mut seeds,
                    *source,
                    net.density(),
                    *token,
                );
                let report = check_clustering(&net, &out.cluster_of);
                header.fill_engine(&engine);
                header.outcome = WorkloadOutcome::GlobalBroadcast {
                    delivered_all: out.delivered_all,
                    local_broadcast_ok: out.local_broadcast_ok,
                    phases: out.phases,
                    cluster_of: out.cluster_of,
                    report,
                };
            }
            Workload::Maintenance => {
                let mut world = World::new(net);
                let mut models = self.models(world.network());
                let mut driver = MaintenanceDriver::new(params);
                if let Some(t) = &tracer {
                    driver.set_tracer(t.clone());
                }
                let mut reports = Vec::new();
                for _ in 0..self.epochs() {
                    world.step(&mut models);
                    world
                        .audit_incremental()
                        .expect("incremental world maintenance must equal a rebuild"); // lint:allow(P1, reason = "audit failure is a bug, not bad input")
                    let awake = world.awake_nodes();
                    reports.push(driver.epoch(world.network(), kind, &mut seeds, &awake));
                }
                let es = driver.engine_stats();
                header.rounds = reports.iter().map(|r| r.rounds).sum();
                header.transmissions = es.transmissions;
                header.receptions = es.receptions;
                header.resolver_stats = driver.resolver_stats();
                header.phases = driver.phase_table().summaries().to_vec();
                header.outcome = WorkloadOutcome::Maintenance {
                    epochs: reports,
                    summary: driver.summary(),
                };
            }
            Workload::Wakeup { sources } => {
                for &s in sources {
                    if s >= net.len() {
                        return Err(SpecError {
                            line: 0,
                            msg: format!(
                                "workload wakeup: source {s} out of range \
                                 (deployment has {} nodes)",
                                net.len()
                            ),
                        });
                    }
                }
                let mut engine = make_engine();
                let out = wakeup(&mut engine, &params, &mut seeds, sources, net.density());
                header.fill_engine(&engine);
                header.outcome = WorkloadOutcome::Wakeup {
                    all_awake: out.all_awake,
                    centers: out.centers,
                };
            }
            Workload::LeaderElection => {
                let mut engine = make_engine();
                let out = leader_election(&mut engine, &params, &mut seeds, net.density());
                header.fill_engine(&engine);
                header.outcome = WorkloadOutcome::Leader {
                    leader_id: out.leader_id,
                    probes: out.probes,
                };
            }
        }
        if let (Some(sink), Some(path)) = (&sink, &self.trace) {
            sink.borrow_mut().finish().map_err(|e| SpecError {
                line: 0,
                msg: format!("cannot write trace {}: {e}", path.display()),
            })?;
        }
        Ok(header)
    }
}

/// Convenience for sub-protocol probes (the fig2/fig3/fig4 style
/// binaries): the clustering-quality report of an explicit assignment.
pub fn quality(net: &Network, cluster_of: &[Option<u64>]) -> ClusteringReport {
    check_clustering(net, cluster_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DynamicsSpec;

    #[test]
    fn connected_deployment_is_connected() {
        let net = connected_deployment(60, 8, 3).unwrap();
        assert!(net.comm_graph().is_connected());
        assert_eq!(net.len(), 60);
    }

    #[test]
    fn connected_deployment_rejects_zero_nodes_without_panicking() {
        assert_eq!(
            connected_deployment(0, 8, 3).unwrap_err(),
            dcluster_sim::NetworkError::Empty
        );
    }

    #[test]
    fn empty_deployment_yields_a_spec_error_naming_the_deploy_section() {
        // A syntactically valid spec whose layers realize to zero points
        // must produce a proper error, not a panic (regression: this used
        // to die on an `expect("nonempty")` deep inside the runner).
        let spec = ScenarioSpec::uniform("hollow", 1, 0, 2.0);
        let err = Runner::new(spec.clone()).build_network().unwrap_err();
        assert!(
            err.msg.contains("deploy"),
            "error must name the offending section, got: {err}"
        );
        let err = Runner::new(spec).run_default().unwrap_err();
        assert!(err.msg.contains("deploy"), "run_default propagates: {err}");

        let degree = ScenarioSpec::degree("hollow-degree", 1, 0, 8);
        let err = Runner::new(degree).build_network().unwrap_err();
        assert!(
            err.msg.contains("deploy degree"),
            "degree deployments name their section too, got: {err}"
        );
    }

    #[test]
    fn workload_sources_out_of_range_error_instead_of_panicking() {
        let spec = ScenarioSpec::uniform("oob", 5, 10, 2.0);
        let err = Runner::new(spec.clone())
            .run(&Workload::GlobalBroadcast {
                source: 10,
                token: 1,
            })
            .unwrap_err();
        assert!(err.msg.contains("global_broadcast"), "got: {err}");
        let err = Runner::new(spec)
            .run(&Workload::Wakeup { sources: vec![99] })
            .unwrap_err();
        assert!(err.msg.contains("wakeup"), "got: {err}");
    }

    #[test]
    fn resolver_precedence_is_pure_and_total() {
        use ResolverKind::*;
        // Override beats spec beats env beats default.
        assert_eq!(
            resolver_precedence(Some(Grid), Some(Naive), Some("parallel"), Aggregated),
            Ok(Grid)
        );
        assert_eq!(
            resolver_precedence(None, Some(Naive), Some("parallel"), Aggregated),
            Ok(Naive)
        );
        assert_eq!(
            resolver_precedence(None, None, Some("parallel"), Aggregated),
            Ok(Parallel)
        );
        assert_eq!(
            resolver_precedence(None, None, None, Aggregated),
            Ok(Aggregated)
        );
        // An invalid env value errors (naming every backend) only when the
        // decision actually falls through to it.
        let err = resolver_precedence(None, None, Some("fft"), Aggregated).unwrap_err();
        for name in ["naive", "grid", "aggregated", "parallel"] {
            assert!(err.contains(name), "error must list '{name}': {err}");
        }
        assert_eq!(
            resolver_precedence(None, Some(Naive), Some("fft"), Aggregated),
            Ok(Naive),
            "a spec-pinned backend shields a stale env var"
        );
    }

    #[test]
    fn layered_deployments_share_one_rng() {
        // Two layers must equal the historical "one rng threaded through
        // both generators" composition byte for byte.
        let spec = ScenarioSpec::new("fig1", 11)
            .layer(DeployLayer::Clumped {
                centers: 1,
                per: 10,
                sigma: 0.15,
                side: 0.1,
            })
            .layer(DeployLayer::Corridor {
                n: 30,
                length: 5.0,
                width: 1.0,
                spine: 0.45,
            });
        let got = Runner::new(spec).build_network().unwrap();
        let mut rng = Rng64::new(11);
        let mut pts = deploy::gaussian_clusters(1, 10, 0.15, 0.1, &mut rng);
        pts.extend(deploy::corridor_with_spine(30, 5.0, 1.0, 0.45, &mut rng));
        let want = Network::builder(pts).build().unwrap();
        assert_eq!(got.points(), want.points());
        assert_eq!(got.ids(), want.ids());
    }

    #[test]
    fn het_power_matches_the_historical_profile() {
        let spec = ScenarioSpec::degree("dyn", 0xD15C0, 40, 8)
            .dynamics(DynamicsSpec::HetPower { spread: 0.3 });
        let got = Runner::new(spec).build_network().unwrap();
        let base = connected_deployment(40, 8, 0xD15C0).unwrap();
        let want = dcluster_dynamics::with_power_profile(&base, 0.3, 0xD15C0 ^ 3);
        assert_eq!(got.powers(), want.powers());
        assert_eq!(got.points(), want.points());
    }

    #[test]
    fn resolver_precedence_override_beats_spec() {
        let spec = ScenarioSpec::uniform("r", 5, 30, 2.0).resolver(ResolverKind::Naive);
        let net = Runner::new(spec.clone()).build_network().unwrap();
        assert_eq!(
            Runner::new(spec.clone()).resolver_for(&net).unwrap(),
            ResolverKind::Naive,
            "spec line wins over the scale-aware default"
        );
        assert_eq!(
            Runner::new(spec)
                .with_resolver_override(Some(ResolverKind::Grid))
                .resolver_for(&net)
                .unwrap(),
            ResolverKind::Grid,
            "explicit override wins over the spec"
        );
    }

    #[test]
    fn clustering_workload_covers_everyone() {
        let report = Runner::new(ScenarioSpec::uniform("q", 2024, 40, 3.0))
            .run(&Workload::Clustering)
            .unwrap();
        assert_eq!(report.n, 40);
        assert!(report.rounds > 0);
        let WorkloadOutcome::Clustering { report: q, .. } = &report.outcome else {
            panic!("wrong outcome kind");
        };
        assert_eq!(q.unassigned, 0);
    }

    #[test]
    fn maintenance_workload_reports_every_epoch() {
        let spec = ScenarioSpec::degree("m", 0xD15C0, 50, 8)
            .dynamics(DynamicsSpec::Waypoint {
                speed: 0.25,
                frac: 0.2,
            })
            .dynamics(DynamicsSpec::Churn {
                sleep: 0.08,
                wake: 0.35,
            })
            .epochs(2)
            .resolver(ResolverKind::Aggregated);
        let report = Runner::new(spec).run(&Workload::Maintenance).unwrap();
        let WorkloadOutcome::Maintenance { epochs, summary } = &report.outcome else {
            panic!("wrong outcome kind");
        };
        assert_eq!(epochs.len(), 2);
        assert_eq!(summary.epochs, 2);
        assert_eq!(report.rounds, epochs.iter().map(|e| e.rounds).sum::<u64>());
    }

    #[test]
    fn tracing_changes_nothing_and_reruns_are_byte_identical() {
        let spec = ScenarioSpec::uniform("traced", 7, 30, 2.5);
        let untraced = Runner::new(spec.clone())
            .run(&Workload::Clustering)
            .unwrap();
        let path = std::env::temp_dir().join("dcluster_runner_trace_test.jsonl");
        let traced = Runner::new(spec.clone())
            .with_trace(Some(path.clone()))
            .run(&Workload::Clustering)
            .unwrap();
        assert_eq!(untraced, traced, "a tracer must be observationally inert");
        assert_eq!(untraced.to_markdown(), traced.to_markdown());
        assert!(
            !untraced.phases.is_empty(),
            "phase aggregation is always on"
        );
        let first = std::fs::read(&path).unwrap();
        assert!(!first.is_empty());
        let _ = Runner::new(spec)
            .with_trace(Some(path.clone()))
            .run(&Workload::Clustering)
            .unwrap();
        let second = std::fs::read(&path).unwrap();
        assert_eq!(first, second, "trace reruns must be byte-identical");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unwritable_trace_path_errors_naming_it() {
        let err = Runner::new(ScenarioSpec::uniform("badtrace", 7, 20, 2.0))
            .with_trace(Some("/definitely/not/writable/t.jsonl".into()))
            .run(&Workload::Clustering)
            .unwrap_err();
        assert!(err.msg.contains("cannot write trace"), "got: {err}");
        assert!(
            err.msg.contains("/definitely/not/writable/t.jsonl"),
            "error must name the path, got: {err}"
        );
    }

    #[test]
    fn reports_are_deterministic_across_runs() {
        let spec = ScenarioSpec::uniform("det", 7, 35, 2.5).workload(Workload::LocalBroadcast);
        let a = Runner::new(spec.clone()).run_default().unwrap();
        let b = Runner::new(spec).run_default().unwrap();
        assert_eq!(a, b, "same spec, same report, byte for byte");
    }

    #[test]
    fn run_on_a_prebuilt_network_equals_run() {
        let spec = ScenarioSpec::uniform("prebuilt", 12, 30, 2.5);
        let runner = Runner::new(spec);
        let net = runner.build_network().unwrap();
        assert_eq!(
            runner.run_on(net, &Workload::Clustering).unwrap(),
            runner.run(&Workload::Clustering).unwrap(),
            "caller-supplied deployment must be indistinguishable"
        );
    }

    #[test]
    fn epochs_zero_means_tier_sized() {
        let base = ScenarioSpec::uniform("tier", 3, 20, 2.0).epochs(0);
        for (tier, want) in [(Scale::Ci, 3), (Scale::Quick, 5), (Scale::Full, 8)] {
            assert_eq!(Runner::new(base.clone().scale(tier)).epochs(), want);
        }
        assert_eq!(
            Runner::new(base.epochs(7)).epochs(),
            7,
            "explicit epoch counts pass through untouched"
        );
    }
}
