//! Structured run results: what a [`crate::Runner`] hands back.
//!
//! A [`Report`] carries the workload-independent execution header (rounds,
//! transmissions, receptions, resolver work counters) plus a typed
//! [`WorkloadOutcome`]. Reports are plain data with full `PartialEq`: the
//! determinism gates compare whole reports, and
//! [`Report::to_markdown`] / [`Report::write_csv`] render them through the
//! shared emitters.

use crate::emit::{format_table, write_csv};
use dcluster_core::check::ClusteringReport;
use dcluster_core::global_broadcast::PhaseRecord;
use dcluster_core::maintenance::{EpochReport, MaintenanceSummary};
use dcluster_obs::PhaseSummary;
use dcluster_sim::{Engine, ResolverKind, ResolverStats};

/// Workload-specific results (the variant matches the executed
/// [`crate::Workload`]).
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadOutcome {
    /// Placeholder before execution fills the report.
    Empty,
    /// Theorem 1 clustering.
    Clustering {
        /// Cluster centers elected.
        centers: usize,
        /// Phase-A sparsification levels executed.
        levels: usize,
        /// Cluster of each node (`None` = unassigned).
        cluster_of: Vec<Option<u64>>,
        /// Quality report (§1.3 conditions).
        report: ClusteringReport,
    },
    /// Stack + local broadcast (Algorithm 7).
    LocalBroadcast {
        /// Every node heard by all comm-graph neighbors?
        complete: bool,
        /// Label sweeps executed.
        sweeps: usize,
        /// Steady-state rounds (label sweeps only).
        sweep_rounds: u64,
        /// Largest label used.
        max_label: u32,
        /// Clusters formed during setup.
        clusters: usize,
    },
    /// Global broadcast (Algorithm 8).
    GlobalBroadcast {
        /// Every node awake at the end?
        delivered_all: bool,
        /// Every relay also served its own neighbors?
        local_broadcast_ok: bool,
        /// Phase-by-phase progress.
        phases: Vec<PhaseRecord>,
        /// Final cluster of each node.
        cluster_of: Vec<Option<u64>>,
        /// Quality report over the final clustering.
        report: ClusteringReport,
    },
    /// Per-epoch cluster maintenance under dynamics.
    Maintenance {
        /// One report per epoch.
        epochs: Vec<EpochReport>,
        /// Aggregates (lifetimes, re-elections, violations).
        summary: MaintenanceSummary,
    },
    /// Theorem 4 wake-up.
    Wakeup {
        /// Everyone awake at window end?
        all_awake: bool,
        /// Clustering centers driving the window.
        centers: usize,
    },
    /// Theorem 5 leader election.
    Leader {
        /// Elected leader's ID.
        leader_id: u64,
        /// Binary-search probes used.
        probes: usize,
    },
}

/// A structured scenario-run result (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Scenario name (from the spec).
    pub scenario: String,
    /// Executed workload's stable name.
    pub workload: &'static str,
    /// Nodes deployed.
    pub n: usize,
    /// Network density Γ.
    pub density: usize,
    /// Max communication-graph degree Δ.
    pub max_degree: usize,
    /// Resolver backend every engine of the run used.
    pub resolver: ResolverKind,
    /// Simulated protocol rounds (maintenance: summed over epochs).
    pub rounds: u64,
    /// Total transmissions (≈ energy; 0 for maintenance, whose engines
    /// live inside the driver).
    pub transmissions: u64,
    /// Total successful receptions (0 for maintenance).
    pub receptions: u64,
    /// Resolver work counters (maintenance: accumulated over epochs).
    pub resolver_stats: ResolverStats,
    /// Per-phase cost summary (always populated — the engine aggregates
    /// phase spans whether or not a tracer is attached, so traced and
    /// untraced runs render byte-identical reports).
    pub phases: Vec<PhaseSummary>,
    /// Workload-specific results.
    pub outcome: WorkloadOutcome,
}

impl Report {
    /// Copies engine-held counters into the header (internal to the
    /// runner, public for custom drivers).
    pub fn fill_engine(&mut self, engine: &Engine<'_>) {
        let s = engine.stats();
        self.rounds = s.rounds;
        self.transmissions = s.transmissions;
        self.receptions = s.receptions;
        self.resolver_stats = engine.resolver_stats();
        self.phases = engine.phase_table().summaries().to_vec();
    }

    /// True iff the workload's own success criterion held (complete
    /// broadcast, full coverage, …). [`WorkloadOutcome::Empty`] is false.
    pub fn ok(&self) -> bool {
        match &self.outcome {
            WorkloadOutcome::Empty => false,
            WorkloadOutcome::Clustering { report, .. } => report.unassigned == 0,
            WorkloadOutcome::LocalBroadcast { complete, .. } => *complete,
            WorkloadOutcome::GlobalBroadcast {
                delivered_all,
                local_broadcast_ok,
                ..
            } => *delivered_all && *local_broadcast_ok,
            WorkloadOutcome::Maintenance { epochs, .. } => {
                epochs.iter().all(|e| e.report.unassigned == 0)
            }
            WorkloadOutcome::Wakeup { all_awake, .. } => *all_awake,
            WorkloadOutcome::Leader { .. } => true,
        }
    }

    /// Renders the whole report as markdown (header table plus a
    /// workload-specific section). Byte-deterministic in the report.
    pub fn to_markdown(&self) -> String {
        let mut out = format_table(
            &format!("scenario '{}' — workload {}", self.scenario, self.workload),
            &["n", "Γ", "Δ", "resolver", "rounds", "tx", "rx", "ok"],
            &[vec![
                self.n.to_string(),
                self.density.to_string(),
                self.max_degree.to_string(),
                self.resolver.to_string(),
                self.rounds.to_string(),
                self.transmissions.to_string(),
                self.receptions.to_string(),
                self.ok().to_string(),
            ]],
        );
        match &self.outcome {
            WorkloadOutcome::Empty => {}
            WorkloadOutcome::Clustering {
                centers,
                levels,
                report,
                ..
            } => {
                out.push_str(&format_table(
                    "clustering",
                    &[
                        "clusters",
                        "levels",
                        "max radius",
                        "clusters/unit ball",
                        "min center sep",
                        "unassigned",
                    ],
                    &[vec![
                        centers.to_string(),
                        levels.to_string(),
                        format!("{:.3}", report.max_radius),
                        report.max_clusters_per_unit_ball.to_string(),
                        format!("{:.3}", report.min_center_separation),
                        report.unassigned.to_string(),
                    ]],
                ));
            }
            WorkloadOutcome::LocalBroadcast {
                complete,
                sweeps,
                sweep_rounds,
                max_label,
                clusters,
            } => {
                out.push_str(&format_table(
                    "local broadcast",
                    &["complete", "clusters", "labels", "sweeps", "sweep rounds"],
                    &[vec![
                        complete.to_string(),
                        clusters.to_string(),
                        max_label.to_string(),
                        sweeps.to_string(),
                        sweep_rounds.to_string(),
                    ]],
                ));
            }
            WorkloadOutcome::GlobalBroadcast { phases, report, .. } => {
                let rows: Vec<Vec<String>> = phases
                    .iter()
                    .map(|p| {
                        vec![
                            p.phase.to_string(),
                            p.newly_awake.to_string(),
                            p.awake_total.to_string(),
                            p.rounds.to_string(),
                            p.stage1_rounds.to_string(),
                            p.stage2_rounds.to_string(),
                            p.stage3_rounds.to_string(),
                        ]
                    })
                    .collect();
                out.push_str(&format_table(
                    "global broadcast phases",
                    &[
                        "phase",
                        "newly awake",
                        "awake total",
                        "rounds",
                        "stage1",
                        "stage2",
                        "stage3",
                    ],
                    &rows,
                ));
                out.push_str(&format!(
                    "\nfinal clustering: {} clusters, max radius {:.3}, ≤{} per unit ball\n",
                    report.clusters, report.max_radius, report.max_clusters_per_unit_ball
                ));
            }
            WorkloadOutcome::Maintenance { epochs, summary } => {
                let rows: Vec<Vec<String>> = epochs.iter().map(epoch_row).collect();
                out.push_str(&format_table("maintenance epochs", &EPOCH_HEADERS, &rows));
                out.push_str(&format!(
                    "\nsummary: {} epochs, {} re-elections, {} violations, \
                     mean center lifetime {:.2}, max {}\n",
                    summary.epochs,
                    summary.total_re_elections,
                    summary.total_violations,
                    summary.mean_center_lifetime,
                    summary.max_center_lifetime
                ));
            }
            WorkloadOutcome::Wakeup { all_awake, centers } => {
                out.push_str(&format!(
                    "\nwake-up: all awake = {all_awake}, centers = {centers}\n"
                ));
            }
            WorkloadOutcome::Leader { leader_id, probes } => {
                out.push_str(&format!(
                    "\nleader: id {leader_id} elected with {probes} probes\n"
                ));
            }
        }
        if !self.phases.is_empty() {
            let rows: Vec<Vec<String>> = self.phases.iter().map(phase_row).collect();
            out.push_str(&format_table("phase summary", &PHASE_HEADERS, &rows));
        }
        let rs = &self.resolver_stats;
        out.push_str(&format_table(
            "resolver work",
            &[
                "rounds",
                "candidates",
                "short-circuited",
                "exact sums",
                "residual",
                "fallbacks",
            ],
            &[vec![
                rs.rounds.to_string(),
                rs.candidates.to_string(),
                rs.short_circuited.to_string(),
                rs.exact_sums.to_string(),
                rs.residual_decided.to_string(),
                rs.exact_fallbacks.to_string(),
            ]],
        ));
        out
    }

    /// Prints [`Report::to_markdown`] to stdout.
    pub fn print(&self) {
        print!("{}", self.to_markdown());
    }

    /// Writes the header row (plus per-epoch rows for maintenance) as CSV
    /// under `scenario_<name>.csv` via the shared emitter.
    pub fn write_csv(&self) {
        let headers = [
            "scenario",
            "workload",
            "n",
            "density",
            "max_degree",
            "resolver",
            "rounds",
            "tx",
            "rx",
            "ok",
            "rs_rounds",
            "rs_candidates",
            "rs_short_circuited",
            "rs_exact_sums",
            "rs_residual_decided",
            "rs_exact_fallbacks",
        ];
        let rs = &self.resolver_stats;
        let rows = vec![vec![
            self.scenario.clone(),
            self.workload.to_string(),
            self.n.to_string(),
            self.density.to_string(),
            self.max_degree.to_string(),
            self.resolver.to_string(),
            self.rounds.to_string(),
            self.transmissions.to_string(),
            self.receptions.to_string(),
            self.ok().to_string(),
            rs.rounds.to_string(),
            rs.candidates.to_string(),
            rs.short_circuited.to_string(),
            rs.exact_sums.to_string(),
            rs.residual_decided.to_string(),
            rs.exact_fallbacks.to_string(),
        ]];
        write_csv(&format!("scenario_{}", self.scenario), &headers, &rows);
        if !self.phases.is_empty() {
            let rows: Vec<Vec<String>> = self.phases.iter().map(phase_row).collect();
            write_csv(
                &format!("scenario_{}_phases", self.scenario),
                &PHASE_HEADERS,
                &rows,
            );
        }
        if let WorkloadOutcome::Maintenance { epochs, .. } = &self.outcome {
            let rows: Vec<Vec<String>> = epochs.iter().map(epoch_row).collect();
            write_csv(
                &format!("scenario_{}_epochs", self.scenario),
                &EPOCH_HEADERS,
                &rows,
            );
        }
    }
}

/// Column set of the per-phase summary table (reports + CSV artifacts).
pub const PHASE_HEADERS: [&str; 5] = ["phase", "spans", "rounds", "tx", "rx"];

/// Renders one phase summary as a row under [`PHASE_HEADERS`].
pub fn phase_row(p: &PhaseSummary) -> Vec<String> {
    vec![
        p.phase.clone(),
        p.spans.to_string(),
        p.rounds.to_string(),
        p.tx.to_string(),
        p.rx.to_string(),
    ]
}

/// Column set shared by every maintenance-epoch table this workspace
/// prints (reports, the dynamics bench, CSV artifacts).
pub const EPOCH_HEADERS: [&str; 9] = [
    "epoch",
    "awake",
    "clusters",
    "re_elections",
    "retained",
    "violations",
    "max_radius",
    "clusters_per_ball",
    "rounds",
];

/// Renders one maintenance epoch as a row under [`EPOCH_HEADERS`].
pub fn epoch_row(r: &EpochReport) -> Vec<String> {
    vec![
        r.epoch.to_string(),
        r.awake.to_string(),
        r.clusters.to_string(),
        r.re_elections.to_string(),
        r.retained.to_string(),
        r.coverage_violations.to_string(),
        format!("{:.3}", r.report.max_radius),
        r.report.max_clusters_per_unit_ball.to_string(),
        r.rounds.to_string(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank() -> Report {
        Report {
            scenario: "t".into(),
            workload: "clustering",
            n: 10,
            density: 3,
            max_degree: 2,
            resolver: ResolverKind::Grid,
            rounds: 5,
            transmissions: 4,
            receptions: 3,
            resolver_stats: Default::default(),
            phases: Vec::new(),
            outcome: WorkloadOutcome::Empty,
        }
    }

    #[test]
    fn markdown_carries_the_header_fields() {
        let md = blank().to_markdown();
        assert!(md.contains("scenario 't'"));
        assert!(md.contains("| 10 | 3 | 2 | grid | 5 | 4 | 3 | false |"));
        assert!(md.contains("resolver work"));
    }

    #[test]
    fn markdown_renders_phase_rows_when_present() {
        let mut r = blank();
        r.phases.push(PhaseSummary {
            phase: "clustering".into(),
            spans: 1,
            rounds: 5,
            tx: 4,
            rx: 3,
        });
        let md = r.to_markdown();
        assert!(md.contains("phase summary"));
        assert!(md.contains("| clustering | 1 | 5 | 4 | 3 |"));
        assert!(
            !blank().to_markdown().contains("phase summary"),
            "no phases, no table"
        );
    }

    #[test]
    fn ok_tracks_the_outcome_kind() {
        let mut r = blank();
        assert!(!r.ok(), "Empty is never ok");
        r.outcome = WorkloadOutcome::Leader {
            leader_id: 9,
            probes: 4,
        };
        assert!(r.ok());
        r.outcome = WorkloadOutcome::LocalBroadcast {
            complete: false,
            sweeps: 1,
            sweep_rounds: 10,
            max_label: 2,
            clusters: 3,
        };
        assert!(!r.ok());
    }
}
