//! Shared result emitters: markdown tables and CSV artifacts.
//!
//! Moved here from the bench crate so that every consumer of a
//! [`crate::Report`] — experiment binaries, examples, CI smoke jobs —
//! renders results identically. `dcluster-bench` re-exports these.

use std::fmt::Display;
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// Renders a markdown table to a string (a `##` title, a header row, and
/// one row per entry).
pub fn format_table<H: Display, C: Display>(title: &str, headers: &[H], rows: &[Vec<C>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n## {title}\n");
    let hdr: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let _ = writeln!(out, "| {} |", hdr.join(" | "));
    let _ = writeln!(
        out,
        "|{}|",
        hdr.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        let cells: Vec<String> = row.iter().map(|c| c.to_string()).collect();
        let _ = writeln!(out, "| {} |", cells.join(" | "));
    }
    out
}

/// Prints a markdown table to stdout.
pub fn print_table<H: Display, C: Display>(title: &str, headers: &[H], rows: &[Vec<C>]) {
    print!("{}", format_table(title, headers, rows));
}

/// The directory CSV artifacts go to: `$DCLUSTER_RESULTS_DIR` when set,
/// else `results/` relative to the CWD the harness is launched from.
pub fn results_dir() -> PathBuf {
    // lint:allow(D4, reason = "documented override: DCLUSTER_RESULTS_DIR")
    match std::env::var("DCLUSTER_RESULTS_DIR") {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from("results"),
    }
}

/// Writes rows as CSV under `<results_dir>/<name>.csv`; errors are
/// reported (naming the attempted path), not fatal.
pub fn write_csv<H: Display, C: Display>(name: &str, headers: &[H], rows: &[Vec<C>]) {
    let dir = results_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create results dir {}: {e}", dir.display());
        return;
    }
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| h.to_string())
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(
            &row.iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
    }
    let path = dir.join(format!("{name}.csv"));
    match fs::write(&path, out) {
        Ok(()) => println!("\n[csv] wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_table_is_markdown() {
        let t = format_table("t", &["a", "b"], &[vec![1, 2], vec![3, 4]]);
        assert!(t.contains("## t"));
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 3 | 4 |"));
    }

    #[test]
    fn results_dir_honors_the_env_override() {
        // Serialized by the env var itself: no other test touches it.
        std::env::set_var("DCLUSTER_RESULTS_DIR", "/tmp/dcluster-results-test");
        assert_eq!(
            results_dir(),
            PathBuf::from("/tmp/dcluster-results-test"),
            "override must win"
        );
        std::env::remove_var("DCLUSTER_RESULTS_DIR");
        assert_eq!(results_dir(), PathBuf::from("results"));
    }
}
