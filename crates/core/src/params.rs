//! Protocol parameters.
//!
//! The paper's algorithms are parameterized by constants that exist but are
//! astronomically large when derived from the worst-case lemmas (κ, ρ of
//! Lemmas 5–6, selector-length constants, the `χ(5, 1−ε)` iteration counts).
//! [`ProtocolParams`] exposes all of them. [`ProtocolParams::practical`]
//! gives laptop-scale values under which the test-suite *checks* every
//! invariant on concrete deployments; [`ProtocolParams::theory`] gives the
//! faithful lengths for small-instance validation. See DESIGN.md §3.

/// Tunable constants for the whole protocol stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolParams {
    /// Lemma 5/6 constant κ: size of the "close neighborhood" whose silence
    /// guarantees close-pair reception; also the wss/wcss set-size
    /// parameter and the proximity-graph degree cap.
    pub kappa: usize,
    /// Lemma 6 constant ρ: number of conflicting clusters a wcss round must
    /// be free of.
    pub rho: usize,
    /// Lemma 4 constant `k_γ`: the ssf parameter of the Sparse Network
    /// Schedule (max nodes in the interference-relevant ball `B(v, x)`).
    pub sns_k: usize,
    /// Degree bound used by the LOCAL MIS color reduction on SNS-induced
    /// graphs (constant-density sets ⇒ constant degree).
    pub mis_degree: usize,
    /// Multiplier on the theory-recommended selector lengths (`1.0` =
    /// faithful; experiments use ≪ 1 and validate outcomes).
    pub len_factor: f64,
    /// Hard floor on any selector schedule length.
    pub min_sched_len: u64,
    /// Master seed — a *protocol constant*: every node derives identical
    /// selector families from it.
    pub seed: u64,
    /// Run loops adaptively (stop when the loop's goal is met) instead of
    /// the paper's worst-case iteration counts. Worst-case counts remain as
    /// caps either way.
    pub adaptive: bool,
    /// Safety multiplier on the paper's worst-case iteration counts when
    /// `adaptive` (caps runaway loops without changing semantics).
    pub cap_factor: f64,
}

impl ProtocolParams {
    /// Laptop-scale defaults: small κ/ρ, aggressively shortened selector
    /// schedules. All correctness invariants are checked by the test-suite
    /// under exactly these values.
    pub fn practical() -> Self {
        Self {
            kappa: 5,
            rho: 4,
            sns_k: 10,
            mis_degree: 10,
            len_factor: 0.02,
            min_sched_len: 96,
            seed: 0xDC1A_57E2,
            adaptive: true,
            cap_factor: 2.0,
        }
    }

    /// Theory-faithful lengths (`len_factor = 1`) and non-adaptive loops —
    /// use only on very small instances.
    pub fn theory() -> Self {
        Self {
            kappa: 5,
            rho: 4,
            sns_k: 10,
            mis_degree: 10,
            len_factor: 1.0,
            min_sched_len: 1,
            seed: 0xDC1A_57E2,
            adaptive: false,
            cap_factor: 1.0,
        }
    }

    /// Applies the length knobs to a theory-recommended length.
    pub fn sched_len(&self, recommended: u64) -> u64 {
        ((recommended as f64 * self.len_factor).ceil() as u64).max(self.min_sched_len)
    }

    /// Applies the cap knob to a worst-case iteration count.
    pub fn cap(&self, worst_case: usize) -> usize {
        ((worst_case as f64 * self.cap_factor).ceil() as usize).max(1)
    }
}

impl Default for ProtocolParams {
    fn default() -> Self {
        Self::practical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn practical_shrinks_schedules_theory_does_not() {
        let p = ProtocolParams::practical();
        let t = ProtocolParams::theory();
        assert!(p.sched_len(100_000) < 100_000);
        assert_eq!(t.sched_len(100_000), 100_000);
    }

    #[test]
    fn sched_len_respects_floor() {
        let p = ProtocolParams::practical();
        assert_eq!(p.sched_len(10), p.min_sched_len);
    }

    #[test]
    fn cap_never_returns_zero() {
        let p = ProtocolParams::practical();
        assert_eq!(p.cap(0), 1);
        assert!(p.cap(5) >= 5);
    }

    #[test]
    fn default_is_practical() {
        assert_eq!(ProtocolParams::default(), ProtocolParams::practical());
    }
}
