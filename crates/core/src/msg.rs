//! The message alphabet.
//!
//! The model allows `O(log N)`-bit messages (paper §1.1); every variant
//! below carries a constant number of IDs/labels/sizes, respecting that
//! budget.

/// Messages exchanged by the protocol stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Msg {
    /// Exchange-phase beacon: "I exist", with ID and current cluster
    /// (cluster = 0 when unclustered).
    Hello {
        /// Sender ID.
        id: u64,
        /// Sender's cluster ID (0 = none).
        cluster: u64,
    },
    /// Confirmation-phase candidate announcement `⟨v, u⟩`: "v has u in its
    /// candidate set" (`to = 0` is the dummy ⟨v, ⊥⟩ used to preserve the
    /// interference pattern).
    Confirm {
        /// Announcing node `v`.
        from: u64,
        /// Candidate `u` (0 = ⊥).
        to: u64,
    },
    /// Child → parent link announcement.
    Parent {
        /// Child ID.
        child: u64,
        /// Chosen parent ID.
        parent: u64,
    },
    /// Bottom-up subtree size (tree labeling, Lemma 11).
    Subtree {
        /// Sender ID.
        id: u64,
        /// Size of the sender's subtree (including itself).
        size: u32,
    },
    /// Top-down label range assignment to one child.
    Range {
        /// Addressed child ID.
        child: u64,
        /// Low end of the child's range.
        lo: u32,
        /// High end of the child's range.
        hi: u32,
    },
    /// Current color, for the LOCAL color-reduction simulation.
    Color {
        /// Sender ID.
        id: u64,
        /// Sender's current color.
        color: u64,
    },
    /// MIS sweep state.
    Mis {
        /// Sender ID.
        id: u64,
        /// Sender has joined the MIS.
        in_mis: bool,
        /// Sender has decided (joined or dominated).
        decided: bool,
    },
    /// Cluster announcement (radius reduction / cluster inheritance).
    ClusterOf {
        /// Sender ID.
        id: u64,
        /// Sender's cluster ID (0 = not yet assigned; receivers ignore).
        cluster: u64,
    },
    /// Application payload (broadcast data), tagged with the sender's
    /// cluster so awakened nodes can inherit it.
    Payload {
        /// Sender ID.
        id: u64,
        /// Sender's cluster (0 = none).
        cluster: u64,
        /// Opaque payload (the broadcast message).
        data: u64,
    },
}

impl Msg {
    /// The sender ID carried in the message (every variant carries one,
    /// except `Range` which addresses a child).
    pub fn sender_id(&self) -> Option<u64> {
        match *self {
            Msg::Hello { id, .. }
            | Msg::Subtree { id, .. }
            | Msg::Color { id, .. }
            | Msg::Mis { id, .. }
            | Msg::ClusterOf { id, .. }
            | Msg::Payload { id, .. } => Some(id),
            Msg::Confirm { from, .. } => Some(from),
            Msg::Parent { child, .. } => Some(child),
            Msg::Range { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sender_id_extraction() {
        assert_eq!(Msg::Hello { id: 7, cluster: 1 }.sender_id(), Some(7));
        assert_eq!(Msg::Confirm { from: 3, to: 9 }.sender_id(), Some(3));
        assert_eq!(
            Msg::Parent {
                child: 4,
                parent: 8
            }
            .sender_id(),
            Some(4)
        );
        assert_eq!(
            Msg::Range {
                child: 2,
                lo: 1,
                hi: 5
            }
            .sender_id(),
            None
        );
    }

    #[test]
    fn messages_are_small() {
        // O(log N) bits: the whole enum fits in a few machine words.
        assert!(std::mem::size_of::<Msg>() <= 32);
    }
}
