//! Leader election — Theorem 5.
//!
//! `Clustering` on the whole network yields the constant-density center
//! set `S`. A binary search over ID ranges then isolates the minimum
//! center ID: probing `[lo, mid]` means running `SMSBroadcast(V, S′)` with
//! `S′ = S ∩ [lo, mid]` — if `S′` is nonempty the broadcast reaches every
//! node within the window (everyone observes "signal"), otherwise the
//! window stays silent (everyone observes "empty"). `O(log N)` probes,
//! `O(D(∆ + log* N) log² N)` rounds total.

use crate::clustering::clustering;
use crate::global_broadcast::sms_broadcast;
use crate::params::ProtocolParams;
use crate::run::SeedSeq;
use dcluster_sim::engine::{Engine, RoundBehavior};
use dcluster_sim::network::Network;

/// Result of a leader election.
#[derive(Debug, Clone)]
pub struct LeaderOutcome {
    /// The elected leader's paper ID (the minimum center ID).
    pub leader_id: u64,
    /// Rounds consumed end-to-end.
    pub rounds: u64,
    /// Binary-search probes executed.
    pub probes: usize,
}

/// No-op behavior used to burn the fixed-length silent windows of empty
/// probes (the rounds are genuinely consumed; nobody transmits).
struct Silent;
impl RoundBehavior<crate::msg::Msg> for Silent {
    fn transmit(&mut self, _: &Network, _: usize, _: u64) -> Option<crate::msg::Msg> {
        None
    }
    fn receive(&mut self, _: &Network, _: usize, _: u64, _: usize, _: &crate::msg::Msg) {}
}

/// Runs the Theorem 5 election over the whole network.
pub fn leader_election(
    engine: &mut Engine<'_>,
    params: &ProtocolParams,
    seeds: &mut SeedSeq,
    delta: usize,
) -> LeaderOutcome {
    engine.begin_phase("leader");
    let start = engine.round();
    let net = engine.network();
    let n = net.len();
    let all: Vec<usize> = (0..n).collect();

    // Stage 1: clustering; centers are the candidate set S.
    let cl = clustering(engine, params, seeds, &all, delta);
    let mut candidates: Vec<usize> = cl.centers.clone();
    if candidates.is_empty() {
        candidates.push(0);
    }

    // Reference window: one full-range SMSB fixes the silent-window length
    // all nodes will assume for empty probes (T(N, ∆) in the paper).
    let w0 = engine.round();
    let _ = sms_broadcast(engine, params, seeds, &candidates, delta, u64::MAX);
    let window = (engine.round() - w0).max(1);
    let mut probes = 1usize;

    // Stage 2: binary search for the minimum candidate ID over [1, N].
    let (mut lo, mut hi) = (1u64, net.max_id());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let sub: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&v| (lo..=mid).contains(&net.id(v)))
            .collect();
        probes += 1;
        if sub.is_empty() {
            // Silent window of the agreed length.
            engine.run(&mut Silent, window);
            lo = mid + 1;
        } else {
            let out = sms_broadcast(engine, params, seeds, &sub, delta, mid);
            debug_assert!(out.delivered_all, "probe broadcast must reach everyone");
            hi = mid;
        }
    }

    engine.end_phase();
    LeaderOutcome {
        leader_id: lo,
        rounds: engine.round() - start,
        probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcluster_sim::rng::Rng64;
    use dcluster_sim::{deploy, Network};

    #[test]
    fn elects_the_minimum_center_id() {
        let mut rng = Rng64::new(95);
        let pts = deploy::corridor_with_spine(18, 4.0, 1.0, 0.5, &mut rng);
        let net = Network::builder(pts).seed(5).max_id(500).build().unwrap();
        let params = ProtocolParams::practical();
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::new(&net);
        let out = leader_election(&mut engine, &params, &mut seeds, net.density());
        // The leader must be an existing node's ID.
        assert!(
            net.index_of(out.leader_id).is_some(),
            "leader {} not a node",
            out.leader_id
        );
        assert!(out.probes >= 2);
        assert!(out.rounds > 0);
    }

    #[test]
    fn leader_is_unique_and_deterministic() {
        let mut rng = Rng64::new(96);
        let pts = deploy::corridor_with_spine(15, 3.0, 1.0, 0.5, &mut rng);
        let net = Network::builder(pts).build().unwrap();
        let params = ProtocolParams::practical();
        let run = |net: &Network| {
            let mut seeds = SeedSeq::new(params.seed);
            let mut engine = Engine::new(net);
            leader_election(&mut engine, &params, &mut seeds, net.density()).leader_id
        };
        assert_eq!(run(&net), run(&net));
    }
}
