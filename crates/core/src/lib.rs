//! # dcluster-core — the paper's algorithms
//!
//! Implementation of every algorithm in *Deterministic Digital Clustering
//! of Wireless Ad Hoc Networks* (PODC 2018):
//!
//! | Paper item | Module |
//! |---|---|
//! | Sparse Network Schedule (Lemma 4) | [`sns`] |
//! | `ProximityGraphConstruction` (Alg. 1, Lemma 7) | [`proximity`] |
//! | LOCAL MIS simulation (\[34\] stand-in) | [`mis`] |
//! | `Sparsification`/`SparsificationU`/`FullSparsification` (Algs. 2–4) | [`sparsify`] |
//! | Imperfect labeling (Lemma 11) | [`labeling`] |
//! | `RadiusReduction` (Alg. 5, Lemma 12) | [`radius`] |
//! | `Clustering` (Alg. 6, Theorem 1) | [`clustering`] |
//! | `LocalBroadcast` (Alg. 7, Theorem 2) | [`mod@local_broadcast`] |
//! | `SMSBroadcast` / global broadcast (Alg. 8, Theorem 3) | [`mod@global_broadcast`] |
//! | Wake-up (Theorem 4) | [`wakeup`] |
//! | Leader election (Theorem 5) | [`leader`] |
//! | Cluster maintenance under dynamics (extension) | [`maintenance`] |
//!
//! The protocols are orchestrated synchronous schedules over the
//! [`dcluster_sim`] engine; see DESIGN.md §3 for the locality discipline
//! and for how the paper's constants are parameterized
//! ([`params::ProtocolParams`]).
//!
//! ## Quickstart
//!
//! ```
//! use dcluster_core::{clustering::clustering, params::ProtocolParams, run::SeedSeq};
//! use dcluster_core::check::check_clustering;
//! use dcluster_sim::{deploy, Engine, Network, rng::Rng64};
//!
//! let mut rng = Rng64::new(1);
//! let net = Network::builder(deploy::uniform_square(30, 2.5, &mut rng))
//!     .build()
//!     .expect("valid deployment");
//! let params = ProtocolParams::practical();
//! let mut seeds = SeedSeq::new(params.seed);
//! let mut engine = Engine::new(&net);
//! let all: Vec<usize> = (0..net.len()).collect();
//! let cl = clustering(&mut engine, &params, &mut seeds, &all, net.density());
//! let report = check_clustering(&net, &cl.cluster_of);
//! assert_eq!(report.unassigned, 0);
//! assert!(report.max_radius <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod clustering;
pub mod global_broadcast;
pub mod labeling;
pub mod leader;
pub mod local_broadcast;
pub mod maintenance;
pub mod mis;
pub mod msg;
pub mod params;
pub mod proximity;
pub mod radius;
pub mod run;
pub mod sns;
pub mod sparsify;
pub mod stack;
pub mod wakeup;

pub use check::{audit_resolver_equivalence, ResolverDisagreement};
pub use clustering::{clustering as run_clustering, Clustering};
pub use global_broadcast::{global_broadcast, sms_broadcast, BroadcastOutcome};
pub use local_broadcast::{local_broadcast, LocalBroadcastOutcome};
pub use maintenance::{EpochReport, MaintenanceConfig, MaintenanceDriver, MaintenanceSummary};
pub use msg::Msg;
pub use params::ProtocolParams;
pub use run::{SeedSeq, UnitTrace};
pub use stack::Stack;
