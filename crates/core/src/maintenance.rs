//! Cluster maintenance under dynamics: re-run/repair clustering as the
//! world evolves, tracking stability and coverage metrics.
//!
//! The paper establishes its clustering once, on a static network. Real
//! ad hoc deployments move, sleep and wake (the regimes surveyed by the
//! MANET-clustering literature), so the natural operational loop is:
//! evolve the world one epoch, re-run Theorem 1 clustering over the
//! currently awake set, and measure what churn did to the cluster
//! structure. [`MaintenanceDriver`] is that loop's bookkeeping:
//!
//! * **cluster lifetime** — how many consecutive epochs a center-node ID
//!   stays a center (long lifetimes mean the deterministic re-clustering
//!   is stable under small perturbations);
//! * **re-elections** — centers appearing that were not centers the
//!   previous epoch;
//! * **coverage violations** — awake nodes left unassigned, members
//!   farther from their center than the configured radius bound, or unit
//!   balls intersecting more than the configured number of clusters
//!   (the paper's two §1.3 conditions, counted instead of asserted).
//!
//! The driver is resolver-agnostic and fully deterministic: the same
//! world history and seeds reproduce the same reports byte for byte, and
//! all resolver backends must produce identical reports (the
//! `dynamics_maintenance` bench gates on both).

use crate::check::{check_clustering_on, ClusteringReport};
use crate::clustering::clustering;
use crate::params::ProtocolParams;
use crate::run::SeedSeq;
use dcluster_obs::{Event, PhaseTable, SharedTracer};
use dcluster_sim::{Engine, EngineStats, Network, ResolverKind, ResolverStats};
use std::collections::BTreeMap;

/// Bounds that turn clustering-quality measurements into violation counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaintenanceConfig {
    /// Max member-to-center distance before a member counts as a coverage
    /// violation. The paper guarantees radius ≤ 1 (the transmission
    /// range); a small slack absorbs boundary arithmetic.
    pub max_radius: f64,
    /// Max clusters intersecting a unit ball before the excess counts as
    /// violations (the paper guarantees O(1); the seed experiments observe
    /// single digits).
    pub max_clusters_per_ball: usize,
}

impl Default for MaintenanceConfig {
    fn default() -> Self {
        Self {
            max_radius: 1.0 + 1e-9,
            max_clusters_per_ball: 16,
        }
    }
}

/// What one maintenance epoch did.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochReport {
    /// Epoch index (0-based, as counted by the driver).
    pub epoch: u64,
    /// Awake (participating) nodes this epoch.
    pub awake: usize,
    /// Simulated protocol rounds spent re-clustering.
    pub rounds: u64,
    /// Distinct clusters formed.
    pub clusters: usize,
    /// Centers that were not centers in the previous epoch (0 for the
    /// first epoch — the initial election is not a re-election).
    pub re_elections: usize,
    /// Centers retained from the previous epoch.
    pub retained: usize,
    /// Coverage violations: unassigned awake nodes + members beyond the
    /// radius bound + per-ball cluster excess (see module docs).
    pub coverage_violations: usize,
    /// The underlying quality report (restricted to the awake set).
    pub report: ClusteringReport,
    /// Backend that resolved every round of this epoch.
    pub resolver: ResolverKind,
}

/// Aggregates over a whole maintenance run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaintenanceSummary {
    /// Epochs driven.
    pub epochs: u64,
    /// Total simulated rounds across all epochs.
    pub total_rounds: u64,
    /// Total re-elections (excluding the initial election).
    pub total_re_elections: u64,
    /// Total coverage violations.
    pub total_violations: u64,
    /// Mean center lifetime in epochs (streaks still alive at the end
    /// count with their current length).
    pub mean_center_lifetime: f64,
    /// Longest center lifetime observed.
    pub max_center_lifetime: u64,
}

/// Per-epoch re-clustering driver (see module docs).
#[derive(Debug, Clone)]
pub struct MaintenanceDriver {
    params: ProtocolParams,
    config: MaintenanceConfig,
    /// Center ID → epoch its current consecutive-center streak started.
    streaks: BTreeMap<u64, u64>,
    finished_lifetimes: Vec<u64>,
    epochs: u64,
    total_rounds: u64,
    total_re_elections: u64,
    total_violations: u64,
    tracer: Option<SharedTracer>,
    phases: PhaseTable,
    resolver_stats: ResolverStats,
    engine_stats: EngineStats,
}

impl MaintenanceDriver {
    /// Creates a driver with the given protocol parameters and default
    /// violation bounds.
    pub fn new(params: ProtocolParams) -> Self {
        Self::with_config(params, MaintenanceConfig::default())
    }

    /// Creates a driver with explicit violation bounds.
    pub fn with_config(params: ProtocolParams, config: MaintenanceConfig) -> Self {
        Self {
            params,
            config,
            streaks: BTreeMap::new(),
            finished_lifetimes: Vec::new(),
            epochs: 0,
            total_rounds: 0,
            total_re_elections: 0,
            total_violations: 0,
            tracer: None,
            phases: PhaseTable::new(),
            resolver_stats: ResolverStats::default(),
            engine_stats: EngineStats::default(),
        }
    }

    /// The violation bounds in force.
    pub fn config(&self) -> MaintenanceConfig {
        self.config
    }

    /// Attaches a tracer: each epoch's engine emits phase spans and round
    /// events through it, and the driver adds one `epoch` event per epoch.
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.tracer = Some(tracer);
    }

    /// Phase spans aggregated over every epoch run so far.
    pub fn phase_table(&self) -> &PhaseTable {
        &self.phases
    }

    /// Resolver work counters accumulated over every epoch run so far.
    pub fn resolver_stats(&self) -> ResolverStats {
        self.resolver_stats
    }

    /// Engine counters (rounds/tx/rx) accumulated over every epoch run so
    /// far — the maintenance analogue of [`Engine::stats`].
    pub fn engine_stats(&self) -> EngineStats {
        self.engine_stats
    }

    /// Runs one maintenance epoch: re-clusters the awake set over the
    /// (possibly mutated) network with the given resolver backend and
    /// updates lifetimes/re-election accounting. `awake` must be nonempty
    /// — under churn the schedules guarantee an anchor node.
    pub fn epoch(
        &mut self,
        net: &Network,
        resolver: ResolverKind,
        seeds: &mut SeedSeq,
        awake: &[usize],
    ) -> EpochReport {
        assert!(
            !awake.is_empty(),
            "maintenance needs at least one awake node"
        );
        let mut engine = Engine::with_resolver_kind(net, resolver);
        if let Some(tracer) = &self.tracer {
            engine.set_tracer(tracer.clone());
        }
        let gamma = net.density().max(1);
        let cl = clustering(&mut engine, &self.params, seeds, awake, gamma);
        self.phases.merge(engine.phase_table());
        self.resolver_stats.absorb(&engine.resolver_stats());
        let es = engine.stats();
        self.engine_stats.rounds += es.rounds;
        self.engine_stats.transmissions += es.transmissions;
        self.engine_stats.receptions += es.receptions;
        let report = check_clustering_on(net, &cl.cluster_of, awake);

        // Lifetime / re-election accounting over center-node IDs.
        let epoch = self.epochs;
        let centers: std::collections::BTreeSet<u64> =
            cl.centers.iter().map(|&c| net.id(c)).collect();
        let retained = centers
            .iter()
            .filter(|c| self.streaks.contains_key(*c))
            .count();
        let new_centers = centers.len() - retained;
        let re_elections = if epoch == 0 { 0 } else { new_centers };
        let dethroned: Vec<u64> = self
            .streaks
            .keys()
            .filter(|c| !centers.contains(*c))
            .copied()
            .collect();
        for c in dethroned {
            let birth = self.streaks.remove(&c).expect("key just listed"); // lint:allow(P1, reason = "key just listed from the same map")
            self.finished_lifetimes.push(epoch - birth);
        }
        for &c in &centers {
            self.streaks.entry(c).or_insert(epoch);
        }

        // Coverage violations: unassigned + radius breaches + ball excess.
        let r_bound = self.config.max_radius;
        let radius_breaches = awake
            .iter()
            .filter(|&&v| {
                cl.cluster_of[v]
                    .and_then(|c| net.index_of(c))
                    .is_some_and(|center| net.pos(v).dist(net.pos(center)) > r_bound)
            })
            .count();
        let ball_excess = report
            .max_clusters_per_unit_ball
            .saturating_sub(self.config.max_clusters_per_ball);
        let coverage_violations = report.unassigned + radius_breaches + ball_excess;

        self.epochs += 1;
        self.total_rounds += cl.rounds;
        self.total_re_elections += re_elections as u64;
        self.total_violations += coverage_violations as u64;
        if let Some(tracer) = &self.tracer {
            tracer.borrow_mut().on_event(&Event::Epoch {
                epoch,
                rounds: cl.rounds,
                re_elections: re_elections as u64,
                violations: coverage_violations as u64,
            });
        }
        EpochReport {
            epoch,
            awake: awake.len(),
            rounds: cl.rounds,
            clusters: report.clusters,
            re_elections,
            retained,
            coverage_violations,
            report,
            resolver,
        }
    }

    /// Aggregate metrics so far. Streaks still alive contribute their
    /// current length (`epochs − birth`).
    pub fn summary(&self) -> MaintenanceSummary {
        let mut lifetimes = self.finished_lifetimes.clone();
        lifetimes.extend(self.streaks.values().map(|&birth| self.epochs - birth));
        let mean = if lifetimes.is_empty() {
            0.0
        } else {
            lifetimes.iter().sum::<u64>() as f64 / lifetimes.len() as f64
        };
        MaintenanceSummary {
            epochs: self.epochs,
            total_rounds: self.total_rounds,
            total_re_elections: self.total_re_elections,
            total_violations: self.total_violations,
            mean_center_lifetime: mean,
            max_center_lifetime: lifetimes.iter().copied().max().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcluster_sim::rng::Rng64;
    use dcluster_sim::{deploy, Network};

    fn field(n: usize, seed: u64) -> Network {
        let mut rng = Rng64::new(seed);
        Network::builder(deploy::uniform_square(n, 2.5, &mut rng))
            .build()
            .unwrap()
    }

    #[test]
    fn static_world_keeps_its_centers_forever() {
        let net = field(40, 402);
        let params = ProtocolParams::practical();
        let mut driver = MaintenanceDriver::new(params);
        let awake: Vec<usize> = (0..net.len()).collect();
        let mut first_clusters = 0;
        for e in 0..3u64 {
            // Fresh seeds per epoch: the protocol is deterministic, so a
            // static world re-elects the exact same centers every time.
            let mut seeds = SeedSeq::new(params.seed);
            let rep = driver.epoch(&net, net.default_resolver(), &mut seeds, &awake);
            assert_eq!(rep.epoch, e);
            assert_eq!(rep.coverage_violations, 0, "static coverage is clean");
            if e == 0 {
                first_clusters = rep.clusters;
            } else {
                assert_eq!(rep.re_elections, 0, "no churn, no re-election");
                assert_eq!(rep.clusters, first_clusters);
                assert_eq!(rep.retained, first_clusters);
            }
        }
        let s = driver.summary();
        assert_eq!(s.epochs, 3);
        assert_eq!(s.total_re_elections, 0);
        assert_eq!(s.total_violations, 0);
        assert!((s.mean_center_lifetime - 3.0).abs() < 1e-9);
        assert_eq!(s.max_center_lifetime, 3);
    }

    #[test]
    fn shrinking_awake_set_is_tracked() {
        let net = field(30, 77);
        let params = ProtocolParams::practical();
        let mut driver = MaintenanceDriver::new(params);
        let mut seeds = SeedSeq::new(params.seed);
        let all: Vec<usize> = (0..net.len()).collect();
        let rep_all = driver.epoch(&net, net.default_resolver(), &mut seeds, &all);
        assert_eq!(rep_all.awake, 30);
        let half: Vec<usize> = (0..net.len()).step_by(2).collect();
        let rep_half = driver.epoch(&net, net.default_resolver(), &mut seeds, &half);
        assert_eq!(rep_half.awake, 15);
        assert_eq!(
            rep_half.coverage_violations, 0,
            "every awake node must still be covered"
        );
        assert!(driver.summary().epochs == 2);
    }

    #[test]
    #[should_panic(expected = "at least one awake node")]
    fn empty_awake_set_is_rejected() {
        let net = field(10, 5);
        let params = ProtocolParams::practical();
        let mut seeds = SeedSeq::new(params.seed);
        MaintenanceDriver::new(params).epoch(&net, net.default_resolver(), &mut seeds, &[]);
    }
}
