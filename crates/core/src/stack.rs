//! High-level API: the **network stack** a downstream user actually wants.
//!
//! The paper's pipeline has an expensive one-time part (clustering +
//! labeling) and a cheap recurring part (one SNS per label). [`Stack`]
//! packages that: `Stack::establish` pays the setup once; after that,
//! [`Stack::local_broadcast_round`] delivers arbitrary per-node payloads
//! to all communication-graph neighbors in `O(Δ log N)` rounds, as many
//! times as desired — the steady-state regime of a sensor network
//! exchanging readings.

use crate::check::missing_deliveries;
use crate::clustering::{clustering, Clustering};
use crate::labeling::{imperfect_labeling, Labeling};
use crate::msg::Msg;
use crate::params::ProtocolParams;
use crate::run::SeedSeq;
use crate::sns::run_sns;
use crate::sparsify::full_sparsification;
use dcluster_sim::engine::Engine;
use std::collections::HashSet;

/// An established communication stack over a network (see module docs).
#[derive(Debug, Clone)]
pub struct Stack {
    params: ProtocolParams,
    clustering: Clustering,
    labeling: Labeling,
    /// Rounds spent establishing the stack.
    pub setup_rounds: u64,
}

impl Stack {
    /// Pays the one-time setup: Theorem 1 clustering plus Lemma 11
    /// labeling.
    pub fn establish(
        engine: &mut Engine<'_>,
        params: &ProtocolParams,
        seeds: &mut SeedSeq,
        delta: usize,
    ) -> Self {
        let start = engine.round();
        let net = engine.network();
        let n = net.len();
        let all: Vec<usize> = (0..n).collect();
        let cl = clustering(engine, params, seeds, &all, delta);
        let cluster_of = cl.cluster_or_id_all(net);
        let fs = full_sparsification(engine, params, seeds, delta, &all, &cluster_of);
        let lab = imperfect_labeling(engine, &fs, params.kappa);
        Self {
            params: *params,
            clustering: cl,
            labeling: lab,
            setup_rounds: engine.round() - start,
        }
    }

    /// The clustering underlying the stack.
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// The labeling underlying the stack.
    pub fn labeling(&self) -> &Labeling {
        &self.labeling
    }

    /// One steady-state local-broadcast round-trip: every node's
    /// `payload(v)` is delivered to all its communication-graph neighbors.
    /// Returns `(rounds_used, deliveries)` where `deliveries[v]` is the set
    /// of nodes that heard `v`.
    pub fn local_broadcast_round(
        &self,
        engine: &mut Engine<'_>,
        seeds: &mut SeedSeq,
        payload: impl Fn(usize) -> u64,
        // lint:allow(D1, reason = "delivery-witness sets; membership queries only")
    ) -> (u64, Vec<HashSet<usize>>) {
        let start = engine.round();
        let net = engine.network();
        let n = net.len();
        let cluster_of = self.clustering.cluster_or_id_all(net);
        let mut heard_by: Vec<HashSet<usize>> = vec![HashSet::new(); n]; // lint:allow(D1, reason = "delivery-witness sets; membership queries only")
        let max_label = self.labeling.max_label();
        for l in 1..=max_label {
            let members: Vec<usize> = (0..n).filter(|&v| self.labeling.label[v] == l).collect();
            if members.is_empty() {
                continue;
            }
            let net = engine.network();
            let run = run_sns(engine, &self.params, seeds, &members, |v| Msg::Payload {
                id: net.id(v),
                cluster: cluster_of[v],
                data: payload(v),
            });
            for (recv, sender, _) in run.receptions {
                heard_by[sender].insert(recv);
            }
        }
        (engine.round() - start, heard_by)
    }

    /// Convenience: did the last round's deliveries cover the whole
    /// communication graph?
    // lint:allow(D1, reason = "delivery-witness sets; membership queries only")
    pub fn complete(&self, engine: &Engine<'_>, heard_by: &[HashSet<usize>]) -> bool {
        missing_deliveries(engine.network(), heard_by).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcluster_sim::rng::Rng64;
    use dcluster_sim::{deploy, Network};

    fn field() -> Network {
        let mut rng = Rng64::new(401);
        Network::builder(deploy::uniform_square(35, 2.5, &mut rng))
            .build()
            .unwrap()
    }

    #[test]
    fn steady_state_is_much_cheaper_than_setup() {
        let net = field();
        let params = ProtocolParams::practical();
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::new(&net);
        let stack = Stack::establish(&mut engine, &params, &mut seeds, net.density());
        let (rounds, heard) = stack.local_broadcast_round(&mut engine, &mut seeds, |v| v as u64);
        assert!(
            stack.complete(&engine, &heard),
            "steady-state broadcast incomplete"
        );
        assert!(
            rounds * 10 < stack.setup_rounds,
            "steady state ({rounds}) should be ≫ cheaper than setup ({})",
            stack.setup_rounds
        );
    }

    #[test]
    fn stack_establish_is_identical_on_mutated_and_rebuilt_networks() {
        // Steady-state stacks are re-established after dynamics epochs;
        // the incremental network maintenance must be invisible to them —
        // same clusters, same labels, same setup cost as a fresh build.
        let mut net = field();
        let mut rng = Rng64::new(500);
        for _ in 0..25 {
            let v = rng.range_usize(net.len());
            net.move_node(
                v,
                dcluster_sim::Point::new(rng.range_f64(0.0, 2.5), rng.range_f64(0.0, 2.5)),
            );
        }
        let rebuilt = Network::builder(net.points().to_vec())
            .ids(net.ids().to_vec())
            .max_id(net.max_id())
            .params(*net.params())
            .build()
            .unwrap();
        let params = ProtocolParams::practical();
        let establish = |n: &Network| {
            let mut seeds = SeedSeq::new(params.seed);
            let mut engine = Engine::new(n);
            let stack = Stack::establish(&mut engine, &params, &mut seeds, n.density());
            (
                stack.setup_rounds,
                stack.clustering().cluster_of.clone(),
                stack.labeling().label.clone(),
            )
        };
        let (rounds_a, clusters_a, labels_a) = establish(&net);
        let (rounds_b, clusters_b, labels_b) = establish(&rebuilt);
        assert_eq!(rounds_a, rounds_b);
        assert_eq!(clusters_a, clusters_b, "byte-identical cluster assignment");
        assert_eq!(labels_a, labels_b, "byte-identical labeling");
    }

    #[test]
    fn repeated_rounds_keep_working_with_fresh_payloads() {
        let net = field();
        let params = ProtocolParams::practical();
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::new(&net);
        let stack = Stack::establish(&mut engine, &params, &mut seeds, net.density());
        for epoch in 0..3u64 {
            let (_, heard) =
                stack.local_broadcast_round(&mut engine, &mut seeds, |v| epoch * 1000 + v as u64);
            assert!(stack.complete(&engine, &heard), "epoch {epoch} incomplete");
        }
    }
}
