//! `Clustering` — Algorithm 6 (Theorem 1): 1-clustering of an unclustered
//! set in `O(Γ log N log* N)` rounds.
//!
//! **Phase A (down)**: repeated `SparsificationU` with geometrically
//! shrinking density targets builds nested levels
//! `A_0 ⊇ A_1 ⊇ … ⊇ A_kl` until the remainder has constant density; every
//! removed node keeps a parent link one level up, living on a recorded
//! replay unit.
//!
//! **Phase B (up)**: the sparse tail `A_kl` is trivially 1-clustered (every
//! node its own cluster). Walking the transitions back up, each level's
//! removed nodes adopt their parent's cluster by replaying that
//! transition's schedules (a 2-clustering, since child–parent distance
//! ≤ 1), and `RadiusReduction(·, ·, 2)` immediately restores a
//! 1-clustering — keeping the radius constant at every step, which is what
//! lets the cluster-aware selectors work with O(1) conflicts.

use crate::mis::MisStrategy;
use crate::msg::Msg;
use crate::params::ProtocolParams;
use crate::radius::radius_reduction;
use crate::run::SeedSeq;
use crate::sparsify::{sparsification_u, subset_density, LevelsOutcome};
use dcluster_sim::engine::Engine;

/// A finished clustering (Theorem 1 output).
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Cluster of each node (`None` = not in the input set / failed;
    /// tests assert 0 failures). Cluster IDs are center-node IDs.
    pub cluster_of: Vec<Option<u64>>,
    /// Cluster centers (node indices).
    pub centers: Vec<usize>,
    /// Rounds consumed (from the engine, including every sub-protocol).
    pub rounds: u64,
    /// Number of phase-A sparsification levels executed.
    pub levels: usize,
}

impl Clustering {
    /// The cluster of `v`, falling back to `v`'s own ID for unassigned
    /// nodes — the canonical "every node belongs somewhere" view the
    /// downstream protocols (stack, sparsification, label sweeps) share:
    /// a node outside the clustered set behaves as its own singleton
    /// cluster.
    pub fn cluster_or_id(&self, net: &dcluster_sim::Network, v: usize) -> u64 {
        self.cluster_of[v].unwrap_or_else(|| net.id(v))
    }

    /// [`Clustering::cluster_or_id`] for every node, indexable by node.
    pub fn cluster_or_id_all(&self, net: &dcluster_sim::Network) -> Vec<u64> {
        (0..net.len()).map(|v| self.cluster_or_id(net, v)).collect()
    }
}

/// Runs Algorithm 6 on the node set `a` with density bound `gamma`.
pub fn clustering(
    engine: &mut Engine<'_>,
    params: &ProtocolParams,
    seeds: &mut SeedSeq,
    a: &[usize],
    gamma: usize,
) -> Clustering {
    engine.begin_phase("clustering");
    let start_round = engine.round();
    let net = engine.network();
    let n = net.len();
    let strategy = MisStrategy::GreedyById;

    // ---- Phase A: nested sparsification (Alg. 6 lines 1–7).
    let k = ((gamma.max(2) as f64).ln() / (4.0f64 / 3.0).ln()).ceil() as usize;
    let mut chain: Vec<(LevelsOutcome, usize)> = Vec::new(); // (outcome, Λ used)
    let mut x: Vec<usize> = a.to_vec();
    let mut lambda = gamma.max(1) as f64;
    for _ in 0..params.cap(k) {
        if x.len() <= 2 {
            break;
        }
        let su = sparsification_u(
            engine,
            params,
            seeds,
            (lambda.ceil() as usize).max(1),
            &x,
            strategy,
        );
        let progressed = su.last().len() < x.len();
        x = su.last().to_vec();
        chain.push((su, (lambda.ceil() as usize).max(1)));
        lambda *= 0.75;
        if params.adaptive && (subset_density(engine, &x) <= 4 || !progressed) {
            break;
        }
    }

    // ---- Phase B: bottom 1-clustering (line 8): singleton clusters.
    let mut cluster_of: Vec<Option<u64>> = vec![None; n];
    for &v in &x {
        cluster_of[v] = Some(net.id(v));
    }
    let mut centers: Vec<usize> = x.clone();
    let mut accum: Vec<usize> = x;

    // ---- Phase B: walk transitions back up (lines 11–16).
    let mut lambda_up = 2usize;
    for (su, step_gamma) in chain.iter().rev() {
        for step in su.steps.iter().rev() {
            // Children removed by this transition (levels[t] → levels[t+1]).
            let mut parent_of: Vec<Option<usize>> = vec![None; n];
            let mut new_children: Vec<usize> = Vec::new();
            for l in &su.links {
                if step.contains(&l.unit) {
                    parent_of[l.child] = Some(l.parent);
                    new_children.push(l.child);
                }
            }
            if new_children.is_empty() {
                continue; // nothing was removed here; no replay needed
            }
            // Replay the transition's units: every member announces its
            // (current) cluster; children adopt from their parent (line 13).
            for unit in &su.units[step.clone()] {
                let net = engine.network();
                let snapshot = cluster_of.clone();
                let parent_ref = &parent_of;
                let mut adopt: Vec<(usize, u64)> = Vec::new();
                unit.run(
                    engine,
                    |v| Msg::ClusterOf {
                        id: net.id(v),
                        cluster: snapshot[v].unwrap_or(0),
                    },
                    &mut |recv, _lr, sender, msg| {
                        if let Msg::ClusterOf { cluster, .. } = msg {
                            if *cluster != 0 && parent_ref[recv] == Some(sender) {
                                adopt.push((recv, *cluster));
                            }
                        }
                    },
                );
                for (v, c) in adopt {
                    cluster_of[v] = Some(c);
                }
            }
            debug_assert!(
                new_children.iter().all(|&v| cluster_of[v].is_some()),
                "a child failed to inherit its parent's cluster"
            );
            accum.extend(new_children.iter().copied());

            // Stage 3: restore a 1-clustering of everything seen so far
            // (line 15) — the inheritance gave only a 2-clustering.
            let old: Vec<u64> = {
                let mut o = vec![0u64; n];
                for &v in &accum {
                    // lint:allow(P1, reason = "invariant: accumulated nodes are clustered")
                    o[v] = cluster_of[v].expect("accumulated nodes are clustered");
                }
                o
            };
            let rr_gamma = lambda_up.max(*step_gamma).max(2);
            let rr = radius_reduction(engine, params, seeds, rr_gamma, &accum, &old, 2.0, strategy);
            let mut ok = true;
            for &v in &accum {
                match rr.cluster_of[v] {
                    Some(c) => cluster_of[v] = Some(c),
                    None => ok = false, // pass cap exhausted; keep old cluster
                }
            }
            if ok {
                centers = rr.centers;
            }
        }
        lambda_up = ((lambda_up as f64) * 4.0 / 3.0).ceil() as usize; // line 16
    }

    engine.end_phase();
    Clustering {
        cluster_of,
        centers,
        rounds: engine.round() - start_round,
        levels: chain.iter().map(|(su, _)| su.steps.len()).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_clustering;
    use dcluster_sim::rng::Rng64;
    use dcluster_sim::{deploy, Network};

    fn cluster_net(n: usize, side: f64, seed: u64) -> (Network, Clustering) {
        let mut rng = Rng64::new(seed);
        let net = Network::builder(deploy::uniform_square(n, side, &mut rng))
            .build()
            .unwrap();
        let params = ProtocolParams::practical();
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::new(&net);
        let all: Vec<usize> = (0..net.len()).collect();
        let gamma = net.density();
        let cl = clustering(&mut engine, &params, &mut seeds, &all, gamma);
        (net, cl)
    }

    #[test]
    fn theorem1_invariants_on_a_small_field() {
        let (net, cl) = cluster_net(40, 3.0, 77);
        let rep = check_clustering(&net, &cl.cluster_of);
        assert_eq!(rep.unassigned, 0, "every node must be clustered");
        assert!(
            rep.max_radius <= 1.0 + 1e-9,
            "radius {} > 1",
            rep.max_radius
        );
        assert!(
            rep.max_clusters_per_unit_ball <= 30,
            "clusters per unit ball {} not O(1)",
            rep.max_clusters_per_unit_ball
        );
        assert!(rep.clusters >= 1);
        assert!(cl.rounds > 0);
    }

    #[test]
    fn dense_blob_becomes_one_or_few_clusters() {
        let (net, cl) = cluster_net(30, 0.8, 78);
        let rep = check_clustering(&net, &cl.cluster_of);
        assert_eq!(rep.unassigned, 0);
        // A blob of diameter ~1.1 can need a few clusters, but not many.
        assert!(
            rep.clusters <= 8,
            "blob split into {} clusters",
            rep.clusters
        );
    }

    #[test]
    fn centers_are_separated() {
        let (net, cl) = cluster_net(35, 2.5, 79);
        let rep = check_clustering(&net, &cl.cluster_of);
        // Definition §2: centers at distance ≥ 1 − ε (allow small slack for
        // the scaled-down schedules).
        assert!(
            rep.min_center_separation >= 0.5 * (1.0 - net.params().epsilon),
            "centers only {} apart",
            rep.min_center_separation
        );
        assert_eq!(cl.centers.len(), rep.clusters);
    }

    #[test]
    fn clustering_is_deterministic() {
        let (_, a) = cluster_net(25, 2.0, 80);
        let (_, b) = cluster_net(25, 2.0, 80);
        assert_eq!(a.cluster_of, b.cluster_of);
        assert_eq!(a.rounds, b.rounds);
    }
}
