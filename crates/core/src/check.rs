//! Invariant checkers for the paper's guarantees.
//!
//! These are *observer* utilities (they look at global state) used by the
//! test-suite and the experiment harness to validate protocol outcomes —
//! they are never consulted by per-node protocol logic.

use dcluster_sim::network::Network;
use dcluster_sim::{Reception, ResolverKind};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// A witnessed violation of the resolver-equivalence contract: two
/// backends returned different reception sets for the same round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolverDisagreement {
    /// Index of the transmitter set (round) in the audited sequence.
    pub round: usize,
    /// The reference backend (first in the audited list).
    pub reference: ResolverKind,
    /// The disagreeing backend.
    pub disagreeing: ResolverKind,
    /// Receptions per the reference backend, sorted by receiver.
    pub expected: Vec<Reception>,
    /// Receptions per the disagreeing backend, sorted by receiver.
    pub got: Vec<Reception>,
}

/// Audits resolver-backend equivalence over a sequence of rounds: replays
/// every transmitter set through each backend in `kinds` and returns the
/// first disagreement with `kinds[0]`, or `None` if all backends agree on
/// every round. Observer utility — used by the equivalence test-suites and
/// the `scale_resolvers` CI gate; protocol logic never consults it.
pub fn audit_resolver_equivalence(
    net: &Network,
    rounds: &[Vec<usize>],
    kinds: &[ResolverKind],
) -> Option<ResolverDisagreement> {
    let (&reference, rest) = kinds.split_first()?;
    let mut resolvers: Vec<_> = kinds.iter().map(|k| k.build()).collect();
    let mut expected = Vec::new();
    let mut got = Vec::new();
    for (round, tx) in rounds.iter().enumerate() {
        let (head, tail) = resolvers.split_first_mut().expect("nonempty"); // lint:allow(P1, reason = "guarded: kinds is nonempty (split_first above)")
        head.resolve_into(net, tx, &mut expected);
        expected.sort_by_key(|r| (r.receiver, r.sender));
        for (other, &kind) in tail.iter_mut().zip(rest) {
            other.resolve_into(net, tx, &mut got);
            got.sort_by_key(|r| (r.receiver, r.sender));
            if got != expected {
                return Some(ResolverDisagreement {
                    round,
                    reference,
                    disagreeing: kind,
                    expected,
                    got,
                });
            }
        }
    }
    None
}

/// Quality report for a clustering (paper §1.3's two conditions plus the
/// center-separation requirement of the r-clustering definition in §2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusteringReport {
    /// Number of nodes with no cluster.
    pub unassigned: usize,
    /// Number of distinct clusters.
    pub clusters: usize,
    /// Max distance from a member to its cluster center (condition (i):
    /// every cluster inside a ball of constant radius).
    pub max_radius: f64,
    /// Max number of distinct clusters with a member inside any unit ball
    /// centered at a node (condition (ii): O(1) clusters per unit ball).
    pub max_clusters_per_unit_ball: usize,
    /// Min pairwise distance between cluster centers (definition: centers
    /// ≥ 1 − ε apart).
    pub min_center_separation: f64,
}

/// Computes the report. `cluster_of[v]` is the cluster of node `v` (cluster
/// IDs are the paper IDs of the center nodes); `None` = unassigned.
pub fn check_clustering(net: &Network, cluster_of: &[Option<u64>]) -> ClusteringReport {
    let all: Vec<usize> = (0..net.len()).collect();
    check_clustering_on(net, cluster_of, &all)
}

/// [`check_clustering`] restricted to a participant subset (the awake set
/// under dynamics): only `nodes` are expected to be assigned, and only
/// their memberships count toward the radius / per-ball / separation
/// measurements — an asleep node with a stale assignment is invisible.
pub fn check_clustering_on(
    net: &Network,
    cluster_of: &[Option<u64>],
    nodes: &[usize],
) -> ClusteringReport {
    let mut in_subset = vec![false; net.len()];
    for &v in nodes {
        in_subset[v] = true;
    }
    let unassigned = nodes.iter().filter(|&&v| cluster_of[v].is_none()).count();
    let mut members: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for &v in nodes {
        if let Some(c) = cluster_of[v] {
            members.entry(c).or_default().push(v);
        }
    }
    // Radius around the center node (the node whose ID is the cluster ID).
    let mut max_radius: f64 = 0.0;
    for (&c, vs) in &members {
        if let Some(center) = net.index_of(c) {
            for &v in vs {
                max_radius = max_radius.max(net.pos(v).dist(net.pos(center)));
            }
        }
    }
    // Clusters intersecting unit balls centered at participant nodes.
    let r = net.params().range();
    let mut max_cpb = 0;
    for &v in nodes {
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        for u in net.grid().within(net.points(), net.pos(v), r) {
            if !in_subset[u] {
                continue;
            }
            if let Some(c) = cluster_of[u] {
                seen.insert(c);
            }
        }
        max_cpb = max_cpb.max(seen.len());
    }
    // Center separation.
    let centers: Vec<usize> = members.keys().filter_map(|&c| net.index_of(c)).collect();
    let mut min_sep = f64::INFINITY;
    for i in 0..centers.len() {
        for j in i + 1..centers.len() {
            min_sep = min_sep.min(net.pos(centers[i]).dist(net.pos(centers[j])));
        }
    }
    ClusteringReport {
        unassigned,
        clusters: members.len(),
        max_radius,
        max_clusters_per_unit_ball: max_cpb,
        min_center_separation: min_sep,
    }
}

/// True iff `heard_by` witnesses a successful **local broadcast**: every
/// node's message was received by each of its communication-graph
/// neighbors (the problem definition, §1.1).
// lint:allow(D1, reason = "delivery-witness sets; membership queries only")
pub fn local_broadcast_complete(net: &Network, heard_by: &[HashSet<usize>]) -> bool {
    missing_deliveries(net, heard_by).is_empty()
}

/// The `(sender, neighbor)` pairs still missing for a complete local
/// broadcast.
// lint:allow(D1, reason = "delivery-witness sets; membership queries only")
pub fn missing_deliveries(net: &Network, heard_by: &[HashSet<usize>]) -> Vec<(usize, usize)> {
    assert!(
        heard_by.len() >= net.len(),
        "heard_by covers {} of {} nodes",
        heard_by.len(),
        net.len()
    );
    let g = net.comm_graph();
    let mut out = Vec::new();
    for (v, heard) in heard_by.iter().enumerate().take(net.len()) {
        for &u in g.neighbors(v) {
            if !heard.contains(&(u as usize)) {
                out.push((v, u as usize));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcluster_sim::Point;

    fn two_cluster_net() -> (Network, Vec<Option<u64>>) {
        // Cluster 1 centered at node 0 (id 1), cluster 4 at node 3 (id 4).
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.3, 0.0),
            Point::new(0.0, 0.4),
            Point::new(5.0, 0.0),
            Point::new(5.2, 0.1),
        ];
        let net = Network::builder(pts).build().unwrap();
        let cluster_of = vec![Some(1), Some(1), Some(1), Some(4), Some(4)];
        (net, cluster_of)
    }

    #[test]
    fn report_measures_radius_and_separation() {
        let (net, cl) = two_cluster_net();
        let rep = check_clustering(&net, &cl);
        assert_eq!(rep.unassigned, 0);
        assert_eq!(rep.clusters, 2);
        assert!((rep.max_radius - 0.4).abs() < 1e-9);
        assert!((rep.min_center_separation - 5.0).abs() < 1e-9);
        assert_eq!(rep.max_clusters_per_unit_ball, 1);
    }

    #[test]
    fn unassigned_nodes_are_counted() {
        let (net, mut cl) = two_cluster_net();
        cl[2] = None;
        assert_eq!(check_clustering(&net, &cl).unassigned, 1);
    }

    #[test]
    fn subset_report_ignores_non_participants() {
        let (net, mut cl) = two_cluster_net();
        // Node 2 is asleep with a stale (even absurd) assignment: the
        // subset report must not see it.
        cl[2] = Some(4);
        let awake = vec![0, 1, 3, 4];
        let rep = check_clustering_on(&net, &cl, &awake);
        assert_eq!(rep.unassigned, 0);
        assert_eq!(rep.clusters, 2);
        assert!(
            (rep.max_radius - 0.3).abs() < 1e-9,
            "stale member of cluster 4 at distance 5+ must be invisible, got {}",
            rep.max_radius
        );
        // Waking it back up makes the absurd assignment visible again.
        let all: Vec<usize> = (0..net.len()).collect();
        let rep_all = check_clustering_on(&net, &cl, &all);
        assert!(rep_all.max_radius > 4.0);
        assert_eq!(
            check_clustering(&net, &cl),
            rep_all,
            "full-set report is the subset report over all nodes"
        );
    }

    #[test]
    fn resolver_audit_passes_on_equivalent_backends() {
        use dcluster_sim::{deploy, Rng64};
        let mut rng = Rng64::new(5);
        let net = Network::builder(deploy::uniform_square(60, 2.5, &mut rng))
            .build()
            .unwrap();
        let rounds: Vec<Vec<usize>> = (0..8)
            .map(|r| (0..net.len()).filter(|v| (v + r) % 3 == 0).collect())
            .collect();
        assert_eq!(
            audit_resolver_equivalence(&net, &rounds, &ResolverKind::ALL),
            None,
            "every backend must agree on every audited round"
        );
        assert_eq!(
            audit_resolver_equivalence(&net, &rounds, &[]),
            None,
            "empty backend list trivially agrees"
        );
    }

    #[test]
    fn local_broadcast_check_spots_missing_pairs() {
        let (net, _) = two_cluster_net();
        let mut heard: Vec<HashSet<usize>> = vec![HashSet::new(); net.len()];
        // Saturate everything…
        for (v, hv) in heard.iter_mut().enumerate() {
            for &u in net.comm_graph().neighbors(v) {
                hv.insert(u as usize);
            }
        }
        assert!(local_broadcast_complete(&net, &heard));
        // …then break one delivery.
        let v = 0;
        let u = *net.comm_graph().neighbors(v).first().unwrap() as usize;
        heard[v].remove(&u);
        assert_eq!(missing_deliveries(&net, &heard), vec![(v, u)]);
    }
}
