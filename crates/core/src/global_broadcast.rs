//! `SMSBroadcast` — Algorithm 8 (Theorem 3): sparse multiple-source
//! broadcast, and ordinary global broadcast as its single-source case.
//!
//! Runs in phases; phase `i` makes every node awakened in phase `i−1`
//! perform local broadcast, so the awake set swallows one
//! communication-graph layer per phase (`⋃_{j≤i} V_j ⊆ ⋃_{j≤i} L_j`).
//! Each phase: **Stage 1** — imperfect labeling of the (1-clustered) layer;
//! **Stage 2** — one SNS per label value carrying the payload; sleeping
//! receivers wake and *inherit the cluster of their awakener*, giving a
//! 2-clustering of the new layer; **Stage 3** — `RadiusReduction` restores
//! a 1-clustering. Total `O(D(∆ + log* N) log N)` rounds.

use crate::check::missing_deliveries;
use crate::labeling::imperfect_labeling;
use crate::mis::MisStrategy;
use crate::msg::Msg;
use crate::params::ProtocolParams;
use crate::radius::radius_reduction;
use crate::run::SeedSeq;
use crate::sns::run_sns;
use crate::sparsify::full_sparsification;
use dcluster_sim::engine::Engine;
use std::collections::HashSet;

/// Per-phase progress record (drives the Figure 1 experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseRecord {
    /// Phase number (1-based; phase 0 is the source SNS).
    pub phase: usize,
    /// Nodes awakened during this phase.
    pub newly_awake: usize,
    /// Awake total after the phase.
    pub awake_total: usize,
    /// Rounds spent in this phase.
    pub rounds: u64,
    /// Stage 1 (imperfect labeling) rounds.
    pub stage1_rounds: u64,
    /// Stage 2 (label-by-label SNS local broadcast) rounds.
    pub stage2_rounds: u64,
    /// Stage 3 (radius reduction) rounds.
    pub stage3_rounds: u64,
}

/// Result of a (multi-source) global broadcast.
#[derive(Debug, Clone)]
pub struct BroadcastOutcome {
    /// Rounds consumed end-to-end.
    pub rounds: u64,
    /// Whether every node is awake (SMSB condition (a)).
    pub delivered_all: bool,
    /// Whether every node's own transmission reached all its comm-graph
    /// neighbors (SMSB condition (b)).
    pub local_broadcast_ok: bool,
    /// Awake flags at the end.
    pub awake: Vec<bool>,
    /// Final cluster of each node.
    pub cluster_of: Vec<Option<u64>>,
    /// Phase-by-phase progress.
    pub phases: Vec<PhaseRecord>,
}

/// Runs Algorithm 8 from the source set `sources` (pairwise distance
/// greater than 1 − ε, the SMSB precondition) with density bound `delta`;
/// `data` is the broadcast payload.
pub fn sms_broadcast(
    engine: &mut Engine<'_>,
    params: &ProtocolParams,
    seeds: &mut SeedSeq,
    sources: &[usize],
    delta: usize,
    data: u64,
) -> BroadcastOutcome {
    engine.begin_phase("global_broadcast");
    let start = engine.round();
    let net = engine.network();
    let n = net.len();
    debug_assert!(
        sources.iter().all(|&a| sources
            .iter()
            .all(|&b| a == b || net.pos(a).dist(net.pos(b)) > net.params().comm_radius())),
        "SMSB requires pairwise source distance > 1 − ε"
    );

    let mut awake = vec![false; n];
    let mut cluster_of: Vec<Option<u64>> = vec![None; n];
    let mut heard_by: Vec<HashSet<usize>> = vec![HashSet::new(); n]; // lint:allow(D1, reason = "delivery-witness sets; membership queries only")
    let mut phases: Vec<PhaseRecord> = Vec::new();

    // Phase 0 (Alg. 8 lines 1–2): sources transmit via SNS; receivers wake
    // and join the cluster of their awakener (= the source's ID).
    for &s in sources {
        awake[s] = true;
        cluster_of[s] = Some(net.id(s));
    }
    let mut layer: Vec<usize> = {
        let net = engine.network();
        let run = run_sns(engine, params, seeds, sources, |v| Msg::Payload {
            id: net.id(v),
            cluster: net.id(v),
            data,
        });
        let mut new_layer = Vec::new();
        for (recv, sender, msg) in run.receptions {
            heard_by[sender].insert(recv);
            if let Msg::Payload { cluster, .. } = msg {
                if !awake[recv] {
                    awake[recv] = true;
                    cluster_of[recv] = Some(cluster);
                    new_layer.push(recv);
                }
            }
        }
        new_layer.sort_unstable();
        new_layer
    };

    // Phases 1, 2, … (lines 3–6): loop while the previous phase woke nodes.
    // The paper runs ⌈D⌉ phases (D is known); we stop when a phase wakes
    // nobody — the same point, observed — and cap at n for safety.
    let mut phase_no = 0usize;
    while !layer.is_empty() && phase_no < n {
        phase_no += 1;
        let phase_start = engine.round();

        // Stage 1: imperfect labeling of the 1-clustered layer.
        let clusters: Vec<u64> = (0..n).map(|v| cluster_of[v].unwrap_or(0)).collect();
        let fs = full_sparsification(engine, params, seeds, delta, &layer, &clusters);
        let lab = imperfect_labeling(engine, &fs, params.kappa);
        let stage1_end = engine.round();

        // Stage 2: local broadcast from the layer, label by label; sleepers
        // wake and inherit clusters (2-clustering of the new layer).
        let label_bound = if params.adaptive {
            lab.max_label() as usize
        } else {
            delta.max(1)
        };
        let mut newly: Vec<usize> = Vec::new();
        for l in 1..=label_bound as u32 {
            let members: Vec<usize> = layer
                .iter()
                .copied()
                .filter(|&v| lab.label[v] == l)
                .collect();
            if members.is_empty() {
                continue;
            }
            let net = engine.network();
            let clusters_now: Vec<u64> = (0..n).map(|v| cluster_of[v].unwrap_or(0)).collect();
            let run = run_sns(engine, params, seeds, &members, |v| Msg::Payload {
                id: net.id(v),
                cluster: clusters_now[v],
                data,
            });
            for (recv, sender, msg) in run.receptions {
                heard_by[sender].insert(recv);
                if let Msg::Payload { cluster, .. } = msg {
                    if !awake[recv] {
                        awake[recv] = true;
                        cluster_of[recv] = Some(cluster);
                        newly.push(recv);
                    }
                }
            }
        }
        newly.sort_unstable();
        newly.dedup();
        let stage2_end = engine.round();

        // Stage 3: the inherited clustering has radius ≤ 2; reduce to 1.
        if !newly.is_empty() {
            let old: Vec<u64> = (0..n).map(|v| cluster_of[v].unwrap_or(0)).collect();
            let rr = radius_reduction(
                engine,
                params,
                seeds,
                delta,
                &newly,
                &old,
                2.0,
                MisStrategy::GreedyById,
            );
            for &v in &newly {
                if let Some(c) = rr.cluster_of[v] {
                    cluster_of[v] = Some(c);
                }
            }
        }

        phases.push(PhaseRecord {
            phase: phase_no,
            newly_awake: newly.len(),
            awake_total: awake.iter().filter(|&&a| a).count(),
            rounds: engine.round() - phase_start,
            stage1_rounds: stage1_end - phase_start,
            stage2_rounds: stage2_end - stage1_end,
            stage3_rounds: engine.round() - stage2_end,
        });
        layer = newly;
    }

    let delivered_all = awake.iter().all(|&a| a);
    let local_broadcast_ok =
        delivered_all && missing_deliveries(engine.network(), &heard_by).is_empty();
    engine.end_phase();
    BroadcastOutcome {
        rounds: engine.round() - start,
        delivered_all,
        local_broadcast_ok,
        awake,
        cluster_of,
        phases,
    }
}

/// Global broadcast (Theorem 3's corollary): SMSB from a single source.
pub fn global_broadcast(
    engine: &mut Engine<'_>,
    params: &ProtocolParams,
    seeds: &mut SeedSeq,
    source: usize,
    delta: usize,
    data: u64,
) -> BroadcastOutcome {
    sms_broadcast(engine, params, seeds, &[source], delta, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcluster_sim::rng::Rng64;
    use dcluster_sim::{deploy, Network};

    fn corridor_net(seed: u64) -> Network {
        let mut rng = Rng64::new(seed);
        let pts = deploy::corridor_with_spine(25, 6.0, 1.0, 0.5, &mut rng);
        Network::builder(pts).build().unwrap()
    }

    #[test]
    fn broadcast_wakes_the_whole_corridor() {
        let net = corridor_net(201);
        assert!(net.comm_graph().is_connected());
        let params = ProtocolParams::practical();
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::new(&net);
        let out = global_broadcast(&mut engine, &params, &mut seeds, 0, net.density(), 42);
        assert!(out.delivered_all, "some nodes never woke: {:?}", out.awake);
        assert!(out.rounds > 0);
        assert!(!out.phases.is_empty());
    }

    #[test]
    fn awake_set_grows_monotonically_over_phases() {
        let net = corridor_net(202);
        let params = ProtocolParams::practical();
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::new(&net);
        let out = global_broadcast(&mut engine, &params, &mut seeds, 0, net.density(), 7);
        let mut prev = 0;
        for p in &out.phases {
            assert!(p.awake_total >= prev);
            prev = p.awake_total;
        }
    }

    #[test]
    fn multi_source_broadcast_is_faster_than_single() {
        let net = corridor_net(203);
        let params = ProtocolParams::practical();
        let delta = net.density();
        // Two sources at opposite ends (far apart ⇒ valid SMSB input).
        let left = (0..net.len())
            .min_by(|&a, &b| net.pos(a).x.partial_cmp(&net.pos(b).x).unwrap())
            .unwrap();
        let right = (0..net.len())
            .max_by(|&a, &b| net.pos(a).x.partial_cmp(&net.pos(b).x).unwrap())
            .unwrap();

        let mut seeds1 = SeedSeq::new(params.seed);
        let mut e1 = Engine::new(&net);
        let single = global_broadcast(&mut e1, &params, &mut seeds1, left, delta, 1);

        let mut seeds2 = SeedSeq::new(params.seed);
        let mut e2 = Engine::new(&net);
        let double = sms_broadcast(&mut e2, &params, &mut seeds2, &[left, right], delta, 1);

        assert!(single.delivered_all && double.delivered_all);
        assert!(
            double.phases.len() <= single.phases.len(),
            "two opposite sources can't need more phases"
        );
    }

    #[test]
    fn every_awake_node_eventually_broadcasts_locally() {
        let net = corridor_net(204);
        let params = ProtocolParams::practical();
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::new(&net);
        let out = global_broadcast(&mut engine, &params, &mut seeds, 0, net.density(), 9);
        assert!(out.delivered_all);
        assert!(
            out.local_broadcast_ok,
            "SMSB condition (b): every node transmits to all its neighbors"
        );
    }
}
