//! Imperfect labeling of clusters — Lemma 11.
//!
//! `FullSparsification` splits each cluster into `O(1)` trees (roots = the
//! final level `A_k`; edges = child→parent links). Replaying the recorded
//! schedules in creation order gives bottom-up communication (children were
//! always removed before their parents), and in reverse order top-down.
//! The classic tree-labeling follows: (1) bottom-up subtree sizes;
//! (2) top-down range splitting — a node with range `[a, b]` takes label
//! `a` and hands consecutive sub-ranges of `[a+1, b]` to its children.
//! Labels are ≤ cluster size ≤ Γ, and each label value occurs at most once
//! per tree, hence `O(1)` times per cluster: a *c-imperfect labeling*.

use crate::msg::Msg;
use crate::sparsify::LevelsOutcome;
use dcluster_sim::engine::Engine;
use std::collections::{BTreeMap, BTreeSet};

/// The labeling produced by [`imperfect_labeling`].
#[derive(Debug, Clone)]
pub struct Labeling {
    /// `label[v] ≥ 1` for participating nodes, 0 for non-members.
    pub label: Vec<u32>,
    /// Subtree size of each node in the sparsification forest.
    pub subtree_size: Vec<u32>,
}

impl Labeling {
    /// The largest label assigned.
    pub fn max_label(&self) -> u32 {
        self.label.iter().copied().max().unwrap_or(0)
    }

    /// Multiplicity of the most repeated (cluster, label) pair — the
    /// imperfection constant `c` actually achieved (Lemma 11 promises
    /// `O(1)`).
    pub fn imperfection(&self, cluster_of: &[u64]) -> usize {
        let mut counts: BTreeMap<(u64, u32), usize> = BTreeMap::new();
        for (v, &l) in self.label.iter().enumerate() {
            if l > 0 {
                *counts.entry((cluster_of[v], l)).or_insert(0) += 1;
            }
        }
        counts.values().copied().max().unwrap_or(0)
    }
}

/// Computes the Lemma 11 labeling from a finished sparsification forest.
/// Costs `O(κ · Σ |S_u|) = O(Γ log N)` rounds (one bottom-up pass plus κ
/// top-down sub-passes per unit).
pub fn imperfect_labeling(engine: &mut Engine<'_>, out: &LevelsOutcome, kappa: usize) -> Labeling {
    engine.begin_phase("labeling");
    let net = engine.network();
    let n = net.len();
    let members = &out.levels[0];
    let parent = out.parent_array(n);

    // Children of each parent within each unit, and the parent's full
    // ordered child list (acquisition order: by unit, then by child ID) —
    // the parent knows both from the `Parent` messages it received.
    let mut children_in_unit: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
    let mut all_children: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new(); // parent → [(unit, child)]
    for l in &out.links {
        children_in_unit
            .entry((l.parent, l.unit))
            .or_default()
            .push(l.child);
        all_children
            .entry(l.parent)
            .or_default()
            .push((l.unit, l.child));
    }
    for list in children_in_unit.values_mut() {
        list.sort_unstable_by_key(|&c| net.id(c));
    }
    for list in all_children.values_mut() {
        list.sort_unstable_by_key(|&(u, c)| (u, net.id(c)));
    }

    // ---- Bottom-up: subtree sizes. Children removed at unit u transmit
    // their (final) size during the replay of unit u; creation order
    // guarantees a node hears all its children before its own turn.
    let mut size: Vec<u32> = vec![1; n];
    for (u_idx, unit) in out.units.iter().enumerate() {
        let sends: BTreeSet<usize> = out
            .links
            .iter()
            .filter(|l| l.unit == u_idx)
            .map(|l| l.child)
            .collect();
        if sends.is_empty() {
            continue; // nothing to aggregate on this unit
        }
        let net = engine.network();
        let size_snapshot = size.clone();
        let mut credited: BTreeSet<(usize, usize)> = BTreeSet::new(); // (parent, child)
        let parent_ref = &parent;
        let sends_ref = &sends;
        let mut add: Vec<(usize, u32)> = Vec::new();
        unit.run(
            engine,
            |v| {
                if sends_ref.contains(&v) {
                    Msg::Subtree {
                        id: net.id(v),
                        size: size_snapshot[v],
                    }
                } else {
                    Msg::Hello {
                        id: net.id(v),
                        cluster: 0,
                    }
                }
            },
            &mut |recv, _lr, sender, msg| {
                if let Msg::Subtree { size: s, .. } = msg {
                    if parent_ref[sender] == Some(recv) && credited.insert((recv, sender)) {
                        add.push((recv, *s));
                    }
                }
            },
        );
        for (p, s) in add {
            size[p] += s;
        }
        // Delivery audit: every child's size must have reached its parent
        // (guaranteed by the replay-unit property; assert in debug).
        debug_assert!(
            sends
                .iter()
                .all(|&c| credited.contains(&(parent[c].unwrap(), c))), // lint:allow(P1, reason = "inside an invariant assertion; every send has a parent")
            "a subtree-size message failed to reach its parent"
        );
    }

    // ---- Top-down: ranges. Roots start with [1, size]; processing units
    // in reverse order, each parent hands consecutive chunks to the
    // children it acquired at that unit (≤ κ of them ⇒ κ sub-replays).
    let mut range: Vec<Option<(u32, u32)>> = vec![None; n];
    for &v in members {
        if parent[v].is_none() {
            range[v] = Some((1, size[v]));
        }
    }
    // Chunk offsets per parent: child i's range starts after the parent's
    // own label and all earlier children's subtrees.
    let chunk_of = |p: usize, child: usize, range_p: (u32, u32)| -> (u32, u32) {
        let mut lo = range_p.0 + 1;
        for &(_, c) in &all_children[&p] {
            if c == child {
                return (lo, lo + size[c] - 1);
            }
            lo += size[c];
        }
        unreachable!("child not in parent's list");
    };

    for (u_idx, unit) in out.units.iter().enumerate().rev() {
        let max_fanout = children_in_unit
            .iter()
            .filter(|((_, u), _)| *u == u_idx)
            .map(|(_, cs)| cs.len())
            .max()
            .unwrap_or(0);
        for j in 0..max_fanout.min(kappa.max(max_fanout)) {
            let net = engine.network();
            let range_ref = &range;
            let children_ref = &children_in_unit;
            let mut assign: Vec<(usize, u32, u32)> = Vec::new();
            unit.run(
                engine,
                |v| {
                    if let Some(rp) = range_ref[v] {
                        if let Some(cs) = children_ref.get(&(v, u_idx)) {
                            if let Some(&c) = cs.get(j) {
                                let (lo, hi) = chunk_of(v, c, rp);
                                return Msg::Range {
                                    child: net.id(c),
                                    lo,
                                    hi,
                                };
                            }
                        }
                    }
                    Msg::Hello {
                        id: net.id(v),
                        cluster: 0,
                    }
                },
                &mut |recv, _lr, _s, msg| {
                    if let Msg::Range { child, lo, hi } = msg {
                        if *child == net.id(recv) {
                            assign.push((recv, *lo, *hi));
                        }
                    }
                },
            );
            for (v, lo, hi) in assign {
                range[v] = Some((lo, hi));
            }
        }
    }

    let label: Vec<u32> = range.iter().map(|r| r.map_or(0, |(lo, _)| lo)).collect();
    engine.end_phase();
    Labeling {
        label,
        subtree_size: size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ProtocolParams;
    use crate::run::SeedSeq;
    use crate::sparsify::full_sparsification;
    use dcluster_sim::rng::Rng64;
    use dcluster_sim::{deploy, Network};

    fn label_blob(n: usize, seed: u64) -> (Network, Labeling, Vec<u64>) {
        let mut rng = Rng64::new(seed);
        let net = Network::builder(deploy::uniform_square(n, 1.4, &mut rng))
            .build()
            .unwrap();
        let params = ProtocolParams::practical();
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::new(&net);
        let all: Vec<usize> = (0..net.len()).collect();
        let cluster_of = vec![3u64; net.len()];
        let out = full_sparsification(
            &mut engine,
            &params,
            &mut seeds,
            net.density(),
            &all,
            &cluster_of,
        );
        let lab = imperfect_labeling(&mut engine, &out, params.kappa);
        (net, lab, cluster_of)
    }

    #[test]
    fn every_member_gets_a_positive_label() {
        let (net, lab, _) = label_blob(35, 8);
        for v in 0..net.len() {
            assert!(lab.label[v] >= 1, "node {v} unlabeled");
        }
    }

    #[test]
    fn labels_are_bounded_by_cluster_size() {
        let (net, lab, _) = label_blob(35, 9);
        assert!(
            lab.max_label() as usize <= net.len(),
            "label {} exceeds cluster size {}",
            lab.max_label(),
            net.len()
        );
    }

    #[test]
    fn imperfection_is_constant() {
        let (_, lab, cluster_of) = label_blob(40, 10);
        let c = lab.imperfection(&cluster_of);
        // One cluster splits into O(1) trees; each label occurs once per tree.
        assert!(c <= 10, "imperfection {c} not constant-ish");
    }

    #[test]
    fn labels_within_a_tree_are_unique() {
        let (net, lab, _) = label_blob(30, 11);
        // Tree membership: follow parents to the root.
        // (Reconstructed from the labeling invariants: within one tree the
        // range-splitting makes labels unique; across trees they may repeat.
        // We check global pair (root, label) uniqueness.)
        // Roots are not directly exposed; check label multiset sanity:
        let mut labels: Vec<u32> = (0..net.len()).map(|v| lab.label[v]).collect();
        labels.sort_unstable();
        // label 1 appears once per tree; counts of "1" equal number of trees.
        let trees = labels.iter().filter(|&&l| l == 1).count();
        assert!(trees >= 1);
        // No label exceeds the number of nodes.
        assert!(*labels.last().unwrap() as usize <= net.len());
    }

    #[test]
    fn subtree_sizes_sum_to_membership() {
        let (net, lab, _) = label_blob(25, 12);
        // Roots' sizes sum to n (every node in exactly one tree).
        // Roots are the nodes with label 1.
        let total: u32 = (0..net.len())
            .filter(|&v| lab.label[v] == 1)
            .map(|v| lab.subtree_size[v])
            .sum();
        assert_eq!(total as usize, net.len());
    }
}
