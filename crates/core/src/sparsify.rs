//! Network sparsification — Algorithms 2–4 (Lemmas 8–10).
//!
//! `Sparsification` repeatedly builds a proximity graph, selects an
//! independent set `Y`, and turns `Y`-adjacent nodes into *children* of
//! `Y`-nodes (their *parents*); children and parents leave the active set.
//! Each pass shrinks every dense cluster, so after `O(Γ)` passes the
//! returned set (`Active ∪ Prnts`) has per-cluster density ≤ ¾Γ (Lemma 8).
//! The child↔parent links live on proximity-graph edges, so the recorded
//! [`ReplayUnit`]s allow later tree communication (Lemma 11's labeling).
//!
//! `SparsificationU` (Alg. 3) iterates the unclustered variant `χ(5, 1−ε)`
//! times (the saturation argument of Lemma 9); `FullSparsification`
//! (Alg. 4) iterates with geometrically shrinking density targets until
//! constant density, producing the level sets `A_0 ⊇ A_1 ⊇ … ⊇ A_k`.

use crate::mis::{local_minima, local_mis, MisStrategy};
use crate::msg::Msg;
use crate::params::ProtocolParams;
use crate::proximity::build_proximity_graph;
use crate::run::{ReplayUnit, SeedSeq};
use dcluster_sim::engine::Engine;
use dcluster_sim::metrics::chi_upper;

/// A child → parent link created during sparsification, tagged with the
/// replay unit (proximity exchange schedule) on which it lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// The removed (child) node.
    pub child: usize,
    /// Its parent (an independent-set node of the same cluster).
    pub parent: usize,
    /// Index into the owner's `units` vector.
    pub unit: usize,
}

/// Outcome of one `Sparsification` call (Alg. 2).
#[derive(Debug, Clone)]
pub struct SparsifyOutcome {
    /// The returned set `Active ∪ Prnts` (node indices, sorted).
    pub kept: Vec<usize>,
    /// Child→parent links created, in creation order.
    pub links: Vec<Link>,
    /// Replay units, one per executed iteration (referenced by links).
    pub units: Vec<ReplayUnit>,
    /// Iterations actually executed.
    pub iterations: usize,
}

/// Which independent-set rule Alg. 2 uses (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndependentSetRule {
    /// Local minima of `H` (clustered case).
    LocalMinima,
    /// Simulated LOCAL MIS (unclustered case).
    Mis(MisStrategy),
}

/// Runs Alg. 2 on the nodes `x` with densities bounded by `gamma`.
/// `cluster_of[v]` gives clusters (ignored when `rule` is `Mis`, i.e. the
/// unclustered case — the paper's `cluster(v) = 1` convention).
pub fn sparsification(
    engine: &mut Engine<'_>,
    params: &ProtocolParams,
    seeds: &mut SeedSeq,
    gamma: usize,
    x: &[usize],
    cluster_of: &[u64],
    rule: IndependentSetRule,
) -> SparsifyOutcome {
    let net = engine.network();
    let n = net.len();
    let clustered = matches!(rule, IndependentSetRule::LocalMinima);
    let mut active: Vec<usize> = x.to_vec();
    active.sort_unstable();
    let mut parents_kept: Vec<usize> = Vec::new();
    let mut links: Vec<Link> = Vec::new();
    let mut units: Vec<ReplayUnit> = Vec::new();

    let max_iter = params.cap(gamma.max(1));
    let mut idle_streak = 0usize;
    let mut iterations = 0usize;

    for _ in 0..max_iter {
        if active.len() < 2 {
            break;
        }
        iterations += 1;
        let p = build_proximity_graph(engine, params, seeds, &active, cluster_of, clustered);
        let y: Vec<bool> = match rule {
            IndependentSetRule::LocalMinima => {
                let ids: Vec<u64> = (0..n).map(|v| net.id(v)).collect();
                local_minima(&ids, &active, &p.adj)
            }
            IndependentSetRule::Mis(strategy) => local_mis(
                engine,
                &p.unit,
                &active,
                &p.adj,
                params.kappa,
                net.max_id(),
                strategy,
            ),
        };
        // NewChl: active nodes outside Y with a Y-neighbor; parent = min-ID
        // such neighbor (Alg. 2 line 8).
        let mut new_links: Vec<Link> = Vec::new();
        for &v in &active {
            if y[v] {
                continue;
            }
            let parent = p
                .adj
                .get(&v)
                .into_iter()
                .flatten()
                .copied()
                .filter(|&u| y[u])
                .min_by_key(|&u| net.id(u));
            if let Some(u) = parent {
                new_links.push(Link {
                    child: v,
                    parent: u,
                    unit: units.len(),
                });
            }
        }
        // Child→parent notification replay (Alg. 2 lines 7–9): children
        // announce their chosen parent; everyone else transmits padding so
        // the reception pattern is preserved.
        {
            let net = engine.network();
            let mut announce: Vec<Option<u64>> = vec![None; n];
            for l in &new_links {
                announce[l.child] = Some(net.id(l.parent));
            }
            p.unit.run(
                engine,
                |v| match announce[v] {
                    Some(pid) => Msg::Parent {
                        child: net.id(v),
                        parent: pid,
                    },
                    None => Msg::Hello {
                        id: net.id(v),
                        cluster: cluster_of[v],
                    },
                },
                &mut |_recv, _lr, _s, _m| { /* parents learn children */ },
            );
        }
        units.push(p.unit);

        if new_links.is_empty() {
            idle_streak += 1;
            if params.adaptive && idle_streak >= 2 {
                break;
            }
            continue;
        }
        idle_streak = 0;
        let mut is_child = vec![false; n];
        let mut is_parent = vec![false; n];
        for l in &new_links {
            is_child[l.child] = true;
            is_parent[l.parent] = true;
        }
        links.extend(new_links);
        for &v in &active {
            if is_parent[v] {
                parents_kept.push(v);
            }
        }
        active.retain(|&v| !is_child[v] && !is_parent[v]);
    }

    let mut kept = active;
    kept.extend(parents_kept);
    kept.sort_unstable();
    kept.dedup();
    SparsifyOutcome {
        kept,
        links,
        units,
        iterations,
    }
}

/// Outcome of `SparsificationU` (Alg. 3) / `FullSparsification` (Alg. 4):
/// nested level sets plus the accumulated replayable forest.
#[derive(Debug, Clone)]
pub struct LevelsOutcome {
    /// `A_0 ⊇ A_1 ⊇ … ⊇ A_k` (node-index lists; `A_0` = input).
    pub levels: Vec<Vec<usize>>,
    /// All replay units, globally ordered (earlier = created earlier).
    pub units: Vec<ReplayUnit>,
    /// All links; `unit` indexes the global `units`.
    pub links: Vec<Link>,
    /// Unit-index range of each transition: `steps[t]` produced
    /// `levels[t+1]` from `levels[t]` (one `Sparsification` call each).
    pub steps: Vec<std::ops::Range<usize>>,
}

impl LevelsOutcome {
    /// The final (sparsest) level.
    pub fn last(&self) -> &[usize] {
        self.levels.last().expect("at least the input level") // lint:allow(P1, reason = "levels always holds the input level")
    }

    /// Parent array over the whole network (None = root or non-member).
    pub fn parent_array(&self, n: usize) -> Vec<Option<usize>> {
        let mut parent = vec![None; n];
        for l in &self.links {
            debug_assert!(parent[l.child].is_none(), "child relinked");
            parent[l.child] = Some(l.parent);
        }
        parent
    }
}

fn merge(base: &mut LevelsOutcome, out: SparsifyOutcome) {
    let offset = base.units.len();
    base.units.extend(out.units);
    base.links.extend(out.links.into_iter().map(|l| Link {
        unit: l.unit + offset,
        ..l
    }));
    base.steps.push(offset..base.units.len());
    base.levels.push(out.kept);
}

/// Alg. 3 — `SparsificationU`: unclustered sparsification repeated up to
/// `χ(5, 1−ε)` times (adaptive: stops when the measured density drops to
/// ¾Γ). Returns the level sets `X_0 ⊇ … ⊇ X_l` and schedules.
pub fn sparsification_u(
    engine: &mut Engine<'_>,
    params: &ProtocolParams,
    seeds: &mut SeedSeq,
    gamma: usize,
    x: &[usize],
    strategy: MisStrategy,
) -> LevelsOutcome {
    engine.begin_phase("sparsify");
    let eps = engine.network().params().epsilon;
    let l_bound = params.cap(chi_upper(5.0, 1.0 - eps));
    let mut out = LevelsOutcome {
        levels: vec![x.to_vec()],
        units: Vec::new(),
        links: Vec::new(),
        steps: Vec::new(),
    };
    let dummy_clusters = vec![1u64; engine.network().len()];
    for _ in 0..l_bound {
        let current = out.last().to_vec();
        if current.len() < 2 {
            break;
        }
        let step = sparsification(
            engine,
            params,
            seeds,
            gamma,
            &current,
            &dummy_clusters,
            IndependentSetRule::Mis(strategy),
        );
        let progressed = step.kept.len() < current.len();
        merge(&mut out, step);
        if params.adaptive {
            let density = subset_density(engine, out.last());
            if 4 * density <= 3 * gamma || !progressed {
                break;
            }
        }
    }
    engine.end_phase();
    out
}

/// Alg. 4 — `FullSparsification`: clustered sparsification with density
/// targets `Γ, ¾Γ, (¾)²Γ, …` until the remaining set has constant
/// per-cluster density. Returns `A_0 ⊇ A_1 ⊇ … ⊇ A_k`.
pub fn full_sparsification(
    engine: &mut Engine<'_>,
    params: &ProtocolParams,
    seeds: &mut SeedSeq,
    gamma: usize,
    a: &[usize],
    cluster_of: &[u64],
) -> LevelsOutcome {
    engine.begin_phase("sparsify");
    // k = log_{4/3} Γ  (paper line 2).
    let k = ((gamma.max(2) as f64).ln() / (4.0f64 / 3.0).ln()).ceil() as usize;
    let mut out = LevelsOutcome {
        levels: vec![a.to_vec()],
        units: Vec::new(),
        links: Vec::new(),
        steps: Vec::new(),
    };
    let mut lambda = gamma as f64;
    for _ in 0..params.cap(k) {
        let current = out.last().to_vec();
        if current.len() < 2 {
            break;
        }
        let step = sparsification(
            engine,
            params,
            seeds,
            (lambda.ceil() as usize).max(1),
            &current,
            cluster_of,
            IndependentSetRule::LocalMinima,
        );
        let progressed = step.kept.len() < current.len();
        merge(&mut out, step);
        lambda *= 0.75;
        if params.adaptive && (!progressed || max_cluster_size(out.last(), cluster_of) <= 2) {
            break;
        }
    }
    engine.end_phase();
    out
}

/// Measured unclustered density of a node subset (observer utility used by
/// the adaptive loop caps and by tests).
pub fn subset_density(engine: &Engine<'_>, subset: &[usize]) -> usize {
    let net = engine.network();
    let r = net.params().range();
    subset
        .iter()
        .map(|&v| {
            subset
                .iter()
                .filter(|&&u| net.pos(u).dist(net.pos(v)) <= r)
                .count()
        })
        .max()
        .unwrap_or(0)
}

/// Largest per-cluster population of a subset.
pub fn max_cluster_size(subset: &[usize], cluster_of: &[u64]) -> usize {
    let mut counts = std::collections::BTreeMap::new();
    for &v in subset {
        *counts.entry(cluster_of[v]).or_insert(0usize) += 1;
    }
    counts.values().copied().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcluster_sim::rng::Rng64;
    use dcluster_sim::{deploy, Network, Point};

    fn dense_blob_net(n: usize, seed: u64) -> Network {
        let mut rng = Rng64::new(seed);
        Network::builder(deploy::uniform_square(n, 1.5, &mut rng))
            .build()
            .unwrap()
    }

    #[test]
    fn clustered_sparsification_reduces_cluster_density() {
        // One cluster = a dense blob; Lemma 8 promises ≤ ¾Γ per cluster.
        let net = dense_blob_net(40, 2);
        let params = ProtocolParams::practical();
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::new(&net);
        let all: Vec<usize> = (0..net.len()).collect();
        let cluster_of = vec![7u64; net.len()];
        let gamma = net.density();
        let out = sparsification(
            &mut engine,
            &params,
            &mut seeds,
            gamma,
            &all,
            &cluster_of,
            IndependentSetRule::LocalMinima,
        );
        assert!(
            4 * out.kept.len() <= 3 * net.len(),
            "kept {} of {} — expected ≤ 3/4",
            out.kept.len(),
            net.len()
        );
        // Every removed node has a parent in the kept set, same cluster.
        let kept: std::collections::HashSet<_> = out.kept.iter().copied().collect();
        let mut linked: std::collections::HashSet<_> = out.links.iter().map(|l| l.child).collect();
        for &v in &all {
            if !kept.contains(&v) {
                assert!(linked.remove(&v), "removed node {v} has no parent link");
            }
        }
        for l in &out.links {
            assert_eq!(cluster_of[l.child], cluster_of[l.parent]);
        }
    }

    #[test]
    fn unclustered_sparsification_u_reduces_density() {
        let net = dense_blob_net(50, 3);
        let params = ProtocolParams::practical();
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::new(&net);
        let all: Vec<usize> = (0..net.len()).collect();
        let gamma = net.density();
        let out = sparsification_u(
            &mut engine,
            &params,
            &mut seeds,
            gamma,
            &all,
            MisStrategy::GreedyById,
        );
        let final_density = subset_density(&engine, out.last());
        assert!(
            4 * final_density <= 3 * gamma,
            "density {final_density} not reduced below 3/4·{gamma}"
        );
        assert!(
            !out.last().is_empty(),
            "sparsification must keep at least one node"
        );
    }

    #[test]
    fn levels_are_nested_and_links_point_into_next_level() {
        let net = dense_blob_net(45, 4);
        let params = ProtocolParams::practical();
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::new(&net);
        let all: Vec<usize> = (0..net.len()).collect();
        let cluster_of = vec![1u64; net.len()];
        let out = full_sparsification(
            &mut engine,
            &params,
            &mut seeds,
            net.density(),
            &all,
            &cluster_of,
        );
        for w in out.levels.windows(2) {
            let prev: std::collections::HashSet<_> = w[0].iter().copied().collect();
            assert!(
                w[1].iter().all(|v| prev.contains(v)),
                "levels must be nested"
            );
            assert!(w[1].len() <= w[0].len());
        }
        // Forest sanity: no child is its own ancestor.
        let parent = out.parent_array(net.len());
        for v in 0..net.len() {
            let mut seen = std::collections::HashSet::new();
            let mut cur = v;
            while let Some(p) = parent[cur] {
                assert!(seen.insert(cur), "cycle through {cur}");
                cur = p;
            }
        }
    }

    #[test]
    fn full_sparsification_reaches_constant_cluster_density() {
        let net = dense_blob_net(60, 5);
        let params = ProtocolParams::practical();
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::new(&net);
        let all: Vec<usize> = (0..net.len()).collect();
        let cluster_of = vec![1u64; net.len()];
        let out = full_sparsification(
            &mut engine,
            &params,
            &mut seeds,
            net.density(),
            &all,
            &cluster_of,
        );
        let final_size = max_cluster_size(out.last(), &cluster_of);
        assert!(
            final_size <= 8,
            "final per-cluster density {final_size} not constant-ish"
        );
        assert!(!out.last().is_empty());
    }

    #[test]
    fn two_nodes_degenerate_case() {
        let net = Network::builder(vec![Point::new(0.0, 0.0), Point::new(0.2, 0.0)])
            .build()
            .unwrap();
        let params = ProtocolParams::practical();
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::new(&net);
        let out = sparsification(
            &mut engine,
            &params,
            &mut seeds,
            2,
            &[0, 1],
            &[1, 1],
            IndependentSetRule::LocalMinima,
        );
        // The pair is a close pair: one becomes the other's child.
        assert_eq!(out.kept.len(), 1);
        assert_eq!(out.links.len(), 1);
    }
}
