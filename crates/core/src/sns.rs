//! Sparse Network Schedule — Lemma 4.
//!
//! For a node set of *constant density* γ, an `(N, k_γ)`-ssf of length
//! `O(log N)` lets every member deliver its message to every point within
//! distance `1 − ε`: some round schedules the member alone within the
//! interference-relevant ball `B(v, x)`, and Proposition 1 bounds the
//! leftover far interference below the decoding margin.

use crate::msg::Msg;
use crate::params::ProtocolParams;
use crate::run::{fresh_sns, ReplayUnit, SchedHandle, SeedSeq};
use dcluster_sim::engine::Engine;

/// A recorded SNS execution: the replayable unit plus every reception
/// `(receiver, sender, message)` that occurred (receivers include
/// non-members — sleeping nodes hear SNS transmissions; that is how global
/// broadcast wakes the next layer).
#[derive(Debug, Clone)]
pub struct SnsRun {
    /// The schedule + member snapshot (replayable).
    pub unit: ReplayUnit,
    /// All receptions, in round order.
    pub receptions: Vec<(usize, usize, Msg)>,
}

impl SnsRun {
    /// Distinct `(receiver, sender)` pairs.
    // lint:allow(D1, reason = "order-free pair set; compared by membership")
    pub fn delivered_pairs(&self) -> std::collections::HashSet<(usize, usize)> {
        self.receptions.iter().map(|&(r, s, _)| (r, s)).collect()
    }

    /// True iff `receiver` heard `sender` at least once.
    pub fn heard(&self, receiver: usize, sender: usize) -> bool {
        self.receptions
            .iter()
            .any(|&(r, s, _)| r == receiver && s == sender)
    }
}

/// Executes one Sparse Network Schedule on `members`, each transmitting the
/// message given by `payload`. Costs `O(log N)` rounds.
pub fn run_sns(
    engine: &mut Engine<'_>,
    params: &ProtocolParams,
    seeds: &mut SeedSeq,
    members: &[usize],
    payload: impl Fn(usize) -> Msg,
) -> SnsRun {
    let net = engine.network();
    let ssf = fresh_sns(params, seeds, net.max_id());
    let unit = ReplayUnit::snapshot(net, SchedHandle::Ssf(ssf), members, &vec![0; net.len()]);
    let mut receptions = Vec::new();
    unit.run(engine, payload, &mut |recv, _lr, sender, msg| {
        receptions.push((recv, sender, *msg));
    });
    SnsRun { unit, receptions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcluster_sim::rng::Rng64;
    use dcluster_sim::{deploy, Network};

    /// Lemma 4's guarantee on a constant-density set: every member is heard
    /// by every node within the communication radius.
    #[test]
    fn sparse_set_members_reach_all_comm_neighbors() {
        let mut rng = Rng64::new(3);
        // ~1 node per unit area: constant density.
        let pts = deploy::with_min_separation(deploy::uniform_square(120, 10.0, &mut rng), 0.45);
        let net = Network::builder(pts).build().unwrap();
        let params = ProtocolParams::practical();
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::new(&net);
        let members: Vec<usize> = (0..net.len()).collect();
        let run = run_sns(&mut engine, &params, &mut seeds, &members, |v| Msg::Hello {
            id: net.id(v),
            cluster: 0,
        });
        let g = net.comm_graph();
        for v in 0..net.len() {
            for &u in g.neighbors(v) {
                assert!(
                    run.heard(u as usize, v),
                    "comm neighbor {u} failed to hear {v} during SNS"
                );
            }
        }
    }

    #[test]
    fn non_members_receive_but_do_not_transmit() {
        let mut rng = Rng64::new(4);
        let pts = deploy::with_min_separation(deploy::uniform_square(40, 6.0, &mut rng), 0.5);
        let net = Network::builder(pts).build().unwrap();
        let params = ProtocolParams::practical();
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::new(&net);
        let members: Vec<usize> = (0..net.len() / 2).collect();
        let run = run_sns(&mut engine, &params, &mut seeds, &members, |v| Msg::Hello {
            id: net.id(v),
            cluster: 0,
        });
        for &(_, sender, _) in &run.receptions {
            assert!(members.contains(&sender), "non-member transmitted");
        }
    }

    #[test]
    fn sns_length_is_logarithmic_in_ids() {
        let mut rng = Rng64::new(5);
        let pts = deploy::uniform_square(20, 4.0, &mut rng);
        let net_small = Network::builder(pts.clone())
            .max_id(1_000)
            .seed(1)
            .build()
            .unwrap();
        let net_big = Network::builder(pts)
            .max_id(1_000_000)
            .seed(1)
            .build()
            .unwrap();
        let params = ProtocolParams::theory();
        let mut seeds = SeedSeq::new(1);
        let s_small = fresh_sns(&params, &mut seeds, net_small.max_id());
        let s_big = fresh_sns(&params, &mut seeds, net_big.max_id());
        use dcluster_selectors::Schedule;
        let ratio = s_big.len() as f64 / s_small.len() as f64;
        assert!(ratio < 3.0, "length must grow ~log N, got ratio {ratio}");
    }
}
