//! `RadiusReduction` — Algorithm 5 (Lemma 12).
//!
//! Turns an `r`-clustering (constant `r ≥ 1`) into a 1-clustering in
//! `O((Γ + log* N) log N)` rounds. Each pass: (1) `FullSparsification`
//! leaves `O(1)` nodes per cluster; (2) one Sparse Network Schedule lets
//! those survivors build their exchange graph `G`; (3) a simulated LOCAL
//! MIS of `G` picks the new cluster centers `D` (pairwise ≥ 1−ε apart,
//! because SNS guarantees delivery at that distance); (4) a second SNS from
//! `D` claims every node within distance `1 − ε` for the announcing
//! center's new cluster. Claimed nodes and centers drop out; `χ(r+1, 1−ε)`
//! passes suffice to claim everyone.

use crate::mis::{local_mis, MisStrategy};
use crate::msg::Msg;
use crate::params::ProtocolParams;
use crate::run::SeedSeq;
use crate::sns::run_sns;
use crate::sparsify::full_sparsification;
use dcluster_sim::engine::Engine;
use dcluster_sim::metrics::chi_upper;
use std::collections::{BTreeMap, BTreeSet};

/// Result of a radius reduction.
#[derive(Debug, Clone)]
pub struct RadiusOutcome {
    /// New 1-clustering (`None` only if the pass cap was exhausted — the
    /// caller should treat that as a failed run; tests assert it is 0).
    pub cluster_of: Vec<Option<u64>>,
    /// The new cluster centers (node indices; cluster IDs are their IDs).
    pub centers: Vec<usize>,
    /// Passes of the main loop actually executed.
    pub iterations: usize,
}

/// Runs Algorithm 5 on the `r`-clustered set `x` (`old_cluster[v]` = the
/// existing cluster of `v`; must be assigned for every member).
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
pub fn radius_reduction(
    engine: &mut Engine<'_>,
    params: &ProtocolParams,
    seeds: &mut SeedSeq,
    gamma: usize,
    x: &[usize],
    old_cluster: &[u64],
    r: f64,
    strategy: MisStrategy,
) -> RadiusOutcome {
    let net = engine.network();
    let n = net.len();
    let eps = net.params().epsilon;
    let cap = params.cap(chi_upper(r + 1.0, 1.0 - eps));
    let mut newcluster: Vec<Option<u64>> = vec![None; n];
    let mut centers: Vec<usize> = Vec::new();
    let mut remaining: Vec<usize> = x.to_vec();
    let mut iterations = 0;

    for _ in 0..cap {
        if remaining.is_empty() {
            break;
        }
        iterations += 1;
        // (1) Sparsify the remaining nodes down to O(1) per old cluster.
        let fs = full_sparsification(engine, params, seeds, gamma, &remaining, old_cluster);
        let xk: Vec<usize> = fs.last().to_vec();

        // (2) Exchange graph G of the survivors via one SNS (Alg. 5 l. 4–5).
        let net = engine.network();
        let hello = run_sns(engine, params, seeds, &xk, |v| Msg::Hello {
            id: net.id(v),
            cluster: old_cluster[v],
        });
        let pairs = hello.delivered_pairs();
        let in_xk: BTreeSet<usize> = xk.iter().copied().collect();
        let mut adj: BTreeMap<usize, Vec<usize>> = xk.iter().map(|&v| (v, Vec::new())).collect();
        for &(a, b) in &pairs {
            if a < b || !pairs.contains(&(b, a)) {
                continue; // handle each mutual pair once, from the (a>b) side
            }
            if in_xk.contains(&a) && in_xk.contains(&b) {
                adj.get_mut(&a).unwrap().push(b); // lint:allow(P1, reason = "keys inserted for all of in_xk above")
                adj.get_mut(&b).unwrap().push(a); // lint:allow(P1, reason = "keys inserted for all of in_xk above")
            }
        }
        for l in adj.values_mut() {
            l.sort_unstable();
            l.dedup();
        }

        // (3) D = MIS(G), simulated over replays of the SNS unit (l. 6).
        let d = local_mis(
            engine,
            &hello.unit,
            &xk,
            &adj,
            params.mis_degree,
            net.max_id(),
            strategy,
        );
        let d_nodes: Vec<usize> = xk.iter().copied().filter(|&v| d[v]).collect();

        // (4) Local broadcast from D (l. 7): centers claim listeners.
        let claim = run_sns(engine, params, seeds, &d_nodes, |v| Msg::ClusterOf {
            id: net.id(v),
            cluster: net.id(v),
        });
        for &v in &d_nodes {
            newcluster[v] = Some(net.id(v));
            centers.push(v);
        }
        let in_x: BTreeSet<usize> = remaining.iter().copied().collect();
        for &(recv, _sender, msg) in &claim.receptions {
            if let Msg::ClusterOf { cluster, .. } = msg {
                if in_x.contains(&recv) && newcluster[recv].is_none() {
                    newcluster[recv] = Some(cluster); // first reception wins (l. 10)
                }
            }
        }
        remaining.retain(|&v| newcluster[v].is_none());
    }

    RadiusOutcome {
        cluster_of: newcluster,
        centers,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_clustering;
    use dcluster_sim::rng::Rng64;
    use dcluster_sim::{deploy, Network};

    /// Build a 2-clustered blob (single cluster of radius ≈ 2) and reduce.
    #[test]
    fn reduces_a_two_cluster_to_one_clustering() {
        let mut rng = Rng64::new(31);
        let net = Network::builder(deploy::uniform_square(35, 2.0, &mut rng))
            .build()
            .unwrap();
        let params = ProtocolParams::practical();
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::new(&net);
        let all: Vec<usize> = (0..net.len()).collect();
        // Everything in one big cluster "centered" at node 0 — radius ≈ 2·√2.
        let old: Vec<u64> = vec![net.id(0); net.len()];
        let out = radius_reduction(
            &mut engine,
            &params,
            &mut seeds,
            net.density(),
            &all,
            &old,
            3.0,
            MisStrategy::GreedyById,
        );
        assert_eq!(
            out.cluster_of.iter().filter(|c| c.is_none()).count(),
            0,
            "all nodes must be claimed"
        );
        let rep = check_clustering(&net, &out.cluster_of);
        assert!(
            rep.max_radius <= 1.0 + 1e-9,
            "1-clustering radius, got {}",
            rep.max_radius
        );
        assert!(
            rep.min_center_separation >= 0.5 * (1.0 - net.params().epsilon),
            "centers too close: {}",
            rep.min_center_separation
        );
    }

    #[test]
    fn centers_cover_all_members_within_unit_distance() {
        let mut rng = Rng64::new(32);
        let net = Network::builder(deploy::uniform_square(30, 2.5, &mut rng))
            .build()
            .unwrap();
        let params = ProtocolParams::practical();
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::new(&net);
        let all: Vec<usize> = (0..net.len()).collect();
        let old: Vec<u64> = vec![net.id(0); net.len()];
        let out = radius_reduction(
            &mut engine,
            &params,
            &mut seeds,
            net.density(),
            &all,
            &old,
            3.0,
            MisStrategy::GreedyById,
        );
        for v in 0..net.len() {
            let c = out.cluster_of[v].expect("assigned");
            let center = net.index_of(c).expect("center exists");
            assert!(
                net.pos(v).dist(net.pos(center)) <= 1.0 + 1e-9,
                "node {v} is {} from its center",
                net.pos(v).dist(net.pos(center))
            );
        }
    }

    #[test]
    fn single_node_becomes_its_own_center() {
        let net = Network::builder(vec![dcluster_sim::Point::new(0.0, 0.0)])
            .build()
            .unwrap();
        let params = ProtocolParams::practical();
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::new(&net);
        let out = radius_reduction(
            &mut engine,
            &params,
            &mut seeds,
            1,
            &[0],
            &[1],
            2.0,
            MisStrategy::GreedyById,
        );
        assert_eq!(out.cluster_of[0], Some(net.id(0)));
        assert_eq!(out.centers, vec![0]);
    }
}
