//! `LocalBroadcast` — Algorithm 7 (Theorem 2).
//!
//! The paper's headline application: deterministic local broadcast in
//! `O(∆ log N log* N)` rounds with no randomization, location, carrier
//! sensing or feedback. Pipeline: (1) [`crate::clustering`] builds a
//! 1-clustering; (2) [`crate::labeling`] assigns an imperfect labeling
//! (each label O(1) times per cluster); (3) one Sparse Network Schedule per
//! label value — the set of nodes holding any fixed label has constant
//! density, so SNS delivers each of their messages to everything within
//! `1 − ε` (Lemma 4).

use crate::check::missing_deliveries;
use crate::clustering::{clustering, Clustering};
use crate::labeling::{imperfect_labeling, Labeling};
use crate::msg::Msg;
use crate::params::ProtocolParams;
use crate::run::SeedSeq;
use crate::sns::run_sns;
use crate::sparsify::full_sparsification;
use dcluster_sim::engine::Engine;
use std::collections::HashSet;

/// Result of a local broadcast execution.
#[derive(Debug, Clone)]
pub struct LocalBroadcastOutcome {
    /// Rounds consumed end-to-end.
    pub rounds: u64,
    /// `heard_by[v]` = nodes that received `v`'s message.
    pub heard_by: Vec<HashSet<usize>>, // lint:allow(D1, reason = "delivery-witness sets; membership queries only")
    /// The clustering built in step 1.
    pub clustering: Clustering,
    /// The labeling built in step 2.
    pub labeling: Labeling,
    /// Label sweeps executed (≥ 1; adaptive repair may add sweeps).
    pub sweeps: usize,
    /// Rounds spent in step 3 only (the label-by-label SNS sweeps). This
    /// is the *steady-state* cost: clustering + labeling are one-time
    /// setup, after which each further local broadcast pays only this.
    pub sweep_rounds: u64,
    /// True iff every node was heard by all its comm-graph neighbors.
    pub complete: bool,
}

/// Runs Algorithm 7 on the whole network with density bound `delta`.
pub fn local_broadcast(
    engine: &mut Engine<'_>,
    params: &ProtocolParams,
    seeds: &mut SeedSeq,
    delta: usize,
) -> LocalBroadcastOutcome {
    engine.begin_phase("local_broadcast");
    let start = engine.round();
    let net = engine.network();
    let n = net.len();
    let all: Vec<usize> = (0..n).collect();

    // Step 1: 1-clustering (Theorem 1).
    let cl = clustering(engine, params, seeds, &all, delta);
    let cluster_of = cl.cluster_or_id_all(net);

    // Step 2: imperfect labeling (Lemma 11).
    let fs = full_sparsification(engine, params, seeds, delta, &all, &cluster_of);
    let lab = imperfect_labeling(engine, &fs, params.kappa);

    // Step 3: one SNS per label (Alg. 7 lines 3–4). Nodes know the bound ∆;
    // in adaptive mode we stop at the largest label present (observer
    // shortcut — sweeping silent labels costs rounds but changes nothing).
    let label_bound = if params.adaptive {
        lab.max_label() as usize
    } else {
        delta.max(1)
    };
    let mut heard_by: Vec<HashSet<usize>> = vec![HashSet::new(); n]; // lint:allow(D1, reason = "delivery-witness sets; membership queries only")
    let mut sweeps = 0usize;
    let sweep_start = engine.round();
    let max_repair = if params.adaptive { 3 } else { 1 };
    for _repair in 0..max_repair {
        sweeps += 1;
        for l in 1..=label_bound as u32 {
            let members: Vec<usize> = (0..n).filter(|&v| lab.label[v] == l).collect();
            if members.is_empty() {
                continue;
            }
            let net = engine.network();
            let run = run_sns(engine, params, seeds, &members, |v| Msg::Payload {
                id: net.id(v),
                cluster: cluster_of[v],
                data: net.id(v),
            });
            for (recv, sender, _) in run.receptions {
                heard_by[sender].insert(recv);
            }
        }
        if missing_deliveries(engine.network(), &heard_by).is_empty() {
            break;
        }
    }

    let complete = missing_deliveries(engine.network(), &heard_by).is_empty();
    engine.end_phase();
    LocalBroadcastOutcome {
        rounds: engine.round() - start,
        heard_by,
        clustering: cl,
        labeling: lab,
        sweeps,
        sweep_rounds: engine.round() - sweep_start,
        complete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcluster_sim::rng::Rng64;
    use dcluster_sim::{deploy, Network};

    fn run(n: usize, side: f64, seed: u64) -> (Network, LocalBroadcastOutcome) {
        let mut rng = Rng64::new(seed);
        let net = Network::builder(deploy::uniform_square(n, side, &mut rng))
            .build()
            .unwrap();
        let params = ProtocolParams::practical();
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::new(&net);
        let delta = net.density();
        let out = local_broadcast(&mut engine, &params, &mut seeds, delta);
        (net, out)
    }

    #[test]
    fn every_neighbor_hears_every_node() {
        let (_, out) = run(36, 2.5, 101);
        assert!(
            out.complete,
            "local broadcast must reach all comm-graph neighbors"
        );
    }

    #[test]
    fn works_on_a_dense_blob() {
        let (_, out) = run(25, 1.0, 102);
        assert!(out.complete);
        assert!(
            out.labeling.max_label() >= 2,
            "dense blob needs several labels"
        );
    }

    #[test]
    fn works_on_a_sparse_field() {
        let (_, out) = run(30, 6.0, 103);
        assert!(out.complete);
    }

    #[test]
    fn rounds_are_counted() {
        let (_, out) = run(20, 2.0, 104);
        assert!(out.rounds > 0);
        assert!(out.sweeps >= 1);
    }
}
