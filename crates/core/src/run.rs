//! Schedule execution and **replay units**.
//!
//! Every communication step in the paper is an execution of a combinatorial
//! schedule by a known participant set. Because everything is
//! deterministic, *re-running a schedule with the same participant set
//! reproduces the exact same receptions* — the paper exploits this
//! ("v and parent(v) exchange messages during an execution of S", later
//! replayed for tree communication in Lemma 11). [`ReplayUnit`] captures a
//! (schedule, participant snapshot) pair so it can be re-executed with
//! fresh payloads while preserving the interference pattern: each member's
//! transmit pattern is determined by its ID and its cluster *at snapshot
//! time* (a value the node remembers locally).

use crate::msg::Msg;
use crate::params::ProtocolParams;
use dcluster_selectors::ssf::RandomSsf;
use dcluster_selectors::wcss::RandomWcss;
use dcluster_selectors::wss::RandomWss;
use dcluster_selectors::{ClusterSchedule, Schedule};
use dcluster_sim::engine::{Engine, RoundBehavior};
use dcluster_sim::network::Network;
use dcluster_sim::rng::hash64;

/// Deterministic seed sequence: invocation `i` of any selector across the
/// whole protocol stack draws seed `hash(master, i)`. The invocation order
/// is globally known (the protocols are deterministic), so every node
/// derives the same families — the seeds are protocol constants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedSeq {
    master: u64,
    counter: u64,
}

impl SeedSeq {
    /// Starts the sequence from the protocol master seed.
    pub fn new(master: u64) -> Self {
        Self { master, counter: 0 }
    }

    /// Next fresh seed.
    pub fn next_seed(&mut self) -> u64 {
        let s = hash64(self.master, &[self.counter]);
        self.counter += 1;
        s
    }
}

/// A schedule of any of the three selector kinds, unified for storage in
/// replay units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedHandle {
    /// Strongly-selective family (cluster-oblivious).
    Ssf(RandomSsf),
    /// Witnessed strong selector (cluster-oblivious).
    Wss(RandomWss),
    /// Witnessed cluster-aware strong selector.
    Wcss(RandomWcss),
}

impl SchedHandle {
    /// Number of rounds.
    pub fn len(&self) -> u64 {
        match self {
            SchedHandle::Ssf(s) => Schedule::len(s),
            SchedHandle::Wss(s) => Schedule::len(s),
            SchedHandle::Wcss(s) => ClusterSchedule::len(s),
        }
    }

    /// True iff the schedule has no rounds (never, for valid selectors).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership for `(id, cluster)` at `round` (cluster ignored by the
    /// cluster-oblivious kinds).
    #[inline]
    pub fn contains(&self, round: u64, id: u64, cluster: u64) -> bool {
        match self {
            SchedHandle::Ssf(s) => s.contains(round, id),
            SchedHandle::Wss(s) => s.contains(round, id),
            SchedHandle::Wcss(s) => s.contains(round, id, cluster),
        }
    }
}

/// A participant snapshot: node index plus the (id, cluster) pair that
/// determines its transmit pattern. The cluster is frozen at unit-creation
/// time — replaying later with updated clusters would change the pattern
/// and void the delivery guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Member {
    /// Node index in the network.
    pub node: usize,
    /// Paper ID.
    pub id: u64,
    /// Cluster at snapshot time (0 = unclustered).
    pub cluster: u64,
}

/// A replayable (schedule, participants) pair. See module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayUnit {
    /// The schedule.
    pub sched: SchedHandle,
    /// Participant snapshot.
    pub members: Vec<Member>,
}

/// Provenance record of one (re-)execution of a [`ReplayUnit`]: which
/// resolver backend produced the trace, and its extent. Replays are only
/// guaranteed identical when the reception sets are — which holds across
/// backends by the resolver equivalence contract, but recording the
/// backend makes any violation attributable when auditing a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitTrace {
    /// The backend that resolved every round of this execution.
    pub resolver: dcluster_sim::ResolverKind,
    /// Global engine round at which the execution started.
    pub start_round: u64,
    /// Rounds executed (= the schedule length).
    pub rounds: u64,
    /// Successful receptions delivered to `on_rx`.
    pub receptions: u64,
}

/// Delivery callback: `(receiver, local_round, sender, message)`.
pub type OnRx<'a> = &'a mut dyn FnMut(usize, u64, usize, &Msg);

struct UnitBehavior<'a, P: Fn(usize) -> Msg> {
    sched: &'a SchedHandle,
    member_of: &'a [Option<(u64, u64)>],
    start: u64,
    payload: P,
    on_rx: OnRx<'a>,
}

impl<P: Fn(usize) -> Msg> RoundBehavior<Msg> for UnitBehavior<'_, P> {
    fn transmit(&mut self, _net: &Network, v: usize, round: u64) -> Option<Msg> {
        let (id, cluster) = self.member_of[v]?;
        let lr = round - self.start;
        self.sched
            .contains(lr, id, cluster)
            .then(|| (self.payload)(v))
    }
    fn receive(&mut self, _net: &Network, v: usize, round: u64, sender: usize, msg: &Msg) {
        (self.on_rx)(v, round - self.start, sender, msg);
    }
}

impl ReplayUnit {
    /// Creates a unit from node indices, snapshotting `(id, cluster)` from
    /// the network and the supplied cluster view (0 = none).
    pub fn snapshot(
        net: &Network,
        sched: SchedHandle,
        nodes: &[usize],
        cluster_of: &[u64],
    ) -> Self {
        let members = nodes
            .iter()
            .map(|&v| Member {
                node: v,
                id: net.id(v),
                cluster: cluster_of[v],
            })
            .collect();
        Self { sched, members }
    }

    /// Executes (or re-executes) the unit: every member transmits its
    /// pattern with the message given by `payload`; every reception is
    /// reported to `on_rx`. Costs `sched.len()` rounds. Returns the
    /// [`UnitTrace`] recording which resolver backend produced the trace.
    pub fn run<P>(&self, engine: &mut Engine<'_>, payload: P, on_rx: OnRx<'_>) -> UnitTrace
    where
        P: Fn(usize) -> Msg,
    {
        let n = engine.network().len();
        let mut member_of: Vec<Option<(u64, u64)>> = vec![None; n];
        for m in &self.members {
            member_of[m.node] = Some((m.id, m.cluster));
        }
        let start_round = engine.round();
        let receptions_before = engine.stats().receptions;
        let mut b = UnitBehavior {
            sched: &self.sched,
            member_of: &member_of,
            start: start_round,
            payload,
            on_rx,
        };
        engine.run(&mut b, self.sched.len());
        UnitTrace {
            resolver: engine.resolver_kind(),
            start_round,
            rounds: self.sched.len(),
            receptions: engine.stats().receptions - receptions_before,
        }
    }

    /// Node indices of the members.
    pub fn nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.members.iter().map(|m| m.node)
    }
}

/// Builds a fresh `(N, κ)`-wss for this invocation (unclustered proximity
/// graphs).
pub fn fresh_wss(params: &ProtocolParams, seeds: &mut SeedSeq, n_univ: u64) -> RandomWss {
    let len = params.sched_len(RandomWss::recommended_len(n_univ, params.kappa));
    RandomWss::with_len(seeds.next_seed(), params.kappa, len)
}

/// Builds a fresh `(N, κ, ρ)`-wcss for this invocation (clustered proximity
/// graphs).
pub fn fresh_wcss(params: &ProtocolParams, seeds: &mut SeedSeq, n_univ: u64) -> RandomWcss {
    let len = params.sched_len(RandomWcss::recommended_len(
        n_univ,
        params.kappa,
        params.rho,
    ));
    RandomWcss::with_len(seeds.next_seed(), params.kappa, params.rho, len)
}

/// Builds a fresh Sparse-Network-Schedule ssf (Lemma 4's `L_γ`).
pub fn fresh_sns(params: &ProtocolParams, seeds: &mut SeedSeq, n_univ: u64) -> RandomSsf {
    let len = params.sched_len(RandomSsf::recommended_len(n_univ, params.sns_k));
    RandomSsf::with_len(seeds.next_seed(), params.sns_k, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcluster_sim::deploy;
    use dcluster_sim::rng::Rng64;

    fn small_net() -> Network {
        let mut rng = Rng64::new(1);
        Network::builder(deploy::uniform_square(30, 2.0, &mut rng))
            .build()
            .unwrap()
    }

    #[test]
    fn seed_seq_is_deterministic_and_fresh() {
        let mut a = SeedSeq::new(5);
        let mut b = SeedSeq::new(5);
        let s1 = a.next_seed();
        let s2 = a.next_seed();
        assert_ne!(s1, s2);
        assert_eq!(s1, b.next_seed());
        assert_eq!(s2, b.next_seed());
    }

    #[test]
    fn replay_reproduces_identical_receptions() {
        let net = small_net();
        let params = ProtocolParams::practical();
        let mut seeds = SeedSeq::new(3);
        let wss = fresh_wss(&params, &mut seeds, net.max_id());
        let nodes: Vec<usize> = (0..net.len()).collect();
        let unit = ReplayUnit::snapshot(&net, SchedHandle::Wss(wss), &nodes, &vec![0; net.len()]);
        let mut engine = Engine::new(&net);
        let mut first: Vec<(usize, u64, usize)> = Vec::new();
        unit.run(
            &mut engine,
            |v| Msg::Hello {
                id: net.id(v),
                cluster: 0,
            },
            &mut |r, lr, s, _| first.push((r, lr, s)),
        );
        let mut second: Vec<(usize, u64, usize)> = Vec::new();
        unit.run(
            &mut engine,
            |v| Msg::ClusterOf {
                id: net.id(v),
                cluster: 7,
            },
            &mut |r, lr, s, _| second.push((r, lr, s)),
        );
        assert_eq!(
            first, second,
            "same members + same schedule ⇒ same receptions"
        );
        assert!(
            !first.is_empty(),
            "some receptions should occur in a 30-node cloud"
        );
    }

    #[test]
    fn non_members_never_transmit() {
        let net = small_net();
        let params = ProtocolParams::practical();
        let mut seeds = SeedSeq::new(4);
        let wss = fresh_wss(&params, &mut seeds, net.max_id());
        // Only node 0 participates: nobody can receive (others silent, and
        // the sole member cannot receive its own transmissions).
        let unit = ReplayUnit::snapshot(&net, SchedHandle::Wss(wss), &[0], &vec![0; net.len()]);
        let mut engine = Engine::new(&net);
        let mut senders: Vec<usize> = Vec::new();
        unit.run(
            &mut engine,
            |v| Msg::Hello {
                id: net.id(v),
                cluster: 0,
            },
            &mut |_, _, s, _| senders.push(s),
        );
        assert!(
            senders.iter().all(|&s| s == 0),
            "only the member may be heard"
        );
    }

    #[test]
    fn unit_trace_records_backend_and_extent() {
        let net = small_net();
        let params = ProtocolParams::practical();
        let mut seeds = SeedSeq::new(6);
        let wss = fresh_wss(&params, &mut seeds, net.max_id());
        let nodes: Vec<usize> = (0..net.len()).collect();
        let unit = ReplayUnit::snapshot(&net, SchedHandle::Wss(wss), &nodes, &vec![0; net.len()]);
        for kind in dcluster_sim::ResolverKind::ALL {
            let mut engine = dcluster_sim::Engine::with_resolver_kind(&net, kind);
            let mut count = 0u64;
            let trace = unit.run(
                &mut engine,
                |v| Msg::Hello {
                    id: net.id(v),
                    cluster: 0,
                },
                &mut |_, _, _, _| count += 1,
            );
            assert_eq!(trace.resolver, kind);
            assert_eq!(trace.start_round, 0);
            assert_eq!(trace.rounds, unit.sched.len());
            assert_eq!(trace.receptions, count, "trace counts what on_rx saw");
        }
    }

    #[test]
    fn sched_handle_delegates_membership() {
        let ssf = RandomSsf::with_len(1, 3, 50);
        let h = SchedHandle::Ssf(ssf);
        assert_eq!(h.len(), 50);
        for r in 0..50 {
            assert_eq!(h.contains(r, 9, 0), ssf.contains(r, 9));
        }
        assert!(!h.is_empty());
    }

    #[test]
    fn fresh_selector_lengths_respect_params() {
        let params = ProtocolParams::practical();
        let mut seeds = SeedSeq::new(9);
        let wss = fresh_wss(&params, &mut seeds, 10_000);
        let wcss = fresh_wcss(&params, &mut seeds, 10_000);
        let sns = fresh_sns(&params, &mut seeds, 10_000);
        assert!(Schedule::len(&wss) >= params.min_sched_len);
        assert!(ClusterSchedule::len(&wcss) >= params.min_sched_len);
        assert!(Schedule::len(&sns) >= params.min_sched_len);
    }
}
