//! `ProximityGraphConstruction` — Algorithm 1 (Lemma 7).
//!
//! Builds, in `O(log N)` rounds, a constant-degree graph `H` on a
//! (clustered) node set that contains **every close pair** as an edge. The
//! three phases:
//!
//! 1. **Exchange** — one execution of an `(N,κ)`-wss (unclustered) or
//!    `(N,κ,ρ)`-wcss (clustered), every participant transmitting its
//!    `Hello`. Each node records who it heard and in which rounds.
//! 2. **Filtering** — *implicit collision detection*: if `v` heard `u` in a
//!    round where the schedule says `w` also transmitted, then `(v, w)` is
//!    certainly not a close pair (w's interference would have destroyed
//!    `u`'s message otherwise), so `w` is dropped from `v`'s candidates.
//!    The witnessed-selection property guarantees every far node is
//!    eventually dropped; if more than κ candidates survive, the whole set
//!    is purged (cannot happen for genuine close-pair endpoints).
//! 3. **Confirmation** — κ replays of the same schedule; in replay `j`
//!    every node announces its `j`-th candidate (`⟨v, ⊥⟩` padding keeps the
//!    interference pattern identical). An edge survives iff both endpoints
//!    confirmed each other — mutuality makes `H` well-defined.

use crate::msg::Msg;
use crate::params::ProtocolParams;
use crate::run::{fresh_wcss, fresh_wss, ReplayUnit, SchedHandle, SeedSeq};
use dcluster_sim::engine::Engine;
use std::collections::BTreeMap;

/// Output of Algorithm 1: the proximity graph and the replayable exchange
/// schedule (used later for tree communication and MIS simulation).
#[derive(Debug, Clone)]
pub struct Proximity {
    /// The exchange schedule + participant snapshot (length `O(log N)`).
    pub unit: ReplayUnit,
    /// Adjacency of `H` (node index → sorted neighbor indices). Only
    /// participating nodes appear as keys.
    pub adj: BTreeMap<usize, Vec<usize>>,
}

impl Proximity {
    /// Degree of `v` in `H`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj.get(&v).map_or(0, |l| l.len())
    }

    /// Maximum degree of `H`.
    pub fn max_degree(&self) -> usize {
        self.adj.values().map(|l| l.len()).max().unwrap_or(0)
    }

    /// True iff `{u, v}` is an edge of `H`.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj
            .get(&u)
            .is_some_and(|l| l.binary_search(&v).is_ok())
    }

    /// Edges as canonical `(min, max)` pairs.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (&v, l) in &self.adj {
            for &u in l {
                if v < u {
                    out.push((v, u));
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// Runs Algorithm 1 on `members` (node indices). `cluster_of[v]` is `v`'s
/// cluster (any value when `clustered == false`; the paper's convention
/// `cluster(v) = 1` is applied internally). Costs `(κ+1)·|S|` rounds.
pub fn build_proximity_graph(
    engine: &mut Engine<'_>,
    params: &ProtocolParams,
    seeds: &mut SeedSeq,
    members: &[usize],
    cluster_of: &[u64],
    clustered: bool,
) -> Proximity {
    engine.begin_phase("proximity");
    let net = engine.network();
    let n = net.len();
    let n_univ = net.max_id();
    let kappa = params.kappa;

    let cluster_view: Vec<u64> = if clustered {
        cluster_of.to_vec()
    } else {
        vec![1; n]
    };
    let sched = if clustered {
        SchedHandle::Wcss(fresh_wcss(params, seeds, n_univ))
    } else {
        SchedHandle::Wss(fresh_wss(params, seeds, n_univ))
    };
    let unit = ReplayUnit::snapshot(net, sched, members, &cluster_view);

    let mut is_member = vec![false; n];
    for &v in members {
        is_member[v] = true;
    }

    // ---- Exchange phase: record (receiver → [(round, sender)]).
    let mut heard: Vec<Vec<(u64, usize)>> = vec![Vec::new(); n];
    {
        let net = engine.network();
        unit.run(
            engine,
            |v| Msg::Hello {
                id: net.id(v),
                cluster: cluster_view[v],
            },
            &mut |recv, lr, sender, msg| {
                if !is_member[recv] {
                    return;
                }
                // Clustered case: ignore messages from other clusters.
                if let Msg::Hello { cluster, .. } = msg {
                    if clustered && *cluster != cluster_view[recv] {
                        return;
                    }
                }
                heard[recv].push((lr, sender));
            },
        );
    }

    // ---- Filtering phase (local computation).
    // Uv = distinct senders heard; drop w if v heard some u in a round where
    // the schedule says w was transmitting too.
    let net = engine.network();
    let mut candidates: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &v in members {
        let mut uv: Vec<usize> = heard[v].iter().map(|&(_, s)| s).collect();
        uv.sort_unstable();
        uv.dedup();
        let mut keep: Vec<usize> = Vec::new();
        'cand: for &w in &uv {
            for &(r, u) in &heard[v] {
                if u != w && unit.sched.contains(r, net.id(w), cluster_view[w]) {
                    continue 'cand; // w transmitted while v heard u ⇒ not close
                }
            }
            keep.push(w);
        }
        if keep.len() > kappa {
            keep.clear(); // |Cv| > κ ⇒ purge (Alg. 1 lines 9–10)
        }
        candidates[v] = keep;
    }

    // ---- Confirmation phase: κ replays; replay j announces candidate j.
    let mut confirmed: Vec<Vec<usize>> = vec![Vec::new(); n];
    for j in 0..kappa {
        let net = engine.network();
        let candidates_ref = &candidates;
        let heard_confirm = &mut confirmed;
        unit.run(
            engine,
            |v| {
                let to = candidates_ref[v].get(j).map_or(0, |&u| net.id(u));
                Msg::Confirm {
                    from: net.id(v),
                    to,
                }
            },
            &mut |recv, _lr, sender, msg| {
                if let Msg::Confirm { to, .. } = msg {
                    if is_member[recv] && *to == net.id(recv) {
                        heard_confirm[recv].push(sender);
                    }
                }
            },
        );
    }

    // Ev = {w ∈ Cv | v ∈ Cw}: candidates that confirmed us.
    let mut adj: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for &v in members {
        let mut ev: Vec<usize> = candidates[v]
            .iter()
            .copied()
            .filter(|w| confirmed[v].contains(w))
            .collect();
        ev.sort_unstable();
        ev.dedup();
        adj.insert(v, ev);
    }
    // Defensive symmetrization (mutual confirmation already implies it).
    let keys: Vec<usize> = adj.keys().copied().collect();
    for v in keys {
        let nbrs = adj[&v].clone();
        for u in nbrs {
            let lu = adj.entry(u).or_default();
            if lu.binary_search(&v).is_err() {
                // v confirmed u but u's list lacks v: drop the asymmetric edge.
                let lv = adj.get_mut(&v).unwrap(); // lint:allow(P1, reason = "key inserted for every node above")
                if let Ok(pos) = lv.binary_search(&u) {
                    lv.remove(pos);
                }
            }
        }
    }

    engine.end_phase();
    Proximity { unit, adj }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcluster_sim::metrics::close_pairs;
    use dcluster_sim::rng::Rng64;
    use dcluster_sim::{deploy, Network, Point};

    fn run_pgc(net: &Network, clustered: bool, cluster_of: Vec<u64>) -> Proximity {
        let params = ProtocolParams::practical();
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::new(net);
        let members: Vec<usize> = (0..net.len()).collect();
        build_proximity_graph(
            &mut engine,
            &params,
            &mut seeds,
            &members,
            &cluster_of,
            clustered,
        )
    }

    #[test]
    fn degree_is_bounded_by_kappa() {
        let mut rng = Rng64::new(42);
        let net = Network::builder(deploy::uniform_square(80, 3.0, &mut rng))
            .build()
            .unwrap();
        let p = run_pgc(&net, false, vec![0; net.len()]);
        assert!(p.max_degree() <= ProtocolParams::practical().kappa);
    }

    #[test]
    fn close_pairs_are_edges_unclustered() {
        let mut rng = Rng64::new(7);
        let net = Network::builder(deploy::uniform_square(60, 3.0, &mut rng))
            .build()
            .unwrap();
        let gamma = net.density();
        let p = run_pgc(&net, false, vec![0; net.len()]);
        let pairs = close_pairs(net.points(), None, gamma, 1.0, net.params().epsilon);
        assert!(!pairs.is_empty(), "workload should contain close pairs");
        for cp in &pairs {
            assert!(
                p.has_edge(cp.u, cp.w),
                "close pair ({}, {}) missing from H",
                cp.u,
                cp.w
            );
        }
    }

    #[test]
    fn close_pairs_are_edges_clustered() {
        // Two tight clusters far apart; every intra-cluster close pair must
        // appear, cross-cluster edges must not.
        let mut pts = Vec::new();
        let mut rng = Rng64::new(9);
        for i in 0..12 {
            pts.push(Point::new(
                rng.range_f64(0.0, 0.5),
                rng.range_f64(0.0, 0.5) + i as f64 * 0.0,
            ));
        }
        for _ in 0..12 {
            pts.push(Point::new(
                5.0 + rng.range_f64(0.0, 0.5),
                rng.range_f64(0.0, 0.5),
            ));
        }
        let net = Network::builder(pts).build().unwrap();
        let cluster_of: Vec<u64> = (0..net.len())
            .map(|v| if v < 12 { 10 } else { 20 })
            .collect();
        let p = run_pgc(&net, true, cluster_of.clone());
        let gamma = 12;
        let pairs = close_pairs(
            net.points(),
            Some(&cluster_of),
            gamma,
            1.0,
            net.params().epsilon,
        );
        assert!(!pairs.is_empty());
        for cp in &pairs {
            assert!(
                p.has_edge(cp.u, cp.w),
                "close pair ({}, {}) missing",
                cp.u,
                cp.w
            );
        }
        for (u, w) in p.edges() {
            assert_eq!(cluster_of[u], cluster_of[w], "H edge crosses clusters");
        }
    }

    #[test]
    fn adjacency_is_symmetric() {
        let mut rng = Rng64::new(13);
        let net = Network::builder(deploy::uniform_square(50, 2.5, &mut rng))
            .build()
            .unwrap();
        let p = run_pgc(&net, false, vec![0; net.len()]);
        for (&v, l) in &p.adj {
            for &u in l {
                assert!(p.has_edge(u, v), "asymmetric edge ({v},{u})");
            }
        }
    }

    #[test]
    fn two_isolated_nodes_connect() {
        // A single pair within range is trivially a close pair.
        let net = Network::builder(vec![Point::new(0.0, 0.0), Point::new(0.3, 0.0)])
            .build()
            .unwrap();
        let p = run_pgc(&net, false, vec![0; 2]);
        assert!(p.has_edge(0, 1));
    }

    #[test]
    fn non_members_stay_out_of_the_graph() {
        let mut rng = Rng64::new(21);
        let net = Network::builder(deploy::uniform_square(40, 2.0, &mut rng))
            .build()
            .unwrap();
        let params = ProtocolParams::practical();
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::new(&net);
        let members: Vec<usize> = (0..20).collect();
        let p = build_proximity_graph(
            &mut engine,
            &params,
            &mut seeds,
            &members,
            &vec![0; net.len()],
            false,
        );
        for (u, w) in p.edges() {
            assert!(u < 20 && w < 20, "edge touches non-member");
        }
    }
}
