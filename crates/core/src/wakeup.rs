//! The wake-up problem — Theorem 4.
//!
//! Some nodes activate spontaneously (adversarial times); active nodes must
//! activate everyone. With a global clock, the paper tiles time into
//! windows of length `T(N, ∆)`; each window runs `Clustering` on the nodes
//! spontaneously active before the window, then `SMSBroadcast` from the
//! resulting constant-density center set. We reproduce the construction
//! for the window containing the first activation (later windows are
//! identical repetitions) and measure rounds from first activation until
//! the whole network is awake.

use crate::clustering::clustering;
use crate::global_broadcast::sms_broadcast;
use crate::params::ProtocolParams;
use crate::run::SeedSeq;
use dcluster_sim::engine::Engine;

/// Result of a wake-up execution.
#[derive(Debug, Clone)]
pub struct WakeupOutcome {
    /// Rounds from the first spontaneous activation until everyone is
    /// awake (the wake-up cost measure).
    pub rounds: u64,
    /// True iff everyone ended up awake.
    pub all_awake: bool,
    /// Number of cluster centers the clustering stage produced.
    pub centers: usize,
}

/// Runs the Theorem 4 construction: `spontaneous` nodes are active at
/// window start; everyone else must be woken by radio.
pub fn wakeup(
    engine: &mut Engine<'_>,
    params: &ProtocolParams,
    seeds: &mut SeedSeq,
    spontaneous: &[usize],
    delta: usize,
) -> WakeupOutcome {
    assert!(
        !spontaneous.is_empty(),
        "wake-up needs at least one active node"
    );
    engine.begin_phase("wakeup");
    let start = engine.round();
    // Step 1: cluster the spontaneously active set; centers form a
    // constant-density set S′ with pairwise separation ≥ 1 − ε.
    let cl = clustering(engine, params, seeds, spontaneous, delta);
    let centers = if cl.centers.is_empty() {
        spontaneous[..1.min(spontaneous.len())].to_vec()
    } else {
        cl.centers.clone()
    };
    // Step 2: SMSB from S′ wakes the whole network.
    let out = sms_broadcast(engine, params, seeds, &centers, delta, AWAKE_PAYLOAD);
    engine.end_phase();
    WakeupOutcome {
        rounds: engine.round() - start,
        all_awake: out.delivered_all,
        centers: centers.len(),
    }
}

/// Payload tag used by wake-up broadcasts.
const AWAKE_PAYLOAD: u64 = 0xA3A3;

#[cfg(test)]
mod tests {
    use super::*;
    use dcluster_sim::rng::Rng64;
    use dcluster_sim::{deploy, Network};

    #[test]
    fn one_spontaneous_node_wakes_a_corridor() {
        let mut rng = Rng64::new(90);
        let pts = deploy::corridor_with_spine(20, 5.0, 1.0, 0.5, &mut rng);
        let net = Network::builder(pts).build().unwrap();
        let params = ProtocolParams::practical();
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::new(&net);
        let out = wakeup(&mut engine, &params, &mut seeds, &[0], net.density());
        assert!(out.all_awake);
        assert!(out.rounds > 0);
    }

    #[test]
    fn wakeup_on_an_incrementally_mutated_network_matches_a_rebuild() {
        // The dynamics subsystem patches networks in place; wake-up (the
        // protocol churn recovery is built on) must behave identically on
        // the patched network and on one rebuilt from scratch.
        let mut rng = Rng64::new(92);
        let pts = deploy::corridor_with_spine(20, 5.0, 1.0, 0.5, &mut rng);
        let mut net = Network::builder(pts).build().unwrap();
        for step in 0..10 {
            let v = step % net.len();
            let p = net.pos(v);
            net.move_node(
                v,
                dcluster_sim::Point::new(p.x + 0.07, (p.y - 0.05).max(0.0)),
            );
        }
        let rebuilt = Network::builder(net.points().to_vec())
            .ids(net.ids().to_vec())
            .max_id(net.max_id())
            .params(*net.params())
            .build()
            .unwrap();
        let params = ProtocolParams::practical();
        let run = |n: &Network| {
            let mut seeds = SeedSeq::new(params.seed);
            let mut engine = Engine::new(n);
            let out = wakeup(&mut engine, &params, &mut seeds, &[0, 7], n.density());
            (out.rounds, out.all_awake, out.centers)
        };
        let (rounds_a, awake_a, centers_a) = run(&net);
        let (rounds_b, awake_b, centers_b) = run(&rebuilt);
        assert!(awake_a, "mutated corridor still wakes fully");
        assert_eq!(rounds_a, rounds_b, "round-for-round identical execution");
        assert_eq!(centers_a, centers_b);
        assert_eq!(awake_a, awake_b);
    }

    #[test]
    fn many_spontaneous_nodes_still_work() {
        let mut rng = Rng64::new(91);
        let pts = deploy::corridor_with_spine(20, 5.0, 1.0, 0.5, &mut rng);
        let net = Network::builder(pts).build().unwrap();
        let params = ProtocolParams::practical();
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::new(&net);
        let spontaneous: Vec<usize> = (0..net.len()).step_by(3).collect();
        let out = wakeup(
            &mut engine,
            &params,
            &mut seeds,
            &spontaneous,
            net.density(),
        );
        assert!(out.all_awake);
        assert!(out.centers >= 1);
    }
}
