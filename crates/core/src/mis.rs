//! Distributed independent-set computation over proximity graphs.
//!
//! The paper (§4.1) computes independent sets two ways:
//!
//! * **Clustered sparsification** — the *local minima* of `H`
//!   ([`local_minima`]): purely local, zero extra rounds, guaranteeing one
//!   independent node per cluster component.
//! * **Unclustered sparsification & radius reduction** — a *maximal*
//!   independent set computed by simulating a deterministic LOCAL-model
//!   algorithm over the `O(log N)`-round exchange schedule (the paper cites
//!   the `log*` MIS of Schneider–Wattenhofer \[34\]; each LOCAL round = one
//!   schedule replay).
//!
//! We provide two LOCAL MIS algorithms with identical interfaces:
//! [`MisStrategy::LinialSweep`] — the theory-shaped one: Linial color
//! reduction through cover-free families down to `O(d²)` colors in
//! `O(log* N)` replays, then a color-class sweep; and
//! [`MisStrategy::GreedyById`] — iterated local-minima elimination
//! (`O(log n)` replays in practice), the engineering default.

use crate::msg::Msg;
use crate::run::ReplayUnit;
use dcluster_selectors::cff::{linial_fixed_point, CoverFreeFamily};
use dcluster_sim::engine::Engine;
use std::collections::BTreeMap;

/// Which LOCAL MIS algorithm to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MisStrategy {
    /// Iterated local-minima elimination by ID (fast in practice).
    #[default]
    GreedyById,
    /// Linial color reduction via cover-free families + color sweep
    /// (the `log*`-shaped algorithm of the paper's citation \[34\]).
    LinialSweep,
}

/// Local minima of `adj` by ID: `v` is selected iff its ID is smaller than
/// all its `H`-neighbors' IDs (isolated vertices are selected). This is an
/// independent set containing the minimum of every component — exactly what
/// clustered `Sparsification` needs (Lemma 8). Zero communication: nodes
/// already know their neighbors' IDs from the exchange phase.
pub fn local_minima(
    ids: &[u64],
    members: &[usize],
    adj: &BTreeMap<usize, Vec<usize>>,
) -> Vec<bool> {
    let mut sel = vec![false; ids.len()];
    for &v in members {
        let nbrs = adj.get(&v).map_or(&[][..], |l| l.as_slice());
        sel[v] = nbrs.iter().all(|&u| ids[v] < ids[u]);
    }
    sel
}

/// Computes a *maximal* independent set of `adj` among `members` by
/// simulating a deterministic LOCAL algorithm: each LOCAL round is one
/// replay of `unit` (delivery along every `H`-edge is guaranteed, see
/// [`crate::run`]). Returns the characteristic vector.
///
/// `degree_bound` must bound the degree of `adj` (the proximity graph's κ).
/// `max_id` bounds the initial color space.
///
/// # Panics
///
/// Panics (debug) if `adj` has adjacent equal IDs (impossible for genuine
/// networks).
pub fn local_mis(
    engine: &mut Engine<'_>,
    unit: &ReplayUnit,
    members: &[usize],
    adj: &BTreeMap<usize, Vec<usize>>,
    degree_bound: usize,
    max_id: u64,
    strategy: MisStrategy,
) -> Vec<bool> {
    engine.begin_phase("mis");
    let mis = match strategy {
        MisStrategy::GreedyById => greedy_mis(engine, unit, members, adj),
        MisStrategy::LinialSweep => linial_mis(engine, unit, members, adj, degree_bound, max_id),
    };
    engine.end_phase();
    mis
}

/// One replay delivering each member's `msg` to (at least) its H-neighbors;
/// returns per-node inbox of `(sender, Msg)` filtered to H-edges.
fn exchange_states(
    engine: &mut Engine<'_>,
    unit: &ReplayUnit,
    adj: &BTreeMap<usize, Vec<usize>>,
    msg_of: &[Msg],
) -> Vec<Vec<(usize, Msg)>> {
    let n = engine.network().len();
    let mut inbox: Vec<Vec<(usize, Msg)>> = vec![Vec::new(); n];
    unit.run(engine, |v| msg_of[v], &mut |recv, _lr, sender, m| {
        if adj
            .get(&recv)
            .is_some_and(|l| l.binary_search(&sender).is_ok())
        {
            // Deduplicate repeated deliveries of the same sender.
            if !inbox[recv].iter().any(|&(s, _)| s == sender) {
                inbox[recv].push((sender, *m));
            }
        }
    });
    inbox
}

fn greedy_mis(
    engine: &mut Engine<'_>,
    unit: &ReplayUnit,
    members: &[usize],
    adj: &BTreeMap<usize, Vec<usize>>,
) -> Vec<bool> {
    let net = engine.network();
    let n = net.len();
    let ids: Vec<u64> = (0..n).map(|v| net.id(v)).collect();
    let mut in_mis = vec![false; n];
    let mut decided = vec![false; n];
    // Iteration bound: each pass decides at least the undecided min.
    for _pass in 0..members.len().max(1) {
        if members.iter().all(|&v| decided[v]) {
            break;
        }
        let msg_of: Vec<Msg> = (0..n)
            .map(|v| Msg::Mis {
                id: ids[v],
                in_mis: in_mis[v],
                decided: decided[v],
            })
            .collect();
        let inbox = exchange_states(engine, unit, adj, &msg_of);
        // Decide this LOCAL round from the states just heard.
        let mut join = Vec::new();
        let mut drop = Vec::new();
        for &v in members {
            if decided[v] {
                continue;
            }
            let mut dominated = false;
            let mut is_min = true;
            for &(u, m) in &inbox[v] {
                if let Msg::Mis {
                    in_mis: u_in,
                    decided: u_dec,
                    ..
                } = m
                {
                    if u_in {
                        dominated = true;
                    }
                    if !u_dec {
                        debug_assert_ne!(ids[u], ids[v], "duplicate IDs on an H-edge");
                        if ids[u] < ids[v] {
                            is_min = false;
                        }
                    }
                }
            }
            if dominated {
                drop.push(v);
            } else if is_min {
                join.push(v);
            }
        }
        for v in drop {
            decided[v] = true;
        }
        for v in join {
            in_mis[v] = true;
            decided[v] = true;
        }
    }
    in_mis
}

fn linial_mis(
    engine: &mut Engine<'_>,
    unit: &ReplayUnit,
    members: &[usize],
    adj: &BTreeMap<usize, Vec<usize>>,
    degree_bound: usize,
    max_id: u64,
) -> Vec<bool> {
    let net = engine.network();
    let n = net.len();
    let ids: Vec<u64> = (0..n).map(|v| net.id(v)).collect();
    // --- Color reduction: colors start as IDs, palette [0, m).
    let mut color: Vec<u64> = ids.clone();
    let mut m = max_id + 1;
    let target = linial_fixed_point(degree_bound);
    let mut guard = 0;
    while m > target {
        let cff = CoverFreeFamily::for_colors(m, degree_bound);
        let msg_of: Vec<Msg> = (0..n)
            .map(|v| Msg::Color {
                id: ids[v],
                color: color[v],
            })
            .collect();
        let inbox = exchange_states(engine, unit, adj, &msg_of);
        for &v in members {
            let mut nbr_colors: Vec<u64> = inbox[v]
                .iter()
                .filter_map(|&(_, m)| match m {
                    Msg::Color { color, .. } => Some(color),
                    _ => None,
                })
                .collect();
            nbr_colors.sort_unstable();
            nbr_colors.dedup();
            color[v] = cff
                .select_free(color[v], &nbr_colors)
                .expect("proper coloring maintained by induction"); // lint:allow(P1, reason = "invariant: coloring stays proper by induction")
        }
        let next = cff.ground_size();
        if next >= m {
            break; // fixed point reached
        }
        m = next;
        guard += 1;
        assert!(
            guard <= 64,
            "color reduction failed to converge (log* loop)"
        );
    }
    // --- Color-class sweep: class c decides in pass c.
    let mut in_mis = vec![false; n];
    let mut decided = vec![false; n];
    for c in 0..m {
        if members.iter().all(|&v| decided[v]) {
            break; // adaptive early exit (observer)
        }
        let msg_of: Vec<Msg> = (0..n)
            .map(|v| Msg::Mis {
                id: ids[v],
                in_mis: in_mis[v],
                decided: decided[v],
            })
            .collect();
        let inbox = exchange_states(engine, unit, adj, &msg_of);
        for &v in members {
            if decided[v] {
                continue;
            }
            let dominated = inbox[v]
                .iter()
                .any(|&(_, m)| matches!(m, Msg::Mis { in_mis: true, .. }));
            if dominated {
                decided[v] = true;
            } else if color[v] == c {
                in_mis[v] = true;
                decided[v] = true;
            }
        }
    }
    // Any survivor (undecided because some class was skipped adaptively)
    // joins if still undominated — preserves maximality.
    for &v in members {
        if !decided[v] {
            let dominated = adj.get(&v).is_some_and(|l| l.iter().any(|&u| in_mis[u]));
            if !dominated {
                in_mis[v] = true;
            }
        }
    }
    in_mis
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ProtocolParams;
    use crate::proximity::build_proximity_graph;
    use crate::run::SeedSeq;
    use dcluster_sim::graph::Graph;
    use dcluster_sim::rng::Rng64;
    use dcluster_sim::{deploy, Network};

    fn check_mis(adj: &BTreeMap<usize, Vec<usize>>, n: usize, sel: &[bool], members: &[usize]) {
        let mut g = Graph::new(n);
        for (&v, l) in adj {
            for &u in l {
                g.add_edge(v, u);
            }
        }
        let mut mask = vec![false; n];
        for &v in members {
            mask[v] = true;
        }
        assert!(
            g.is_mis(sel, Some(&mask)),
            "not a MIS of the induced subgraph"
        );
    }

    fn build(netseed: u64, n: usize) -> (Network, ProtocolParams) {
        let mut rng = Rng64::new(netseed);
        let net = Network::builder(deploy::uniform_square(n, 2.5, &mut rng))
            .build()
            .unwrap();
        (net, ProtocolParams::practical())
    }

    #[test]
    fn local_minima_is_independent_and_hits_components() {
        let ids = vec![5u64, 3, 9, 1, 7];
        let mut adj = BTreeMap::new();
        adj.insert(0, vec![1]);
        adj.insert(1, vec![0, 2]);
        adj.insert(2, vec![1]);
        adj.insert(3, vec![4]);
        adj.insert(4, vec![3]);
        let members = [0, 1, 2, 3, 4];
        let sel = local_minima(&ids, &members, &adj);
        assert_eq!(sel, vec![false, true, false, true, false]);
    }

    #[test]
    fn greedy_mis_is_maximal_independent() {
        let (net, params) = build(3, 60);
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::new(&net);
        let members: Vec<usize> = (0..net.len()).collect();
        let p = build_proximity_graph(
            &mut engine,
            &params,
            &mut seeds,
            &members,
            &vec![0; net.len()],
            false,
        );
        let sel = local_mis(
            &mut engine,
            &p.unit,
            &members,
            &p.adj,
            params.kappa,
            net.max_id(),
            MisStrategy::GreedyById,
        );
        check_mis(&p.adj, net.len(), &sel, &members);
    }

    #[test]
    fn linial_mis_is_maximal_independent_and_matches_greedy_quality() {
        let (net, params) = build(4, 40);
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = Engine::new(&net);
        let members: Vec<usize> = (0..net.len()).collect();
        let p = build_proximity_graph(
            &mut engine,
            &params,
            &mut seeds,
            &members,
            &vec![0; net.len()],
            false,
        );
        let sel = local_mis(
            &mut engine,
            &p.unit,
            &members,
            &p.adj,
            params.kappa,
            net.max_id(),
            MisStrategy::LinialSweep,
        );
        check_mis(&p.adj, net.len(), &sel, &members);
        assert!(
            sel.iter().any(|&b| b),
            "MIS of a nonempty graph is nonempty"
        );
    }

    #[test]
    fn isolated_members_always_join() {
        let (net, params) = build(5, 10);
        let mut engine = Engine::new(&net);
        let members: Vec<usize> = (0..net.len()).collect();
        // Empty adjacency: everyone is isolated, everyone joins.
        let adj: BTreeMap<usize, Vec<usize>> = members.iter().map(|&v| (v, vec![])).collect();
        let mut seeds = SeedSeq::new(params.seed);
        let wss = crate::run::fresh_wss(&params, &mut seeds, net.max_id());
        let unit = ReplayUnit::snapshot(
            &net,
            crate::run::SchedHandle::Wss(wss),
            &members,
            &vec![0; net.len()],
        );
        let sel = local_mis(
            &mut engine,
            &unit,
            &members,
            &adj,
            params.kappa,
            net.max_id(),
            MisStrategy::GreedyById,
        );
        assert!(members.iter().all(|&v| sel[v]));
    }
}
