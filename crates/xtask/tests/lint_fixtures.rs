//! End-to-end tests for `cargo run -p xtask -- lint`: the fixture tree
//! must produce exactly the expected diagnostics (positive cases), the
//! real workspace must be clean (negative case), and the JSON output
//! must round-trip through the crate's own parser.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

/// Every diagnostic the fixture tree is built to produce, as
/// `(rule, file, line)` — sorted the way `lint_workspace` sorts.
const EXPECTED: &[(&str, &str, usize)] = &[
    ("A1", "crates/det/src/allows.rs", 17),
    ("A0", "crates/det/src/allows.rs", 21),
    ("P1", "crates/det/src/allows.rs", 21),
    ("A1", "crates/det/src/clock.rs", 10),
    ("D1", "crates/det/src/lib.rs", 11),
    ("D2", "crates/det/src/lib.rs", 16),
    ("P1", "crates/det/src/lib.rs", 21),
    ("D5", "crates/other/src/lib.rs", 1),
    ("D3", "crates/other/src/lib.rs", 6),
    ("D4", "crates/other/src/lib.rs", 10),
];

#[test]
fn fixture_tree_produces_exactly_the_expected_diagnostics() {
    let root = fixtures_root();
    let diags = xtask::run_lint(&root, &root.join("lint.toml")).expect("lint runs");
    let got: Vec<(&str, &str, usize)> = diags
        .iter()
        .map(|d| (d.rule, d.file.as_str(), d.line))
        .collect();
    assert_eq!(got, EXPECTED, "fixture diagnostics drifted");
}

#[test]
fn real_workspace_is_clean() {
    let root = workspace_root();
    let diags = xtask::run_lint(&root, &root.join("lint.toml")).expect("lint runs");
    assert!(
        diags.is_empty(),
        "the committed tree must lint clean; got:\n{}",
        xtask::diag::render_human(&diags)
    );
}

fn run_binary(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(args)
        .output()
        .expect("xtask binary runs");
    (
        out.status.code(),
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
        String::from_utf8(out.stderr).expect("utf-8 stderr"),
    )
}

#[test]
fn json_output_round_trips_and_exits_nonzero_on_findings() {
    let root = fixtures_root();
    let policy = root.join("lint.toml");
    let (code, stdout, _) = run_binary(&[
        "lint",
        "--format",
        "json",
        "--root",
        root.to_str().expect("utf-8 path"),
        "--policy",
        policy.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(code, Some(1), "diagnostics must exit 1");
    let v = xtask::json::parse(&stdout).expect("stdout is valid JSON");
    assert_eq!(v.get("ok").and_then(|o| o.as_bool()), Some(false));
    assert_eq!(
        v.get("count").and_then(|c| c.as_f64()),
        Some(EXPECTED.len() as f64)
    );
    let diags = v
        .get("diagnostics")
        .and_then(|d| d.as_array())
        .expect("diagnostics array");
    assert_eq!(diags.len(), EXPECTED.len());
    for (d, (rule, file, line)) in diags.iter().zip(EXPECTED) {
        assert_eq!(d.get("rule").and_then(|x| x.as_str()), Some(*rule));
        assert_eq!(d.get("file").and_then(|x| x.as_str()), Some(*file));
        assert_eq!(d.get("line").and_then(|x| x.as_f64()), Some(*line as f64));
        assert!(d.get("message").and_then(|x| x.as_str()).is_some());
        assert!(d.get("hint").and_then(|x| x.as_str()).is_some());
    }
}

#[test]
fn clean_tree_exits_zero_in_both_formats() {
    let root = workspace_root();
    let root_arg = root.to_str().expect("utf-8 path");
    let (code, stdout, _) = run_binary(&["lint", "--root", root_arg]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("lint: clean (0 diagnostics)"), "{stdout}");
    let (code, stdout, _) = run_binary(&["lint", "--format", "json", "--root", root_arg]);
    assert_eq!(code, Some(0));
    let v = xtask::json::parse(&stdout).expect("valid JSON");
    assert_eq!(v.get("ok").and_then(|o| o.as_bool()), Some(true));
    assert_eq!(v.get("count").and_then(|c| c.as_f64()), Some(0.0));
}

#[test]
fn human_output_names_every_finding_with_file_and_line() {
    let root = fixtures_root();
    let policy = root.join("lint.toml");
    let (code, stdout, _) = run_binary(&[
        "lint",
        "--root",
        root.to_str().expect("utf-8 path"),
        "--policy",
        policy.to_str().expect("utf-8 path"),
    ]);
    assert_eq!(code, Some(1));
    for (rule, file, line) in EXPECTED {
        assert!(
            stdout.contains(&format!("{rule} {file}:{line}")),
            "missing `{rule} {file}:{line}` in:\n{stdout}"
        );
    }
    assert!(stdout.contains(&format!("lint: {} diagnostic(s)", EXPECTED.len())));
}

#[test]
fn usage_errors_exit_two() {
    let (code, _, stderr) = run_binary(&["lint", "--format", "yaml"]);
    assert_eq!(code, Some(2), "bad --format must exit 2");
    assert!(stderr.contains("usage:"), "{stderr}");
    let (code, _, _) = run_binary(&["frobnicate"]);
    assert_eq!(code, Some(2), "unknown task must exit 2");
    let (code, _, _) = run_binary(&[]);
    assert_eq!(code, Some(2), "missing task must exit 2");
}
