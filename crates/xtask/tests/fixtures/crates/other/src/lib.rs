//! Fixture: crate root missing `#![forbid(unsafe_code)]` (D5), raw
//! threading (D3) and an unsanctioned env read (D4). The wall-clock read
//! is a D2 *negative*: D2 is scoped to crates/det in the fixture policy.

pub fn d3_hit() {
    std::thread::spawn(|| {}).join().ok(); // expect D3
}

pub fn d4_hit() -> Option<String> {
    std::env::var("NOT_SANCTIONED").ok() // expect D4
}

pub fn d2_negative() -> std::time::Instant {
    std::time::Instant::now() // no D2: crate is outside [rule.D2] paths
}
