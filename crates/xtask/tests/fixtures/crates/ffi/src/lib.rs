//! Fixture: crate root without `#![forbid(unsafe_code)]`, carried as a
//! reasoned exception under [rule.D5] in the fixture `lint.toml` — no D5.

pub fn shim() -> u8 {
    0
}
