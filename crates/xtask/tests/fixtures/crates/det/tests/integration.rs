//! Fixture: `tests/` trees are exempt from the library-only rules
//! (D1, P1) by construction — nothing here may be flagged.

use std::collections::HashMap;

#[test]
fn helper_maps_are_fine_in_tests() {
    let mut m = HashMap::new();
    m.insert(1u8, 2u8);
    assert_eq!(m.get(&1).copied().unwrap(), 2);
}
