//! Fixture: deterministic crate with one violation per library rule,
//! plus the negatives (use-line, cfg(test) body) that must stay silent.
#![forbid(unsafe_code)]

use std::collections::HashMap; // use-lines are never flagged

mod allows;
mod config;

pub fn d1_hit() -> usize {
    let m: HashMap<u8, u8> = HashMap::new(); // expect D1
    m.len()
}

pub fn d2_hit() -> u64 {
    let t = std::time::Instant::now(); // expect D2
    t.elapsed().as_nanos() as u64
}

pub fn p1_hit(v: Option<u8>) -> u8 {
    v.unwrap() // expect P1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_bodies_are_exempt() {
        let mut m = HashMap::new(); // no D1: inside cfg(test)
        m.insert(1u8, 2u8);
        assert_eq!(m.get(&1).copied().unwrap(), 2); // no P1: inside cfg(test)
        assert_eq!(d1_hit(), 0);
    }
}
