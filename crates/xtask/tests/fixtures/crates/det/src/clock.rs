//! Fixture: the sanctioned wall-clock seam — the whole file is exempted
//! from D2 in the fixture `lint.toml`, mirroring the real policy's
//! Clock-seam scoping for `crates/obs/src/clock.rs`.

pub fn now_nanos() -> u128 {
    std::time::Instant::now().elapsed().as_nanos() // no D2: file is exempt
}

pub fn redundant_allow() -> u8 {
    9 // lint:allow(D2, reason = "file-level exemption already covers this") — expect A1
}
