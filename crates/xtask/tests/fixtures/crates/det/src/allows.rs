//! Fixture: allow-annotation behaviors — a used trailing allow, a used
//! preceding-line allow, a stale allow (A1) and a reasonless allow (A0).

use std::collections::HashMap;

pub fn suppressed() -> usize {
    let m: HashMap<u8, u8> = HashMap::new(); // lint:allow(D1, reason = "membership only; never iterated (fixture)")
    m.len()
}

pub fn suppressed_by_preceding_comment(v: Option<u8>) -> u8 {
    // lint:allow(P1, reason = "guarded by the caller (fixture)")
    v.unwrap()
}

pub fn stale() -> u8 {
    7 // lint:allow(D1, reason = "nothing to suppress here") — expect A1
}

pub fn no_reason(v: Option<u8>) -> u8 {
    v.unwrap() // lint:allow(P1) — expect A0, and P1 still fires
}
