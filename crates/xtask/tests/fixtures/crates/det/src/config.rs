//! Fixture: the sanctioned configuration seam, exempted from D4 in the
//! fixture `lint.toml`.

pub fn override_from_env() -> Option<String> {
    std::env::var("FIXTURE_OVERRIDE").ok() // no D4: module is exempt
}
