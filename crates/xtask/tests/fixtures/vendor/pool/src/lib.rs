//! Fixture: the sanctioned threading implementation — exempted from D3
//! in the fixture `lint.toml`, and a D5 negative (carries the forbid).
#![forbid(unsafe_code)]

pub fn run(f: impl FnOnce() + Send) {
    std::thread::scope(|_| f()); // no D3: file is exempt
}
