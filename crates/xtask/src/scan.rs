//! Source-level line classification for the lint pass.
//!
//! The rules operate on *code text only*: string-literal contents, char
//! literals and comments are blanked out first so that a log message
//! mentioning `HashMap` or a doc example calling `.unwrap()` never trips a
//! rule. Comment text is preserved separately — that is where the
//! `lint:allow` annotations live.
//!
//! The scanner is a small hand-rolled lexer, not a parser: it tracks just
//! enough state (nested block comments, string/raw-string/char literals)
//! to classify every character of a file as code or non-code, plus a
//! brace-depth pass that marks the body of `#[cfg(test)]`-gated items so
//! test-only rules can skip them. It is deliberately conservative: an
//! exotic `cfg` combination (`cfg(all(test, ...))`) is treated as
//! production code, which can only make the lint stricter.

/// One classified source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// The line's code text with literal contents and comments blanked.
    pub code: String,
    /// Concatenated comment text of the line (line + block comments).
    pub comment: String,
    /// True when the line lies inside a `#[cfg(test)]`-gated item body
    /// (including the attribute and the item's closing brace).
    pub in_test: bool,
}

/// Classifies a whole file. Line numbers are implicit: `lines[i]` is
/// source line `i + 1`.
pub fn scan_source(src: &str) -> Vec<Line> {
    let mut lines = lex(src);
    mark_test_regions(&mut lines);
    lines
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Splits every line into code text and comment text, carrying literal
/// and block-comment state across line boundaries.
fn lex(src: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut block_depth = 0usize;
    let mut in_str = false;
    let mut raw_hashes: Option<usize> = None;
    for raw_line in src.lines() {
        let b: Vec<char> = raw_line.chars().collect();
        let mut code = String::new();
        let mut comment = String::new();
        let mut i = 0;
        while i < b.len() {
            if block_depth > 0 {
                if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    block_depth -= 1;
                    i += 2;
                } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    block_depth += 1; // Rust block comments nest
                    i += 2;
                } else {
                    comment.push(b[i]);
                    i += 1;
                }
                continue;
            }
            if in_str {
                if b[i] == '\\' {
                    code.push(' ');
                    code.push(' ');
                    i += 2; // escape: skip the escaped char (may be ")
                } else if b[i] == '"' {
                    in_str = false;
                    code.push('"');
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
                continue;
            }
            if let Some(h) = raw_hashes {
                if b[i] == '"' && (1..=h).all(|k| b.get(i + k) == Some(&'#')) {
                    raw_hashes = None;
                    code.push('"');
                    code.extend(std::iter::repeat_n('#', h));
                    i += 1 + h;
                } else {
                    code.push(' ');
                    i += 1;
                }
                continue;
            }
            match b[i] {
                '/' if b.get(i + 1) == Some(&'/') => {
                    comment.extend(&b[i + 2..]);
                    break;
                }
                '/' if b.get(i + 1) == Some(&'*') => {
                    block_depth = 1;
                    i += 2;
                }
                '"' => {
                    in_str = true;
                    code.push('"');
                    i += 1;
                }
                // Possible raw-(byte-)string opener: r"…", r#"…"#, br"…".
                // Only when not the tail of an identifier (`var"` is not).
                'r' | 'b' if code.chars().last().is_none_or(|c| !is_ident(c)) => {
                    let mut j = i + 1;
                    if b[i] == 'b' && b.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&'"') && (b[i] == 'r' || j > i + 1) {
                        raw_hashes = Some(hashes);
                        for &c in &b[i..=j] {
                            code.push(c);
                        }
                        i = j + 1;
                    } else {
                        code.push(b[i]);
                        i += 1;
                    }
                }
                // Char literal vs lifetime: 'x' / '\n' are literals (blank
                // their contents so '{' cannot skew brace depth), 'scope is
                // a lifetime (kept as code).
                '\'' => {
                    if b.get(i + 1) == Some(&'\\') {
                        code.push('\'');
                        let mut j = i + 2;
                        while j < b.len() && b[j] != '\'' {
                            code.push(' ');
                            j += 1;
                        }
                        code.push('\'');
                        i = j + 1;
                    } else if b.get(i + 2) == Some(&'\'') {
                        code.push_str("' '");
                        i += 3;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                }
                c => {
                    code.push(c);
                    i += 1;
                }
            }
        }
        out.push(Line {
            code,
            comment,
            in_test: false,
        });
    }
    out
}

/// Marks lines inside `#[cfg(test)]`-gated item bodies. A `cfg(test)`
/// attribute arms a pending flag; the next `{` opens the gated region
/// (closed when brace depth returns), while a `;` first means the
/// attribute gated a braceless item (a lone `use`), disarming the flag.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth = 0usize;
    let mut pending = false;
    let mut test_depth: Option<usize> = None;
    for line in lines.iter_mut() {
        let starts_in_test = test_depth.is_some();
        let is_attr = line.code.contains("cfg(test");
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending && test_depth.is_none() {
                        test_depth = Some(depth);
                        pending = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if test_depth == Some(depth) {
                        test_depth = None;
                    }
                }
                ';' if pending && test_depth.is_none() => pending = false,
                _ => {}
            }
        }
        if is_attr {
            pending = true;
        }
        line.in_test = starts_in_test || test_depth.is_some() || is_attr;
    }
}

/// True when `code` contains `token` with identifier boundaries on both
/// sides (so `HashMap` does not match inside `MyHashMapExt`, but
/// `x.unwrap()` matches `.unwrap()` — a token edge that is itself a
/// non-identifier character needs no boundary).
pub fn has_token(code: &str, token: &str) -> bool {
    let first_ident = token.chars().next().is_some_and(is_ident);
    let last_ident = token.chars().last().is_some_and(is_ident);
    let mut from = 0;
    while let Some(pos) = code[from..].find(token) {
        let start = from + pos;
        let end = start + token.len();
        let pre_ok = !first_ident || code[..start].chars().last().is_none_or(|c| !is_ident(c));
        let post_ok = !last_ident || code[end..].chars().next().is_none_or(|c| !is_ident(c));
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_contents_are_blanked() {
        let l = scan_source(r#"let x = "HashMap .unwrap()"; foo();"#);
        assert!(!l[0].code.contains("HashMap"));
        assert!(l[0].code.contains("foo();"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let l = scan_source("let x = r#\"panic!(HashMap)\"#; bar();");
        assert!(!l[0].code.contains("panic"));
        assert!(l[0].code.contains("bar();"));
    }

    #[test]
    fn line_comments_are_captured() {
        let l = scan_source("foo(); // lint:allow(D1, reason = \"x\")");
        assert!(l[0].comment.contains("lint:allow(D1"));
        assert!(!l[0].code.contains("lint:allow"));
    }

    #[test]
    fn nested_block_comments_span_lines() {
        let l = scan_source("a();\n/* one /* two */ still comment\nHashMap */\nb();");
        assert!(l[1].code.trim().is_empty());
        assert!(!l[2].code.contains("HashMap"));
        assert!(l[3].code.contains("b();"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn prod() { x(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y(); }\n}\nfn prod2() {}\n";
        let l = scan_source(src);
        assert!(!l[0].in_test);
        assert!(l[1].in_test && l[2].in_test && l[3].in_test && l[4].in_test);
        assert!(!l[5].in_test);
    }

    #[test]
    fn cfg_test_on_braceless_item_does_not_leak() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn prod() { z(); }\n";
        let l = scan_source(src);
        assert!(l[1].in_test || l[1].code.contains("use"));
        assert!(!l[2].in_test, "region must not extend past the `;`");
    }

    #[test]
    fn char_literal_brace_does_not_skew_depth() {
        let src = "fn f() { let c = '{'; }\n#[cfg(test)]\nmod t {\n    a();\n}\nfn g() {}\n";
        let l = scan_source(src);
        assert!(!l[5].in_test);
    }

    #[test]
    fn lifetimes_stay_code() {
        let l = scan_source("fn f<'a>(x: &'a str) {}");
        assert!(l[0].code.contains("'a"));
    }

    #[test]
    fn token_boundaries_are_respected() {
        assert!(has_token("let m: HashMap<u8, u8> = x;", "HashMap"));
        assert!(!has_token("let m = MyHashMap::new();", "HashMap"));
        assert!(!has_token("let m = HashMapExt::new();", "HashMap"));
        assert!(has_token("x.unwrap()", ".unwrap()"));
        assert!(!has_token("x.unwrap_or(0)", ".unwrap()"));
        assert!(has_token("std::sync::mpsc::channel()", "mpsc"));
    }
}
