//! Minimal JSON support for the lint's `--format json` output: a string
//! quoter for emission and a strict recursive-descent parser used by the
//! round-trip tests (and by any tooling that wants to consume the output
//! without a JSON dependency).

/// A parsed JSON value. Object keys keep their source order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in key order of appearance.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Quotes `s` as a JSON string literal (with the mandatory escapes).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut pos = 0;
    let v = parse_value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(format!("trailing content at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(c: &[char], pos: &mut usize) {
    while c.get(*pos).is_some_and(|c| c.is_ascii_whitespace()) {
        *pos += 1;
    }
}

fn expect(c: &[char], pos: &mut usize, want: char) -> Result<(), String> {
    if c.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{want}` at offset {pos}"))
    }
}

fn parse_value(c: &[char], pos: &mut usize) -> Result<Value, String> {
    skip_ws(c, pos);
    match c.get(*pos) {
        Some('{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(c, pos);
            if c.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            loop {
                skip_ws(c, pos);
                let key = parse_string(c, pos)?;
                skip_ws(c, pos);
                expect(c, pos, ':')?;
                members.push((key, parse_value(c, pos)?));
                skip_ws(c, pos);
                match c.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(Value::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at offset {pos}")),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(c, pos);
            if c.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(c, pos)?);
                skip_ws(c, pos);
                match c.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at offset {pos}")),
                }
            }
        }
        Some('"') => Ok(Value::Str(parse_string(c, pos)?)),
        Some('t') if c[*pos..].starts_with(&['t', 'r', 'u', 'e']) => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some('f') if c[*pos..].starts_with(&['f', 'a', 'l', 's', 'e']) => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some('n') if c[*pos..].starts_with(&['n', 'u', 'l', 'l']) => {
            *pos += 4;
            Ok(Value::Null)
        }
        Some(d) if *d == '-' || d.is_ascii_digit() => {
            let start = *pos;
            while c
                .get(*pos)
                .is_some_and(|x| x.is_ascii_digit() || "+-.eE".contains(*x))
            {
                *pos += 1;
            }
            let text: String = c[start..*pos].iter().collect();
            text.parse()
                .map(Value::Num)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        }
        _ => Err(format!("unexpected input at offset {pos}")),
    }
}

fn parse_string(c: &[char], pos: &mut usize) -> Result<String, String> {
    expect(c, pos, '"')?;
    let mut out = String::new();
    loop {
        match c.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some('"') => {
                *pos += 1;
                return Ok(out);
            }
            Some('\\') => {
                *pos += 1;
                match c.get(*pos) {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let hex: String = c.get(*pos + 1..*pos + 5).unwrap_or(&[]).iter().collect();
                        let n = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        out.push(char::from_u32(n).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(ch) => {
                out.push(*ch);
                *pos += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\"y"}, "d": true, "e": null}"#).unwrap();
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Value::as_str),
            Some("x\"y")
        );
        assert_eq!(v.get("d").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("e"), Some(&Value::Null));
    }

    #[test]
    fn quote_escapes_are_parseable() {
        let s = "a\"b\\c\nd\te\u{1}";
        assert_eq!(parse(&quote(s)).unwrap().as_str(), Some(s));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
