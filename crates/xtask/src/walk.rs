//! Deterministic workspace traversal: every `.rs` file and every crate
//! root, in sorted path order, honoring the policy's `exclude` prefixes.

use std::path::{Path, PathBuf};

/// Directory names never descended into, regardless of policy.
const ALWAYS_SKIPPED: &[&str] = &["target", ".git"];

/// Workspace-relative path with forward slashes (stable across hosts —
/// diagnostics and policy prefixes are compared in this form).
pub fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    parts.join("/")
}

fn excluded(rel: &str, exclude: &[String]) -> bool {
    exclude
        .iter()
        .any(|p| rel == p || rel.starts_with(&format!("{p}/")))
}

fn walk_dirs(root: &Path, dir: &Path, exclude: &[String], out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
        let hidden_or_skipped = name
            .as_deref()
            .is_none_or(|n| n.starts_with('.') || ALWAYS_SKIPPED.contains(&n));
        if hidden_or_skipped || excluded(&rel_path(root, &path), exclude) {
            continue;
        }
        if path.is_dir() {
            walk_dirs(root, &path, exclude, out);
        } else {
            out.push(path);
        }
    }
}

/// Every non-excluded `.rs` file under `root`, sorted.
pub fn rust_files(root: &Path, exclude: &[String]) -> Vec<PathBuf> {
    let mut all = Vec::new();
    walk_dirs(root, root, exclude, &mut all);
    all.retain(|p| p.extension().is_some_and(|e| e == "rs"));
    all
}

/// Every crate root (`src/lib.rs` / `src/main.rs` next to a `Cargo.toml`)
/// under `root`, sorted — the files rule D5 inspects.
pub fn crate_roots(root: &Path, exclude: &[String]) -> Vec<PathBuf> {
    let mut all = Vec::new();
    walk_dirs(root, root, exclude, &mut all);
    let mut roots = Vec::new();
    for manifest in all.iter().filter(|p| {
        p.file_name().is_some_and(|n| n == "Cargo.toml") && !excluded(&rel_path(root, p), exclude)
    }) {
        let dir = manifest.parent().unwrap_or(Path::new(""));
        for entry in ["src/lib.rs", "src/main.rs"] {
            let candidate = dir.join(entry);
            if candidate.is_file() {
                roots.push(candidate);
            }
        }
    }
    roots.sort();
    roots
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_paths_use_forward_slashes() {
        let root = Path::new("/a/b");
        assert_eq!(
            rel_path(root, &root.join("c").join("d.rs")),
            "c/d.rs".to_string()
        );
    }

    #[test]
    fn exclusion_matches_whole_components() {
        let ex = vec!["crates/xtask/tests/fixtures".to_string()];
        assert!(excluded("crates/xtask/tests/fixtures/x.rs", &ex));
        assert!(excluded("crates/xtask/tests/fixtures", &ex));
        assert!(!excluded("crates/xtask/tests/fixtures_other/x.rs", &ex));
    }
}
