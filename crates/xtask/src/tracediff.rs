//! `cargo run -p xtask -- tracediff A B` — structural diff of two
//! `dcluster-trace/1` JSONL files (see `crates/obs`).
//!
//! Traces are deterministic, so two runs of the same scenario must be
//! byte-identical; when they are not, a plain byte compare only says
//! "different". This diff names the **first divergent event** — its line
//! and its round (or epoch) — which is where a determinism hunt starts.
//! Header (metadata) mismatches are reported too, but an event-level
//! divergence wins the headline: diffing two different seeds should say
//! "round 0 differs", not "the seed field differs".

use crate::json::{parse, Value};

/// What [`diff_traces`] found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffOutcome {
    /// Every line matched byte for byte.
    Identical {
        /// Total lines compared (header included).
        lines: usize,
    },
    /// The traces differ; `line` is 1-based.
    Divergent {
        /// First divergent line (preferring event lines over the header).
        line: usize,
        /// Human-readable description of both sides at that line.
        detail: String,
    },
}

/// One-line description of a trace line for diff output.
fn describe(line: &str) -> String {
    let Ok(v) = parse(line) else {
        return "unparseable JSON".into();
    };
    if let Some(s) = v.get("schema").and_then(Value::as_str) {
        return format!("header ({s})");
    }
    let ev = v.get("ev").and_then(Value::as_str).unwrap_or("?");
    if let Some(r) = v.get("round").and_then(Value::as_f64) {
        format!("{ev} at round {r}")
    } else if let Some(e) = v.get("epoch").and_then(Value::as_f64) {
        format!("{ev} at epoch {e}")
    } else {
        ev.to_string()
    }
}

/// Diffs two trace texts. Pure: callers do the file I/O (and surface
/// read failures as operational errors, exit 2 in the CLI).
pub fn diff_traces(a_text: &str, b_text: &str) -> DiffOutcome {
    let a: Vec<&str> = a_text.lines().collect();
    let b: Vec<&str> = b_text.lines().collect();
    let mut header_diff: Option<(usize, String)> = None;
    for i in 0..a.len().max(b.len()) {
        match (a.get(i), b.get(i)) {
            (Some(x), Some(y)) if x == y => {}
            (Some(x), Some(y)) => {
                let detail = format!("A has {}, B has {}", describe(x), describe(y));
                if i == 0 {
                    // Remember, but keep scanning: an event divergence is
                    // the more useful headline than mismatched metadata.
                    header_diff = Some((1, detail));
                } else {
                    let note = if header_diff.is_some() {
                        " (headers differ too)"
                    } else {
                        ""
                    };
                    return DiffOutcome::Divergent {
                        line: i + 1,
                        detail: format!("{detail}{note}"),
                    };
                }
            }
            (Some(x), None) => {
                return DiffOutcome::Divergent {
                    line: i + 1,
                    detail: format!("B ends after {i} line(s); A continues with {}", describe(x)),
                }
            }
            (None, Some(y)) => {
                return DiffOutcome::Divergent {
                    line: i + 1,
                    detail: format!("A ends after {i} line(s); B continues with {}", describe(y)),
                }
            }
            (None, None) => unreachable!("loop bound is max of both lengths"),
        }
    }
    match header_diff {
        Some((line, detail)) => DiffOutcome::Divergent { line, detail },
        None => DiffOutcome::Identical { lines: a.len() },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HDR: &str =
        "{\"schema\":\"dcluster-trace/1\",\"scenario\":\"t\",\"workload\":\"clustering\",\"n\":5,\"resolver\":\"grid\",\"seed\":1}";

    #[test]
    fn identical_traces_match() {
        let t = format!("{HDR}\n{{\"ev\":\"round\",\"round\":0,\"tx\":1,\"rx\":0}}\n");
        assert_eq!(diff_traces(&t, &t), DiffOutcome::Identical { lines: 2 });
    }

    #[test]
    fn first_divergent_round_is_named() {
        let a = format!(
            "{HDR}\n{{\"ev\":\"round\",\"round\":0,\"tx\":1,\"rx\":0}}\n{{\"ev\":\"round\",\"round\":1,\"tx\":2,\"rx\":1}}\n"
        );
        let b = format!(
            "{HDR}\n{{\"ev\":\"round\",\"round\":0,\"tx\":1,\"rx\":0}}\n{{\"ev\":\"round\",\"round\":1,\"tx\":3,\"rx\":1}}\n"
        );
        let DiffOutcome::Divergent { line, detail } = diff_traces(&a, &b) else {
            panic!("must diverge");
        };
        assert_eq!(line, 3);
        assert!(detail.contains("round 1"), "detail: {detail}");
    }

    #[test]
    fn event_divergence_beats_the_header() {
        let a = format!("{HDR}\n{{\"ev\":\"round\",\"round\":0,\"tx\":1,\"rx\":0}}\n");
        let b = a
            .replace("\"seed\":1", "\"seed\":2")
            .replace("\"tx\":1", "\"tx\":9");
        let DiffOutcome::Divergent { line, detail } = diff_traces(&a, &b) else {
            panic!("must diverge");
        };
        assert_eq!(line, 2, "event line wins over the header mismatch");
        assert!(detail.contains("headers differ too"), "detail: {detail}");
    }

    #[test]
    fn header_only_divergence_still_fails() {
        let a = format!("{HDR}\n");
        let b = a.replace("\"seed\":1", "\"seed\":2");
        let DiffOutcome::Divergent { line, .. } = diff_traces(&a, &b) else {
            panic!("must diverge");
        };
        assert_eq!(line, 1);
    }

    #[test]
    fn truncation_is_a_divergence() {
        let a = format!("{HDR}\n{{\"ev\":\"round\",\"round\":0,\"tx\":1,\"rx\":0}}\n");
        let b = format!("{HDR}\n");
        let DiffOutcome::Divergent { line, detail } = diff_traces(&a, &b) else {
            panic!("must diverge");
        };
        assert_eq!(line, 2);
        assert!(detail.contains("B ends"), "detail: {detail}");
    }
}
