//! The committed lint policy: `lint.toml` at the workspace root.
//!
//! A hand-rolled parser for the small TOML subset the policy needs —
//! `[rule.<CODE>]` sections, string values, string arrays (single- or
//! multi-line) and `#` comments. Parse errors carry line numbers and are
//! hard failures: a policy typo must not silently widen or narrow the
//! rule set.
//!
//! Recognized keys:
//!
//! * top level `exclude = [...]` — path prefixes (workspace-relative)
//!   never scanned at all (fixtures, generated output);
//! * per rule `paths = [...]` — prefixes the rule is confined to (empty
//!   or absent: the whole tree);
//! * per rule `exempt = [...]` — prefixes the rule skips (a whole
//!   sanctioned file or directory, in contrast to the per-line
//!   `lint:allow` comments);
//! * `[rule.D5] exceptions = ["<crate-root-path> = <reason>"]` — crate
//!   roots allowed to omit `#![forbid(unsafe_code)]`, each with a
//!   mandatory justification.

use std::collections::BTreeMap;

/// Per-rule path policy.
#[derive(Debug, Clone, Default)]
pub struct RulePolicy {
    /// Prefixes the rule applies to (empty = everywhere).
    pub paths: Vec<String>,
    /// Prefixes the rule skips.
    pub exempt: Vec<String>,
    /// `D5` only: `path = reason` exception entries, pre-split.
    pub exceptions: Vec<(String, String)>,
}

/// The parsed policy file.
#[derive(Debug, Clone, Default)]
pub struct Policy {
    /// Path prefixes excluded from scanning entirely.
    pub exclude: Vec<String>,
    /// Per-rule policies, keyed by rule code (`D1` … `P1`).
    pub rules: BTreeMap<String, RulePolicy>,
}

impl Policy {
    /// The policy for `rule`, or an empty default when the file has no
    /// section for it.
    pub fn rule(&self, rule: &str) -> RulePolicy {
        self.rules.get(rule).cloned().unwrap_or_default()
    }

    /// Parses the policy text. Errors name the offending line.
    pub fn parse(text: &str) -> Result<Policy, String> {
        let mut policy = Policy::default();
        let mut section: Option<String> = None;
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let name = name
                    .strip_suffix(']')
                    .ok_or(format!("lint.toml:{lineno}: unterminated section header"))?
                    .trim();
                let rule = name.strip_prefix("rule.").ok_or(format!(
                    "lint.toml:{lineno}: unknown section [{name}] (expected [rule.<CODE>])"
                ))?;
                section = Some(rule.to_string());
                policy.rules.entry(rule.to_string()).or_default();
                continue;
            }
            let (key, mut value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
                .ok_or(format!("lint.toml:{lineno}: expected `key = value`"))?;
            // Multi-line array: accumulate until the closing bracket.
            while value.starts_with('[') && !value.ends_with(']') {
                let (_, cont) = lines
                    .next()
                    .ok_or(format!("lint.toml:{lineno}: unterminated array"))?;
                value.push(' ');
                value.push_str(strip_comment(cont).trim());
            }
            let items = parse_string_array(&value)
                .map_err(|e| format!("lint.toml:{lineno}: {e} in `{key}`"))?;
            match (section.as_deref(), key.as_str()) {
                (None, "exclude") => policy.exclude = items,
                (Some(rule), "paths") => policy.rules.get_mut(rule).unwrap().paths = items,
                (Some(rule), "exempt") => policy.rules.get_mut(rule).unwrap().exempt = items,
                (Some(rule), "exceptions") => {
                    let mut split = Vec::new();
                    for item in items {
                        let (path, reason) = item.split_once('=').ok_or(format!(
                            "lint.toml:{lineno}: exception `{item}` must be `<path> = <reason>`"
                        ))?;
                        let (path, reason) = (path.trim(), reason.trim());
                        if reason.is_empty() {
                            return Err(format!(
                                "lint.toml:{lineno}: exception for `{path}` lacks a reason"
                            ));
                        }
                        split.push((path.to_string(), reason.to_string()));
                    }
                    policy.rules.get_mut(rule).unwrap().exceptions = split;
                }
                (sec, key) => {
                    let at = sec.map_or("top level".to_string(), |s| format!("[rule.{s}]"));
                    return Err(format!("lint.toml:{lineno}: unknown key `{key}` at {at}"));
                }
            }
        }
        Ok(policy)
    }
}

/// Drops a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses `["a", "b"]` (or a bare `"a"` as a one-element list).
fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let inner = match value.strip_prefix('[') {
        Some(rest) => rest
            .strip_suffix(']')
            .ok_or("unterminated array".to_string())?,
        None => value,
    };
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        let s = part
            .strip_prefix('"')
            .and_then(|p| p.strip_suffix('"'))
            .ok_or(format!("expected a double-quoted string, got `{part}`"))?;
        out.push(s.to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_comments() {
        let p = Policy::parse(
            "# top\nexclude = [\"target\", \"results\"]\n\n[rule.D2]\npaths = [\n  \"crates/core\", # inline\n  \"crates/sim\",\n]\n[rule.D4]\nexempt = [\"crates/bench/src/lib.rs\"]\n",
        )
        .unwrap();
        assert_eq!(p.exclude, ["target", "results"]);
        assert_eq!(p.rule("D2").paths, ["crates/core", "crates/sim"]);
        assert_eq!(p.rule("D4").exempt, ["crates/bench/src/lib.rs"]);
        assert!(p.rule("P1").paths.is_empty(), "absent rule: empty default");
    }

    #[test]
    fn d5_exceptions_require_reasons() {
        let ok = Policy::parse("[rule.D5]\nexceptions = [\"vendor/x/src/lib.rs = ffi shim\"]\n")
            .unwrap();
        assert_eq!(
            ok.rule("D5").exceptions,
            [("vendor/x/src/lib.rs".to_string(), "ffi shim".to_string())]
        );
        assert!(Policy::parse("[rule.D5]\nexceptions = [\"vendor/x/src/lib.rs\"]\n").is_err());
        assert!(Policy::parse("[rule.D5]\nexceptions = [\"vendor/x/src/lib.rs = \"]\n").is_err());
    }

    #[test]
    fn errors_name_the_line() {
        let err = Policy::parse("exclude = [\"a\"]\nbogus line\n").unwrap_err();
        assert!(err.contains(":2:"), "{err}");
        assert!(Policy::parse("[section]\n").is_err());
        assert!(Policy::parse("[rule.D1]\nunknown = true\n").is_err());
    }
}
