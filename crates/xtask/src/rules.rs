//! The determinism & soundness rule set, and the per-file driver that
//! applies it (token rules D1–D4/P1 on classified lines, the structural
//! crate-root rule D5, and the meta rules A0/A1 that keep the allowlist
//! itself honest).
//!
//! | code | guards against |
//! |------|----------------|
//! | `D1` | `HashMap`/`HashSet` use in library code — iteration order leaks |
//! | `D2` | wall-clock reads inside the deterministic crates |
//! | `D3` | raw threading primitives bypassing the scoped pool |
//! | `D4` | `env::var` outside the sanctioned configuration seams |
//! | `D5` | crate roots without `#![forbid(unsafe_code)]` |
//! | `P1` | `unwrap`/`expect`/`panic!` in fallible library code |
//! | `A0` | malformed allow annotations (e.g. no reason) |
//! | `A1` | stale allows that no longer suppress anything |
//!
//! A site is suppressed with a `lint:allow` comment — rule code plus a
//! mandatory `reason = "..."` — on the offending line or on a comment
//! line directly above it. File- and directory-level policy lives in
//! `lint.toml` (see [`crate::policy`]).

use crate::diag::Diagnostic;
use crate::policy::Policy;
use crate::scan::{self, has_token};
use crate::walk;
use std::path::Path;

/// A token-based line rule.
pub struct Rule {
    /// Stable code (`D1`, …) used in output and in `lint:allow`.
    pub code: &'static str,
    /// Any of these tokens on a code line is a hit.
    pub tokens: &'static [&'static str],
    /// Skip `#[cfg(test)]` bodies and `tests/`/`benches/`/`examples/`
    /// trees — for rules about *library* code only.
    pub library_only: bool,
    /// Skip plain `use` declarations (imports are not the hazard site).
    pub skip_use_lines: bool,
    /// One-line statement of the defect.
    pub message: &'static str,
    /// One-line fix-it.
    pub hint: &'static str,
}

/// The token rules, in code order. `D5` is structural and handled
/// separately by [`lint_workspace`].
pub const RULES: &[Rule] = &[
    Rule {
        code: "D1",
        tokens: &["HashMap", "HashSet"],
        library_only: true,
        skip_use_lines: true,
        message: "use of HashMap/HashSet: iteration order is nondeterministic and can leak into traces or reports",
        hint: "prefer BTreeMap/BTreeSet or sort before iterating; if order provably never escapes, annotate `// lint:allow(D1, reason = \"...\")`",
    },
    Rule {
        code: "D2",
        tokens: &["std::time", "Instant::now", "SystemTime"],
        library_only: false,
        skip_use_lines: false,
        message: "wall-clock read inside a deterministic crate",
        hint: "timing belongs in crates/bench; pass measured durations into these crates as plain data",
    },
    Rule {
        code: "D3",
        tokens: &["thread::spawn", "thread::scope", "mpsc"],
        library_only: false,
        skip_use_lines: false,
        message: "raw threading primitive bypasses the deterministic scoped pool",
        hint: "submit jobs through scoped_threadpool::Pool and merge results in chunk order (see ParallelResolver); raw spawns make merge order host-dependent",
    },
    Rule {
        code: "D4",
        tokens: &["env::var", "env::var_os", "env::vars"],
        library_only: false,
        skip_use_lines: false,
        message: "environment read outside the sanctioned configuration seams",
        hint: "route configuration through the seams exempted in lint.toml [rule.D4], or annotate a documented override point with `// lint:allow(D4, reason = \"...\")`",
    },
    Rule {
        code: "P1",
        tokens: &[".unwrap()", ".expect(", "panic!"],
        library_only: true,
        skip_use_lines: false,
        message: "panic path (unwrap/expect/panic!) in fallible library code",
        hint: "return an error through the fallible entry points, or annotate the guarded invariant with `// lint:allow(P1, reason = \"...\")`",
    },
];

const D5_MESSAGE: &str = "crate root lacks `#![forbid(unsafe_code)]`";
const D5_HINT: &str =
    "add the attribute, or record `\"<path> = <reason>\"` under [rule.D5] exceptions in lint.toml";

fn rule_by_code(code: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.code == code)
}

/// Path segments that exempt `library_only` rules (test, bench and
/// example code may use panics and hash collections freely).
fn in_non_library_tree(rel: &str) -> bool {
    rel.split('/')
        .any(|seg| matches!(seg, "tests" | "benches" | "examples"))
}

fn path_in(rel: &str, prefixes: &[String]) -> bool {
    prefixes
        .iter()
        .any(|p| rel == p || rel.starts_with(&format!("{p}/")))
}

fn rule_applies(rule: &Rule, rel: &str, in_test: bool, policy: &Policy) -> bool {
    if rule.library_only && (in_test || in_non_library_tree(rel)) {
        return false;
    }
    let rp = policy.rule(rule.code);
    (rp.paths.is_empty() || path_in(rel, &rp.paths)) && !path_in(rel, &rp.exempt)
}

fn is_use_line(code: &str) -> bool {
    let t = code.trim_start();
    t.starts_with("use ") || t.starts_with("pub use ") || t.starts_with("pub(crate) use ")
}

/// One parsed `lint:allow` annotation, tracked for staleness.
struct Allow {
    rule: &'static str,
    /// Line the annotation was written on (for A1 reporting), 1-based.
    decl_line: usize,
    used: bool,
}

/// Parses every allow annotation in a comment. Malformed ones (unknown
/// rule, missing or empty reason) become `A0` diagnostics.
fn parse_allows(
    comment: &str,
    rel: &str,
    lineno: usize,
    diags: &mut Vec<Diagnostic>,
) -> Vec<Allow> {
    const MARKER: &str = "lint:allow(";
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = comment[from..].find(MARKER) {
        let start = from + pos + MARKER.len();
        // The closing paren: first `)` outside the quoted reason (the
        // reason text itself may contain parentheses).
        let mut in_quote = false;
        let Some(end) = comment[start..]
            .char_indices()
            .find(|&(_, c)| match c {
                '"' => {
                    in_quote = !in_quote;
                    false
                }
                ')' => !in_quote,
                _ => false,
            })
            .map(|(i, _)| i)
        else {
            push_a0(diags, rel, lineno, "unterminated `lint:allow(`");
            return out;
        };
        let body = &comment[start..start + end];
        from = start + end + 1;
        let (code, rest) = match body.split_once(',') {
            Some((c, r)) => (c.trim(), r.trim()),
            None => (body.trim(), ""),
        };
        let Some(rule) = rule_by_code(code) else {
            push_a0(diags, rel, lineno, &format!("unknown rule `{code}`"));
            continue;
        };
        let reason = rest
            .strip_prefix("reason")
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix('='))
            .map(str::trim)
            .and_then(|r| r.strip_prefix('"'))
            .and_then(|r| r.strip_suffix('"'))
            .map(str::trim);
        match reason {
            Some(r) if !r.is_empty() => out.push(Allow {
                rule: rule.code,
                decl_line: lineno,
                used: false,
            }),
            _ => push_a0(
                diags,
                rel,
                lineno,
                &format!("allow for `{code}` lacks a reason (`reason = \"...\"` is mandatory)"),
            ),
        }
    }
    out
}

fn push_a0(diags: &mut Vec<Diagnostic>, rel: &str, lineno: usize, what: &str) {
    diags.push(Diagnostic {
        rule: "A0",
        file: rel.to_string(),
        line: lineno,
        message: format!("malformed lint:allow annotation: {what}"),
        hint: "write `// lint:allow(<rule>, reason = \"why this site is sound\")`".to_string(),
    });
}

/// Lints one file's source text, appending diagnostics.
pub fn lint_file(rel: &str, src: &str, policy: &Policy, diags: &mut Vec<Diagnostic>) {
    let lines = scan::scan_source(src);

    // Attach allows: an annotation on a code line covers that line; on a
    // comment-only line it covers the next code line.
    let mut attached: Vec<Vec<Allow>> = (0..lines.len()).map(|_| Vec::new()).collect();
    let mut pending: Vec<Allow> = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let mut own = parse_allows(&line.comment, rel, i + 1, diags);
        if line.code.trim().is_empty() {
            pending.append(&mut own);
        } else {
            attached[i] = std::mem::take(&mut pending);
            attached[i].append(&mut own);
        }
    }
    let mut stale = pending; // annotations with no code line left to cover

    for (i, line) in lines.iter().enumerate() {
        for rule in RULES {
            if !rule_applies(rule, rel, line.in_test, policy)
                || (rule.skip_use_lines && is_use_line(&line.code))
                || !rule.tokens.iter().any(|t| has_token(&line.code, t))
            {
                continue;
            }
            match attached[i].iter_mut().find(|a| a.rule == rule.code) {
                Some(allow) => allow.used = true,
                None => diags.push(Diagnostic {
                    rule: rule.code,
                    file: rel.to_string(),
                    line: i + 1,
                    message: rule.message.to_string(),
                    hint: rule.hint.to_string(),
                }),
            }
        }
    }

    stale.extend(attached.into_iter().flatten());
    for allow in stale.iter().filter(|a| !a.used) {
        diags.push(Diagnostic {
            rule: "A1",
            file: rel.to_string(),
            line: allow.decl_line,
            message: format!(
                "stale lint:allow({}): no matching diagnostic on the covered line",
                allow.rule
            ),
            hint: "remove the annotation (or move it onto the offending line)".to_string(),
        });
    }
}

/// Structural rule D5: every crate root must carry
/// `#![forbid(unsafe_code)]` or a reasoned exception in `lint.toml`.
fn lint_crate_roots(
    root: &Path,
    policy: &Policy,
    diags: &mut Vec<Diagnostic>,
) -> Result<(), String> {
    let exceptions = policy.rule("D5").exceptions;
    for path in walk::crate_roots(root, &policy.exclude) {
        let rel = walk::rel_path(root, &path);
        if exceptions.iter().any(|(p, _)| *p == rel) {
            continue;
        }
        let src = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let has_forbid = scan::scan_source(&src)
            .iter()
            .any(|l| l.code.contains("#![forbid(unsafe_code)]"));
        if !has_forbid {
            diags.push(Diagnostic {
                rule: "D5",
                file: rel,
                line: 1,
                message: D5_MESSAGE.to_string(),
                hint: D5_HINT.to_string(),
            });
        }
    }
    Ok(())
}

/// Runs the whole pass over the workspace at `root`: every `.rs` file
/// through the token rules, every crate root through D5. Diagnostics come
/// back sorted by file, line, then rule code.
pub fn lint_workspace(root: &Path, policy: &Policy) -> Result<Vec<Diagnostic>, String> {
    let mut diags = Vec::new();
    for path in walk::rust_files(root, &policy.exclude) {
        let src = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        lint_file(&walk::rel_path(root, &path), &src, policy, &mut diags);
    }
    lint_crate_roots(root, policy, &mut diags)?;
    diags.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str, policy: &Policy) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        lint_file(rel, src, policy, &mut diags);
        diags
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn d1_fires_on_declarations_not_imports_or_tests() {
        let policy = Policy::default();
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u8, u8> = HashMap::new(); }\n#[cfg(test)]\nmod tests {\n    fn t() { let s = std::collections::HashSet::new(); }\n}\n";
        let diags = run("crates/x/src/lib.rs", src, &policy);
        assert_eq!(codes(&diags), ["D1"]);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn library_only_rules_skip_test_trees() {
        let policy = Policy::default();
        assert!(run(
            "crates/x/tests/t.rs",
            "fn f() { x.unwrap(); let m = HashMap::new(); }",
            &policy
        )
        .is_empty());
        assert!(run(
            "examples/e.rs",
            "fn f() { let m = HashSet::new(); }",
            &policy
        )
        .is_empty());
    }

    #[test]
    fn allows_suppress_and_require_use() {
        let policy = Policy::default();
        let src = "fn f() {\n    // lint:allow(D1, reason = \"membership only\")\n    let m = HashMap::new();\n}\n";
        assert!(run("crates/x/src/lib.rs", src, &policy).is_empty());
        let inline = "fn f() { let m = HashMap::new(); } // lint:allow(D1, reason = \"ok\")\n";
        assert!(run("crates/x/src/lib.rs", inline, &policy).is_empty());
        let stale = "fn f() { let m = 1; } // lint:allow(D1, reason = \"nothing here\")\n";
        assert_eq!(codes(&run("crates/x/src/lib.rs", stale, &policy)), ["A1"]);
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let policy = Policy::default();
        let src = "fn f() { let m = HashMap::new(); } // lint:allow(D1)\n";
        let diags = run("crates/x/src/lib.rs", src, &policy);
        assert_eq!(codes(&diags), ["A0", "D1"], "bad allow must not suppress");
        let empty = "fn f() { let m = HashMap::new(); } // lint:allow(D1, reason = \"\")\n";
        assert_eq!(
            codes(&run("crates/x/src/lib.rs", empty, &policy)),
            ["A0", "D1"]
        );
        let unknown = "fn f() {} // lint:allow(Z9, reason = \"x\")\n";
        assert_eq!(codes(&run("crates/x/src/lib.rs", unknown, &policy)), ["A0"]);
    }

    #[test]
    fn policy_paths_confine_rules() {
        let policy = Policy::parse("[rule.D2]\npaths = [\"crates/core\"]\n").unwrap();
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(codes(&run("crates/core/src/x.rs", src, &policy)), ["D2"]);
        assert!(run("crates/bench/src/x.rs", src, &policy).is_empty());
    }

    #[test]
    fn policy_exempt_skips_sanctioned_files() {
        let policy = Policy::parse("[rule.D4]\nexempt = [\"crates/b/src/lib.rs\"]\n").unwrap();
        let src = "fn f() { let v = std::env::var(\"X\"); }\n";
        assert!(run("crates/b/src/lib.rs", src, &policy).is_empty());
        assert_eq!(codes(&run("crates/b/src/other.rs", src, &policy)), ["D4"]);
    }

    #[test]
    fn d3_catches_spawn_scope_and_channels() {
        let policy = Policy::default();
        for src in [
            "fn f() { std::thread::spawn(|| {}); }",
            "fn f() { std::thread::scope(|s| {}); }",
            "fn f() { let (tx, rx) = std::sync::mpsc::channel::<u8>(); }",
        ] {
            assert_eq!(codes(&run("crates/x/src/lib.rs", src, &policy)), ["D3"]);
        }
    }

    #[test]
    fn strings_and_comments_never_trip_rules() {
        let policy = Policy::default();
        let src = "fn f() { log(\"HashMap panic! .unwrap()\"); } // HashMap in prose\n";
        assert!(run("crates/x/src/lib.rs", src, &policy).is_empty());
    }
}
