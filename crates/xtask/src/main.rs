//! `cargo run -p xtask -- lint [--format human|json] [--root DIR]
//! [--policy FILE]` — see the crate docs and README "Static analysis".
//!
//! `cargo run -p xtask -- tracediff A.jsonl B.jsonl` — diff two
//! observability traces, naming the first divergent round/event.
//!
//! Exit status: 0 clean/identical, 1 diagnostics or divergence found,
//! 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: cargo run -p xtask -- lint [--format human|json] [--root DIR] [--policy FILE]\n       cargo run -p xtask -- tracediff <A.jsonl> <B.jsonl>";

fn fail(msg: &str) -> ExitCode {
    eprintln!("xtask: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// Walks up from the current directory to the workspace root (the first
/// ancestor whose `Cargo.toml` declares `[workspace]`).
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn run_tracediff(args: &[String]) -> ExitCode {
    let [a, b] = args else {
        return fail("tracediff takes exactly two trace files");
    };
    let read = |path: &String| {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    };
    let (ta, tb) = match (read(a), read(b)) {
        (Ok(ta), Ok(tb)) => (ta, tb),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("xtask: {e}");
            return ExitCode::from(2);
        }
    };
    match xtask::tracediff::diff_traces(&ta, &tb) {
        xtask::tracediff::DiffOutcome::Identical { lines } => {
            println!("tracediff: identical ({lines} line(s))");
            ExitCode::SUCCESS
        }
        xtask::tracediff::DiffOutcome::Divergent { line, detail } => {
            println!("tracediff: first divergence at line {line}: {detail}");
            ExitCode::from(1)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("lint") => {}
        Some("tracediff") => return run_tracediff(&args[1..]),
        Some(other) => return fail(&format!("unknown task `{other}`")),
        None => return fail("missing task"),
    }
    let mut format = "human".to_string();
    let mut root: Option<PathBuf> = None;
    let mut policy: Option<PathBuf> = None;
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().cloned().ok_or(format!("{name} requires a value"));
        match flag.as_str() {
            "--format" => match value("--format") {
                Ok(v) if v == "human" || v == "json" => format = v,
                Ok(v) => return fail(&format!("--format must be human or json, got `{v}`")),
                Err(e) => return fail(&e),
            },
            "--root" => match value("--root") {
                Ok(v) => root = Some(PathBuf::from(v)),
                Err(e) => return fail(&e),
            },
            "--policy" => match value("--policy") {
                Ok(v) => policy = Some(PathBuf::from(v)),
                Err(e) => return fail(&e),
            },
            other => return fail(&format!("unknown flag `{other}`")),
        }
    }
    let Some(root) = root.or_else(find_workspace_root) else {
        return fail(
            "cannot locate the workspace root (run from inside the workspace or pass --root)",
        );
    };
    let policy = policy.unwrap_or_else(|| root.join("lint.toml"));
    match xtask::run_lint(&root, &policy) {
        Ok(diags) => {
            let rendered = match format.as_str() {
                "json" => xtask::diag::render_json(&diags),
                _ => xtask::diag::render_human(&diags),
            };
            print!("{rendered}");
            if diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("xtask: {e}");
            ExitCode::from(2)
        }
    }
}
