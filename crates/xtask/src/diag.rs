//! Diagnostics: the lint's machine- and human-readable output.

use crate::json;
use std::fmt::Write as _;

/// One lint finding, anchored to a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule code (`D1` … `D5`, `P1`, or the meta rules `A0`/`A1`).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong at the site.
    pub message: String,
    /// How to fix it (or how to allowlist it legitimately).
    pub hint: String,
}

/// Renders diagnostics for terminals: `RULE file:line: message` plus an
/// indented fix-it hint, followed by a one-line summary.
pub fn render_human(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        let _ = writeln!(out, "{} {}:{}: {}", d.rule, d.file, d.line, d.message);
        let _ = writeln!(out, "   hint: {}", d.hint);
    }
    if diags.is_empty() {
        out.push_str("lint: clean (0 diagnostics)\n");
    } else {
        let _ = writeln!(out, "lint: {} diagnostic(s)", diags.len());
    }
    out
}

/// Renders diagnostics as a single JSON object:
/// `{"ok": bool, "count": N, "diagnostics": [{...}]}`.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"ok\": {}, \"count\": {}, \"diagnostics\": [",
        diags.is_empty(),
        diags.len()
    );
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"hint\": {}}}",
            json::quote(d.rule),
            json::quote(&d.file),
            d.line,
            json::quote(&d.message),
            json::quote(&d.hint)
        );
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![Diagnostic {
            rule: "D1",
            file: "crates/x/src/lib.rs".to_string(),
            line: 7,
            message: "m \"quoted\"".to_string(),
            hint: "h".to_string(),
        }]
    }

    #[test]
    fn human_output_has_file_line_and_summary() {
        let s = render_human(&sample());
        assert!(s.contains("D1 crates/x/src/lib.rs:7:"));
        assert!(s.contains("lint: 1 diagnostic(s)"));
        assert!(render_human(&[]).contains("clean"));
    }

    #[test]
    fn json_output_parses_back() {
        let s = render_json(&sample());
        let v = json::parse(&s).unwrap();
        assert_eq!(v.get("count").and_then(json::Value::as_f64), Some(1.0));
        let ds = v
            .get("diagnostics")
            .and_then(json::Value::as_array)
            .unwrap();
        assert_eq!(ds[0].get("line").and_then(json::Value::as_f64), Some(7.0));
        assert_eq!(
            ds[0].get("message").and_then(json::Value::as_str),
            Some("m \"quoted\"")
        );
    }
}
