//! Workspace-local developer tooling (`cargo run -p xtask -- <task>`).
//!
//! Tasks: `lint` — a dependency-free, source-level determinism &
//! soundness pass over every `.rs` file in the workspace — and
//! `tracediff` — a structural diff of two observability traces
//! ([`tracediff`]) that names the first divergent round.
//! Everything fast in this reproduction is gated on byte-identical
//! equivalence between backends and across reruns, so the most dangerous
//! regressions are the ones the type system happily accepts — an iterated
//! `HashMap` whose order leaks into a report, a wall-clock read inside a
//! deterministic crate, an ad-hoc `thread::spawn` bypassing the
//! chunk-ordered merge that makes the parallel resolver reproducible. The
//! lint makes those hazards a CI failure instead of a test-suite hope.
//!
//! See [`rules`] for the rule table, [`policy`] for the committed
//! `lint.toml` policy format, and the README's "Static analysis" section
//! for day-to-day usage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod json;
pub mod policy;
pub mod rules;
pub mod scan;
pub mod tracediff;
pub mod walk;

use std::path::Path;

/// Loads the policy at `policy_path` and lints the workspace at `root`.
/// Returns the sorted diagnostics; `Err` is reserved for operational
/// failures (unreadable files, malformed policy).
pub fn run_lint(root: &Path, policy_path: &Path) -> Result<Vec<diag::Diagnostic>, String> {
    let text = std::fs::read_to_string(policy_path)
        .map_err(|e| format!("cannot read policy {}: {e}", policy_path.display()))?;
    let policy = policy::Policy::parse(&text)?;
    rules::lint_workspace(root, &policy)
}
