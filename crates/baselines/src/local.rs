//! Local-broadcast baselines — the non-"this work" rows of Table 1.

use crate::{DeliveryTracker, LocalOutcome};
use dcluster_selectors::ssf::RandomSsf;
use dcluster_selectors::Schedule;
use dcluster_sim::engine::{Engine, RoundBehavior};
use dcluster_sim::network::Network;
use dcluster_sim::rng::hash64;

/// Per-node coin flip for "randomized" baselines: deterministic hash of
/// `(seed, node id, round)` — an explicit pseudo-random tape, reproducible
/// across runs.
#[inline]
fn coin(seed: u64, id: u64, round: u64, p: f64) -> bool {
    let h = hash64(seed, &[id, round]);
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
}

struct ProbabilisticTx<'a, F: Fn(usize, u64, bool) -> f64> {
    tracker: DeliveryTracker,
    prob: F,
    seed: u64,
    net: &'a Network,
    with_feedback: bool,
}

impl<F: Fn(usize, u64, bool) -> f64> RoundBehavior<u64> for ProbabilisticTx<'_, F> {
    fn transmit(&mut self, net: &Network, v: usize, round: u64) -> Option<u64> {
        let done = self.with_feedback && self.tracker.node_done(v);
        let p = (self.prob)(v, round, done);
        (p > 0.0 && coin(self.seed, net.id(v), round, p)).then(|| net.id(v))
    }
    fn receive(&mut self, _net: &Network, recv: usize, _round: u64, sender: usize, _m: &u64) {
        self.tracker.record(self.net, sender, recv);
    }
}

fn run_probabilistic<F: Fn(usize, u64, bool) -> f64>(
    net: &Network,
    seed: u64,
    cap: u64,
    with_feedback: bool,
    prob: F,
) -> LocalOutcome {
    let mut engine = Engine::new(net);
    let mut b = ProbabilisticTx {
        tracker: DeliveryTracker::new(net),
        prob,
        seed,
        net,
        with_feedback,
    };
    let rounds = engine.run_until(&mut b, cap, |b| b.tracker.complete());
    LocalOutcome {
        rounds,
        complete: b.tracker.complete(),
        heard_by: b.tracker.into_heard_by(),
        transmissions: engine.stats().transmissions,
    }
}

/// \[16\] with known ∆: every node transmits with probability `1/(e·∆)` for
/// up to `cap` rounds (`O(∆ log n)` suffices w.h.p.). The run stops at the
/// first complete round (observer), which is the quantity Table 1 compares.
pub fn gmw_known_delta(net: &Network, delta: usize, seed: u64, cap: u64) -> LocalOutcome {
    let p = 1.0 / (std::f64::consts::E * delta.max(1) as f64);
    run_probabilistic(net, seed, cap, false, move |_, _, _| p)
}

/// \[16\] without ∆ knowledge: a Decay-style ladder — time is split into
/// epochs of `⌈log₂ n⌉` rounds; in round `j` of an epoch every node
/// transmits with probability `2^{−j}`. Some rung matches the true local
/// density, so each epoch gives every node a constant success chance at
/// that rung: `O(∆ log³ n)`-shaped overall.
pub fn gmw_unknown_delta(net: &Network, seed: u64, cap: u64) -> LocalOutcome {
    let log_n = (net.len().max(2) as f64).log2().ceil() as u64;
    run_probabilistic(net, seed, cap, false, move |_, round, _| {
        let rung = round % log_n;
        0.5f64.powi(rung as i32 + 1)
    })
}

/// \[35\]: probabilities *grow* from `1/n` by doubling every `⌈log₂ n⌉`
/// rounds, capped at `1/(2e·√∆)`-ish — sparse regions finish in `O(log² n)`
/// while dense regions take `O(∆ log n)`: the `O(∆ log n + log² n)` shape.
pub fn yu_growth(net: &Network, delta: usize, seed: u64, cap: u64) -> LocalOutcome {
    let n = net.len().max(2) as f64;
    let log_n = n.log2().ceil() as u64;
    let p_cap = 1.0 / (2.0 * std::f64::consts::E * (delta.max(1) as f64).sqrt());
    run_probabilistic(net, seed, cap, false, move |_, round, _| {
        let doublings = (round / log_n.max(1)) as i32;
        (2.0f64.powi(doublings) / n).min(p_cap)
    })
}

/// Tuning presets for the feedback baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedbackPreset {
    /// Halldórsson–Mitra \[19\]: `O(∆ + log² n)`.
    HalldorssonMitra,
    /// Barenboim–Peleg \[4\]: `O(∆ + log n log log n)` (faster ramp).
    BarenboimPeleg,
}

/// \[19\]/\[4\]: the *feedback* model — a node stops transmitting once the
/// oracle confirms all its neighbors received its message. Active nodes
/// ramp their probability up (epoch doubling, starting at `1/∆`): as
/// neighborhoods finish, the active density drops and the surviving nodes
/// transmit ever more aggressively — the `O(∆ + polylog)` behavior that
/// Table 1 credits to the feedback feature.
pub fn feedback(
    net: &Network,
    delta: usize,
    preset: FeedbackPreset,
    seed: u64,
    cap: u64,
) -> LocalOutcome {
    let n = net.len().max(2) as f64;
    let epoch = match preset {
        FeedbackPreset::HalldorssonMitra => n.log2().ceil() as u64,
        FeedbackPreset::BarenboimPeleg => (n.log2() * n.log2().max(2.0).log2()).ceil() as u64,
    }
    .max(1);
    let d = delta.max(1) as f64;
    // Rungs sweep 1/(e∆), 2/(e∆), …, up to ¼, then wrap (sawtooth): the
    // rung matching the *current* active density recurs every cycle, so the
    // schedule adapts as feedback drains the game.
    let rungs = (d.log2().ceil() as u64 + 2).max(1);
    run_probabilistic(net, seed, cap, true, move |_, round, done| {
        if done {
            return 0.0; // feedback: leave the game
        }
        let j = (round / epoch) % rungs;
        (2.0f64.powi(j as i32) / (std::f64::consts::E * d)).min(0.25)
    })
}

/// \[22\]-style deterministic local broadcast **with coordinates**: the plane
/// is tiled by cells of side `(1−ε)/(2√2)`; cells are colored with an
/// `M × M` pattern so same-color cells are far apart; each color class runs
/// an `(N, k)`-ssf in which every node is eventually the unique transmitter
/// of its cell while all interfering cells stay silent.
///
/// Our simplified variant costs `O(M²·k² log N)` with `k = ` per-cell
/// occupancy bound (`≈ ∆`); the original \[22\] reaches `O(∆ log³ n)` with a
/// backbone construction — the table row's point (deterministic + location)
/// is preserved. Runs until complete or the schedule is exhausted.
pub fn location_grid(
    net: &Network,
    delta: usize,
    color_period: usize,
    factor: f64,
) -> LocalOutcome {
    let eps = net.params().epsilon;
    let cell = net.params().range() * (1.0 - eps) / (2.0 * std::f64::consts::SQRT_2);
    let m = color_period.max(2);
    // Per-cell occupancy bound: nodes within one cell are within a unit
    // ball, so ∆ bounds it.
    let k = delta.max(2);
    let len = ((RandomSsf::recommended_len(net.max_id(), k) as f64 * factor).ceil() as u64).max(64);
    let ssf = RandomSsf::with_len(0x10CA7E, k, len);

    let cell_of = |v: usize| {
        let p = net.pos(v);
        (((p.x / cell).floor() as i64), ((p.y / cell).floor() as i64))
    };
    let color_of = |v: usize| {
        let (cx, cy) = cell_of(v);
        (
            cx.rem_euclid(m as i64) as usize,
            cy.rem_euclid(m as i64) as usize,
        )
    };

    struct GridTx<'a, C: Fn(usize) -> (usize, usize)> {
        tracker: DeliveryTracker,
        ssf: RandomSsf,
        color_of: C,
        m: usize,
        net: &'a Network,
    }
    impl<C: Fn(usize) -> (usize, usize)> RoundBehavior<u64> for GridTx<'_, C> {
        fn transmit(&mut self, net: &Network, v: usize, round: u64) -> Option<u64> {
            // Time is striped: color (a, b) is active in rounds where
            // (round / len) mod m² == a·m + b; within its stripe the ssf
            // runs by local round.
            let len = self.ssf.len();
            let stripe = (round / len) % (self.m * self.m) as u64;
            let (a, b) = (self.color_of)(v);
            if stripe != (a * self.m + b) as u64 {
                return None;
            }
            self.ssf.contains(round % len, net.id(v)).then(|| net.id(v))
        }
        fn receive(&mut self, _n: &Network, recv: usize, _r: u64, sender: usize, _m: &u64) {
            self.tracker.record(self.net, sender, recv);
        }
    }

    let mut engine = Engine::new(net);
    let mut b = GridTx {
        tracker: DeliveryTracker::new(net),
        ssf,
        color_of,
        m,
        net,
    };
    // One full pass = m² stripes of len rounds; allow three passes.
    let cap = 3 * (m * m) as u64 * ssf.len();
    let rounds = engine.run_until(&mut b, cap, |b| b.tracker.complete());
    LocalOutcome {
        rounds,
        complete: b.tracker.complete(),
        heard_by: b.tracker.into_heard_by(),
        transmissions: engine.stats().transmissions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcluster_sim::rng::Rng64;
    use dcluster_sim::{deploy, Network};

    fn testnet(n: usize, side: f64, seed: u64) -> Network {
        let mut rng = Rng64::new(seed);
        Network::builder(deploy::uniform_square(n, side, &mut rng))
            .build()
            .unwrap()
    }

    #[test]
    fn gmw_known_completes_on_a_small_field() {
        let net = testnet(50, 3.0, 1);
        let delta = net.max_degree();
        let out = gmw_known_delta(&net, delta.max(1), 7, 200_000);
        assert!(out.complete, "GMW known-∆ failed in {} rounds", out.rounds);
    }

    #[test]
    fn gmw_unknown_completes_but_slower() {
        let net = testnet(40, 3.0, 2);
        let delta = net.max_degree().max(1);
        let known = gmw_known_delta(&net, delta, 7, 400_000);
        let unknown = gmw_unknown_delta(&net, 7, 400_000);
        assert!(known.complete && unknown.complete);
        // The ladder pays extra logs; on identical instances it should not
        // be faster by more than noise.
        assert!(unknown.rounds as f64 >= known.rounds as f64 * 0.5);
    }

    #[test]
    fn yu_growth_completes() {
        let net = testnet(40, 3.0, 3);
        let out = yu_growth(&net, net.max_degree().max(1), 9, 400_000);
        assert!(out.complete);
    }

    #[test]
    fn feedback_beats_no_feedback_on_dense_fields() {
        // Dense blob: feedback lets finished nodes leave, cutting rounds.
        let net = testnet(60, 1.6, 4);
        let delta = net.max_degree().max(1);
        let fb = feedback(&net, delta, FeedbackPreset::HalldorssonMitra, 5, 400_000);
        let nofb = gmw_known_delta(&net, delta, 5, 400_000);
        assert!(fb.complete && nofb.complete);
        assert!(
            fb.rounds <= nofb.rounds,
            "feedback ({}) should not lose to plain GMW ({})",
            fb.rounds,
            nofb.rounds
        );
    }

    #[test]
    fn barenboim_peleg_preset_completes() {
        let net = testnet(40, 2.0, 6);
        let out = feedback(
            &net,
            net.max_degree().max(1),
            FeedbackPreset::BarenboimPeleg,
            5,
            400_000,
        );
        assert!(out.complete);
    }

    #[test]
    fn location_grid_is_deterministic_and_completes() {
        let net = testnet(40, 3.0, 5);
        let a = location_grid(&net, net.max_degree().max(2), 4, 0.05);
        let b = location_grid(&net, net.max_degree().max(2), 4, 0.05);
        assert!(a.complete, "grid baseline failed in {} rounds", a.rounds);
        assert_eq!(a.rounds, b.rounds, "deterministic algorithm must reproduce");
    }

    #[test]
    fn transmissions_are_counted() {
        let net = testnet(20, 2.0, 8);
        let out = gmw_known_delta(&net, net.max_degree().max(1), 7, 100_000);
        assert!(out.transmissions > 0);
    }
}
