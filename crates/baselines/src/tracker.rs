//! Delivery bookkeeping shared by the baselines.

use dcluster_sim::network::Network;
use std::collections::HashSet;

/// Tracks which `(sender → neighbor)` deliveries are still missing for a
/// complete local broadcast; O(1) completeness queries.
#[derive(Debug, Clone)]
pub struct DeliveryTracker {
    heard_by: Vec<HashSet<usize>>, // lint:allow(D1, reason = "delivery-witness set; membership queries only")
    missing_of: Vec<usize>,
    missing_total: usize,
}

impl DeliveryTracker {
    /// Initializes from the network's communication graph.
    pub fn new(net: &Network) -> Self {
        let g = net.comm_graph();
        let missing_of: Vec<usize> = (0..net.len()).map(|v| g.degree(v)).collect();
        let missing_total = missing_of.iter().sum();
        Self {
            heard_by: vec![HashSet::new(); net.len()], // lint:allow(D1, reason = "delivery-witness set; membership queries only")
            missing_of,
            missing_total,
        }
    }

    /// Records that `receiver` heard `sender`'s message.
    pub fn record(&mut self, net: &Network, sender: usize, receiver: usize) {
        if self.heard_by[sender].insert(receiver) && net.comm_graph().has_edge(sender, receiver) {
            self.missing_of[sender] -= 1;
            self.missing_total -= 1;
        }
    }

    /// True iff every node reached all its neighbors.
    pub fn complete(&self) -> bool {
        self.missing_total == 0
    }

    /// True iff `v` reached all of its neighbors (the *feedback* oracle of
    /// the \[19\]/\[4\] model rows).
    pub fn node_done(&self, v: usize) -> bool {
        self.missing_of[v] == 0
    }

    /// Delivery sets, for reporting.
    // lint:allow(D1, reason = "delivery-witness set; membership queries only")
    pub fn into_heard_by(self) -> Vec<std::collections::HashSet<usize>> {
        self.heard_by
    }

    /// Remaining `(sender, neighbor)` deliveries.
    pub fn missing_total(&self) -> usize {
        self.missing_total
    }
}

/// The explicit *feedback* model feature of Table 1's \[19\]/\[4\] rows: at the
/// end of each round a node may ask whether its local broadcast is done.
/// This is exactly the capability the paper's pure model lacks.
#[derive(Debug, Clone, Copy)]
pub struct FeedbackOracle;

impl FeedbackOracle {
    /// Answers the feedback query for node `v`.
    pub fn done(tracker: &DeliveryTracker, v: usize) -> bool {
        tracker.node_done(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcluster_sim::Point;

    #[test]
    fn tracker_counts_down_to_complete() {
        let net = dcluster_sim::Network::builder(vec![
            Point::new(0.0, 0.0),
            Point::new(0.5, 0.0),
            Point::new(5.0, 0.0),
        ])
        .build()
        .unwrap();
        let mut t = DeliveryTracker::new(&net);
        assert!(!t.complete());
        assert_eq!(t.missing_total(), 2); // the 0–1 edge, both directions
        t.record(&net, 0, 1);
        assert!(t.node_done(0));
        assert!(!t.complete());
        t.record(&net, 1, 0);
        assert!(t.complete());
        // Duplicate and non-neighbor records are no-ops.
        t.record(&net, 1, 0);
        t.record(&net, 0, 2);
        assert!(t.complete());
    }
}
