//! # dcluster-baselines — the competitor rows of Tables 1 and 2
//!
//! Shape-faithful implementations of the algorithms the paper compares
//! against (see DESIGN.md §1.3 and §3 for the documented simplifications):
//!
//! **Local broadcast (Table 1)**
//! * [`local::gmw_known_delta`] — Goussevskaia–Moscibroda–Wattenhofer
//!   \[16\], randomized, ∆ known: transmit w.p. `Θ(1/∆)`, `O(∆ log n)`.
//! * [`local::gmw_unknown_delta`] — \[16\] without ∆: decay-style
//!   probability ladder, `O(∆ log³ n)`-shaped.
//! * [`local::yu_growth`] — Yu et al. \[35\]: probabilities grow until the
//!   medium saturates, `O(∆ log n + log² n)`-shaped.
//! * [`local::feedback`] — Halldórsson–Mitra \[19\] / Barenboim–Peleg \[4\]:
//!   the *feedback* model feature (an oracle says when all neighbors got
//!   your message) lets finished nodes leave the game: `O(∆ + polylog)`.
//! * [`local::location_grid`] — Jurdziński–Kowalski \[22\]: deterministic
//!   with coordinates; grid coloring + in-cell ssf.
//!
//! **Global broadcast (Table 2)**
//! * [`global::decay_flood`] — Daum et al. \[10\] / JKRS \[25\]: randomized
//!   Decay flooding, `O(D·polylog)`.
//! * [`global::location_grid_flood`] — JKS \[26\]: deterministic with
//!   coordinates, grid-pipelined.
//! * [`global::round_robin_flood`] — the generic deterministic
//!   no-extra-features flooding (the \[27\]-class row): collision-free ID
//!   sweep, `Θ(D·N)` worst case — the slow baseline our algorithm beats.
//! * [`global::ssf_flood`] — ssf-driven deterministic flooding (an
//!   intermediate no-location baseline).
//!
//! The "randomized" rows use seeded pseudo-randomness (statistically
//! equivalent, reproducible).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod global;
pub mod local;
mod tracker;

pub use tracker::{DeliveryTracker, FeedbackOracle};

use std::collections::HashSet;

/// Outcome of a local-broadcast baseline run.
#[derive(Debug, Clone)]
pub struct LocalOutcome {
    /// Rounds executed (= `first_complete` when the run completed, else the
    /// cap).
    pub rounds: u64,
    /// Whether every node's message reached all its comm-graph neighbors.
    pub complete: bool,
    /// `heard_by[v]` = receivers of `v`'s message.
    pub heard_by: Vec<HashSet<usize>>, // lint:allow(D1, reason = "delivery-witness set; membership queries only")
    /// Total transmissions (energy proxy).
    pub transmissions: u64,
}

/// Outcome of a global-broadcast baseline run.
#[derive(Debug, Clone)]
pub struct GlobalOutcome {
    /// Rounds executed until everyone was awake (or the cap).
    pub rounds: u64,
    /// Whether every node received the broadcast.
    pub reached_all: bool,
    /// Awake flags at the end.
    pub awake: Vec<bool>,
    /// Total transmissions (energy proxy).
    pub transmissions: u64,
}
