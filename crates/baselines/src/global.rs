//! Global-broadcast baselines — the non-"this work" rows of Table 2.

use crate::GlobalOutcome;
use dcluster_selectors::ssf::RandomSsf;
use dcluster_selectors::Schedule;
use dcluster_sim::engine::{Engine, RoundBehavior};
use dcluster_sim::network::Network;
use dcluster_sim::rng::hash64;

#[inline]
fn coin(seed: u64, id: u64, round: u64, p: f64) -> bool {
    let h = hash64(seed, &[id, round]);
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
}

struct Flood<F: FnMut(&Network, usize, u64, &[bool]) -> bool> {
    awake: Vec<bool>,
    decide: F,
}

impl<F: FnMut(&Network, usize, u64, &[bool]) -> bool> RoundBehavior<u64> for Flood<F> {
    fn transmit(&mut self, net: &Network, v: usize, round: u64) -> Option<u64> {
        (self.awake[v] && (self.decide)(net, v, round, &self.awake)).then(|| net.id(v))
    }
    fn receive(&mut self, _net: &Network, recv: usize, _round: u64, _sender: usize, _m: &u64) {
        self.awake[recv] = true;
    }
}

fn run_flood<F: FnMut(&Network, usize, u64, &[bool]) -> bool>(
    net: &Network,
    source: usize,
    cap: u64,
    decide: F,
) -> GlobalOutcome {
    let mut awake = vec![false; net.len()];
    awake[source] = true;
    let mut engine = Engine::new(net);
    let mut b = Flood { awake, decide };
    let rounds = engine.run_until(&mut b, cap, |b| b.awake.iter().all(|&a| a));
    GlobalOutcome {
        rounds,
        reached_all: b.awake.iter().all(|&a| a),
        awake: b.awake,
        transmissions: engine.stats().transmissions,
    }
}

/// \[10\]/\[25\]-class randomized flooding: awake nodes run Decay epochs of
/// `⌈log₂ n⌉+1` rounds, transmitting with probability `2^{−j}` in epoch
/// round `j`. Awake layers advance ~1 hop per `O(log² n)` rounds:
/// `O(D log² n)`-shaped (the \[25\] bound; \[10\] pays an extra geometric
/// factor on adversarial instances).
pub fn decay_flood(net: &Network, source: usize, seed: u64, cap: u64) -> GlobalOutcome {
    let epoch = (net.len().max(2) as f64).log2().ceil() as u64 + 1;
    run_flood(net, source, cap, move |net, v, round, _| {
        let j = round % epoch;
        coin(seed, net.id(v), round, 0.5f64.powi(j as i32 + 1))
    })
}

/// \[26\]-style deterministic flooding **with coordinates**: grid cells of
/// side `(1−ε)/(2√2)` colored in an `M × M` pattern; stripes of the time
/// axis activate one color class at a time, inside which awake nodes run an
/// `(N,k)`-ssf per cell — some round makes each awake node the unique
/// transmitter of its (far-separated) cell, pushing the wavefront one cell
/// per full sweep: `O(D · M²·k² log N)` with constant `M`, i.e.
/// `D · polylog` for bounded cell occupancy.
pub fn location_grid_flood(
    net: &Network,
    source: usize,
    delta: usize,
    color_period: usize,
    factor: f64,
    cap: u64,
) -> GlobalOutcome {
    let eps = net.params().epsilon;
    let cell = net.params().range() * (1.0 - eps) / (2.0 * std::f64::consts::SQRT_2);
    let m = color_period.max(2) as u64;
    let k = delta.max(2);
    let len = ((RandomSsf::recommended_len(net.max_id(), k) as f64 * factor).ceil() as u64).max(64);
    let ssf = RandomSsf::with_len(0x6E0_C0DE, k, len);
    run_flood(net, source, cap, move |net, v, round, _| {
        let p = net.pos(v);
        let (cx, cy) = ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64);
        let stripe = (round / len) % (m * m);
        let mine = (cx.rem_euclid(m as i64) as u64) * m + cy.rem_euclid(m as i64) as u64;
        stripe == mine && ssf.contains(round % len, net.id(v))
    })
}

/// The generic deterministic no-features flooding (the \[27\]-class row of
/// Table 2): a collision-free **ID sweep** — the awake node with
/// `id ≡ round (mod N)` transmits alone, so every sweep of `N` rounds
/// advances the frontier: `Θ(D·N)` worst case. This is the slow-but-certain
/// baseline that the paper's `O(D(∆+log* N) log N)` algorithm dominates.
pub fn round_robin_flood(net: &Network, source: usize, cap: u64) -> GlobalOutcome {
    let n_univ = net.max_id();
    run_flood(net, source, cap, move |net, v, round, _| {
        net.id(v) % n_univ == round % n_univ
    })
}

/// Deterministic ssf flooding (no location, no randomness): all awake
/// nodes run a global `(N, k)`-ssf with `k ≈ ∆`. Locally-unique selections
/// wake neighborhoods; distant same-round transmitters occasionally
/// interfere (no witnessed filtering — that is exactly the gap the paper's
/// wss machinery closes), so completion is empirical, not guaranteed.
pub fn ssf_flood(
    net: &Network,
    source: usize,
    delta: usize,
    factor: f64,
    cap: u64,
) -> GlobalOutcome {
    let k = delta.max(2);
    let len = ((RandomSsf::recommended_len(net.max_id(), k) as f64 * factor).ceil() as u64).max(64);
    let ssf = RandomSsf::with_len(0x55F_F100D, k, len);
    run_flood(net, source, cap, move |net, v, round, _| {
        ssf.contains(round % len, net.id(v))
    })
}

/// **Extension (paper's open question)**: deterministic global broadcast
/// *with carrier sensing*. The sensing oracle reports whether the summed
/// received power exceeds the noise floor ("busy"). Awake nodes hold a
/// deterministic backoff (a hash of ID and round, so equal residues cannot
/// lock-step); the counter only ticks down on idle rounds, and hitting
/// zero triggers a transmission. This is the CSMA-flavored flooding the
/// conclusion of the paper speculates about: no location, no randomness —
/// yet `D·poly(Δ)`-ish in practice, escaping the Theorem 6 regime because
/// sensing *is* an extra model feature.
pub fn carrier_sense_flood(net: &Network, source: usize, window: u64, cap: u64) -> GlobalOutcome {
    use dcluster_sim::radio::{sensed_power, GridResolver, SinrResolver};
    let window = window.max(2);
    let fresh = |id: u64, round: u64| hash64(0xC5_F100D, &[id, round]) % window + 1;
    let mut awake = vec![false; net.len()];
    awake[source] = true;
    let mut backoff: Vec<u64> = (0..net.len()).map(|v| fresh(net.id(v), 0)).collect();
    let mut radio = GridResolver::new();
    let mut transmissions = 0u64;
    let mut rounds = 0u64;
    let busy_threshold = net.params().noise;
    for round in 0..cap {
        rounds = round;
        if awake.iter().all(|&a| a) {
            break;
        }
        let tx: Vec<usize> = (0..net.len())
            .filter(|&v| awake[v] && backoff[v] == 0)
            .collect();
        transmissions += tx.len() as u64;
        for r in radio.resolve(net, &tx) {
            awake[r.receiver] = true;
        }
        let sensed = sensed_power(net, &tx);
        for v in 0..net.len() {
            if !awake[v] {
                continue;
            }
            if backoff[v] == 0 {
                backoff[v] = fresh(net.id(v), round + 1); // just transmitted
            } else if sensed[v] <= busy_threshold {
                backoff[v] -= 1; // carrier idle: tick down
            } // busy: freeze — someone nearby holds the channel
        }
    }
    GlobalOutcome {
        rounds,
        reached_all: awake.iter().all(|&a| a),
        awake,
        transmissions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcluster_sim::rng::Rng64;
    use dcluster_sim::{deploy, Network};

    fn corridor(seed: u64) -> Network {
        let mut rng = Rng64::new(seed);
        let pts = deploy::corridor_with_spine(30, 8.0, 1.0, 0.5, &mut rng);
        Network::builder(pts).build().unwrap()
    }

    #[test]
    fn decay_flood_crosses_the_corridor() {
        let net = corridor(11);
        let out = decay_flood(&net, 0, 3, 500_000);
        assert!(out.reached_all, "decay stalled at {} rounds", out.rounds);
    }

    #[test]
    fn round_robin_flood_always_succeeds() {
        let net = corridor(12);
        let d = net.comm_graph().diameter().unwrap() as u64;
        let out = round_robin_flood(&net, 0, (d + 2) * net.max_id() + 1);
        assert!(out.reached_all);
        // Collision-free: one transmitter per round max.
        assert!(out.transmissions <= out.rounds);
    }

    #[test]
    fn location_grid_flood_is_deterministic_and_succeeds() {
        let net = corridor(13);
        let delta = net.max_degree().max(2);
        let a = location_grid_flood(&net, 0, delta, 4, 0.05, 2_000_000);
        let b = location_grid_flood(&net, 0, delta, 4, 0.05, 2_000_000);
        assert!(a.reached_all, "grid flood stalled at {} rounds", a.rounds);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn ssf_flood_succeeds_on_moderate_corridors() {
        let net = corridor(14);
        let out = ssf_flood(&net, 0, net.max_degree().max(2), 0.1, 2_000_000);
        assert!(
            out.reached_all,
            "ssf flood stalled at {} rounds",
            out.rounds
        );
    }

    #[test]
    fn carrier_sense_flood_crosses_and_is_deterministic() {
        let net = corridor(16);
        let delta = net.max_degree().max(2) as u64;
        let a = carrier_sense_flood(&net, 0, 2 * delta, 500_000);
        let b = carrier_sense_flood(&net, 0, 2 * delta, 500_000);
        assert!(
            a.reached_all,
            "carrier-sense flood stalled at {} rounds",
            a.rounds
        );
        assert_eq!(a.rounds, b.rounds, "deterministic algorithm must reproduce");
    }

    #[test]
    fn carrier_sense_beats_the_id_sweep() {
        let mut rng = Rng64::new(17);
        let pts = deploy::corridor_with_spine(25, 6.0, 1.0, 0.5, &mut rng);
        let net = Network::builder(pts).max_id(4096).seed(9).build().unwrap();
        let d = net.comm_graph().diameter().unwrap() as u64;
        let cs = carrier_sense_flood(&net, 0, 2 * net.max_degree().max(2) as u64, 500_000);
        let rr = round_robin_flood(&net, 0, (d + 2) * net.max_id() + 1);
        assert!(cs.reached_all && rr.reached_all);
        assert!(
            cs.rounds < rr.rounds,
            "sensing ({}) must beat the blind N-sweep ({})",
            cs.rounds,
            rr.rounds
        );
    }

    #[test]
    fn decay_is_faster_than_round_robin_for_large_id_space() {
        let mut rng = Rng64::new(15);
        let pts = deploy::corridor_with_spine(25, 6.0, 1.0, 0.5, &mut rng);
        // Big ID space (N = n²) punishes the ID sweep, as in the paper.
        let net = Network::builder(pts).max_id(4096).seed(9).build().unwrap();
        let d = net.comm_graph().diameter().unwrap() as u64;
        let decay = decay_flood(&net, 0, 3, 500_000);
        let rr = round_robin_flood(&net, 0, (d + 2) * net.max_id() + 1);
        assert!(decay.reached_all && rr.reached_all);
        assert!(
            decay.rounds < rr.rounds,
            "randomized decay ({}) must beat the N-sweep ({})",
            decay.rounds,
            rr.rounds
        );
    }
}
