//! Definitional checks of the selector families at small sizes, driven
//! through `verify.rs`'s property checkers: exhaustive where the universe
//! is small enough, seeded-random sweeps otherwise.

use dcluster_selectors::{
    verify, ClusterSchedule, CoverFreeFamily, RandomSsf, RandomWcss, RandomWss, RsSsf,
};
use dcluster_sim::rng::Rng64;

/// All `k`-subsets of `[1, n]`, for tiny `n` and `k`.
fn subsets(n: u64, k: usize) -> Vec<Vec<u64>> {
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(k);
    fn rec(start: u64, n: u64, k: usize, cur: &mut Vec<u64>, out: &mut Vec<Vec<u64>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for v in start..=n {
            cur.push(v);
            rec(v + 1, n, k, cur, out);
            cur.pop();
        }
    }
    rec(1, n, k, &mut cur, &mut out);
    out
}

#[test]
fn rs_ssf_selects_every_pair_exhaustively() {
    // (20, 2)-ssf: every element of every pair must be selected.
    let ssf = RsSsf::new(20, 2);
    for set in subsets(20, 2) {
        assert!(
            verify::is_ssf_for(&ssf, &set),
            "RS ssf misses a selection in {set:?}"
        );
    }
}

#[test]
fn rs_ssf_selects_every_triple_exhaustively() {
    let ssf = RsSsf::new(12, 3);
    for set in subsets(12, 3) {
        assert!(
            verify::is_ssf_for(&ssf, &set),
            "RS ssf misses a selection in {set:?}"
        );
    }
}

#[test]
fn random_ssf_at_theory_length_selects_every_pair() {
    let ssf = RandomSsf::new(97, 16, 2, 1.0);
    for set in subsets(16, 2) {
        assert!(
            verify::is_ssf_for(&ssf, &set),
            "random ssf misses a selection in {set:?}"
        );
    }
}

#[test]
fn wss_witnesses_every_pair_and_outsider_exhaustively() {
    // Lemma 2 at (N, k) = (12, 2): for every 2-set X and every y outside X,
    // some round selects each x in X while also containing y.
    let wss = RandomWss::new(41, 12, 2, 1.0);
    for set in subsets(12, 2) {
        for y in 1..=12u64 {
            if set.contains(&y) {
                continue;
            }
            assert!(
                verify::is_wss_for(&wss, &set, y),
                "wss fails for X={set:?}, witness y={y}"
            );
        }
    }
}

#[test]
fn wss_is_also_an_ssf_by_definition() {
    let wss = RandomWss::new(41, 12, 2, 1.0);
    for set in subsets(12, 2) {
        assert!(verify::is_ssf_for(&wss, &set));
    }
}

#[test]
fn wcss_selects_with_witness_and_conflict_freedom_at_small_sizes() {
    // Lemma 3 at (N, k, l) = (40, 2, 2), seeded sweep over instances.
    let wcss = RandomWcss::new(1234, 40, 2, 2, 1.0);
    let mut rng = Rng64::new(8);
    for _ in 0..40 {
        let mut ids: Vec<u64> = rng
            .sample_distinct(40, 3)
            .into_iter()
            .map(|v| v + 1)
            .collect();
        let y = ids.pop().unwrap();
        let phi = 1 + rng.range_u64(10);
        let c1 = 11 + rng.range_u64(10);
        let c2 = 21 + rng.range_u64(10);
        assert!(
            verify::is_wcss_for(&wcss, &ids, y, phi, &[c1, c2]),
            "wcss fails for X={ids:?}, y={y}, phi={phi}, conflicts=[{c1},{c2}]"
        );
    }
}

#[test]
fn wcss_conflict_rounds_are_really_free() {
    // Directly check the "free of l conflicting clusters" half of Lemma 3:
    // cluster_allowed must be monotone with the membership test.
    let wcss = RandomWcss::new(9, 30, 2, 2, 1.0);
    let mut seen_blocked = false;
    for r in 0..ClusterSchedule::len(&wcss).min(500) {
        for cluster in 1..=10u64 {
            if !wcss.cluster_allowed(r, cluster) {
                seen_blocked = true;
                for id in 1..=30u64 {
                    assert!(
                        !wcss.contains(r, id, cluster),
                        "round {r}: id {id} of blocked cluster {cluster} transmits"
                    );
                }
            }
        }
    }
    assert!(
        seen_blocked,
        "expected at least one (round, cluster) exclusion"
    );
}

#[test]
fn cover_free_family_is_exhaustively_cover_free_at_tiny_parameters() {
    // d = 2 cover-freeness, checked literally: no set is contained in the
    // union of any two others.
    let cff = CoverFreeFamily::for_colors(9, 2);
    let sets: Vec<std::collections::HashSet<u64>> = (0..cff.n_colors())
        .map(|c| cff.set_of(c).collect())
        .collect();
    for (i, si) in sets.iter().enumerate() {
        for (j, sj) in sets.iter().enumerate() {
            for (k, sk) in sets.iter().enumerate() {
                if i == j || i == k || j == k {
                    continue;
                }
                let covered = si.iter().all(|e| sj.contains(e) || sk.contains(e));
                assert!(!covered, "S_{i} is covered by S_{j} ∪ S_{k}");
            }
        }
    }
}

#[test]
fn cff_select_free_matches_the_definitional_search() {
    let cff = CoverFreeFamily::for_colors(50, 3);
    for own in 0..10u64 {
        let neighbors: Vec<u64> = (10..13).collect();
        let fresh = cff
            .select_free(own, &neighbors)
            .expect("capacity 3 neighbors");
        assert!(
            cff.set_of(own).any(|e| e == fresh),
            "fresh element not in own set"
        );
        for &nb in &neighbors {
            assert!(
                cff.set_of(nb).all(|e| e != fresh),
                "fresh element in neighbor set"
            );
        }
    }
}

#[test]
fn verify_selects_agrees_with_first_selection_round() {
    let ssf = RsSsf::new(20, 2);
    let set = [3u64, 17];
    for &x in &set {
        let r = verify::first_selection_round(&ssf, &set, x)
            .expect("ssf property guarantees a selection round");
        assert!(verify::selects(&ssf, r, &set, x));
        // No earlier round selects x (that is what "first" means).
        for earlier in 0..r {
            assert!(!verify::selects(&ssf, earlier, &set, x));
        }
    }
}
