//! Greedy, *certified* selector construction for small universes.
//!
//! The randomized families of [`crate::ssf`]/[`crate::wss`] are correct
//! w.h.p.; for small `N` one can do better: grow the family set by set,
//! keeping only sets that reduce the number of unsatisfied `(X, x)`
//! selection requirements, until **every** requirement is met. The result
//! is a certified `(N,k)`-ssf, usually far shorter than the probabilistic
//! bound — useful for exact small-scale experiments and as a test oracle.
//!
//! Complexity is exponential in `k` (it enumerates all `k`-subsets), so
//! this is gated to small `N` and `k`.

use crate::Schedule;
use dcluster_sim::rng::Rng64;

/// An explicitly stored, certified `(N,k)`-ssf over `[1, n_univ]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GreedySsf {
    n_univ: u64,
    k: usize,
    sets: Vec<Vec<u64>>, // sorted id lists
}

impl GreedySsf {
    /// Builds a certified family by randomized greedy covering.
    ///
    /// # Panics
    ///
    /// Panics if the instance is too large to enumerate
    /// (`C(n_univ, k) > 2·10⁶` requirements) or `k == 0` / `k > n_univ`.
    pub fn build(n_univ: u64, k: usize, seed: u64) -> Self {
        assert!(k >= 1 && (k as u64) <= n_univ, "need 1 ≤ k ≤ N");
        let req_count = n_choose_k(n_univ, k)
            .and_then(|c| c.checked_mul(k as u64))
            .expect("instance too large");
        assert!(
            req_count <= 2_000_000,
            "instance too large: {req_count} requirements"
        );

        // Enumerate requirements: (k-subset, chosen element).
        let subsets = k_subsets(n_univ, k);
        // unsatisfied[s * k + j] = subset s still needs its j-th element selected.
        let mut unsatisfied: Vec<bool> = vec![true; subsets.len() * k];
        let mut remaining = unsatisfied.len();
        let mut rng = Rng64::new(seed);
        let mut sets: Vec<Vec<u64>> = Vec::new();

        while remaining > 0 {
            // Candidate set: include each id with probability 1/k; keep it
            // only if it satisfies at least one new requirement.
            let cand: Vec<u64> = (1..=n_univ)
                .filter(|_| rng.chance(1.0 / k as f64))
                .collect();
            if cand.is_empty() {
                continue;
            }
            let mut gained = Vec::new();
            for (s, subset) in subsets.iter().enumerate() {
                // Intersection of cand (sorted) with subset (sorted).
                let mut hit: Option<usize> = None;
                let mut count = 0;
                for (j, id) in subset.iter().enumerate() {
                    if cand.binary_search(id).is_ok() {
                        count += 1;
                        hit = Some(j);
                        if count > 1 {
                            break;
                        }
                    }
                }
                if count == 1 {
                    let j = hit.unwrap();
                    if unsatisfied[s * k + j] {
                        gained.push(s * k + j);
                    }
                }
            }
            if !gained.is_empty() {
                for g in gained {
                    if unsatisfied[g] {
                        unsatisfied[g] = false;
                        remaining -= 1;
                    }
                }
                sets.push(cand);
            }
        }
        Self { n_univ, k, sets }
    }

    /// Number of sets (certified upper bound on the optimal size for this
    /// instance).
    pub fn size(&self) -> usize {
        self.sets.len()
    }

    /// Set-size bound `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Universe bound.
    pub fn n_univ(&self) -> u64 {
        self.n_univ
    }
}

impl Schedule for GreedySsf {
    fn len(&self) -> u64 {
        self.sets.len() as u64
    }
    fn contains(&self, round: u64, id: u64) -> bool {
        self.sets
            .get(round as usize)
            .is_some_and(|s| s.binary_search(&id).is_ok())
    }
}

fn n_choose_k(n: u64, k: usize) -> Option<u64> {
    let mut acc: u64 = 1;
    for i in 0..k as u64 {
        acc = acc.checked_mul(n - i)? / (i + 1);
    }
    Some(acc)
}

fn k_subsets(n: u64, k: usize) -> Vec<Vec<u64>> {
    let mut out = Vec::new();
    let mut cur: Vec<u64> = (1..=k as u64).collect();
    loop {
        out.push(cur.clone());
        // Next combination in lexicographic order.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if cur[i] < n - (k - 1 - i) as u64 {
                cur[i] += 1;
                for j in i + 1..k {
                    cur[j] = cur[j - 1] + 1;
                }
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;

    #[test]
    fn combinatorics_helpers() {
        assert_eq!(n_choose_k(5, 2), Some(10));
        assert_eq!(n_choose_k(10, 3), Some(120));
        assert_eq!(k_subsets(4, 2).len(), 6);
        assert_eq!(k_subsets(4, 2)[0], vec![1, 2]);
        assert_eq!(k_subsets(4, 2)[5], vec![3, 4]);
    }

    #[test]
    fn greedy_family_is_a_certified_ssf() {
        let g = GreedySsf::build(12, 3, 42);
        // Exhaustive: every 3-subset, every element, gets selected.
        for subset in k_subsets(12, 3) {
            assert!(
                verify::is_ssf_for(&g, &subset),
                "greedy family misses {subset:?}"
            );
        }
    }

    #[test]
    fn greedy_is_shorter_than_the_probabilistic_bound() {
        let g = GreedySsf::build(16, 2, 7);
        let prob = crate::ssf::RandomSsf::recommended_len(16, 2);
        assert!(
            (g.size() as u64) < prob,
            "greedy {} should beat the generic bound {}",
            g.size(),
            prob
        );
    }

    #[test]
    #[should_panic(expected = "instance too large")]
    fn oversized_instances_are_rejected() {
        let _ = GreedySsf::build(1000, 8, 1);
    }
}
