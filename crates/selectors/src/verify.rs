//! Property verifiers for selector families.
//!
//! The paper proves its selectors exist by the probabilistic method; this
//! module checks the defining properties on *concrete* sets, which the test
//! suites use to validate both theory-length families and the scaled-down
//! lengths used by the experiment harness.

use crate::wcss::RandomWcss;
use crate::{ClusterSchedule, Schedule};

/// True iff round `round` of `s` *selects* `x` from `set`
/// (`S_round ∩ set = {x}`; `x` must be in `set`).
pub fn selects<S: Schedule + ?Sized>(s: &S, round: u64, set: &[u64], x: u64) -> bool {
    debug_assert!(set.contains(&x));
    s.contains(round, x) && set.iter().all(|&o| o == x || !s.contains(round, o))
}

/// First round selecting `x` from `set`, if any.
pub fn first_selection_round<S: Schedule + ?Sized>(s: &S, set: &[u64], x: u64) -> Option<u64> {
    (0..s.len()).find(|&r| selects(s, r, set, x))
}

/// Checks the ssf property of `s` **for the given set**: every element is
/// selected by some round.
pub fn is_ssf_for<S: Schedule + ?Sized>(s: &S, set: &[u64]) -> bool {
    set.iter()
        .all(|&x| first_selection_round(s, set, x).is_some())
}

/// Checks the witnessed strong selection property for `set` and witness
/// `y ∉ set`: every `x ∈ set` is selected by a round that also contains
/// `y` (Lemma 2's defining property).
pub fn is_wss_for<S: Schedule + ?Sized>(s: &S, set: &[u64], y: u64) -> bool {
    debug_assert!(!set.contains(&y));
    set.iter()
        .all(|&x| (0..s.len()).any(|r| selects(s, r, set, x) && s.contains(r, y)))
}

/// Checks the wcss property (Lemma 3) for the concrete instance: set `xs`
/// inside cluster `phi`, witness `y` (same cluster, not in `xs`), conflict
/// set `conflicts`. A round counts only if it is *free* of every
/// conflicting cluster, which for [`RandomWcss`] means the cluster is not
/// in the round's allowed set.
pub fn is_wcss_for(s: &RandomWcss, xs: &[u64], y: u64, phi: u64, conflicts: &[u64]) -> bool {
    debug_assert!(!xs.contains(&y));
    debug_assert!(!conflicts.contains(&phi));
    xs.iter().all(|&x| {
        (0..ClusterSchedule::len(s)).any(|r| {
            s.contains(r, x, phi)
                && xs.iter().all(|&o| o == x || !s.contains(r, o, phi))
                && s.contains(r, y, phi)
                && conflicts.iter().all(|&c| !s.cluster_allowed(r, c))
        })
    })
}

/// Statistical failure rate of the ssf property over random `k`-subsets of
/// `[1, n_univ]` — used to calibrate scaled-down schedule lengths.
pub fn ssf_failure_rate<S: Schedule + ?Sized>(
    s: &S,
    n_univ: u64,
    k: usize,
    trials: usize,
    rng: &mut dcluster_sim::rng::Rng64,
) -> f64 {
    let mut failures = 0usize;
    for _ in 0..trials {
        let set: Vec<u64> = rng
            .sample_distinct(n_univ, k)
            .into_iter()
            .map(|v| v + 1)
            .collect();
        if !is_ssf_for(s, &set) {
            failures += 1;
        }
    }
    failures as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ssf::RandomSsf;
    use dcluster_sim::rng::Rng64;

    #[test]
    fn selects_detects_unique_transmitter() {
        // A handcrafted 3-round schedule over {1,2}: rounds select 1, both, 2.
        struct Hand;
        impl Schedule for Hand {
            fn len(&self) -> u64 {
                3
            }
            fn contains(&self, round: u64, id: u64) -> bool {
                match round {
                    0 => id == 1,
                    1 => true,
                    _ => id == 2,
                }
            }
        }
        assert!(selects(&Hand, 0, &[1, 2], 1));
        assert!(!selects(&Hand, 1, &[1, 2], 1));
        assert!(selects(&Hand, 2, &[1, 2], 2));
        assert!(is_ssf_for(&Hand, &[1, 2]));
        assert_eq!(first_selection_round(&Hand, &[1, 2], 2), Some(2));
    }

    #[test]
    fn failure_rate_decreases_with_length() {
        let mut rng = Rng64::new(50);
        let short = RandomSsf::with_len(1, 6, 20);
        let long = RandomSsf::with_len(1, 6, 2_000);
        let fr_short = ssf_failure_rate(&short, 200, 6, 60, &mut rng);
        let fr_long = ssf_failure_rate(&long, 200, 6, 60, &mut rng);
        assert!(
            fr_long <= fr_short,
            "longer schedule can't be worse: {fr_long} > {fr_short}"
        );
        assert!(
            fr_long < 0.05,
            "theory-scale length should essentially never fail"
        );
    }
}
