//! Witnessed cluster-aware strong selectors — `(N,k,l)`-wcss (Lemma 3).
//!
//! The clustered generalization of [`crate::wss`]: for any set `C` of `l`
//! conflicting clusters, any cluster `φ ∉ C`, any `X ⊆ [N] × {φ}` with
//! `|X| = k`, each `x ∈ X` and each `y ∉ X` from cluster `φ`, some set
//! `S_i` selects `x` from `X`, contains the witness `y`, and is **free** of
//! all clusters in `C` (no pair `(·, c)` with `c ∈ C` is scheduled).

use crate::ClusterSchedule;
use dcluster_sim::rng::hash64;

/// Seeded randomized `(N,k,l)`-wcss of size `O((k+l)·l·k² log N)`, built
/// exactly as in the Lemma 3 proof: round `i` first samples an *allowed*
/// cluster set `C_i` (each cluster with probability `1/l`), then schedules
/// each pair `(x, φ)` with `φ ∈ C_i` independently with probability `1/k`.
///
/// ```
/// use dcluster_selectors::{RandomWcss, ClusterSchedule};
/// let wcss = RandomWcss::new(1, 100, 3, 2, 1.0);
/// // A pair transmits only in rounds where its cluster is allowed:
/// let r = (0..wcss.len()).find(|&r| wcss.contains(r, 5, 1)).unwrap();
/// assert!(wcss.cluster_allowed(r, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomWcss {
    seed: u64,
    len: u64,
    k: usize,
    l: usize,
}

impl RandomWcss {
    /// Creates a family with an explicit number of rounds.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `l == 0` or `len == 0`.
    pub fn with_len(seed: u64, k: usize, l: usize, len: u64) -> Self {
        assert!(
            k > 0 && l > 0 && len > 0,
            "RandomWcss requires k, l, len ≥ 1"
        );
        Self { seed, len, k, l }
    }

    /// Creates a family of [`RandomWcss::recommended_len`] rounds scaled by
    /// `factor`.
    pub fn new(seed: u64, n_univ: u64, k: usize, l: usize, factor: f64) -> Self {
        let len = ((Self::recommended_len(n_univ, k, l) as f64 * factor).ceil() as u64).max(1);
        Self::with_len(seed, k, l, len)
    }

    /// Theory length `3e²·l·k²·(k+l+3)·ln(N+1) = O((k+l)·l·k² log N)` —
    /// the Lemma 3 bound with the constants of its proof
    /// (`p = Ω(1/(l·k²))`, `|T| < N^{k+l+3}`).
    pub fn recommended_len(n_univ: u64, k: usize, l: usize) -> u64 {
        let kf = k as f64;
        let lf = l as f64;
        let ln_n = ((n_univ + 1) as f64).ln().max(1.0);
        let e2 = std::f64::consts::E * std::f64::consts::E;
        (3.0 * e2 * lf * kf * kf * (kf + lf + 3.0) * ln_n).ceil() as u64
    }

    /// Whether cluster `cluster` is in the allowed set `C_i` of round
    /// `round` (probability `1/l` per the construction). A round is *free*
    /// of a cluster iff the cluster is not allowed.
    #[inline]
    pub fn cluster_allowed(&self, round: u64, cluster: u64) -> bool {
        let h = hash64(self.seed ^ 0x0C10_57E2, &[round, cluster]);
        (h as u128 * self.l as u128) >> 64 == 0
    }

    /// Set-size bound `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Conflict bound `l`.
    pub fn l(&self) -> usize {
        self.l
    }
}

impl ClusterSchedule for RandomWcss {
    fn len(&self) -> u64 {
        self.len
    }

    #[inline]
    fn contains(&self, round: u64, id: u64, cluster: u64) -> bool {
        if !self.cluster_allowed(round, cluster) {
            return false;
        }
        let h = hash64(self.seed ^ 0x5743_5353, &[round, id, cluster]);
        (h as u128 * self.k as u128) >> 64 == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use dcluster_sim::rng::Rng64;

    #[test]
    fn wcss_property_holds_at_theory_length() {
        let mut rng = Rng64::new(21);
        let n_univ = 120u64;
        let (k, l) = (2usize, 2usize);
        let wcss = RandomWcss::new(33, n_univ, k, l, 1.0);
        for trial in 0..10 {
            let phi = 1 + rng.range_u64(10);
            let conflicts: Vec<u64> = (0..l as u64)
                .map(|i| 20 + i + 10 * rng.range_u64(3))
                .collect();
            assert!(!conflicts.contains(&phi));
            let mut ids = rng.sample_distinct(n_univ, k + 1);
            for v in &mut ids {
                *v += 1;
            }
            let y = ids.pop().unwrap();
            assert!(
                verify::is_wcss_for(&wcss, &ids, y, phi, &conflicts),
                "trial {trial}: wcss failed for X={ids:?} y={y} phi={phi} C={conflicts:?}"
            );
        }
    }

    #[test]
    fn members_only_transmit_in_allowed_rounds() {
        let wcss = RandomWcss::new(2, 50, 3, 4, 0.5);
        for r in 0..wcss.len() {
            for id in 1..=10u64 {
                for c in 1..=5u64 {
                    if wcss.contains(r, id, c) {
                        assert!(wcss.cluster_allowed(r, c));
                    }
                }
            }
        }
    }

    #[test]
    fn allowed_rate_is_about_one_over_l() {
        let wcss = RandomWcss::with_len(4, 3, 5, 20_000);
        let hits = (0..wcss.len())
            .filter(|&r| wcss.cluster_allowed(r, 7))
            .count() as f64;
        let rate = hits / 20_000.0;
        assert!((rate - 0.2).abs() < 0.02, "allowed rate {rate} ≠ 1/5");
    }

    #[test]
    fn conflicting_cluster_blocks_rounds() {
        // Free rounds for cluster 1 must exclude cluster 2's members.
        let wcss = RandomWcss::new(5, 60, 2, 2, 0.3);
        let mut free_rounds = 0;
        for r in 0..wcss.len() {
            if !wcss.cluster_allowed(r, 2) {
                free_rounds += 1;
                for id in 1..=20 {
                    assert!(!wcss.contains(r, id, 2));
                }
            }
        }
        assert!(free_rounds > 0, "some rounds must be free of cluster 2");
    }

    #[test]
    fn recommended_len_grows_with_l() {
        assert!(RandomWcss::recommended_len(1000, 4, 8) > RandomWcss::recommended_len(1000, 4, 2));
    }
}
