//! Small prime utilities for the Reed–Solomon constructions.

/// Deterministic primality test by trial division (adequate: construction
/// primes stay far below 2³²).
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    if n.is_multiple_of(3) {
        return n == 3;
    }
    let mut d = 5u64;
    while d * d <= n {
        if n.is_multiple_of(d) || n.is_multiple_of(d + 2) {
            return false;
        }
        d += 6;
    }
    true
}

/// Smallest prime ≥ `n` (Bertrand guarantees one below `2n`).
pub fn next_prime(n: u64) -> u64 {
    let mut c = n.max(2);
    while !is_prime(c) {
        c += 1;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_classified_correctly() {
        let primes = [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 97, 101, 7919];
        let composites = [0u64, 1, 4, 6, 9, 15, 21, 25, 49, 91, 7917];
        for p in primes {
            assert!(is_prime(p), "{p} is prime");
        }
        for c in composites {
            assert!(!is_prime(c), "{c} is composite");
        }
    }

    #[test]
    fn next_prime_finds_the_successor() {
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(8), 11);
        assert_eq!(next_prime(11), 11);
        assert_eq!(next_prime(90), 97);
        assert_eq!(next_prime(7908), 7919);
    }

    #[test]
    fn next_prime_outputs_are_prime_for_a_range() {
        for n in 0..500 {
            let p = next_prime(n);
            assert!(is_prime(p));
            assert!(p >= n);
        }
    }
}
