//! # dcluster-selectors — combinatorial transmission schedules
//!
//! Deterministic SINR algorithms in the paper drive all communication
//! through *combinatorial families interpreted as transmission schedules*:
//! node `v` transmits in round `i` iff `v ∈ S_i` (§3.1). This crate
//! implements every family the paper uses:
//!
//! * **Strongly-selective families** (`(N,k)`-ssf) — [`ssf`]: classic
//!   families where every `x` in every small set `X` is selected
//!   (`S ∩ X = {x}`) by some set. Used for the Sparse Network Schedule
//!   (Lemma 4). Two constructions: an explicit Reed–Solomon one and a
//!   seeded randomized one matching the optimal `O(k² log N)` size.
//! * **Witnessed strong selectors** (`(N,k)`-wss, Lemma 2) — [`wss`]:
//!   selections must additionally be *witnessed* by every outsider `y ∉ X`
//!   (`y ∈ S_i` too). This is the paper's new structure enabling implicit
//!   collision detection in `ProximityGraphConstruction`.
//! * **Witnessed cluster-aware strong selectors** (`(N,k,l)`-wcss,
//!   Lemma 3) — [`wcss`]: wss per cluster, where each selecting set must be
//!   *free* of `l` conflicting clusters.
//! * **Cover-free families** — [`cff`]: the classical Erdős–Frankl–Füredi
//!   structure (via Reed–Solomon codes) powering our deterministic
//!   Linial-style color reduction (stand-in for the cited `log*`-MIS
//!   of Schneider–Wattenhofer).
//!
//! Randomized families are instantiated from **fixed seeds that are part of
//! the protocol**: the paper proves existence by the probabilistic method;
//! any seeded instance is a concrete family all nodes share. Membership is
//! computed in O(1) by hashing, so no family is ever materialized — a
//! `(N,k)`-wss of length 10⁶ occupies a few dozen bytes.
//!
//! [`verify`] provides property checkers (used heavily by proptest suites
//! and by the experiment harness to validate scaled-down schedule lengths).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cff;
pub mod greedy;
pub mod primes;
pub mod ssf;
pub mod theory;
pub mod verify;
pub mod wcss;
pub mod wss;

pub use cff::CoverFreeFamily;
pub use greedy::GreedySsf;
pub use ssf::{RandomSsf, RsSsf};
pub use wcss::RandomWcss;
pub use wss::RandomWss;

/// A transmission schedule over the unclustered ID universe `[1, N]`:
/// node with ID `id` transmits in round `r` iff `contains(r, id)`.
pub trait Schedule {
    /// Number of rounds.
    fn len(&self) -> u64;

    /// True iff the schedule is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test: does `id` transmit in round `round`?
    fn contains(&self, round: u64, id: u64) -> bool;
}

/// A transmission schedule over the clustered universe `[N] × [N]`
/// (ID, cluster): used by cluster-aware selectors.
pub trait ClusterSchedule {
    /// Number of rounds.
    fn len(&self) -> u64;

    /// True iff the schedule is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test for the pair `(id, cluster)` in round `round`.
    fn contains(&self, round: u64, id: u64, cluster: u64) -> bool;
}

/// Adapter viewing any [`Schedule`] as a [`ClusterSchedule`] that ignores
/// cluster IDs (the paper's "unclustered sets are clustered with
/// `cluster(v) = 1`" convention).
#[derive(Debug, Clone, Copy)]
pub struct IgnoreCluster<S>(pub S);

impl<S: Schedule> ClusterSchedule for IgnoreCluster<S> {
    fn len(&self) -> u64 {
        self.0.len()
    }
    fn contains(&self, round: u64, id: u64, _cluster: u64) -> bool {
        self.0.contains(round, id)
    }
}

impl<S: Schedule + ?Sized> Schedule for &S {
    fn len(&self) -> u64 {
        (**self).len()
    }
    fn contains(&self, round: u64, id: u64) -> bool {
        (**self).contains(round, id)
    }
}

impl<S: ClusterSchedule + ?Sized> ClusterSchedule for &S {
    fn len(&self) -> u64 {
        (**self).len()
    }
    fn contains(&self, round: u64, id: u64, cluster: u64) -> bool {
        (**self).contains(round, id, cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Everyone(u64);
    impl Schedule for Everyone {
        fn len(&self) -> u64 {
            self.0
        }
        fn contains(&self, _round: u64, _id: u64) -> bool {
            true
        }
    }

    #[test]
    fn ignore_cluster_adapter_delegates() {
        let s = IgnoreCluster(Everyone(5));
        assert_eq!(ClusterSchedule::len(&s), 5);
        assert!(s.contains(0, 7, 3));
        assert!(!ClusterSchedule::is_empty(&s));
    }

    #[test]
    fn reference_impls_delegate() {
        let e = Everyone(2);
        let r: &Everyone = &e;
        assert_eq!(Schedule::len(&r), 2);
        assert!(Schedule::contains(&r, 1, 1));
    }
}
