//! Closed-form size bounds from the paper, exposed for the Lemma 2/3 size
//! experiments (`selector_sizes` binary) and for documentation.

/// Non-constructive optimal `(N,k)`-ssf size `O(k² log(N/k))`
/// (Clementi–Monti–Silvestri \[6\]); returned with constant 1 for shape
/// comparisons.
pub fn ssf_optimal(n_univ: u64, k: usize) -> f64 {
    let k = k as f64;
    k * k * ((n_univ as f64 / k).max(2.0)).ln()
}

/// Explicit Reed–Solomon `(N,k)`-ssf size `q² = O((k·log N / log k)²)`.
pub fn ssf_rs(n_univ: u64, k: usize) -> f64 {
    let s = crate::ssf::RsSsf::new(n_univ, k);
    (s.field_size() * s.field_size()) as f64
}

/// Lemma 2 `(N,k)`-wss size `O(k³ log N)`.
pub fn wss(n_univ: u64, k: usize) -> f64 {
    crate::wss::RandomWss::recommended_len(n_univ, k) as f64
}

/// Lemma 3 `(N,k,l)`-wcss size `O((k+l)·l·k² log N)`.
pub fn wcss(n_univ: u64, k: usize, l: usize) -> f64 {
    crate::wcss::RandomWcss::recommended_len(n_univ, k, l) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_of_bounds_matches_the_paper() {
        // wss pays a factor ~k over ssf; wcss pays a further factor in l.
        let n = 1 << 20;
        assert!(wss(n, 8) > ssf_optimal(n, 8));
        assert!(wcss(n, 8, 4) > wss(n, 8));
    }

    #[test]
    fn rs_size_is_polynomial_in_k() {
        assert!(ssf_rs(1 << 20, 16) > ssf_rs(1 << 20, 4));
    }
}
