//! Cover-free families via Reed–Solomon codes.
//!
//! A family of sets `S_1, …, S_m` over a ground set is **d-cover-free** if
//! no `S_i` is contained in the union of any `d` others. Classical use
//! (Linial): one-round distributed color reduction — a node with color `c`
//! and ≤ `d` differently-colored neighbors picks an element of `S_c` not in
//! any neighbor's set; such an element exists by cover-freeness and the new
//! colors of adjacent nodes stay distinct. Iterating shrinks `m` colors to
//! `O((d·log m / log d)²)` per step, reaching a fixed point of `O(d²)`
//! colors in `O(log* m)` steps — our stand-in for the cited
//! Schneider–Wattenhofer `log*`-MIS machinery (paper §4.1, \[34\]).

use crate::primes::next_prime;

/// A `(d,1)`-cover-free family over ground set `[q²]` whose sets are the
/// graphs of degree-≤`t` polynomials over `GF(q)` (`q > d·t` prime).
///
/// `S_f = {(i, f(i)) : i ∈ [q]}` encoded as `i·q + f(i)`; two distinct
/// polynomials agree on ≤ `t` points, so `d` other sets cover ≤ `d·t < q`
/// of `S_f`'s `q` elements.
///
/// ```
/// use dcluster_selectors::CoverFreeFamily;
/// let cff = CoverFreeFamily::for_colors(1000, 4);
/// let fresh = cff.select_free(42, &[7, 13, 99]).unwrap();
/// assert!(fresh < cff.ground_size());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverFreeFamily {
    q: u64,
    t: u32,
    n_colors: u64,
}

impl CoverFreeFamily {
    /// Builds the smallest such family with at least `n_colors` sets and
    /// cover-freeness parameter `d`.
    ///
    /// # Panics
    ///
    /// Panics if `n_colors == 0` or `d == 0`.
    pub fn for_colors(n_colors: u64, d: usize) -> Self {
        assert!(n_colors > 0 && d > 0, "CFF requires n_colors ≥ 1 and d ≥ 1");
        let mut t = 1u32;
        loop {
            let q = next_prime(d as u64 * t as u64 + 1);
            let mut cover = 1u128;
            let mut enough = false;
            for _ in 0..=t {
                cover = cover.saturating_mul(q as u128);
                if cover >= n_colors as u128 {
                    enough = true;
                    break;
                }
            }
            if enough {
                return Self { q, t, n_colors };
            }
            t += 1;
        }
    }

    /// Ground-set size `q²` — the number of colors after one reduction.
    pub fn ground_size(&self) -> u64 {
        self.q * self.q
    }

    /// Field size `q`.
    pub fn field_size(&self) -> u64 {
        self.q
    }

    /// Number of colors this family supports.
    pub fn n_colors(&self) -> u64 {
        self.n_colors
    }

    #[inline]
    fn eval(&self, color: u64, x: u64) -> u64 {
        let q = self.q;
        let mut digits = [0u64; 64];
        let mut m = 0usize;
        let mut v = color;
        loop {
            digits[m] = v % q;
            m += 1;
            v /= q;
            if v == 0 {
                break;
            }
        }
        let mut acc = 0u64;
        for d in digits[..m].iter().rev() {
            acc = (acc * x + d) % q;
        }
        acc
    }

    /// The elements of `S_color` (exactly `q` of them).
    pub fn set_of(&self, color: u64) -> impl Iterator<Item = u64> + '_ {
        (0..self.q).map(move |i| i * self.q + self.eval(color, i))
    }

    /// Picks an element of `S_own` outside `⋃ S_neighbor` — the Linial
    /// reduction step. Returns `None` if `own` appears among `neighbors`
    /// (improper input coloring) or if more than `d·t` collisions exhaust
    /// the set (cannot happen for ≤ `d = ⌊(q−1)/t⌋` distinct neighbors).
    pub fn select_free(&self, own: u64, neighbors: &[u64]) -> Option<u64> {
        if neighbors.contains(&own) {
            return None;
        }
        'point: for i in 0..self.q {
            let mine = self.eval(own, i);
            for &nb in neighbors {
                if self.eval(nb, i) == mine {
                    continue 'point;
                }
            }
            return Some(i * self.q + mine);
        }
        None
    }

    /// The maximum number of neighbors `select_free` tolerates:
    /// `⌊(q−1)/t⌋`.
    pub fn degree_capacity(&self) -> usize {
        ((self.q - 1) / self.t as u64) as usize
    }
}

/// Iterated Linial reduction fixed point: the number of colors at which
/// further reductions stop shrinking the palette, for max degree `d`.
pub fn linial_fixed_point(d: usize) -> u64 {
    let q = next_prime(d as u64 + 1);
    q * q
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameters_satisfy_cover_freeness_precondition() {
        for &(m, d) in &[(100u64, 3usize), (10_000, 5), (1 << 30, 8)] {
            let c = CoverFreeFamily::for_colors(m, d);
            assert!(c.field_size() > (d as u64) * u64::from(c.t), "q > d·t");
            assert!(c.degree_capacity() >= d);
        }
    }

    #[test]
    fn sets_have_q_elements_in_ground() {
        let c = CoverFreeFamily::for_colors(500, 3);
        for color in [0u64, 1, 42, 499] {
            let s: Vec<u64> = c.set_of(color).collect();
            assert_eq!(s.len(), c.field_size() as usize);
            assert!(s.iter().all(|&e| e < c.ground_size()));
        }
    }

    #[test]
    fn distinct_colors_intersect_in_at_most_t_points() {
        let c = CoverFreeFamily::for_colors(1000, 4);
        let sa: std::collections::HashSet<u64> = c.set_of(123).collect();
        for other in [0u64, 7, 999, 500] {
            if other == 123 {
                continue;
            }
            let inter = c.set_of(other).filter(|e| sa.contains(e)).count();
            assert!(
                inter <= c.t as usize,
                "|S_123 ∩ S_{other}| = {inter} > t = {}",
                c.t
            );
        }
    }

    #[test]
    fn select_free_avoids_all_neighbor_sets() {
        let c = CoverFreeFamily::for_colors(10_000, 6);
        let neighbors = [3u64, 77, 1234, 9876, 42, 8];
        let own = 5555u64;
        let fresh = c.select_free(own, &neighbors).expect("capacity suffices");
        assert!(c.set_of(own).any(|e| e == fresh));
        for &nb in &neighbors {
            assert!(c.set_of(nb).all(|e| e != fresh), "fresh color in S_{nb}");
        }
    }

    #[test]
    fn select_free_rejects_improper_input() {
        let c = CoverFreeFamily::for_colors(100, 3);
        assert_eq!(c.select_free(5, &[1, 5]), None);
    }

    #[test]
    fn new_colors_of_adjacent_nodes_differ() {
        // The key invariant of the Linial step.
        let c = CoverFreeFamily::for_colors(5000, 4);
        let (cu, cv) = (100u64, 200u64);
        let fu = c.select_free(cu, &[cv, 300, 400]).unwrap();
        let fv = c.select_free(cv, &[cu, 300, 400]).unwrap();
        assert_ne!(fu, fv, "fu ∈ S_cu \\ S_cv while fv ∈ S_cv");
    }

    #[test]
    fn fixed_point_is_small_and_stable() {
        for d in 1..10usize {
            let fp = linial_fixed_point(d);
            let c = CoverFreeFamily::for_colors(fp, d);
            assert!(
                c.ground_size() <= fp,
                "reduction from the fixed point must not grow"
            );
        }
    }
}
