//! Witnessed strong selectors — `(N,k)`-wss (paper §3.1, Lemma 2).
//!
//! The paper's new combinatorial structure: a sequence `S = (S_1, …, S_m)`
//! over `[N]` such that for every `X ⊆ [N]` with `|X| = k`, every `x ∈ X`
//! and every `y ∉ X`, some `S_i` both selects `x` (`S_i ∩ X = {x}`) **and
//! contains the witness** `y`. Witnesses give the implicit collision
//! detection of `ProximityGraphConstruction`: if `u` hears `v` in a round
//! where `w` also transmitted, then `(u, w)` is certainly not a close pair
//! — and wss guarantees every far node is eventually such a `w`.

use crate::Schedule;
use dcluster_sim::rng::hash64;

/// Seeded randomized `(N,k)`-wss of size `O(k³ log N)` (Lemma 2).
///
/// Construction follows the Lemma 3 proof specialized to one cluster: each
/// round contains each ID independently with probability `1/k`.
/// For a fixed `(X, x, y)`, a round works with probability
/// `(1/k)(1−1/k)^{k−1}·(1/k) ≥ 1/(e·k²)`; union-bounding over `< N^{k+2}`
/// tuples gives the `O(k³ log N)` length.
///
/// ```
/// use dcluster_selectors::{RandomWss, Schedule, verify};
/// let wss = RandomWss::new(7, 200, 3, 1.0);
/// assert!(verify::is_wss_for(&wss, &[4, 9, 50], 77)); // 77 witnesses all of {4,9,50}
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomWss {
    seed: u64,
    len: u64,
    k: usize,
}

impl RandomWss {
    /// Creates a family with an explicit number of rounds.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `len == 0`.
    pub fn with_len(seed: u64, k: usize, len: u64) -> Self {
        assert!(k > 0 && len > 0, "RandomWss requires k ≥ 1 and len ≥ 1");
        Self { seed, len, k }
    }

    /// Creates a family of [`RandomWss::recommended_len`] rounds scaled by
    /// `factor` (`factor = 1` is the w.h.p.-correct theory length; the
    /// experiment harness uses smaller factors and validates the needed
    /// selections explicitly).
    pub fn new(seed: u64, n_univ: u64, k: usize, factor: f64) -> Self {
        let len = ((Self::recommended_len(n_univ, k) as f64 * factor).ceil() as u64).max(1);
        Self::with_len(seed, k, len)
    }

    /// Theory length `3·e·k²·(k+2)·ln(N+1) = O(k³ log N)` — the Lemma 2
    /// bound with explicit constants.
    pub fn recommended_len(n_univ: u64, k: usize) -> u64 {
        let kf = k as f64;
        let ln_n = ((n_univ + 1) as f64).ln().max(1.0);
        (3.0 * std::f64::consts::E * kf * kf * (kf + 2.0) * ln_n).ceil() as u64
    }

    /// Set-size bound `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Schedule for RandomWss {
    fn len(&self) -> u64 {
        self.len
    }

    #[inline]
    fn contains(&self, round: u64, id: u64) -> bool {
        let h = hash64(self.seed ^ 0x57_55_53_53, &[round, id]);
        (h as u128 * self.k as u128) >> 64 == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use dcluster_sim::rng::Rng64;

    #[test]
    fn wss_property_holds_at_theory_length() {
        let mut rng = Rng64::new(5);
        let n_univ = 300u64;
        let wss = RandomWss::new(11, n_univ, 3, 1.0);
        for _ in 0..25 {
            let mut ids = rng.sample_distinct(n_univ, 4);
            for v in &mut ids {
                *v += 1;
            }
            let y = ids.pop().unwrap();
            assert!(
                verify::is_wss_for(&wss, &ids, y),
                "wss property failed for X={ids:?}, y={y}"
            );
        }
    }

    #[test]
    fn wss_is_in_particular_an_ssf() {
        // "Note that any (N,k)-wss is also, by definition, an (N,k)-ssf."
        let mut rng = Rng64::new(6);
        let wss = RandomWss::new(12, 300, 4, 1.0);
        for _ in 0..25 {
            let ids: Vec<u64> = rng
                .sample_distinct(300, 4)
                .into_iter()
                .map(|v| v + 1)
                .collect();
            assert!(verify::is_ssf_for(&wss, &ids));
        }
    }

    #[test]
    fn witnessed_selection_finds_explicit_round() {
        // Directly inspect: exists round where S∩X = {x} and y ∈ S.
        let wss = RandomWss::new(3, 100, 2, 1.0);
        let x_set = [10u64, 20];
        let y = 30u64;
        for &x in &x_set {
            let found = (0..wss.len()).any(|r| {
                wss.contains(r, x)
                    && x_set.iter().all(|&o| o == x || !wss.contains(r, o))
                    && wss.contains(r, y)
            });
            assert!(found);
        }
    }

    #[test]
    fn too_short_family_fails_sometimes() {
        // Sanity check that the verifier can fail: a 1-round family can't
        // witness-select both elements of a pair.
        let tiny = RandomWss::with_len(1, 2, 1);
        let ok = verify::is_wss_for(&tiny, &[1, 2], 3);
        assert!(!ok, "one round cannot witness-select both elements");
    }

    #[test]
    fn recommended_len_is_cubic_in_k() {
        let l1 = RandomWss::recommended_len(1000, 4);
        let l2 = RandomWss::recommended_len(1000, 8);
        let ratio = l2 as f64 / l1 as f64;
        // (k²(k+2)) ratio for 8 vs 4: (64·10)/(16·6) = 6.67
        assert!((ratio - 6.67).abs() < 0.5, "cubic-ish scaling, got {ratio}");
    }
}
