//! Strongly-selective families — `(N, k)`-ssf (§3.1).
//!
//! A family `S = (S_1, …, S_m)` of subsets of `[N]` is an `(N,k)`-ssf if for
//! every `X ⊆ [N]` with `|X| ≤ k` and every `x ∈ X`, some `S_i` *selects*
//! `x` from `X`, i.e. `S_i ∩ X = {x}`. Optimal size is `O(k² log(N/k))`
//! (Clementi–Monti–Silvestri); explicit constructions pay an extra log.

use crate::primes::next_prime;
use crate::Schedule;
use dcluster_sim::rng::hash64;

/// Explicit Reed–Solomon `(N,k)`-ssf of size `q²` with
/// `q = O(k·log N / log k)` — the classical polynomial construction.
///
/// IDs are encoded as degree-`t` polynomials over `GF(q)` (their base-`q`
/// digits); round `(i, a)` schedules exactly the IDs whose polynomial takes
/// value `a` at point `i`. Two distinct IDs collide on at most `t` points,
/// so with `q > k·t` every member of a `k`-set has a collision-free
/// evaluation point — the selection property.
///
/// ```
/// use dcluster_selectors::{RsSsf, Schedule, verify};
/// let ssf = RsSsf::new(100, 3);
/// assert!(verify::is_ssf_for(&ssf, &[5, 17, 42]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RsSsf {
    q: u64,
    t: u32,
    n_univ: u64,
    k: usize,
}

impl RsSsf {
    /// Builds the family for universe `[1, n_univ]` and set-size bound `k`.
    ///
    /// # Panics
    ///
    /// Panics if `n_univ == 0` or `k == 0`.
    pub fn new(n_univ: u64, k: usize) -> Self {
        assert!(
            n_univ > 0 && k > 0,
            "RsSsf requires a nonempty universe and k ≥ 1"
        );
        // Find the smallest (t, q): q prime, q > k·t, q^{t+1} > n_univ.
        let mut t = 1u32;
        loop {
            let q = next_prime((k as u64 * t as u64) + 1);
            // Does q^{t+1} cover the universe?
            let mut cover = 1u128;
            let mut enough = false;
            for _ in 0..=t {
                cover = cover.saturating_mul(q as u128);
                if cover > n_univ as u128 {
                    enough = true;
                    break;
                }
            }
            if enough {
                return Self { q, t, n_univ, k };
            }
            t += 1;
        }
    }

    /// Field size `q` (the family has `q²` rounds).
    pub fn field_size(&self) -> u64 {
        self.q
    }

    /// Polynomial degree bound `t`.
    pub fn degree(&self) -> u32 {
        self.t
    }

    /// Evaluates the polynomial encoding `id` at point `x` over `GF(q)`.
    #[inline]
    fn eval(&self, id: u64, x: u64) -> u64 {
        // Horner over the base-q digits of id (most significant first).
        let q = self.q;
        let mut digits = [0u64; 64];
        let mut m = 0usize;
        let mut v = id;
        loop {
            digits[m] = v % q;
            m += 1;
            v /= q;
            if v == 0 {
                break;
            }
        }
        let mut acc = 0u64;
        for d in digits[..m].iter().rev() {
            acc = (acc * x + d) % q;
        }
        acc
    }
}

impl Schedule for RsSsf {
    fn len(&self) -> u64 {
        self.q * self.q
    }

    fn contains(&self, round: u64, id: u64) -> bool {
        debug_assert!(round < self.len());
        let i = round / self.q;
        let a = round % self.q;
        self.eval(id, i) == a
    }
}

/// Seeded randomized `(N,k)`-ssf of the optimal `O(k² log N)` size.
///
/// Each round includes each ID independently with probability `1/k`
/// (computed by hashing — O(1) membership, zero storage). A fixed seed
/// makes the family a concrete deterministic schedule shared by all nodes;
/// the probability that a given length fails the ssf property is bounded in
/// [`RandomSsf::recommended_len`]'s derivation and checked empirically by
/// [`crate::verify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomSsf {
    seed: u64,
    len: u64,
    k: usize,
}

impl RandomSsf {
    /// Creates a family with an explicit number of rounds.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `len == 0`.
    pub fn with_len(seed: u64, k: usize, len: u64) -> Self {
        assert!(k > 0 && len > 0, "RandomSsf requires k ≥ 1 and len ≥ 1");
        Self { seed, len, k }
    }

    /// Creates a family of [`RandomSsf::recommended_len`] rounds, scaled by
    /// `factor` (the experiments' schedule-length knob; `factor = 1` is the
    /// w.h.p.-correct theory length).
    pub fn new(seed: u64, n_univ: u64, k: usize, factor: f64) -> Self {
        let len = ((Self::recommended_len(n_univ, k) as f64 * factor).ceil() as u64).max(1);
        Self::with_len(seed, k, len)
    }

    /// Theory length: a round selects a fixed `x` from a fixed `k`-set with
    /// probability `(1/k)(1−1/k)^{k−1} ≥ 1/(e·k)`; union-bounding over the
    /// ≤ `N^k·k` (set, element) pairs needs `m = 3·e·k²·ln(N+1)` rounds
    /// (constant 3 absorbs slack), i.e. the optimal `O(k² log N)`.
    pub fn recommended_len(n_univ: u64, k: usize) -> u64 {
        let k = k as f64;
        let ln_n = ((n_univ + 1) as f64).ln().max(1.0);
        (3.0 * std::f64::consts::E * k * k * ln_n).ceil() as u64
    }

    /// Set-size bound `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The seed (protocol constant).
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl Schedule for RandomSsf {
    fn len(&self) -> u64 {
        self.len
    }

    #[inline]
    fn contains(&self, round: u64, id: u64) -> bool {
        // P[member] = 1/k, independently per (round, id).
        let h = hash64(self.seed, &[round, id]);
        (h as u128 * self.k as u128) >> 64 == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use dcluster_sim::rng::Rng64;

    #[test]
    fn rs_parameters_satisfy_invariants() {
        for &(n, k) in &[(10u64, 2usize), (100, 3), (10_000, 5), (1 << 20, 8)] {
            let s = RsSsf::new(n, k);
            assert!(s.field_size() > (k as u64) * s.degree() as u64, "q > k·t");
            let mut cover = 1u128;
            for _ in 0..=s.degree() {
                cover *= s.field_size() as u128;
            }
            assert!(cover > n as u128, "q^(t+1) must cover the universe");
        }
    }

    #[test]
    fn rs_ssf_selects_every_element_of_random_sets() {
        let mut rng = Rng64::new(31);
        let s = RsSsf::new(500, 4);
        for _ in 0..50 {
            let set: Vec<u64> = rng
                .sample_distinct(500, 4)
                .into_iter()
                .map(|v| v + 1)
                .collect();
            assert!(verify::is_ssf_for(&s, &set), "selection failed for {set:?}");
        }
    }

    #[test]
    fn rs_ssf_exhaustive_on_tiny_universe() {
        let s = RsSsf::new(12, 3);
        // All 3-subsets of [1,12].
        for a in 1..=12u64 {
            for b in a + 1..=12 {
                for c in b + 1..=12 {
                    assert!(verify::is_ssf_for(&s, &[a, b, c]));
                }
            }
        }
    }

    #[test]
    fn random_ssf_theory_len_selects_random_sets() {
        let mut rng = Rng64::new(77);
        let s = RandomSsf::new(9, 1000, 6, 1.0);
        for _ in 0..30 {
            let set: Vec<u64> = rng
                .sample_distinct(1000, 6)
                .into_iter()
                .map(|v| v + 1)
                .collect();
            assert!(verify::is_ssf_for(&s, &set));
        }
    }

    #[test]
    fn random_ssf_density_is_about_one_over_k() {
        let s = RandomSsf::with_len(1, 8, 4000);
        let mut members = 0u64;
        for r in 0..s.len() {
            for id in 1..=20u64 {
                if s.contains(r, id) {
                    members += 1;
                }
            }
        }
        let rate = members as f64 / (4000.0 * 20.0);
        assert!((rate - 0.125).abs() < 0.01, "membership rate {rate} ≠ 1/8");
    }

    #[test]
    fn recommended_len_grows_quadratically_in_k() {
        let l1 = RandomSsf::recommended_len(1000, 4);
        let l2 = RandomSsf::recommended_len(1000, 8);
        let ratio = l2 as f64 / l1 as f64;
        assert!(
            (ratio - 4.0).abs() < 0.2,
            "quadratic scaling, got ratio {ratio}"
        );
    }

    #[test]
    fn schedules_are_deterministic() {
        let a = RandomSsf::with_len(5, 4, 100);
        let b = RandomSsf::with_len(5, 4, 100);
        for r in 0..100 {
            for id in 1..50 {
                assert_eq!(a.contains(r, id), b.contains(r, id));
            }
        }
    }
}
