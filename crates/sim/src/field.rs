//! Per-round cell-aggregated interference field.
//!
//! Built once per round from the transmitter set, [`InterferenceField`]
//! lets a SINR resolver decide `signal ≥ β·(noise + interference)` for a
//! receiver **without touching every transmitter**, while returning exactly
//! the decision the full sum would give. Three ingredients, all exact:
//!
//! 1. **Cell-grouped partial sums.** The interference at a receiver `u` is
//!    `I(u) = Σ_C Σ_{w ∈ C} signal(d(w, u))`, grouped by grid cell `C`.
//!    Grouping is a reassociation of a finite sum of non-negative terms —
//!    an exact partial-sum decomposition, not an approximation. The field
//!    accumulates these cell sums ring by ring around `u`'s cell, so after
//!    ring `k` it holds the *exact* interference `I_near` from every
//!    transmitter within Chebyshev cell-distance `k`.
//! 2. **A global residual bound.** Transmitters beyond ring `k` sit in
//!    cells whose every point is at Euclidean distance `> k·cell` from `u`
//!    (their cell index differs by more than `k` in some axis, and `u` lies
//!    inside its own cell). With `far = |T| − near_count` of them, the
//!    far-field interference lies in `[0, far · P̂/(k·cell)^α]` where `P̂`
//!    is the field's power cap (= the uniform `P` in the paper's setting)
//!    — a single O(1) residual computed from the per-cell occupancy
//!    aggregates.
//! 3. **Monotone decisions.** The reception test accepts iff
//!    `s1 ≥ β·(noise + I)` with `I = I_near + I_far`. Since
//!    `I ≥ I_near`, failing the test already at `I_near` is a definitive
//!    *reject*; since `I ≤ I_near + residual`, passing the test at
//!    `I_near + residual` is a definitive *accept*. Only when the true
//!    threshold lies strictly inside the residual interval does the field
//!    fall back to the exact far sum — and then the decision is the full
//!    sum's decision by construction. Either way the outcome equals the
//!    naive resolver's on every receiver.
//!
//! The expected per-receiver cost is `O(occupied cells near u)` plus the
//! O(1) residual check; the exact fallback costs `O(|T|)` but fires only
//! on near-threshold receivers (measure-zero in random deployments, rare
//! in structured ones).
//!
//! **Floating-point caveat.** The argument above is exact in real
//! arithmetic. In `f64`, summing the same terms in a different order can
//! change the last ulp, so an instance whose SINR equals the threshold
//! *to within summation rounding* could in principle be decided
//! differently here (ring/cell order) than by the naive oracle
//! (transmitter order) — the same caveat the grid resolver's
//! `-s1 + Σ` rearrangement has always carried. Such ties have measure
//! zero in the deployments the suites generate, and every summation order
//! used here is itself deterministic (rings, then insertion order within
//! a cell, then caller order in the fallback), so runs are always
//! byte-identical; the fixed-seed equivalence suites and the
//! `scale_resolvers` CI gate pin the instances on which agreement is
//! actually enforced.

use crate::grid::Grid;
use crate::point::Point;
use crate::SinrParams;

/// Counters describing how an [`InterferenceField`] resolved its queries
/// (diagnostics for the resolver statistics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FieldStats {
    /// Queries answered (one per candidate receiver).
    pub queries: u64,
    /// Queries decided by the ring expansion + residual bound alone.
    pub residual_decided: u64,
    /// Queries that consumed every transmitter during expansion (exact by
    /// exhaustion; includes tiny rounds where everything is nearby).
    pub exhausted: u64,
    /// Queries that fell back to the exact far-field sum.
    pub exact_fallbacks: u64,
}

impl FieldStats {
    /// Accumulates another counter set into this one — the parallel
    /// resolver merges per-shard stats this way. All fields are plain
    /// counts, so merging is commutative and order-independent.
    pub fn merge(&mut self, other: FieldStats) {
        self.queries += other.queries;
        self.residual_decided += other.residual_decided;
        self.exhausted += other.exhausted;
        self.exact_fallbacks += other.exact_fallbacks;
    }
}

/// A per-round interference summary over the transmitter set. See the
/// module docs for the exactness argument.
///
/// Under **heterogeneous power** the cell sums use each transmitter's own
/// power (`powers` is threaded through [`InterferenceField::build`] and
/// [`InterferenceField::decide`]), and the far-field residual bound uses a
/// per-field **power cap** (≥ every stored transmitter's power) in place
/// of the uniform `P` — still a valid upper bound, so decisions stay
/// exact. With uniform power every formula is bit-identical to the classic
/// path.
///
/// The field also supports **sparse maintenance** across rounds
/// ([`insert_transmitter`](InterferenceField::insert_transmitter),
/// [`remove_transmitter`](InterferenceField::remove_transmitter),
/// [`move_transmitter`](InterferenceField::move_transmitter)): workloads
/// whose transmitter set changes by `k` nodes per round pay `O(k)` updates
/// instead of an `O(|T|)` rebuild, and the maintained field returns
/// exactly the decisions of a fresh rebuild (the underlying grid is
/// structurally identical; the power cap may stay loose after removals,
/// which can only shift *which* bound concludes, never the decision).
#[derive(Debug)]
pub struct InterferenceField {
    grid: Grid,
    /// Transmitter indices in caller order — the exact fallback iterates
    /// this (not the hash map of cells) so summation order, and with it
    /// every last-ulp rounding decision, is deterministic across runs.
    /// (Engine-produced transmitter sets are sorted ascending, which is
    /// also what the incremental operations maintain.)
    tx: Vec<u32>,
    /// Upper bound on every stored transmitter's power; drives the
    /// far-field residual. Monotone under maintenance: removals keep it.
    power_cap: f64,
    stats: FieldStats,
}

impl InterferenceField {
    /// Builds the field for one round: a subset grid over `transmitters`
    /// (cell side = transmission range) plus its occupancy aggregates.
    /// `powers` is the full per-node power array (uniform deployments pass
    /// `network.powers()`, which is all `params.power`).
    pub fn build(points: &[Point], powers: &[f64], transmitters: &[usize], cell: f64) -> Self {
        Self {
            grid: Grid::build_subset(points, transmitters, cell),
            tx: transmitters.iter().map(|&t| t as u32).collect(),
            power_cap: transmitters.iter().map(|&t| powers[t]).fold(0.0, f64::max),
            stats: FieldStats::default(),
        }
    }

    /// The transmitter-subset grid (shared with nearest-sender queries).
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Number of transmitters this round.
    pub fn transmitter_count(&self) -> usize {
        self.tx.len()
    }

    /// The stored transmitter indices, in fallback-summation order (caller
    /// order at build time; kept sorted ascending by the incremental ops).
    pub fn tx(&self) -> &[u32] {
        &self.tx
    }

    /// Checks this (possibly incrementally maintained) field against a
    /// fresh rebuild over its own transmitter set: the subset grid must be
    /// structurally identical and the power cap must still bound every
    /// stored transmitter's power. Both conditions together imply the
    /// maintained field returns exactly a rebuilt field's decisions (the
    /// cap may be loose after removals — that shifts which bound concludes,
    /// never the outcome).
    pub fn audit_against_rebuild(&self, points: &[Point], powers: &[f64]) -> Result<(), String> {
        let tx: Vec<usize> = self.tx.iter().map(|&t| t as usize).collect();
        let fresh = InterferenceField::build(points, powers, &tx, self.grid.cell_size());
        if self.grid != fresh.grid {
            return Err("maintained interference field grid diverged from a fresh rebuild".into());
        }
        if self.power_cap < fresh.power_cap {
            return Err(format!(
                "maintained power cap {} no longer bounds the stored transmitters (need ≥ {})",
                self.power_cap, fresh.power_cap
            ));
        }
        Ok(())
    }

    /// Query counters accumulated so far.
    pub fn stats(&self) -> FieldStats {
        self.stats
    }

    /// Adds transmitter `t` (not currently stored) at `points[t]` —
    /// `O(1)` hash-map work. Requires the field's transmitter set to be
    /// sorted ascending (true for every engine-produced set).
    pub fn insert_transmitter(&mut self, points: &[Point], powers: &[f64], t: usize) {
        debug_assert!(
            self.tx.windows(2).all(|w| w[0] < w[1]),
            "incremental maintenance requires a sorted transmitter set"
        );
        self.grid.insert(t, points[t]);
        match self.tx.binary_search(&(t as u32)) {
            Ok(_) => debug_assert!(false, "transmitter {t} inserted twice"),
            Err(pos) => self.tx.insert(pos, t as u32),
        }
        self.power_cap = self.power_cap.max(powers[t]);
    }

    /// Removes stored transmitter `t` located at `points[t]`. The power
    /// cap is deliberately kept (still a valid, possibly loose, bound —
    /// tightening it would cost an `O(|T|)` rescan without changing any
    /// decision).
    pub fn remove_transmitter(&mut self, points: &[Point], t: usize) {
        self.grid.remove(t, points[t]);
        let pos = self
            .tx
            .binary_search(&(t as u32))
            .unwrap_or_else(|_| panic!("transmitter {t} not stored in the field")); // lint:allow(P1, reason = "caller guarantees t is a stored transmitter")
        self.tx.remove(pos);
    }

    /// Relocates stored transmitter `t` from `from` to `to` (the caller
    /// updates its own points array; the field stores only indices).
    pub fn move_transmitter(&mut self, t: usize, from: Point, to: Point) {
        debug_assert!(
            self.tx.binary_search(&(t as u32)).is_ok(),
            "moving a transmitter ({t}) the field does not store"
        );
        self.grid.move_point(t, from, to);
    }

    /// Decides whether a candidate reception survives the full SINR test:
    /// returns `s1 ≥ β·(noise + I)` where `I` is the total interference at
    /// `u` over all transmitters except `sender` (whose signal `s1` at `u`
    /// the caller already knows). Exact — see module docs.
    pub fn decide(
        &mut self,
        points: &[Point],
        powers: &[f64],
        params: &SinrParams,
        u: Point,
        sender: usize,
        s1: f64,
    ) -> bool {
        let mut stats = self.stats;
        let got = self.decide_at(points, powers, params, u, sender, s1, &mut stats);
        self.stats = stats;
        got
    }

    /// The shared-reference form of [`InterferenceField::decide`]: answers
    /// the same query without mutating the field, accumulating counters
    /// into a caller-owned [`FieldStats`] instead. This is what lets the
    /// parallel resolver share one `&InterferenceField` across worker
    /// threads, each with its own stat block, merged afterwards.
    #[allow(clippy::too_many_arguments)]
    pub fn decide_at(
        &self,
        points: &[Point],
        powers: &[f64],
        params: &SinrParams,
        u: Point,
        sender: usize,
        s1: f64,
        stats: &mut FieldStats,
    ) -> bool {
        stats.queries += 1;
        let cell = self.grid.cell_size();
        let (ucx, ucy) = self.grid.key_of(u);
        // Per-transmitter signal `P_w / d^α` — bit-identical to
        // `params.signal` when `powers[w]` is the model power.
        let alpha = params.alpha;
        let sig = |w: usize, d: f64| powers[w] / d.max(1e-12).powf(alpha);
        // Interferers = all transmitters but the sender.
        let interferers = self.tx.len() - 1;
        let mut i_near = 0.0f64; // exact, cell-grouped partial sums
        let mut near_count = 0usize;
        // Ring expansion. Cap the ring radius once scanning the (2k+1)²
        // block stops paying for itself against |occupied cells|; past the
        // cap the exact fallback is no worse than the plain grid resolver.
        let occupied = self.grid.occupied_cells();
        let k_cap = {
            let mut k = 1i64;
            while (2 * k + 1) * (2 * k + 1) < 4 * occupied as i64 && k < (1 << 20) {
                k += 1;
            }
            k
        };
        for k in 0i64.. {
            // Accumulate the exact cell sums of ring k.
            for (cx, cy) in ring_cells(ucx, ucy, k) {
                for &w in self.grid.cell_members((cx, cy)) {
                    let w = w as usize;
                    if w == sender {
                        continue;
                    }
                    i_near += sig(w, points[w].dist(u));
                    near_count += 1;
                }
            }
            // Reject: the true interference is at least `i_near`.
            if s1 < params.beta * (params.noise + i_near) {
                stats.residual_decided += 1;
                return false;
            }
            // Exhausted: every interferer is accounted for — exact test.
            if near_count == interferers {
                stats.exhausted += 1;
                return s1 >= params.beta * (params.noise + i_near);
            }
            // Accept: even the residual upper bound cannot push the
            // interference past the threshold. Everything beyond ring k is
            // farther than k·cell from u, and no stored transmitter
            // exceeds the power cap.
            if k >= 1 {
                let far = (interferers - near_count) as f64;
                let kc = (k as f64 * cell).max(1e-12);
                let residual = far * (self.power_cap / kc.powf(alpha));
                if s1 >= params.beta * (params.noise + i_near + residual) {
                    stats.residual_decided += 1;
                    return true;
                }
            }
            if k >= k_cap {
                break;
            }
        }
        // Exact fallback: add the far field transmitter by transmitter, in
        // caller order (NOT hash-map cell order — iteration order decides
        // last-ulp rounding, and it must be identical across runs).
        // Transmitters inside the scanned block are already in `i_near`.
        stats.exact_fallbacks += 1;
        let mut i_total = i_near;
        for &w in &self.tx {
            let w = w as usize;
            if w == sender {
                continue;
            }
            let (cx, cy) = self.grid.key_of(points[w]);
            if (cx - ucx).abs() <= k_cap && (cy - ucy).abs() <= k_cap {
                continue; // already in i_near
            }
            i_total += sig(w, points[w].dist(u));
        }
        s1 >= params.beta * (params.noise + i_total)
    }
}

/// Cell keys at Chebyshev distance exactly `k` from `(cx, cy)` (the single
/// center cell for `k = 0`). Allocation-free: this runs inside every
/// `decide` query.
fn ring_cells(cx: i64, cy: i64, k: i64) -> impl Iterator<Item = (i64, i64)> {
    let center = (k == 0).then_some((cx, cy));
    let edges = (k > 0).then(|| {
        let top_bottom = (-k..=k).flat_map(move |dx| [(cx + dx, cy - k), (cx + dx, cy + k)]);
        let sides = (-k + 1..k).flat_map(move |dy| [(cx - k, cy + dy), (cx + k, cy + dy)]);
        top_bottom.chain(sides)
    });
    center.into_iter().chain(edges.into_iter().flatten())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn ring_cells_tile_the_block_exactly_once() {
        let mut seen = std::collections::HashSet::new();
        for k in 0..=3 {
            for c in ring_cells(5, -2, k) {
                assert!(seen.insert(c), "cell {c:?} visited twice");
                assert_eq!(
                    (c.0 - 5).abs().max((c.1 + 2).abs()),
                    k,
                    "cell {c:?} not on ring {k}"
                );
            }
        }
        assert_eq!(seen.len(), 7 * 7, "rings 0..=3 must tile the 7x7 block");
    }

    fn uniform_powers(n: usize, params: &SinrParams) -> Vec<f64> {
        vec![params.power; n]
    }

    #[test]
    fn decide_matches_full_sum_on_random_rounds() {
        let params = SinrParams::default();
        let mut rng = Rng64::new(31);
        for trial in 0..40 {
            let n = 30 + trial * 5;
            let side = 6.0;
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.range_f64(0.0, side), rng.range_f64(0.0, side)))
                .collect();
            let tx: Vec<usize> = (0..n).filter(|_| rng.chance(0.3)).collect();
            if tx.is_empty() {
                continue;
            }
            let powers = uniform_powers(n, &params);
            let mut field = InterferenceField::build(&pts, &powers, &tx, params.range());
            for u in 0..n {
                if tx.contains(&u) {
                    continue;
                }
                for &v in &tx {
                    let s1 = params.signal(pts[v].dist(pts[u]));
                    let full: f64 = tx
                        .iter()
                        .filter(|&&w| w != v)
                        .map(|&w| params.signal(pts[w].dist(pts[u])))
                        .sum();
                    let want = s1 >= params.beta * (params.noise + full);
                    let got = field.decide(&pts, &powers, &params, pts[u], v, s1);
                    assert_eq!(got, want, "trial {trial}: receiver {u}, sender {v}");
                }
            }
        }
    }

    #[test]
    fn decide_matches_full_sum_under_heterogeneous_power() {
        let params = SinrParams::default();
        let mut rng = Rng64::new(77);
        for trial in 0..25 {
            let n = 25 + trial * 6;
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.range_f64(0.0, 5.0), rng.range_f64(0.0, 5.0)))
                .collect();
            let powers: Vec<f64> = (0..n)
                .map(|_| params.power * (0.5 + 4.0 * rng.next_f64()))
                .collect();
            let tx: Vec<usize> = (0..n).filter(|_| rng.chance(0.3)).collect();
            if tx.is_empty() {
                continue;
            }
            let sig = |w: usize, d: f64| powers[w] / d.max(1e-12).powf(params.alpha);
            let mut field = InterferenceField::build(&pts, &powers, &tx, params.range());
            for u in 0..n {
                if tx.contains(&u) {
                    continue;
                }
                for &v in &tx {
                    let s1 = sig(v, pts[v].dist(pts[u]));
                    let full: f64 = tx
                        .iter()
                        .filter(|&&w| w != v)
                        .map(|&w| sig(w, pts[w].dist(pts[u])))
                        .sum();
                    let want = s1 >= params.beta * (params.noise + full);
                    let got = field.decide(&pts, &powers, &params, pts[u], v, s1);
                    assert_eq!(got, want, "trial {trial}: receiver {u}, sender {v}");
                }
            }
        }
    }

    #[test]
    fn incrementally_maintained_field_decides_like_a_fresh_one() {
        let params = SinrParams::default();
        let mut rng = Rng64::new(55);
        let n = 120;
        let mut pts: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.range_f64(0.0, 4.0), rng.range_f64(0.0, 4.0)))
            .collect();
        let powers: Vec<f64> = (0..n)
            .map(|_| params.power * (1.0 + rng.next_f64()))
            .collect();
        let mut tx: Vec<usize> = (0..n).filter(|_| rng.chance(0.3)).collect();
        let mut field = InterferenceField::build(&pts, &powers, &tx, params.range());
        for round in 0..30 {
            // Mutate the transmitter set and positions sparsely.
            let mover = tx[rng.range_usize(tx.len())];
            let to = Point::new(rng.range_f64(0.0, 4.0), rng.range_f64(0.0, 4.0));
            field.move_transmitter(mover, pts[mover], to);
            pts[mover] = to;
            let departing = tx[rng.range_usize(tx.len())];
            field.remove_transmitter(&pts, departing);
            tx.retain(|&t| t != departing);
            if let Some(joiner) = (0..n).find(|v| !tx.contains(v)) {
                field.insert_transmitter(&pts, &powers, joiner);
                tx.push(joiner);
                tx.sort_unstable();
            }
            // The maintained field must decide exactly like a rebuilt one.
            let mut fresh = InterferenceField::build(&pts, &powers, &tx, params.range());
            assert_eq!(field.grid(), fresh.grid(), "round {round}: grid diverged");
            assert_eq!(field.transmitter_count(), tx.len());
            field
                .audit_against_rebuild(&pts, &powers)
                .unwrap_or_else(|e| panic!("round {round}: audit failed: {e}"));
            for u in (0..n).filter(|u| !tx.contains(u)).take(20) {
                for &v in &tx {
                    let s1 = powers[v] / pts[v].dist(pts[u]).max(1e-12).powf(params.alpha);
                    assert_eq!(
                        field.decide(&pts, &powers, &params, pts[u], v, s1),
                        fresh.decide(&pts, &powers, &params, pts[u], v, s1),
                        "round {round}: maintained and fresh fields disagree \
                         (receiver {u}, sender {v})"
                    );
                }
            }
        }
    }

    #[test]
    fn decide_at_agrees_with_decide_and_merges_stats() {
        let params = SinrParams::default();
        let mut rng = Rng64::new(9);
        let n = 60;
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.range_f64(0.0, 4.0), rng.range_f64(0.0, 4.0)))
            .collect();
        let powers = uniform_powers(n, &params);
        let tx: Vec<usize> = (0..n).filter(|_| rng.chance(0.4)).collect();
        let mut field = InterferenceField::build(&pts, &powers, &tx, params.range());
        let shared = InterferenceField::build(&pts, &powers, &tx, params.range());
        let mut a = FieldStats::default();
        let mut b = FieldStats::default();
        for (i, u) in (0..n).filter(|u| !tx.contains(u)).enumerate() {
            for &v in &tx {
                let s1 = params.signal(pts[v].dist(pts[u]));
                let side = if i % 2 == 0 { &mut a } else { &mut b };
                assert_eq!(
                    shared.decide_at(&pts, &powers, &params, pts[u], v, s1, side),
                    field.decide(&pts, &powers, &params, pts[u], v, s1),
                    "decide_at and decide split (receiver {u}, sender {v})"
                );
            }
        }
        let mut merged = FieldStats::default();
        merged.merge(a);
        merged.merge(b);
        assert_eq!(
            merged,
            field.stats(),
            "merged shard counters must equal the sequential counters"
        );
    }

    #[test]
    fn stats_count_every_query() {
        let params = SinrParams::default();
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.2, 0.0),
            Point::new(9.0, 9.0),
        ];
        let tx = vec![0, 2];
        let powers = uniform_powers(3, &params);
        let mut field = InterferenceField::build(&pts, &powers, &tx, params.range());
        assert_eq!(field.transmitter_count(), 2);
        let s1 = params.signal(pts[0].dist(pts[1]));
        let _ = field.decide(&pts, &powers, &params, pts[1], 0, s1);
        let st = field.stats();
        assert_eq!(st.queries, 1);
        assert_eq!(
            st.residual_decided + st.exhausted + st.exact_fallbacks,
            1,
            "every query ends in exactly one bucket"
        );
    }
}
