//! Simple undirected graph utilities (communication graphs, proximity
//! graphs): BFS, diameter, degree statistics, independence checks.

use std::collections::VecDeque;

/// An undirected graph on vertices `0..n` stored as sorted adjacency lists.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<u32>>,
}

impl Graph {
    /// Builds a graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
        }
    }

    /// Wraps pre-computed adjacency lists (each list must be sorted and
    /// symmetric; callers in this workspace guarantee it).
    pub fn from_adjacency(adj: Vec<Vec<u32>>) -> Self {
        Self { adj }
    }

    /// Builds a graph from an edge list.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = Self::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Adds the undirected edge `{u, v}` (idempotent; self-loops ignored).
    pub fn add_edge(&mut self, u: usize, v: usize) {
        if u == v {
            return;
        }
        if let Err(pos) = self.adj[u].binary_search(&(v as u32)) {
            self.adj[u].insert(pos, v as u32);
        }
        if let Err(pos) = self.adj[v].binary_search(&(u as u32)) {
            self.adj[v].insert(pos, u as u32);
        }
    }

    /// Removes the undirected edge `{u, v}` if present (idempotent).
    pub fn remove_edge(&mut self, u: usize, v: usize) {
        if u == v {
            return;
        }
        if let Ok(pos) = self.adj[u].binary_search(&(v as u32)) {
            self.adj[u].remove(pos);
        }
        if let Ok(pos) = self.adj[v].binary_search(&(u as u32)) {
            self.adj[v].remove(pos);
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True iff the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|l| l.len()).sum::<usize>() / 2
    }

    /// Neighbors of `v` (sorted).
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adj[v]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Maximum degree ∆ (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(|l| l.len()).max().unwrap_or(0)
    }

    /// True iff `{u, v}` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u].binary_search(&(v as u32)).is_ok()
    }

    /// BFS hop distances from `src` over the whole graph (`u32::MAX` =
    /// unreachable).
    pub fn bfs(&self, src: usize) -> Vec<u32> {
        self.bfs_restricted(src, None)
    }

    /// BFS restricted to vertices where `mask[v]` is true (if provided);
    /// `src` must be in the mask.
    pub fn bfs_restricted(&self, src: usize, mask: Option<&[bool]>) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.len()];
        if let Some(m) = mask {
            debug_assert!(m[src], "BFS source outside mask");
        }
        dist[src] = 0;
        let mut q = VecDeque::from([src]);
        while let Some(v) = q.pop_front() {
            for &u in &self.adj[v] {
                let u = u as usize;
                if dist[u] == u32::MAX && mask.is_none_or(|m| m[u]) {
                    dist[u] = dist[v] + 1;
                    q.push_back(u);
                }
            }
        }
        dist
    }

    /// True iff the graph is connected (trivially true for ≤ 1 vertices).
    pub fn is_connected(&self) -> bool {
        if self.len() <= 1 {
            return true;
        }
        self.bfs(0).iter().all(|&d| d != u32::MAX)
    }

    /// Connected components as vertex lists.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let mut seen = vec![false; self.len()];
        let mut out = Vec::new();
        for s in 0..self.len() {
            if seen[s] {
                continue;
            }
            let d = self.bfs(s);
            let comp: Vec<usize> = (0..self.len())
                .filter(|&v| d[v] != u32::MAX && !seen[v])
                .collect();
            for &v in &comp {
                seen[v] = true;
            }
            out.push(comp);
        }
        out
    }

    /// Exact diameter via all-pairs BFS. `None` if disconnected or empty.
    ///
    /// O(n·m); intended for the network sizes used in experiments.
    pub fn diameter(&self) -> Option<u32> {
        if self.is_empty() {
            return None;
        }
        let mut diam = 0;
        for v in 0..self.len() {
            let d = self.bfs(v);
            let ecc = *d.iter().max().unwrap(); // lint:allow(P1, reason = "bfs returns one distance per node; nonempty")
            if ecc == u32::MAX {
                return None;
            }
            diam = diam.max(ecc);
        }
        Some(diam)
    }

    /// Fast diameter *lower bound* by double-sweep BFS (exact on trees,
    /// very tight in practice). `None` if disconnected.
    pub fn diameter_estimate(&self) -> Option<u32> {
        if self.is_empty() {
            return None;
        }
        let d0 = self.bfs(0);
        if d0.contains(&u32::MAX) {
            return None;
        }
        let far = (0..self.len()).max_by_key(|&v| d0[v]).unwrap(); // lint:allow(P1, reason = "guarded: len checked nonzero above")
        let d1 = self.bfs(far);
        Some(*d1.iter().max().unwrap()) // lint:allow(P1, reason = "bfs output nonempty")
    }

    /// True iff `set` (characteristic vector) is independent.
    pub fn is_independent(&self, set: &[bool]) -> bool {
        (0..self.len()).all(|v| !set[v] || self.adj[v].iter().all(|&u| !set[u as usize]))
    }

    /// True iff `set` is a *maximal* independent set of the subgraph induced
    /// by `mask` (all vertices when `mask` is `None`).
    pub fn is_mis(&self, set: &[bool], mask: Option<&[bool]>) -> bool {
        let in_mask = |v: usize| mask.is_none_or(|m| m[v]);
        if !self.is_independent(set) {
            return false;
        }
        if (0..self.len()).any(|v| set[v] && !in_mask(v)) {
            return false;
        }
        // Maximality: every in-mask vertex is in the set or dominated.
        (0..self.len()).all(|v| {
            !in_mask(v)
                || set[v]
                || self.adj[v]
                    .iter()
                    .any(|&u| set[u as usize] && in_mask(u as usize))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>())
    }

    #[test]
    fn remove_edge_is_symmetric_and_idempotent() {
        let mut g = path(4);
        assert!(g.has_edge(1, 2));
        g.remove_edge(2, 1);
        assert!(!g.has_edge(1, 2) && !g.has_edge(2, 1));
        g.remove_edge(2, 1); // idempotent
        assert_eq!(g.edge_count(), 2);
        g.add_edge(1, 2);
        assert_eq!(g, path(4), "add after remove restores sorted adjacency");
    }

    #[test]
    fn path_metrics() {
        let g = path(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.max_degree(), 2);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), Some(4));
        assert_eq!(g.diameter_estimate(), Some(4));
        assert_eq!(g.bfs(0)[4], 4);
    }

    #[test]
    fn add_edge_is_idempotent_and_ignores_loops() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(2, 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(2), 0);
        assert!(g.has_edge(1, 0));
    }

    #[test]
    fn disconnected_graph_reports_none_diameter() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!g.is_connected());
        assert_eq!(g.diameter(), None);
        assert_eq!(g.components().len(), 2);
    }

    #[test]
    fn independence_and_mis_checks() {
        let g = path(4); // 0-1-2-3
        let indep = [true, false, true, false];
        assert!(g.is_independent(&indep));
        assert!(g.is_mis(&indep, None));
        let not_max = [true, false, false, false];
        assert!(g.is_independent(&not_max));
        assert!(!g.is_mis(&not_max, None));
        let not_indep = [true, true, false, false];
        assert!(!g.is_independent(&not_indep));
    }

    #[test]
    fn restricted_bfs_respects_mask() {
        let g = path(5);
        let mask = [true, true, false, true, true];
        let d = g.bfs_restricted(0, Some(&mask));
        assert_eq!(d[1], 1);
        assert_eq!(d[2], u32::MAX);
        assert_eq!(d[3], u32::MAX, "mask breaks the path");
    }

    #[test]
    fn mis_respects_mask() {
        let g = path(3);
        let mask = [true, false, true];
        // With vertex 1 masked out, {0, 2} is a MIS of the induced subgraph.
        assert!(g.is_mis(&[true, false, true], Some(&mask)));
        // {0} alone is not maximal: 2 is in-mask and undominated.
        assert!(!g.is_mis(&[true, false, false], Some(&mask)));
    }
}
