//! Geometric quantities from §2 of the paper: the packing function
//! `χ(r1, r2)`, the close-pair distance bound `d_{Γ,r}`, density of
//! clustered/unclustered sets, and a reference implementation of the
//! **close pair** predicate (Definition 1) used to validate the protocol
//! stack.

use crate::grid::Grid;
use crate::point::Point;

/// Upper bound on `χ(r1, r2)`: the maximal number of points in a ball of
/// radius `r1` with pairwise distances ≥ `r2`.
///
/// Standard packing argument: disks of radius `r2/2` around the points are
/// disjoint and fit in a ball of radius `r1 + r2/2`, so
/// `χ ≤ ((r1 + r2/2) / (r2/2))² = (1 + 2·r1/r2)²`.
pub fn chi_upper(r1: f64, r2: f64) -> usize {
    assert!(r1 > 0.0 && r2 > 0.0);
    let ratio = 1.0 + 2.0 * r1 / r2;
    (ratio * ratio).floor() as usize
}

/// Lower bound on `χ(r1, r2)` via a hexagonal packing estimate
/// (`(π/√12) · (2r1/r2 + 1)² / π ≈ 0.23·(2r1/r2+1)²`, clamped to ≥ 1).
pub fn chi_lower(r1: f64, r2: f64) -> usize {
    assert!(r1 > 0.0 && r2 > 0.0);
    let ratio = 2.0 * r1 / r2 + 1.0;
    ((ratio * ratio) * 0.22).floor().max(1.0) as usize
}

/// The paper's `d_{Γ,r}`: the smallest `d` with `χ(r, d) ≥ Γ/2`. Since a
/// dense cluster/ball (≥ Γ/2 points inside radius `r`) must contain two
/// points at distance ≤ `d_{Γ,r}`, this bounds the closest-pair distance.
///
/// We invert the packing upper bound `(1 + 2r/d)² = Γ/2`, yielding
/// `d = 2r / (√(Γ/2) − 1)`; for `Γ ≤ 8` (where the formula degenerates) we
/// return `2r`, the ball diameter — every pair qualifies.
pub fn d_gamma_r(gamma: usize, r: f64) -> f64 {
    assert!(r > 0.0);
    let half = gamma as f64 / 2.0;
    if half.sqrt() <= 2.0 {
        return 2.0 * r;
    }
    2.0 * r / (half.sqrt() - 1.0)
}

/// Density of an *unclustered* set: the largest number of points in any
/// ball of radius `unit` **centered at a point of the set** (constant-factor
/// proxy for the supremum over all centers; see [`crate::Network::density`]).
pub fn density_unclustered(points: &[Point], unit: f64) -> usize {
    if points.is_empty() {
        return 0;
    }
    let grid = Grid::build(points, unit);
    (0..points.len())
        .map(|v| grid.count_within(points, points[v], unit))
        .max()
        .unwrap() // lint:allow(P1, reason = "empty subset is a caller bug, not runtime input")
}

/// Density of a *clustered* set: the largest cluster size (paper §2).
/// `cluster_of[i]` is the cluster of point `i`; `None` entries (nodes not in
/// any cluster) are ignored.
pub fn density_clustered(cluster_of: &[Option<u64>]) -> usize {
    let mut counts = std::collections::BTreeMap::new();
    for c in cluster_of.iter().flatten() {
        *counts.entry(*c).or_insert(0usize) += 1;
    }
    counts.values().copied().max().unwrap_or(0)
}

/// A close pair per Definition 1, found by [`close_pairs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClosePair {
    /// First point index.
    pub u: usize,
    /// Second point index (`u < w`).
    pub w: usize,
}

/// Reference (test oracle) implementation of Definition 1: finds all close
/// pairs of a (possibly clustered) point set of density `gamma` under
/// `r`-clustering.
///
/// Conditions, for `d = d(u,w)` and `ζ = d / d_{Γ,r}`:
/// (a) same cluster; (b) `d ≤ d_{Γ,r}` and `d ≤ 1 − ε`;
/// (c) `u` and `w` are mutually nearest within their cluster;
/// (d) every same-cluster pair inside `B(u, ζ) ∪ B(w, ζ)` is at distance
///     ≥ `d/2`.
///
/// For unclustered sets pass `cluster_of = None` (every node in cluster 1,
/// `r = 1`), matching the definition's unclustered case.
pub fn close_pairs(
    points: &[Point],
    cluster_of: Option<&[u64]>,
    gamma: usize,
    r: f64,
    epsilon: f64,
) -> Vec<ClosePair> {
    let n = points.len();
    let d_bound = d_gamma_r(gamma, r);
    let cluster = |i: usize| cluster_of.map_or(1, |c| c[i]);
    // Nearest same-cluster neighbor for each node (O(n²): oracle code).
    let mut nearest = vec![(usize::MAX, f64::INFINITY); n];
    for u in 0..n {
        for w in 0..n {
            if u == w || cluster(u) != cluster(w) {
                continue;
            }
            let d = points[u].dist(points[w]);
            if d < nearest[u].1 {
                nearest[u] = (w, d);
            }
        }
    }
    let mut out = Vec::new();
    for u in 0..n {
        let (w, d) = nearest[u];
        if w == usize::MAX || w < u {
            continue; // each pair once, canonical u < w
        }
        if nearest[w].0 != u {
            continue; // (c) mutual nearest
        }
        if d > d_bound || d > 1.0 - epsilon {
            continue; // (b)
        }
        let zeta = (d / d_bound).min(1.0);
        // (d): pairs within B(u, ζ) ∪ B(w, ζ), same cluster, distance ≥ d/2.
        let nearby: Vec<usize> = (0..n)
            .filter(|&x| {
                cluster(x) == cluster(u)
                    && (points[x].in_ball(points[u], zeta) || points[x].in_ball(points[w], zeta))
            })
            .collect();
        let ok = nearby.iter().enumerate().all(|(i, &a)| {
            nearby[i + 1..]
                .iter()
                .all(|&b| points[a].dist(points[b]) >= d / 2.0 - 1e-12)
        });
        if ok {
            out.push(ClosePair { u, w });
        }
    }
    out
}

/// True iff a cluster of `size` nodes is *dense* for density `gamma`
/// (≥ Γ/2, paper §2).
pub fn is_dense(size: usize, gamma: usize) -> bool {
    2 * size >= gamma
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn chi_bounds_are_ordered_and_monotone() {
        for &(r1, r2) in &[(1.0, 1.0), (2.0, 0.5), (5.0, 0.8), (1.0, 0.1)] {
            assert!(chi_lower(r1, r2) <= chi_upper(r1, r2));
        }
        assert!(chi_upper(2.0, 0.5) >= chi_upper(1.0, 0.5));
        assert!(chi_upper(1.0, 0.25) >= chi_upper(1.0, 0.5));
    }

    #[test]
    fn chi_upper_is_a_true_upper_bound_on_random_packings() {
        // Greedy packing never exceeds the bound.
        let mut rng = Rng64::new(10);
        for _ in 0..10 {
            let r1 = rng.range_f64(0.5, 3.0);
            let r2 = rng.range_f64(0.1, r1);
            let mut kept: Vec<Point> = Vec::new();
            for _ in 0..4000 {
                let a = rng.range_f64(0.0, std::f64::consts::TAU);
                let rad = r1 * rng.next_f64().sqrt();
                let p = Point::new(rad * a.cos(), rad * a.sin());
                if kept.iter().all(|q| q.dist(p) >= r2) {
                    kept.push(p);
                }
            }
            assert!(
                kept.len() <= chi_upper(r1, r2),
                "packed {} > bound {}",
                kept.len(),
                chi_upper(r1, r2)
            );
        }
    }

    #[test]
    fn d_gamma_r_shrinks_with_density() {
        assert!(d_gamma_r(100, 1.0) < d_gamma_r(50, 1.0));
        assert!(d_gamma_r(100, 2.0) > d_gamma_r(100, 1.0));
        assert_eq!(
            d_gamma_r(4, 1.0),
            2.0,
            "degenerate small gamma returns diameter"
        );
    }

    #[test]
    fn dense_ball_contains_a_pair_within_d_gamma_r() {
        // Γ points in a unit ball ⇒ some pair at distance ≤ d_{Γ,1}.
        let mut rng = Rng64::new(11);
        for gamma in [16usize, 32, 64] {
            let pts: Vec<Point> = (0..gamma)
                .map(|_| {
                    let a = rng.range_f64(0.0, std::f64::consts::TAU);
                    let rad = rng.next_f64().sqrt();
                    Point::new(rad * a.cos(), rad * a.sin())
                })
                .collect();
            let d = d_gamma_r(gamma, 1.0);
            let min_pair = (0..gamma)
                .flat_map(|i| ((i + 1)..gamma).map(move |j| (i, j)))
                .map(|(i, j)| pts[i].dist(pts[j]))
                .fold(f64::INFINITY, f64::min);
            assert!(
                min_pair <= d,
                "min pair {min_pair} > d_gamma_r {d} for gamma {gamma}"
            );
        }
    }

    #[test]
    fn density_unclustered_on_two_blobs() {
        let mut pts: Vec<Point> = (0..7).map(|i| Point::new(0.01 * i as f64, 0.0)).collect();
        pts.extend((0..4).map(|i| Point::new(100.0 + 0.01 * i as f64, 0.0)));
        assert_eq!(density_unclustered(&pts, 1.0), 7);
    }

    #[test]
    fn density_clustered_counts_largest_cluster() {
        let clusters = vec![Some(1), Some(1), Some(2), None, Some(1), Some(2)];
        assert_eq!(density_clustered(&clusters), 3);
        assert_eq!(density_clustered(&[]), 0);
    }

    #[test]
    fn isolated_mutual_nearest_pair_is_close() {
        // Two points at distance 0.1, far from everything else: close pair.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.1, 0.0),
            Point::new(50.0, 50.0),
            Point::new(50.2, 50.0),
        ];
        let got = close_pairs(&pts, None, 16, 1.0, 0.2);
        assert!(got.contains(&ClosePair { u: 0, w: 1 }));
        assert!(got.contains(&ClosePair { u: 2, w: 3 }));
    }

    #[test]
    fn pair_with_violating_nearby_points_is_not_close() {
        // u,w at distance 0.4; a third point 0.05 from a fourth inside the
        // ζ-ball violates condition (d) — for gamma where ζ-balls cover them.
        let pts = vec![
            Point::new(0.0, 0.0),  // u
            Point::new(0.4, 0.0),  // w
            Point::new(0.2, 0.3),  // x
            Point::new(0.2, 0.35), // y : d(x,y)=0.05 < 0.4/2
        ];
        // gamma small -> d_bound = 2.0, ζ = 0.2 ⇒ x,y outside ζ-balls?? ζ=0.4/2=0.2,
        // |x−u| ≈ 0.36 > 0.2. Use gamma so that d_bound is ~0.45: χ inverse.
        // d_gamma_r(g,1)=2/(sqrt(g/2)-1)=0.45 ⇒ sqrt(g/2)=5.44 ⇒ g≈59.
        let got = close_pairs(&pts, None, 59, 1.0, 0.2);
        assert!(
            !got.contains(&ClosePair { u: 0, w: 1 }),
            "condition (d) violated by the tight x,y pair: {got:?}"
        );
    }

    #[test]
    fn cross_cluster_pairs_are_never_close() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(0.05, 0.0)];
        let clusters = vec![1, 2];
        assert!(close_pairs(&pts, Some(&clusters), 8, 1.0, 0.2).is_empty());
    }

    #[test]
    fn lemma1_unclustered_dense_ball_has_close_pair() {
        // Lemma 1.1: a dense unit ball forces a close pair within B(x, 5).
        let mut rng = Rng64::new(12);
        for trial in 0..5 {
            let gamma = 24;
            let pts: Vec<Point> = (0..gamma)
                .map(|_| {
                    let a = rng.range_f64(0.0, std::f64::consts::TAU);
                    let rad = rng.next_f64().sqrt();
                    Point::new(rad * a.cos(), rad * a.sin())
                })
                .collect();
            let found = close_pairs(&pts, None, gamma, 1.0, 0.2);
            assert!(
                !found.is_empty(),
                "trial {trial}: dense ball without close pair"
            );
        }
    }
}
