//! SINR reception resolution — the paper's Eq. (1).
//!
//! Given the set `T` of nodes transmitting in a round, node `u` (which must
//! itself be silent: half-duplex) receives the message of `v ∈ T` iff
//!
//! ```text
//! SINR(v, u, T) = signal(d(v,u)) / (noise + Σ_{w ∈ T, w≠v} signal(d(w,u))) ≥ β.
//! ```
//!
//! Because `β > 1`, at most one transmitter can be decoded by any receiver,
//! and it is necessarily the one with the strongest signal (the nearest,
//! under uniform power). The fast resolver exploits two exact facts:
//!
//! 1. a decodable transmitter lies within the transmission range
//!    (`signal(d) ≥ β·noise` is necessary), so candidate receivers are found
//!    with a grid query of radius `range`;
//! 2. the second-nearest transmitter alone already contributes
//!    `signal(d₂)` interference, so if
//!    `signal(d₁)/(noise + signal(d₂)) < β` the receiver can be skipped
//!    without summing the remaining interference.
//!
//! The full interference sum (over *all* transmitters, arbitrarily far away)
//! is computed exactly for every receiver that survives the short-circuit,
//! so the fast resolver returns **exactly** the same receptions as the naive
//! one — a property the test-suite checks on random instances.

use crate::grid::Grid;
use crate::network::Network;

/// A successful reception in one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reception {
    /// Receiving node (index).
    pub receiver: usize,
    /// Transmitting node (index).
    pub sender: usize,
    /// Position of `sender` in the round's transmitter slice (lets callers
    /// look up the transmitted message without a search).
    pub slot: usize,
}

/// Reusable SINR resolver (holds scratch allocations).
#[derive(Debug, Default)]
pub struct Radio {
    is_tx: Vec<bool>,
    slot_of: Vec<u32>,
}

impl Radio {
    /// Creates a resolver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves all receptions for the round where exactly the nodes in
    /// `transmitters` transmit. Equivalent to [`Radio::resolve_naive`].
    pub fn resolve(&mut self, net: &Network, transmitters: &[usize]) -> Vec<Reception> {
        let n = net.len();
        if transmitters.is_empty() {
            return Vec::new();
        }
        let p = net.params();
        let range = p.range();
        self.is_tx.clear();
        self.is_tx.resize(n, false);
        self.slot_of.clear();
        self.slot_of.resize(n, u32::MAX);
        for (slot, &t) in transmitters.iter().enumerate() {
            debug_assert!(!self.is_tx[t], "node {t} listed twice as transmitter");
            self.is_tx[t] = true;
            self.slot_of[t] = slot as u32;
        }
        let tx_grid = Grid::build_subset(net.points(), transmitters, range);
        let mut out = Vec::new();
        for u in 0..n {
            if self.is_tx[u] {
                continue; // half-duplex: transmitters do not receive
            }
            let Some((v, d1, d2)) =
                tx_grid.two_nearest_within(net.points(), net.pos(u), range, None)
            else {
                continue;
            };
            let s1 = p.signal(d1);
            // Short-circuit: interference ≥ signal(d2) (d2 may be ∞ ⇒ 0).
            let i_low = if d2.is_finite() { p.signal(d2) } else { 0.0 };
            if s1 < p.beta * (p.noise + i_low) {
                continue;
            }
            // Exact check with total interference over all transmitters.
            let mut interference = -s1; // subtract sender's own signal below
            for &w in transmitters {
                interference += p.signal(net.pos(w).dist(net.pos(u)));
            }
            if s1 >= p.beta * (p.noise + interference) {
                out.push(Reception {
                    receiver: u,
                    sender: v,
                    slot: self.slot_of[v] as usize,
                });
            }
        }
        out
    }

    /// Reference resolver: O(n·|T|), no geometric shortcuts. Used by tests
    /// and available for auditing.
    pub fn resolve_naive(net: &Network, transmitters: &[usize]) -> Vec<Reception> {
        let p = net.params();
        let mut is_tx = vec![false; net.len()];
        for &t in transmitters {
            is_tx[t] = true;
        }
        let mut out = Vec::new();
        for (u, _) in is_tx.iter().enumerate().filter(|&(_, &tx)| !tx) {
            let total: f64 = transmitters
                .iter()
                .map(|&w| p.signal(net.pos(w).dist(net.pos(u))))
                .sum();
            let mut decoded: Option<(usize, usize)> = None;
            for (slot, &v) in transmitters.iter().enumerate() {
                let s = p.signal(net.pos(v).dist(net.pos(u)));
                if s >= p.beta * (p.noise + (total - s)) {
                    debug_assert!(decoded.is_none(), "beta > 1 forbids two decodable senders");
                    decoded = Some((v, slot));
                }
            }
            if let Some((v, slot)) = decoded {
                out.push(Reception {
                    receiver: u,
                    sender: v,
                    slot,
                });
            }
        }
        out
    }
}

/// Total received power (noise excluded) at every node for a transmitter
/// set — the quantity a **carrier-sensing** radio would measure. This is a
/// *model feature* the paper's pure setting forbids; it exists here for
/// the extension experiments (the paper's conclusion names carrier sensing
/// as an open direction).
pub fn sensed_power(net: &Network, transmitters: &[usize]) -> Vec<f64> {
    let p = net.params();
    (0..net.len())
        .map(|u| {
            transmitters
                .iter()
                .filter(|&&w| w != u)
                .map(|&w| p.signal(net.pos(w).dist(net.pos(u))))
                .sum()
        })
        .collect()
}

/// Computes `SINR(v, u, T)` literally per Eq. (1) of the paper (diagnostic
/// helper; `v` must be in `transmitters`).
pub fn sinr(net: &Network, v: usize, u: usize, transmitters: &[usize]) -> f64 {
    let p = net.params();
    debug_assert!(transmitters.contains(&v));
    let s = p.signal(net.pos(v).dist(net.pos(u)));
    let interference: f64 = transmitters
        .iter()
        .filter(|&&w| w != v)
        .map(|&w| p.signal(net.pos(w).dist(net.pos(u))))
        .sum();
    s / (p.noise + interference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;
    use crate::rng::Rng64;
    use crate::SinrParams;

    fn net_of(points: Vec<Point>) -> Network {
        Network::builder(points).build().unwrap()
    }

    #[test]
    fn lone_transmitter_reaches_exactly_its_range() {
        let net = net_of(vec![
            Point::new(0.0, 0.0),   // transmitter
            Point::new(0.999, 0.0), // inside range
            Point::new(1.001, 0.0), // outside range
        ]);
        let got = Radio::new().resolve(&net, &[0]);
        assert_eq!(
            got,
            vec![Reception {
                receiver: 1,
                sender: 0,
                slot: 0
            }]
        );
    }

    #[test]
    fn transmitters_do_not_receive() {
        let net = net_of(vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)]);
        let got = Radio::new().resolve(&net, &[0, 1]);
        assert!(got.is_empty(), "both nodes transmit, nobody listens");
    }

    #[test]
    fn two_distant_transmitters_interfere_at_boundary() {
        // Receiver at midpoint of two transmitters 1.8 apart: each signal
        // arrives at distance 0.9; equal signals cannot beat beta > 1.
        let net = net_of(vec![
            Point::new(0.0, 0.0),
            Point::new(1.8, 0.0),
            Point::new(0.9, 0.0),
        ]);
        let got = Radio::new().resolve(&net, &[0, 1]);
        assert!(got.is_empty());
    }

    #[test]
    fn close_transmitter_beats_distant_interferer() {
        // Sender 0.1 from receiver, interferer 1.9 away: SINR is huge.
        let net = net_of(vec![
            Point::new(0.0, 0.0), // sender
            Point::new(2.0, 0.0), // interferer
            Point::new(0.1, 0.0), // receiver
        ]);
        let got = Radio::new().resolve(&net, &[0, 1]);
        assert_eq!(
            got,
            vec![Reception {
                receiver: 2,
                sender: 0,
                slot: 0
            }]
        );
    }

    #[test]
    fn sinr_matches_reception_threshold() {
        let net = net_of(vec![
            Point::new(0.0, 0.0),
            Point::new(0.7, 0.0),
            Point::new(1.5, 0.0),
        ]);
        let tx = [0, 2];
        let s = sinr(&net, 0, 1, &tx);
        let received = Radio::new()
            .resolve(&net, &tx)
            .iter()
            .any(|r| r.receiver == 1);
        assert_eq!(received, s >= net.params().beta);
    }

    #[test]
    fn fast_resolver_matches_naive_on_random_instances() {
        let mut rng = Rng64::new(2024);
        for trial in 0..30 {
            let n = 20 + trial * 7;
            let side = 4.0;
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.range_f64(0.0, side), rng.range_f64(0.0, side)))
                .collect();
            let net = Network::builder(pts)
                .params(SinrParams::normalized(
                    2.5 + rng.next_f64() * 2.0,
                    1.2 + rng.next_f64(),
                    1.0,
                    0.2,
                ))
                .build()
                .unwrap();
            let k = 1 + rng.range_usize(n);
            let mut all: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut all);
            all.truncate(k);
            let mut fast = Radio::new().resolve(&net, &all);
            let mut naive = Radio::resolve_naive(&net, &all);
            fast.sort_by_key(|r| r.receiver);
            naive.sort_by_key(|r| r.receiver);
            assert_eq!(
                fast, naive,
                "trial {trial}: fast and naive resolvers disagree"
            );
        }
    }

    #[test]
    fn at_most_one_sender_decoded_per_receiver() {
        let mut rng = Rng64::new(7);
        let pts: Vec<Point> = (0..120)
            .map(|_| Point::new(rng.range_f64(0.0, 3.0), rng.range_f64(0.0, 3.0)))
            .collect();
        let net = net_of(pts);
        let tx: Vec<usize> = (0..120).filter(|_| rng.chance(0.3)).collect();
        let rec = Radio::new().resolve(&net, &tx);
        let mut seen = std::collections::HashSet::new();
        for r in &rec {
            assert!(
                seen.insert(r.receiver),
                "receiver {} decoded twice",
                r.receiver
            );
            assert_eq!(tx[r.slot], r.sender, "slot must index the sender");
        }
    }

    #[test]
    fn empty_transmitter_set_yields_no_receptions() {
        let net = net_of(vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)]);
        assert!(Radio::new().resolve(&net, &[]).is_empty());
    }

    #[test]
    fn sensed_power_excludes_own_signal_and_decays() {
        let net = net_of(vec![
            Point::new(0.0, 0.0),
            Point::new(0.5, 0.0),
            Point::new(2.0, 0.0),
        ]);
        let p = sensed_power(&net, &[0]);
        assert_eq!(p[0], 0.0, "a node does not sense its own transmission");
        assert!(p[1] > p[2], "closer listener senses more power");
        let both = sensed_power(&net, &[0, 1]);
        assert!(both[2] > p[2], "more transmitters, more power");
    }
}
