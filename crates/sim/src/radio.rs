//! SINR reception resolution — the paper's Eq. (1) — behind pluggable
//! resolver backends.
//!
//! Given the set `T` of nodes transmitting in a round, node `u` (which must
//! itself be silent: half-duplex) receives the message of `v ∈ T` iff
//!
//! ```text
//! SINR(v, u, T) = signal(d(v,u)) / (noise + Σ_{w ∈ T, w≠v} signal(d(w,u))) ≥ β.
//! ```
//!
//! Because `β > 1`, at most one transmitter can be decoded by any receiver,
//! and it is necessarily the one with the strongest signal (the nearest,
//! under uniform power). Reception resolution is the hot path of every
//! experiment binary, so it sits behind the [`SinrResolver`] trait with
//! three interchangeable backends ([`ResolverKind`]):
//!
//! **Heterogeneous power.** Nodes may transmit at per-node powers
//! ([`Network::powers`](crate::Network::powers)); signals are then
//! `P_w / d^α` via [`Network::signal_from`](crate::Network::signal_from).
//! The geometric backends keep their exactness: any decodable transmitter
//! must satisfy `P_w/d^α ≥ β·noise`, i.e. lie within
//! [`Network::max_range`](crate::Network::max_range) of the receiver, so
//! the candidate search stays a bounded disk query — but the decodable
//! transmitter is the *strongest-signal* one, which under heterogeneous
//! power need not be the nearest, so the candidate is found by a
//! strongest-two scan instead of the nearest-two distance query (the
//! uniform-power fast path is untouched).
//!
//! * [`NaiveResolver`] — the oracle. Evaluates Eq. (1) literally in
//!   `O(n·|T|)`; every other backend must match it **exactly**.
//! * [`GridResolver`] — grid short-circuit. Two exact facts cut the work:
//!   (1) a decodable transmitter lies within the transmission range
//!   (`signal(d) ≥ β·noise` is necessary), so candidates come from a grid
//!   query of radius `range`; (2) the second-nearest transmitter alone
//!   contributes `signal(d₂)` interference, so a receiver failing
//!   `signal(d₁) ≥ β·(noise + signal(d₂))` is skipped without any summing.
//!   Survivors still pay an exact `O(|T|)` interference sum.
//! * [`AggregatedResolver`] — cell-aggregated interference. Builds a
//!   per-round [`InterferenceField`](crate::field::InterferenceField):
//!   interference is accumulated as exact cell-grouped partial sums ring by
//!   ring around the receiver, and everything farther than `k` cells is
//!   covered by a single count-based residual bound. Because the reception
//!   test is monotone in the interference, a receiver is accepted or
//!   rejected as soon as the bound is conclusive; the rare inconclusive
//!   case falls back to the exact far-field sum. Surviving receivers
//!   therefore pay `O(occupied cells nearby) + O(1)` instead of `O(|T|)` —
//!   and the returned receptions are **exactly** the naive ones (the cell
//!   sums are exact partial sums, not approximations; see
//!   [`crate::field`] for the full argument).
//!
//! Equivalence of all three backends is enforced by property tests on
//! random, clumped and grid-boundary deployments
//! (`crates/sim/tests/radio_equivalence.rs`).

use crate::field::InterferenceField;
use crate::grid::Grid;
use crate::network::Network;
use std::fmt;
use std::str::FromStr;

/// A successful reception in one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reception {
    /// Receiving node (index).
    pub receiver: usize,
    /// Transmitting node (index).
    pub sender: usize,
    /// Position of `sender` in the round's transmitter slice (lets callers
    /// look up the transmitted message without a search).
    pub slot: usize,
}

/// The available [`SinrResolver`] backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResolverKind {
    /// Literal Eq. (1): `O(n·|T|)` oracle.
    Naive,
    /// Grid candidate search + second-nearest short-circuit + exact sums.
    Grid,
    /// Grid short-circuit + per-round cell-aggregated interference field.
    Aggregated,
}

impl ResolverKind {
    /// Every backend, in increasing order of sophistication.
    pub const ALL: [ResolverKind; 3] = [
        ResolverKind::Naive,
        ResolverKind::Grid,
        ResolverKind::Aggregated,
    ];

    /// Stable lower-case name (CLI flags, traces, CSV columns).
    pub fn name(self) -> &'static str {
        match self {
            ResolverKind::Naive => "naive",
            ResolverKind::Grid => "grid",
            ResolverKind::Aggregated => "aggregated",
        }
    }

    /// The backend named by the `DCLUSTER_RESOLVER` environment variable,
    /// if set. A typo aborts with the parse error rather than silently
    /// falling back.
    ///
    /// # Panics
    ///
    /// Panics if the variable is set to an unknown backend name.
    pub fn from_env() -> Option<ResolverKind> {
        std::env::var("DCLUSTER_RESOLVER")
            .ok()
            .map(|v| match v.parse() {
                Ok(kind) => kind,
                Err(e) => panic!("DCLUSTER_RESOLVER: {e}"),
            })
    }

    /// Instantiates the backend.
    pub fn build(self) -> Box<dyn SinrResolver> {
        match self {
            ResolverKind::Naive => Box::new(NaiveResolver::new()),
            ResolverKind::Grid => Box::new(GridResolver::new()),
            ResolverKind::Aggregated => Box::new(AggregatedResolver::new()),
        }
    }
}

impl fmt::Display for ResolverKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ResolverKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "naive" => Ok(ResolverKind::Naive),
            "grid" => Ok(ResolverKind::Grid),
            "aggregated" | "agg" => Ok(ResolverKind::Aggregated),
            other => Err(format!(
                "unknown resolver '{other}' (expected naive|grid|aggregated)"
            )),
        }
    }
}

/// Cumulative per-backend work counters (all backends fill `rounds` and
/// `candidates`; the rest apply where meaningful).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolverStats {
    /// Rounds resolved.
    pub rounds: u64,
    /// Decode candidates: receivers with some transmitter within range for
    /// the geometric backends; decoded receivers for the naive oracle
    /// (which has no candidate search).
    pub candidates: u64,
    /// Candidates killed by the second-nearest short-circuit.
    pub short_circuited: u64,
    /// Exact full-interference sums over all of `T` (naive: one per
    /// listener; grid: one per surviving candidate; aggregated: 0).
    pub exact_sums: u64,
    /// Aggregated only: candidates decided by cell sums + residual bound.
    pub residual_decided: u64,
    /// Aggregated only: candidates that needed the exact far-field
    /// fallback.
    pub exact_fallbacks: u64,
}

/// A reception-resolution backend: given a round's transmitter set,
/// produce the exact reception set of Eq. (1).
///
/// All backends are **observationally identical** — they differ only in
/// how much work they do. Implementations may keep scratch allocations
/// (hence `&mut self`) and must be deterministic: the same network and
/// transmitter slice always yield the same receptions in the same order
/// (sorted by receiver index).
pub trait SinrResolver: fmt::Debug {
    /// Which backend this is (recorded in traces and stats).
    fn kind(&self) -> ResolverKind;

    /// Resolves one round into `out` (cleared first), sorted by receiver.
    fn resolve_into(&mut self, net: &Network, transmitters: &[usize], out: &mut Vec<Reception>);

    /// Convenience wrapper allocating a fresh output vector.
    fn resolve(&mut self, net: &Network, transmitters: &[usize]) -> Vec<Reception> {
        let mut out = Vec::new();
        self.resolve_into(net, transmitters, &mut out);
        out
    }

    /// Cumulative work counters.
    fn stats(&self) -> ResolverStats;
}

/// Candidate sender at receiver position `u`: the strongest and
/// second-strongest received signals over the transmitters stored in
/// `grid`, scanning the disk of radius `r` (the network's
/// [`max_range`](Network::max_range), which contains every decodable
/// transmitter). Returns `(sender, s1, s2)` with `s2 = 0.0` when a single
/// candidate is in range. Ties keep the first-scanned transmitter — the
/// scan order is deterministic, and tied top signals can never be decoded
/// anyway (`β > 1`).
fn two_strongest_within(net: &Network, grid: &Grid, u: crate::Point, r: f64) -> CandidateSignals {
    let mut best: Option<(usize, f64)> = None;
    let mut second = 0.0f64;
    for w in grid.within(net.points(), u, r) {
        let s = net.signal_from(w, net.pos(w).dist(u));
        match best {
            None => best = Some((w, s)),
            Some((_, bs)) if s > bs => {
                second = bs;
                best = Some((w, s));
            }
            Some(_) => second = second.max(s),
        }
    }
    best.map(|(w, s1)| (w, s1, second))
}

/// `(sender, strongest signal, second-strongest signal)` or `None` when no
/// transmitter is in range.
type CandidateSignals = Option<(usize, f64, f64)>;

/// Shared candidate search of the geometric backends: nearest-two distance
/// query under uniform power (bit-identical to the classic path),
/// strongest-two signal scan under heterogeneous power.
fn candidate_signals(net: &Network, tx_grid: &Grid, u: usize) -> CandidateSignals {
    let r = net.max_range();
    if net.has_uniform_power() {
        let p = net.params();
        let tn = tx_grid.two_nearest_within(net.points(), net.pos(u), r, None)?;
        let s2 = if tn.d2.is_finite() {
            p.signal(tn.d2)
        } else {
            0.0
        };
        Some((tn.nearest, p.signal(tn.d1), s2))
    } else {
        two_strongest_within(net, tx_grid, net.pos(u), r)
    }
}

/// Marks `transmitters` in the reusable `is_tx`/`slot_of` scratch vectors.
fn mark_transmitters(
    n: usize,
    transmitters: &[usize],
    is_tx: &mut Vec<bool>,
    slot_of: &mut Vec<u32>,
) {
    is_tx.clear();
    is_tx.resize(n, false);
    slot_of.clear();
    slot_of.resize(n, u32::MAX);
    for (slot, &t) in transmitters.iter().enumerate() {
        debug_assert!(!is_tx[t], "node {t} listed twice as transmitter");
        is_tx[t] = true;
        slot_of[t] = slot as u32;
    }
}

/// Reference backend: evaluates Eq. (1) literally, `O(n·|T|)`, no
/// geometric shortcuts. The oracle every other backend is tested against.
#[derive(Debug, Default)]
pub struct NaiveResolver {
    is_tx: Vec<bool>,
    stats: ResolverStats,
}

impl NaiveResolver {
    /// Creates the backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SinrResolver for NaiveResolver {
    fn kind(&self) -> ResolverKind {
        ResolverKind::Naive
    }

    fn resolve_into(&mut self, net: &Network, transmitters: &[usize], out: &mut Vec<Reception>) {
        out.clear();
        self.stats.rounds += 1;
        if transmitters.is_empty() {
            return;
        }
        let p = net.params();
        self.is_tx.clear();
        self.is_tx.resize(net.len(), false);
        for &t in transmitters {
            debug_assert!(!self.is_tx[t], "node {t} listed twice as transmitter");
            self.is_tx[t] = true;
        }
        for (u, _) in self.is_tx.iter().enumerate().filter(|&(_, &tx)| !tx) {
            self.stats.exact_sums += 1;
            let total: f64 = transmitters
                .iter()
                .map(|&w| net.signal_from(w, net.pos(w).dist(net.pos(u))))
                .sum();
            let mut decoded: Option<(usize, usize)> = None;
            for (slot, &v) in transmitters.iter().enumerate() {
                let s = net.signal_from(v, net.pos(v).dist(net.pos(u)));
                if s >= p.beta * (p.noise + (total - s)) {
                    debug_assert!(decoded.is_none(), "beta > 1 forbids two decodable senders");
                    decoded = Some((v, slot));
                }
            }
            if let Some((v, slot)) = decoded {
                self.stats.candidates += 1;
                out.push(Reception {
                    receiver: u,
                    sender: v,
                    slot,
                });
            }
        }
    }

    fn stats(&self) -> ResolverStats {
        self.stats
    }
}

/// Grid-accelerated backend (the workspace's original fast resolver):
/// candidate search and second-nearest short-circuit via the transmitter
/// subset grid, then an exact `O(|T|)` sum per surviving candidate.
#[derive(Debug, Default)]
pub struct GridResolver {
    is_tx: Vec<bool>,
    slot_of: Vec<u32>,
    stats: ResolverStats,
}

impl GridResolver {
    /// Creates the backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SinrResolver for GridResolver {
    fn kind(&self) -> ResolverKind {
        ResolverKind::Grid
    }

    fn resolve_into(&mut self, net: &Network, transmitters: &[usize], out: &mut Vec<Reception>) {
        out.clear();
        self.stats.rounds += 1;
        if transmitters.is_empty() {
            return;
        }
        let n = net.len();
        let p = net.params();
        mark_transmitters(n, transmitters, &mut self.is_tx, &mut self.slot_of);
        let tx_grid = Grid::build_subset(net.points(), transmitters, p.range());
        for u in 0..n {
            if self.is_tx[u] {
                continue; // half-duplex: transmitters do not receive
            }
            let Some((v, s1, i_low)) = candidate_signals(net, &tx_grid, u) else {
                continue;
            };
            self.stats.candidates += 1;
            // Short-circuit: interference ≥ the second-strongest signal.
            if s1 < p.beta * (p.noise + i_low) {
                self.stats.short_circuited += 1;
                continue;
            }
            // Exact check with total interference over all transmitters.
            self.stats.exact_sums += 1;
            let mut interference = -s1; // subtract sender's own signal below
            for &w in transmitters {
                interference += net.signal_from(w, net.pos(w).dist(net.pos(u)));
            }
            if s1 >= p.beta * (p.noise + interference) {
                out.push(Reception {
                    receiver: u,
                    sender: v,
                    slot: self.slot_of[v] as usize,
                });
            }
        }
    }

    fn stats(&self) -> ResolverStats {
        self.stats
    }
}

/// Cell-aggregated backend: per-round [`InterferenceField`] with exact
/// cell-grouped partial sums and a global residual bound. Scales to the
/// 10⁵–10⁶-node deployments the grid backend's per-survivor `O(|T|)` sums
/// cannot reach.
#[derive(Debug, Default)]
pub struct AggregatedResolver {
    is_tx: Vec<bool>,
    slot_of: Vec<u32>,
    stats: ResolverStats,
}

impl AggregatedResolver {
    /// Creates the backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SinrResolver for AggregatedResolver {
    fn kind(&self) -> ResolverKind {
        ResolverKind::Aggregated
    }

    fn resolve_into(&mut self, net: &Network, transmitters: &[usize], out: &mut Vec<Reception>) {
        out.clear();
        self.stats.rounds += 1;
        if transmitters.is_empty() {
            return;
        }
        let n = net.len();
        let p = net.params();
        mark_transmitters(n, transmitters, &mut self.is_tx, &mut self.slot_of);
        let mut field =
            InterferenceField::build(net.points(), net.powers(), transmitters, p.range());
        for u in 0..n {
            if self.is_tx[u] {
                continue; // half-duplex
            }
            let Some((v, s1, i_low)) = candidate_signals(net, field.grid(), u) else {
                continue;
            };
            self.stats.candidates += 1;
            if s1 < p.beta * (p.noise + i_low) {
                self.stats.short_circuited += 1;
                continue;
            }
            if field.decide(net.points(), net.powers(), p, net.pos(u), v, s1) {
                out.push(Reception {
                    receiver: u,
                    sender: v,
                    slot: self.slot_of[v] as usize,
                });
            }
        }
        let fs = field.stats();
        self.stats.residual_decided += fs.residual_decided + fs.exhausted;
        self.stats.exact_fallbacks += fs.exact_fallbacks;
    }

    fn stats(&self) -> ResolverStats {
        self.stats
    }
}

/// Resolves one round with the naive oracle (shorthand for tests and
/// auditing).
pub fn resolve_naive(net: &Network, transmitters: &[usize]) -> Vec<Reception> {
    NaiveResolver::new().resolve(net, transmitters)
}

/// Total received power (noise excluded) at every node for a transmitter
/// set — the quantity a **carrier-sensing** radio would measure. This is a
/// *model feature* the paper's pure setting forbids; it exists here for
/// the extension experiments (the paper's conclusion names carrier sensing
/// as an open direction).
pub fn sensed_power(net: &Network, transmitters: &[usize]) -> Vec<f64> {
    (0..net.len())
        .map(|u| {
            transmitters
                .iter()
                .filter(|&&w| w != u)
                .map(|&w| net.signal_from(w, net.pos(w).dist(net.pos(u))))
                .sum()
        })
        .collect()
}

/// Computes `SINR(v, u, T)` literally per Eq. (1) of the paper (diagnostic
/// helper; `v` must be in `transmitters`).
pub fn sinr(net: &Network, v: usize, u: usize, transmitters: &[usize]) -> f64 {
    let p = net.params();
    debug_assert!(transmitters.contains(&v));
    let s = net.signal_from(v, net.pos(v).dist(net.pos(u)));
    let interference: f64 = transmitters
        .iter()
        .filter(|&&w| w != v)
        .map(|&w| net.signal_from(w, net.pos(w).dist(net.pos(u))))
        .sum();
    s / (p.noise + interference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;
    use crate::rng::Rng64;
    use crate::SinrParams;

    fn net_of(points: Vec<Point>) -> Network {
        Network::builder(points).build().unwrap()
    }

    fn backends() -> Vec<Box<dyn SinrResolver>> {
        ResolverKind::ALL.iter().map(|k| k.build()).collect()
    }

    #[test]
    fn lone_transmitter_reaches_exactly_its_range() {
        let net = net_of(vec![
            Point::new(0.0, 0.0),   // transmitter
            Point::new(0.999, 0.0), // inside range
            Point::new(1.001, 0.0), // outside range
        ]);
        for r in &mut backends() {
            let got = r.resolve(&net, &[0]);
            assert_eq!(
                got,
                vec![Reception {
                    receiver: 1,
                    sender: 0,
                    slot: 0
                }],
                "backend {}",
                r.kind()
            );
        }
    }

    #[test]
    fn transmitters_do_not_receive() {
        let net = net_of(vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)]);
        for r in &mut backends() {
            let got = r.resolve(&net, &[0, 1]);
            assert!(
                got.is_empty(),
                "{}: both transmit, nobody listens",
                r.kind()
            );
        }
    }

    #[test]
    fn two_distant_transmitters_interfere_at_boundary() {
        // Receiver at midpoint of two transmitters 1.8 apart: each signal
        // arrives at distance 0.9; equal signals cannot beat beta > 1.
        let net = net_of(vec![
            Point::new(0.0, 0.0),
            Point::new(1.8, 0.0),
            Point::new(0.9, 0.0),
        ]);
        for r in &mut backends() {
            assert!(r.resolve(&net, &[0, 1]).is_empty(), "backend {}", r.kind());
        }
    }

    #[test]
    fn close_transmitter_beats_distant_interferer() {
        // Sender 0.1 from receiver, interferer 1.9 away: SINR is huge.
        let net = net_of(vec![
            Point::new(0.0, 0.0), // sender
            Point::new(2.0, 0.0), // interferer
            Point::new(0.1, 0.0), // receiver
        ]);
        for r in &mut backends() {
            let got = r.resolve(&net, &[0, 1]);
            assert_eq!(
                got,
                vec![Reception {
                    receiver: 2,
                    sender: 0,
                    slot: 0
                }],
                "backend {}",
                r.kind()
            );
        }
    }

    #[test]
    fn sinr_matches_reception_threshold() {
        let net = net_of(vec![
            Point::new(0.0, 0.0),
            Point::new(0.7, 0.0),
            Point::new(1.5, 0.0),
        ]);
        let tx = [0, 2];
        let s = sinr(&net, 0, 1, &tx);
        for r in &mut backends() {
            let received = r.resolve(&net, &tx).iter().any(|x| x.receiver == 1);
            assert_eq!(received, s >= net.params().beta, "backend {}", r.kind());
        }
    }

    #[test]
    fn all_backends_match_naive_on_random_instances() {
        let mut rng = Rng64::new(2024);
        for trial in 0..30 {
            let n = 20 + trial * 7;
            let side = 4.0;
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.range_f64(0.0, side), rng.range_f64(0.0, side)))
                .collect();
            let net = Network::builder(pts)
                .params(SinrParams::normalized(
                    2.5 + rng.next_f64() * 2.0,
                    1.2 + rng.next_f64(),
                    1.0,
                    0.2,
                ))
                .build()
                .unwrap();
            let k = 1 + rng.range_usize(n);
            let mut all: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut all);
            all.truncate(k);
            let mut naive = resolve_naive(&net, &all);
            naive.sort_by_key(|r| r.receiver);
            for kind in [ResolverKind::Grid, ResolverKind::Aggregated] {
                let mut got = kind.build().resolve(&net, &all);
                got.sort_by_key(|r| r.receiver);
                assert_eq!(
                    got, naive,
                    "trial {trial}: {kind} and naive resolvers disagree"
                );
            }
        }
    }

    #[test]
    fn all_backends_match_naive_under_heterogeneous_power() {
        let mut rng = Rng64::new(4040);
        for trial in 0..25 {
            let n = 15 + trial * 9;
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.range_f64(0.0, 4.0), rng.range_f64(0.0, 4.0)))
                .collect();
            let base = SinrParams::default().power;
            // Power spread of up to 8x: ranges up to 2 under alpha = 3.
            let powers: Vec<f64> = (0..n)
                .map(|_| base * (1.0 + 7.0 * rng.next_f64()))
                .collect();
            let net = Network::builder(pts).powers(powers).build().unwrap();
            assert!(!net.has_uniform_power());
            let tx: Vec<usize> = (0..n).filter(|_| rng.chance(0.25)).collect();
            let mut naive = resolve_naive(&net, &tx);
            naive.sort_by_key(|r| r.receiver);
            for kind in [ResolverKind::Grid, ResolverKind::Aggregated] {
                let mut got = kind.build().resolve(&net, &tx);
                got.sort_by_key(|r| r.receiver);
                assert_eq!(
                    got, naive,
                    "trial {trial}: {kind} disagrees with naive under heterogeneous power"
                );
            }
        }
    }

    #[test]
    fn strong_far_transmitter_beats_a_nearer_weak_one() {
        // Receiver at x=1.0; weak transmitter at 0.8 (d=0.2), strong one at
        // 2.0 (d=1.0) with 64x the power: the strong one's signal wins
        // 128/1 vs 2/0.008 = 250 — nearest still wins here, so instead make
        // the strong one the decodable sender by silencing geometry:
        // weak at d=0.9 → signal 2/0.729 ≈ 2.74; strong at d=1.0 → 128.
        let p = SinrParams::default();
        let net = Network::builder(vec![
            Point::new(0.1, 0.0), // weak tx, d = 0.9
            Point::new(2.0, 0.0), // strong tx, d = 1.0
            Point::new(1.0, 0.0), // receiver
        ])
        .powers(vec![p.power, 64.0 * p.power, p.power])
        .params(p)
        .build()
        .unwrap();
        // Strongest ≠ nearest: the grid fast path would pick node 0 and
        // reject; the strongest-signal path must decode node 1.
        let naive = resolve_naive(&net, &[0, 1]);
        assert_eq!(naive.len(), 1);
        assert_eq!(naive[0].sender, 1, "the high-power transmitter decodes");
        for r in &mut backends() {
            assert_eq!(r.resolve(&net, &[0, 1]), naive, "backend {}", r.kind());
        }
    }

    #[test]
    fn at_most_one_sender_decoded_per_receiver() {
        let mut rng = Rng64::new(7);
        let pts: Vec<Point> = (0..120)
            .map(|_| Point::new(rng.range_f64(0.0, 3.0), rng.range_f64(0.0, 3.0)))
            .collect();
        let net = net_of(pts);
        let tx: Vec<usize> = (0..120).filter(|_| rng.chance(0.3)).collect();
        for r in &mut backends() {
            let rec = r.resolve(&net, &tx);
            let mut seen = std::collections::HashSet::new();
            for x in &rec {
                assert!(
                    seen.insert(x.receiver),
                    "{}: receiver {} decoded twice",
                    r.kind(),
                    x.receiver
                );
                assert_eq!(tx[x.slot], x.sender, "slot must index the sender");
            }
        }
    }

    #[test]
    fn empty_transmitter_set_yields_no_receptions() {
        let net = net_of(vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)]);
        for r in &mut backends() {
            assert!(r.resolve(&net, &[]).is_empty(), "backend {}", r.kind());
        }
    }

    #[test]
    fn resolver_stats_track_work() {
        let mut rng = Rng64::new(11);
        let pts: Vec<Point> = (0..80)
            .map(|_| Point::new(rng.range_f64(0.0, 3.0), rng.range_f64(0.0, 3.0)))
            .collect();
        let net = net_of(pts);
        let tx: Vec<usize> = (0..80).filter(|_| rng.chance(0.25)).collect();
        let mut agg = AggregatedResolver::new();
        let _ = agg.resolve(&net, &tx);
        let st = agg.stats();
        assert_eq!(st.rounds, 1);
        assert_eq!(st.exact_sums, 0, "aggregated never does full naive sums");
        assert_eq!(
            st.candidates,
            st.short_circuited + st.residual_decided + st.exact_fallbacks,
            "every candidate is accounted for exactly once"
        );
        let mut grid = GridResolver::new();
        let _ = grid.resolve(&net, &tx);
        let gst = grid.stats();
        assert_eq!(gst.candidates, st.candidates, "same candidate set");
        assert_eq!(gst.exact_sums + gst.short_circuited, gst.candidates);
    }

    #[test]
    fn resolver_kind_parses_and_prints() {
        for kind in ResolverKind::ALL {
            assert_eq!(kind.name().parse::<ResolverKind>().unwrap(), kind);
            assert_eq!(format!("{kind}"), kind.name());
            assert_eq!(kind.build().kind(), kind);
        }
        assert_eq!(
            "AGG".parse::<ResolverKind>().unwrap(),
            ResolverKind::Aggregated
        );
        assert!("fft".parse::<ResolverKind>().is_err());
    }

    #[test]
    fn sensed_power_excludes_own_signal_and_decays() {
        let net = net_of(vec![
            Point::new(0.0, 0.0),
            Point::new(0.5, 0.0),
            Point::new(2.0, 0.0),
        ]);
        let p = sensed_power(&net, &[0]);
        assert_eq!(p[0], 0.0, "a node does not sense its own transmission");
        assert!(p[1] > p[2], "closer listener senses more power");
        let both = sensed_power(&net, &[0, 1]);
        assert!(both[2] > p[2], "more transmitters, more power");
    }
}
