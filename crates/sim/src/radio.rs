//! SINR reception resolution — the paper's Eq. (1) — behind pluggable
//! resolver backends.
//!
//! Given the set `T` of nodes transmitting in a round, node `u` (which must
//! itself be silent: half-duplex) receives the message of `v ∈ T` iff
//!
//! ```text
//! SINR(v, u, T) = signal(d(v,u)) / (noise + Σ_{w ∈ T, w≠v} signal(d(w,u))) ≥ β.
//! ```
//!
//! Because `β > 1`, at most one transmitter can be decoded by any receiver,
//! and it is necessarily the one with the strongest signal (the nearest,
//! under uniform power). Reception resolution is the hot path of every
//! experiment binary, so it sits behind the [`SinrResolver`] trait with
//! four interchangeable backends ([`ResolverKind`]):
//!
//! **Heterogeneous power.** Nodes may transmit at per-node powers
//! ([`Network::powers`](crate::Network::powers)); signals are then
//! `P_w / d^α` via [`Network::signal_from`](crate::Network::signal_from).
//! The geometric backends keep their exactness: any decodable transmitter
//! must satisfy `P_w/d^α ≥ β·noise`, i.e. lie within
//! [`Network::max_range`](crate::Network::max_range) of the receiver, so
//! the candidate search stays a bounded disk query — but the decodable
//! transmitter is the *strongest-signal* one, which under heterogeneous
//! power need not be the nearest, so the candidate is found by a
//! strongest-two scan instead of the nearest-two distance query (the
//! uniform-power fast path is untouched).
//!
//! * [`NaiveResolver`] — the oracle. Evaluates Eq. (1) literally in
//!   `O(n·|T|)`; every other backend must match it **exactly**.
//! * [`GridResolver`] — grid short-circuit. Two exact facts cut the work:
//!   (1) a decodable transmitter lies within the transmission range
//!   (`signal(d) ≥ β·noise` is necessary), so candidates come from a grid
//!   query of radius `range`; (2) the second-nearest transmitter alone
//!   contributes `signal(d₂)` interference, so a receiver failing
//!   `signal(d₁) ≥ β·(noise + signal(d₂))` is skipped without any summing.
//!   Survivors still pay an exact `O(|T|)` interference sum.
//! * [`AggregatedResolver`] — cell-aggregated interference. Builds a
//!   per-round [`InterferenceField`](crate::field::InterferenceField):
//!   interference is accumulated as exact cell-grouped partial sums ring by
//!   ring around the receiver, and everything farther than `k` cells is
//!   covered by a single count-based residual bound. Because the reception
//!   test is monotone in the interference, a receiver is accepted or
//!   rejected as soon as the bound is conclusive; the rare inconclusive
//!   case falls back to the exact far-field sum. Surviving receivers
//!   therefore pay `O(occupied cells nearby) + O(1)` instead of `O(|T|)` —
//!   and the returned receptions are **exactly** the naive ones (the cell
//!   sums are exact partial sums, not approximations; see
//!   [`crate::field`] for the full argument).
//! * [`ParallelResolver`] — the aggregated strategy, sharded and
//!   persistent. The receiver scan is split into fixed contiguous index
//!   chunks resolved on a scoped thread pool (`DCLUSTER_THREADS`, default
//!   [`std::thread::available_parallelism`] capped at 8) against one shared
//!   immutable [`InterferenceField`]; per-chunk receptions are concatenated
//!   in chunk order, so the output is **byte-identical** to the sequential
//!   backends for every thread count (each chunk emits its receivers in
//!   ascending order, and counters merge commutatively). Across rounds the
//!   field is kept in a [`FieldCache`] keyed on the network's mutation
//!   stamp and patched with the sparse transmitter diff instead of rebuilt
//!   — exactness is preserved because the maintained subset grid is
//!   structurally identical to a rebuilt one (audited by
//!   [`SinrResolver::audit`]).
//!
//! Equivalence of all backends is enforced by property tests on
//! random, clumped and grid-boundary deployments
//! (`crates/sim/tests/radio_equivalence.rs`).

use crate::field::{FieldStats, InterferenceField};
use crate::grid::Grid;
use crate::network::Network;
use dcluster_obs::CacheOp;
use std::fmt;
use std::str::FromStr;

/// A successful reception in one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reception {
    /// Receiving node (index).
    pub receiver: usize,
    /// Transmitting node (index).
    pub sender: usize,
    /// Position of `sender` in the round's transmitter slice (lets callers
    /// look up the transmitted message without a search).
    pub slot: usize,
}

/// The available [`SinrResolver`] backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResolverKind {
    /// Literal Eq. (1): `O(n·|T|)` oracle.
    Naive,
    /// Grid candidate search + second-nearest short-circuit + exact sums.
    Grid,
    /// Grid short-circuit + per-round cell-aggregated interference field.
    Aggregated,
    /// The aggregated strategy with a sharded receiver scan and a
    /// persistent, sparsely-patched interference field. Byte-identical
    /// output for every thread count.
    Parallel,
}

impl ResolverKind {
    /// Every backend, in increasing order of sophistication.
    pub const ALL: [ResolverKind; 4] = [
        ResolverKind::Naive,
        ResolverKind::Grid,
        ResolverKind::Aggregated,
        ResolverKind::Parallel,
    ];

    /// Stable lower-case name (CLI flags, traces, CSV columns).
    pub fn name(self) -> &'static str {
        match self {
            ResolverKind::Naive => "naive",
            ResolverKind::Grid => "grid",
            ResolverKind::Aggregated => "aggregated",
            ResolverKind::Parallel => "parallel",
        }
    }

    /// The backend named by the `DCLUSTER_RESOLVER` environment variable:
    /// `Ok(None)` when unset, and the parse error — naming every valid
    /// backend — when set to an unknown name. A typo is never silently
    /// ignored.
    pub fn from_env() -> Result<Option<ResolverKind>, String> {
        // lint:allow(D4, reason = "documented override: DCLUSTER_RESOLVER")
        match std::env::var("DCLUSTER_RESOLVER") {
            Ok(v) => v
                .parse()
                .map(Some)
                .map_err(|e| format!("DCLUSTER_RESOLVER: {e}")),
            Err(_) => Ok(None),
        }
    }

    /// Instantiates the backend.
    pub fn build(self) -> Box<dyn SinrResolver> {
        match self {
            ResolverKind::Naive => Box::new(NaiveResolver::new()),
            ResolverKind::Grid => Box::new(GridResolver::new()),
            ResolverKind::Aggregated => Box::new(AggregatedResolver::new()),
            ResolverKind::Parallel => Box::new(ParallelResolver::new()),
        }
    }
}

impl fmt::Display for ResolverKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ResolverKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "naive" => Ok(ResolverKind::Naive),
            "grid" => Ok(ResolverKind::Grid),
            "aggregated" | "agg" => Ok(ResolverKind::Aggregated),
            "parallel" | "par" => Ok(ResolverKind::Parallel),
            other => Err(format!(
                "unknown resolver '{other}' (expected naive|grid|aggregated|parallel)"
            )),
        }
    }
}

/// Cumulative per-backend work counters (all backends fill `rounds` and
/// `candidates`; the rest apply where meaningful).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolverStats {
    /// Rounds resolved.
    pub rounds: u64,
    /// Decode candidates: receivers with some transmitter within range for
    /// the geometric backends; decoded receivers for the naive oracle
    /// (which has no candidate search).
    pub candidates: u64,
    /// Candidates killed by the second-nearest short-circuit.
    pub short_circuited: u64,
    /// Exact full-interference sums over all of `T` (naive: one per
    /// listener; grid: one per surviving candidate; aggregated: 0).
    pub exact_sums: u64,
    /// Aggregated only: candidates decided by cell sums + residual bound.
    pub residual_decided: u64,
    /// Aggregated only: candidates that needed the exact far-field
    /// fallback.
    pub exact_fallbacks: u64,
}

impl ResolverStats {
    /// Folds another backend's counters into this one (the maintenance
    /// driver sums per-epoch engines into run totals for the report).
    pub fn absorb(&mut self, other: &ResolverStats) {
        self.rounds += other.rounds;
        self.candidates += other.candidates;
        self.short_circuited += other.short_circuited;
        self.exact_sums += other.exact_sums;
        self.residual_decided += other.residual_decided;
        self.exact_fallbacks += other.exact_fallbacks;
    }
}

/// A reception-resolution backend: given a round's transmitter set,
/// produce the exact reception set of Eq. (1).
///
/// All backends are **observationally identical** — they differ only in
/// how much work they do. Implementations may keep scratch allocations
/// (hence `&mut self`) and must be deterministic: the same network and
/// transmitter slice always yield the same receptions in the same order
/// (sorted by receiver index).
pub trait SinrResolver: fmt::Debug {
    /// Which backend this is (recorded in traces and stats).
    fn kind(&self) -> ResolverKind;

    /// Resolves one round into `out` (cleared first), sorted by receiver.
    fn resolve_into(&mut self, net: &Network, transmitters: &[usize], out: &mut Vec<Reception>);

    /// Convenience wrapper allocating a fresh output vector.
    fn resolve(&mut self, net: &Network, transmitters: &[usize]) -> Vec<Reception> {
        let mut out = Vec::new();
        self.resolve_into(net, transmitters, &mut out);
        out
    }

    /// Cumulative work counters.
    fn stats(&self) -> ResolverStats;

    /// Verifies any incrementally-maintained internal state against a
    /// rebuild from scratch (backends without such state trivially pass).
    /// The persistent backends compare their cached interference field's
    /// subset grid with a fresh build over the same transmitter set —
    /// structural identity there is exactly what guarantees
    /// rebuild-identical decisions.
    fn audit(&self, net: &Network) -> Result<(), String> {
        let _ = net;
        Ok(())
    }

    /// What the persistent field cache did in the most recent
    /// [`SinrResolver::resolve_into`] call: `None` for backends without a
    /// cache (or when the round had no transmitters, so the cache was
    /// never consulted). Feeds the engine's per-round trace events.
    fn last_cache_op(&self) -> Option<CacheOp> {
        None
    }
}

/// A cross-round cache of one [`InterferenceField`], keyed on the owning
/// network's mutation [stamp](Network::stamp). When the stamp still
/// matches and the transmitter set is sorted ascending (as every
/// engine-produced set is), the next round's field is obtained by patching
/// the cached one with the sparse transmitter diff — `O(changes)` instead
/// of an `O(|T|)` rebuild — and is *exactly* the field a rebuild would
/// produce: the subset grid keeps its members sorted, and the sorted
/// transmitter list keeps the exact-fallback summation order. A network
/// mutation, an unsorted transmitter slice, or a diff bigger than the
/// rebuild cost all fall back to a fresh build.
#[derive(Debug, Default)]
pub struct FieldCache {
    /// Network stamp the cached field was built/patched against
    /// (0 = nothing cached; real stamps start at 1).
    stamp: u64,
    field: Option<InterferenceField>,
    /// Scratch for the diff walk (kept to avoid per-round allocation).
    removals: Vec<usize>,
    inserts: Vec<usize>,
    /// What the latest [`FieldCache::obtain`] did (cleared by
    /// [`FieldCache::reset_last_op`] at the top of each resolve, so
    /// transmitter-less rounds read as "cache not consulted").
    last_op: Option<CacheOp>,
}

impl FieldCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the field for this round's `(net, transmitters)`: patched
    /// from the cached round when that is sound and cheaper, rebuilt
    /// otherwise.
    pub fn obtain(&mut self, net: &Network, transmitters: &[usize]) -> &InterferenceField {
        let sorted = transmitters.windows(2).all(|w| w[0] < w[1]);
        if sorted && self.stamp == net.stamp() && self.try_patch(net, transmitters) {
            self.last_op = Some(CacheOp::Patched {
                inserts: self.inserts.len(),
                removals: self.removals.len(),
            });
            return self.field.as_ref().expect("patched field is cached"); // lint:allow(P1, reason = "cache hit just verified by try_patch")
        }
        // Rebuild. An unsorted transmitter slice must not seed later
        // patches (patching keeps the list sorted, which would silently
        // reorder the fallback summation), so it leaves the cache unkeyed.
        self.last_op = Some(CacheOp::Rebuilt);
        self.stamp = if sorted { net.stamp() } else { 0 };
        self.field.insert(InterferenceField::build(
            net.points(),
            net.powers(),
            transmitters,
            net.params().range(),
        ))
    }

    /// Diffs the cached transmitter set against `transmitters` (both sorted
    /// ascending) and applies the sparse patch when it is cheaper than a
    /// rebuild. Returns whether the cached field now covers `transmitters`.
    fn try_patch(&mut self, net: &Network, transmitters: &[usize]) -> bool {
        let Some(field) = self.field.as_mut() else {
            return false;
        };
        let old = field.tx();
        self.removals.clear();
        self.inserts.clear();
        let (mut i, mut j) = (0, 0);
        while i < old.len() && j < transmitters.len() {
            let (a, b) = (old[i] as usize, transmitters[j]);
            match a.cmp(&b) {
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    self.removals.push(a);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    self.inserts.push(b);
                    j += 1;
                }
            }
        }
        self.removals.extend(old[i..].iter().map(|&t| t as usize));
        self.inserts.extend_from_slice(&transmitters[j..]);
        // Patch only while it beats the O(|T|) rebuild.
        if (self.removals.len() + self.inserts.len()) * 2 > old.len() + transmitters.len() {
            return false;
        }
        for &t in &self.removals {
            field.remove_transmitter(net.points(), t);
        }
        for &t in &self.inserts {
            field.insert_transmitter(net.points(), net.powers(), t);
        }
        true
    }

    /// What the latest [`FieldCache::obtain`] since the last reset did.
    pub fn last_op(&self) -> Option<CacheOp> {
        self.last_op
    }

    /// Clears the patch/rebuild record; called at the top of each resolve
    /// so rounds that never consult the cache report `None`.
    pub fn reset_last_op(&mut self) {
        self.last_op = None;
    }

    /// Audits the cached field (if it is still keyed to `net`) against a
    /// fresh rebuild over its own transmitter set.
    pub fn audit(&self, net: &Network) -> Result<(), String> {
        match &self.field {
            Some(field) if self.stamp == net.stamp() => {
                field.audit_against_rebuild(net.points(), net.powers())
            }
            _ => Ok(()), // nothing cached, or stale: next round rebuilds
        }
    }
}

/// Candidate sender at receiver position `u`: the strongest and
/// second-strongest received signals over the transmitters stored in
/// `grid`, scanning the disk of radius `r` (the network's
/// [`max_range`](Network::max_range), which contains every decodable
/// transmitter). Returns `(sender, s1, s2)` with `s2 = 0.0` when a single
/// candidate is in range. Ties keep the first-scanned transmitter — the
/// scan order is deterministic, and tied top signals can never be decoded
/// anyway (`β > 1`).
fn two_strongest_within(net: &Network, grid: &Grid, u: crate::Point, r: f64) -> CandidateSignals {
    let mut best: Option<(usize, f64)> = None;
    let mut second = 0.0f64;
    for w in grid.within(net.points(), u, r) {
        let s = net.signal_from(w, net.pos(w).dist(u));
        match best {
            None => best = Some((w, s)),
            Some((_, bs)) if s > bs => {
                second = bs;
                best = Some((w, s));
            }
            Some(_) => second = second.max(s),
        }
    }
    best.map(|(w, s1)| (w, s1, second))
}

/// `(sender, strongest signal, second-strongest signal)` or `None` when no
/// transmitter is in range.
type CandidateSignals = Option<(usize, f64, f64)>;

/// Shared candidate search of the geometric backends: nearest-two distance
/// query under uniform power (bit-identical to the classic path),
/// strongest-two signal scan under heterogeneous power.
fn candidate_signals(net: &Network, tx_grid: &Grid, u: usize) -> CandidateSignals {
    let r = net.max_range();
    if net.has_uniform_power() {
        let p = net.params();
        let tn = tx_grid.two_nearest_within(net.points(), net.pos(u), r, None)?;
        let s2 = if tn.d2.is_finite() {
            p.signal(tn.d2)
        } else {
            0.0
        };
        Some((tn.nearest, p.signal(tn.d1), s2))
    } else {
        two_strongest_within(net, tx_grid, net.pos(u), r)
    }
}

/// Marks `transmitters` in the reusable `is_tx`/`slot_of` scratch vectors.
fn mark_transmitters(
    n: usize,
    transmitters: &[usize],
    is_tx: &mut Vec<bool>,
    slot_of: &mut Vec<u32>,
) {
    is_tx.clear();
    is_tx.resize(n, false);
    slot_of.clear();
    slot_of.resize(n, u32::MAX);
    for (slot, &t) in transmitters.iter().enumerate() {
        debug_assert!(!is_tx[t], "node {t} listed twice as transmitter");
        is_tx[t] = true;
        slot_of[t] = slot as u32;
    }
}

/// Reference backend: evaluates Eq. (1) literally, `O(n·|T|)`, no
/// geometric shortcuts. The oracle every other backend is tested against.
#[derive(Debug, Default)]
pub struct NaiveResolver {
    is_tx: Vec<bool>,
    stats: ResolverStats,
}

impl NaiveResolver {
    /// Creates the backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SinrResolver for NaiveResolver {
    fn kind(&self) -> ResolverKind {
        ResolverKind::Naive
    }

    fn resolve_into(&mut self, net: &Network, transmitters: &[usize], out: &mut Vec<Reception>) {
        out.clear();
        self.stats.rounds += 1;
        if transmitters.is_empty() {
            return;
        }
        let p = net.params();
        self.is_tx.clear();
        self.is_tx.resize(net.len(), false);
        for &t in transmitters {
            debug_assert!(!self.is_tx[t], "node {t} listed twice as transmitter");
            self.is_tx[t] = true;
        }
        for (u, _) in self.is_tx.iter().enumerate().filter(|&(_, &tx)| !tx) {
            self.stats.exact_sums += 1;
            let total: f64 = transmitters
                .iter()
                .map(|&w| net.signal_from(w, net.pos(w).dist(net.pos(u))))
                .sum();
            let mut decoded: Option<(usize, usize)> = None;
            for (slot, &v) in transmitters.iter().enumerate() {
                let s = net.signal_from(v, net.pos(v).dist(net.pos(u)));
                if s >= p.beta * (p.noise + (total - s)) {
                    debug_assert!(decoded.is_none(), "beta > 1 forbids two decodable senders");
                    decoded = Some((v, slot));
                }
            }
            if let Some((v, slot)) = decoded {
                self.stats.candidates += 1;
                out.push(Reception {
                    receiver: u,
                    sender: v,
                    slot,
                });
            }
        }
    }

    fn stats(&self) -> ResolverStats {
        self.stats
    }
}

/// Grid-accelerated backend (the workspace's original fast resolver):
/// candidate search and second-nearest short-circuit via the transmitter
/// subset grid, then an exact `O(|T|)` sum per surviving candidate.
#[derive(Debug, Default)]
pub struct GridResolver {
    is_tx: Vec<bool>,
    slot_of: Vec<u32>,
    stats: ResolverStats,
}

impl GridResolver {
    /// Creates the backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SinrResolver for GridResolver {
    fn kind(&self) -> ResolverKind {
        ResolverKind::Grid
    }

    fn resolve_into(&mut self, net: &Network, transmitters: &[usize], out: &mut Vec<Reception>) {
        out.clear();
        self.stats.rounds += 1;
        if transmitters.is_empty() {
            return;
        }
        let n = net.len();
        let p = net.params();
        mark_transmitters(n, transmitters, &mut self.is_tx, &mut self.slot_of);
        let tx_grid = Grid::build_subset(net.points(), transmitters, p.range());
        for u in 0..n {
            if self.is_tx[u] {
                continue; // half-duplex: transmitters do not receive
            }
            let Some((v, s1, i_low)) = candidate_signals(net, &tx_grid, u) else {
                continue;
            };
            self.stats.candidates += 1;
            // Short-circuit: interference ≥ the second-strongest signal.
            if s1 < p.beta * (p.noise + i_low) {
                self.stats.short_circuited += 1;
                continue;
            }
            // Exact check with total interference over all transmitters.
            self.stats.exact_sums += 1;
            let mut interference = -s1; // subtract sender's own signal below
            for &w in transmitters {
                interference += net.signal_from(w, net.pos(w).dist(net.pos(u)));
            }
            if s1 >= p.beta * (p.noise + interference) {
                out.push(Reception {
                    receiver: u,
                    sender: v,
                    slot: self.slot_of[v] as usize,
                });
            }
        }
    }

    fn stats(&self) -> ResolverStats {
        self.stats
    }
}

/// Cell-aggregated backend: per-round [`InterferenceField`] with exact
/// cell-grouped partial sums and a global residual bound. Scales to the
/// 10⁵–10⁶-node deployments the grid backend's per-survivor `O(|T|)` sums
/// cannot reach.
#[derive(Debug, Default)]
pub struct AggregatedResolver {
    is_tx: Vec<bool>,
    slot_of: Vec<u32>,
    stats: ResolverStats,
    /// `Some` once persistence is enabled: the interference field is then
    /// kept across rounds and patched with the sparse transmitter diff.
    cache: Option<FieldCache>,
}

impl AggregatedResolver {
    /// Creates the backend (field rebuilt from scratch every round — the
    /// historical behavior).
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables cross-round field persistence (see [`FieldCache`]).
    /// Receptions are unchanged; only the per-round build cost is.
    pub fn with_persistence(mut self) -> Self {
        self.cache = Some(FieldCache::new());
        self
    }
}

impl SinrResolver for AggregatedResolver {
    fn kind(&self) -> ResolverKind {
        ResolverKind::Aggregated
    }

    fn resolve_into(&mut self, net: &Network, transmitters: &[usize], out: &mut Vec<Reception>) {
        out.clear();
        self.stats.rounds += 1;
        if let Some(cache) = self.cache.as_mut() {
            cache.reset_last_op();
        }
        if transmitters.is_empty() {
            return;
        }
        let n = net.len();
        let p = net.params();
        mark_transmitters(n, transmitters, &mut self.is_tx, &mut self.slot_of);
        let fresh; // keeps the non-persistent field alive past the match
        let field: &InterferenceField = match self.cache.as_mut() {
            Some(cache) => cache.obtain(net, transmitters),
            None => {
                fresh =
                    InterferenceField::build(net.points(), net.powers(), transmitters, p.range());
                &fresh
            }
        };
        let mut fs = FieldStats::default();
        for u in 0..n {
            if self.is_tx[u] {
                continue; // half-duplex
            }
            let Some((v, s1, i_low)) = candidate_signals(net, field.grid(), u) else {
                continue;
            };
            self.stats.candidates += 1;
            if s1 < p.beta * (p.noise + i_low) {
                self.stats.short_circuited += 1;
                continue;
            }
            if field.decide_at(net.points(), net.powers(), p, net.pos(u), v, s1, &mut fs) {
                out.push(Reception {
                    receiver: u,
                    sender: v,
                    slot: self.slot_of[v] as usize,
                });
            }
        }
        self.stats.residual_decided += fs.residual_decided + fs.exhausted;
        self.stats.exact_fallbacks += fs.exact_fallbacks;
    }

    fn stats(&self) -> ResolverStats {
        self.stats
    }

    fn audit(&self, net: &Network) -> Result<(), String> {
        match &self.cache {
            Some(cache) => cache.audit(net),
            None => Ok(()),
        }
    }

    fn last_cache_op(&self) -> Option<CacheOp> {
        self.cache.as_ref().and_then(|c| c.last_op())
    }
}

/// How many worker threads the parallel backend uses: `DCLUSTER_THREADS`
/// when set, else [`std::thread::available_parallelism`] capped at 8.
///
/// # Panics
///
/// Panics when `DCLUSTER_THREADS` is set to anything but a positive
/// integer — a typo must not silently fall back to a default.
fn threads_from_env() -> u32 {
    // lint:allow(D4, reason = "documented override: DCLUSTER_THREADS")
    match std::env::var("DCLUSTER_THREADS") {
        Ok(v) => match v.trim().parse::<u32>() {
            Ok(t) if t >= 1 => t,
            _ => panic!("DCLUSTER_THREADS: expected a positive integer, got '{v}'"), // lint:allow(P1, reason = "documented: a bad DCLUSTER_THREADS must fail loudly, not default")
        },
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get() as u32)
            .unwrap_or(1)
            .min(8),
    }
}

/// Per-chunk output slot of the parallel receiver scan. Chunks are fixed
/// contiguous receiver ranges, so concatenating the slots in chunk order
/// reproduces the sequential (ascending-receiver) output exactly,
/// independent of how many threads raced over them.
#[derive(Debug, Default)]
struct ChunkOut {
    recs: Vec<Reception>,
    field_stats: FieldStats,
    candidates: u64,
    short_circuited: u64,
}

/// Parallel backend: the aggregated strategy with the receiver scan
/// sharded over a scoped thread pool and the interference field kept
/// across rounds (see the module docs and [`FieldCache`]). Deterministic
/// and byte-identical to [`AggregatedResolver`] for every thread count —
/// on a single-core host it degrades gracefully to the sequential scan
/// (the 1-thread path runs inline, no spawn, no locks) and still keeps
/// the persistence win.
#[derive(Debug)]
pub struct ParallelResolver {
    is_tx: Vec<bool>,
    slot_of: Vec<u32>,
    stats: ResolverStats,
    pool: scoped_threadpool::Pool,
    cache: Option<FieldCache>,
}

impl ParallelResolver {
    /// Creates the backend with [`threads_from_env`]'s thread count and
    /// persistence enabled.
    ///
    /// # Panics
    ///
    /// Panics when `DCLUSTER_THREADS` is set to a non-integer.
    pub fn new() -> Self {
        Self::with_threads(threads_from_env())
    }

    /// Creates the backend with an explicit thread count (≥ 1).
    pub fn with_threads(threads: u32) -> Self {
        Self {
            is_tx: Vec::new(),
            slot_of: Vec::new(),
            stats: ResolverStats::default(),
            pool: scoped_threadpool::Pool::new(threads.max(1)),
            cache: Some(FieldCache::new()),
        }
    }

    /// Disables cross-round field persistence (the field is then rebuilt
    /// every round, like the plain aggregated backend) — for benchmarking
    /// the two effects separately.
    pub fn without_persistence(mut self) -> Self {
        self.cache = None;
        self
    }

    /// The worker thread count.
    pub fn threads(&self) -> u32 {
        self.pool.thread_count()
    }
}

impl Default for ParallelResolver {
    fn default() -> Self {
        Self::new()
    }
}

impl SinrResolver for ParallelResolver {
    fn kind(&self) -> ResolverKind {
        ResolverKind::Parallel
    }

    fn resolve_into(&mut self, net: &Network, transmitters: &[usize], out: &mut Vec<Reception>) {
        out.clear();
        self.stats.rounds += 1;
        if let Some(cache) = self.cache.as_mut() {
            cache.reset_last_op();
        }
        if transmitters.is_empty() {
            return;
        }
        let n = net.len();
        let p = net.params();
        mark_transmitters(n, transmitters, &mut self.is_tx, &mut self.slot_of);
        let fresh;
        let field: &InterferenceField = match self.cache.as_mut() {
            Some(cache) => cache.obtain(net, transmitters),
            None => {
                fresh =
                    InterferenceField::build(net.points(), net.powers(), transmitters, p.range());
                &fresh
            }
        };
        // Fixed contiguous receiver chunks; a few per thread so a dense
        // pocket cannot stall the whole round on one worker. The chunking
        // never affects the output (see `ChunkOut`).
        let threads = self.pool.thread_count() as usize;
        let chunks = if threads <= 1 {
            1
        } else {
            (threads * 4).min(n.max(1))
        };
        let chunk_len = n.div_ceil(chunks);
        let mut outs: Vec<ChunkOut> = (0..chunks).map(|_| ChunkOut::default()).collect();
        let is_tx = &self.is_tx;
        let slot_of = &self.slot_of;
        self.pool.scoped(|scope| {
            for (c, chunk_out) in outs.iter_mut().enumerate() {
                let lo = c * chunk_len;
                let hi = ((c + 1) * chunk_len).min(n);
                scope.execute(move || {
                    for (u, &u_is_tx) in is_tx.iter().enumerate().take(hi).skip(lo) {
                        if u_is_tx {
                            continue; // half-duplex
                        }
                        let Some((v, s1, i_low)) = candidate_signals(net, field.grid(), u) else {
                            continue;
                        };
                        chunk_out.candidates += 1;
                        if s1 < p.beta * (p.noise + i_low) {
                            chunk_out.short_circuited += 1;
                            continue;
                        }
                        let decided = field.decide_at(
                            net.points(),
                            net.powers(),
                            p,
                            net.pos(u),
                            v,
                            s1,
                            &mut chunk_out.field_stats,
                        );
                        if decided {
                            chunk_out.recs.push(Reception {
                                receiver: u,
                                sender: v,
                                slot: slot_of[v] as usize,
                            });
                        }
                    }
                });
            }
        });
        // Deterministic merge: chunk order = ascending receiver order;
        // counters are plain sums, so the totals are chunking-invariant.
        let mut fs = FieldStats::default();
        for chunk_out in outs {
            self.stats.candidates += chunk_out.candidates;
            self.stats.short_circuited += chunk_out.short_circuited;
            fs.merge(chunk_out.field_stats);
            out.extend(chunk_out.recs);
        }
        self.stats.residual_decided += fs.residual_decided + fs.exhausted;
        self.stats.exact_fallbacks += fs.exact_fallbacks;
    }

    fn stats(&self) -> ResolverStats {
        self.stats
    }

    fn audit(&self, net: &Network) -> Result<(), String> {
        match &self.cache {
            Some(cache) => cache.audit(net),
            None => Ok(()),
        }
    }

    fn last_cache_op(&self) -> Option<CacheOp> {
        self.cache.as_ref().and_then(|c| c.last_op())
    }
}

/// Resolves one round with the naive oracle (shorthand for tests and
/// auditing).
pub fn resolve_naive(net: &Network, transmitters: &[usize]) -> Vec<Reception> {
    NaiveResolver::new().resolve(net, transmitters)
}

/// Total received power (noise excluded) at every node for a transmitter
/// set — the quantity a **carrier-sensing** radio would measure. This is a
/// *model feature* the paper's pure setting forbids; it exists here for
/// the extension experiments (the paper's conclusion names carrier sensing
/// as an open direction).
pub fn sensed_power(net: &Network, transmitters: &[usize]) -> Vec<f64> {
    (0..net.len())
        .map(|u| {
            transmitters
                .iter()
                .filter(|&&w| w != u)
                .map(|&w| net.signal_from(w, net.pos(w).dist(net.pos(u))))
                .sum()
        })
        .collect()
}

/// Computes `SINR(v, u, T)` literally per Eq. (1) of the paper (diagnostic
/// helper; `v` must be in `transmitters`).
pub fn sinr(net: &Network, v: usize, u: usize, transmitters: &[usize]) -> f64 {
    let p = net.params();
    debug_assert!(transmitters.contains(&v));
    let s = net.signal_from(v, net.pos(v).dist(net.pos(u)));
    let interference: f64 = transmitters
        .iter()
        .filter(|&&w| w != v)
        .map(|&w| net.signal_from(w, net.pos(w).dist(net.pos(u))))
        .sum();
    s / (p.noise + interference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;
    use crate::rng::Rng64;
    use crate::SinrParams;

    fn net_of(points: Vec<Point>) -> Network {
        Network::builder(points).build().unwrap()
    }

    fn backends() -> Vec<Box<dyn SinrResolver>> {
        ResolverKind::ALL.iter().map(|k| k.build()).collect()
    }

    #[test]
    fn lone_transmitter_reaches_exactly_its_range() {
        let net = net_of(vec![
            Point::new(0.0, 0.0),   // transmitter
            Point::new(0.999, 0.0), // inside range
            Point::new(1.001, 0.0), // outside range
        ]);
        for r in &mut backends() {
            let got = r.resolve(&net, &[0]);
            assert_eq!(
                got,
                vec![Reception {
                    receiver: 1,
                    sender: 0,
                    slot: 0
                }],
                "backend {}",
                r.kind()
            );
        }
    }

    #[test]
    fn transmitters_do_not_receive() {
        let net = net_of(vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)]);
        for r in &mut backends() {
            let got = r.resolve(&net, &[0, 1]);
            assert!(
                got.is_empty(),
                "{}: both transmit, nobody listens",
                r.kind()
            );
        }
    }

    #[test]
    fn two_distant_transmitters_interfere_at_boundary() {
        // Receiver at midpoint of two transmitters 1.8 apart: each signal
        // arrives at distance 0.9; equal signals cannot beat beta > 1.
        let net = net_of(vec![
            Point::new(0.0, 0.0),
            Point::new(1.8, 0.0),
            Point::new(0.9, 0.0),
        ]);
        for r in &mut backends() {
            assert!(r.resolve(&net, &[0, 1]).is_empty(), "backend {}", r.kind());
        }
    }

    #[test]
    fn close_transmitter_beats_distant_interferer() {
        // Sender 0.1 from receiver, interferer 1.9 away: SINR is huge.
        let net = net_of(vec![
            Point::new(0.0, 0.0), // sender
            Point::new(2.0, 0.0), // interferer
            Point::new(0.1, 0.0), // receiver
        ]);
        for r in &mut backends() {
            let got = r.resolve(&net, &[0, 1]);
            assert_eq!(
                got,
                vec![Reception {
                    receiver: 2,
                    sender: 0,
                    slot: 0
                }],
                "backend {}",
                r.kind()
            );
        }
    }

    #[test]
    fn sinr_matches_reception_threshold() {
        let net = net_of(vec![
            Point::new(0.0, 0.0),
            Point::new(0.7, 0.0),
            Point::new(1.5, 0.0),
        ]);
        let tx = [0, 2];
        let s = sinr(&net, 0, 1, &tx);
        for r in &mut backends() {
            let received = r.resolve(&net, &tx).iter().any(|x| x.receiver == 1);
            assert_eq!(received, s >= net.params().beta, "backend {}", r.kind());
        }
    }

    #[test]
    fn all_backends_match_naive_on_random_instances() {
        let mut rng = Rng64::new(2024);
        for trial in 0..30 {
            let n = 20 + trial * 7;
            let side = 4.0;
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.range_f64(0.0, side), rng.range_f64(0.0, side)))
                .collect();
            let net = Network::builder(pts)
                .params(SinrParams::normalized(
                    2.5 + rng.next_f64() * 2.0,
                    1.2 + rng.next_f64(),
                    1.0,
                    0.2,
                ))
                .build()
                .unwrap();
            let k = 1 + rng.range_usize(n);
            let mut all: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut all);
            all.truncate(k);
            let mut naive = resolve_naive(&net, &all);
            naive.sort_by_key(|r| r.receiver);
            for kind in [
                ResolverKind::Grid,
                ResolverKind::Aggregated,
                ResolverKind::Parallel,
            ] {
                let mut got = kind.build().resolve(&net, &all);
                got.sort_by_key(|r| r.receiver);
                assert_eq!(
                    got, naive,
                    "trial {trial}: {kind} and naive resolvers disagree"
                );
            }
        }
    }

    #[test]
    fn all_backends_match_naive_under_heterogeneous_power() {
        let mut rng = Rng64::new(4040);
        for trial in 0..25 {
            let n = 15 + trial * 9;
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.range_f64(0.0, 4.0), rng.range_f64(0.0, 4.0)))
                .collect();
            let base = SinrParams::default().power;
            // Power spread of up to 8x: ranges up to 2 under alpha = 3.
            let powers: Vec<f64> = (0..n)
                .map(|_| base * (1.0 + 7.0 * rng.next_f64()))
                .collect();
            let net = Network::builder(pts).powers(powers).build().unwrap();
            assert!(!net.has_uniform_power());
            let tx: Vec<usize> = (0..n).filter(|_| rng.chance(0.25)).collect();
            let mut naive = resolve_naive(&net, &tx);
            naive.sort_by_key(|r| r.receiver);
            for kind in [
                ResolverKind::Grid,
                ResolverKind::Aggregated,
                ResolverKind::Parallel,
            ] {
                let mut got = kind.build().resolve(&net, &tx);
                got.sort_by_key(|r| r.receiver);
                assert_eq!(
                    got, naive,
                    "trial {trial}: {kind} disagrees with naive under heterogeneous power"
                );
            }
        }
    }

    #[test]
    fn strong_far_transmitter_beats_a_nearer_weak_one() {
        // Receiver at x=1.0; weak transmitter at 0.8 (d=0.2), strong one at
        // 2.0 (d=1.0) with 64x the power: the strong one's signal wins
        // 128/1 vs 2/0.008 = 250 — nearest still wins here, so instead make
        // the strong one the decodable sender by silencing geometry:
        // weak at d=0.9 → signal 2/0.729 ≈ 2.74; strong at d=1.0 → 128.
        let p = SinrParams::default();
        let net = Network::builder(vec![
            Point::new(0.1, 0.0), // weak tx, d = 0.9
            Point::new(2.0, 0.0), // strong tx, d = 1.0
            Point::new(1.0, 0.0), // receiver
        ])
        .powers(vec![p.power, 64.0 * p.power, p.power])
        .params(p)
        .build()
        .unwrap();
        // Strongest ≠ nearest: the grid fast path would pick node 0 and
        // reject; the strongest-signal path must decode node 1.
        let naive = resolve_naive(&net, &[0, 1]);
        assert_eq!(naive.len(), 1);
        assert_eq!(naive[0].sender, 1, "the high-power transmitter decodes");
        for r in &mut backends() {
            assert_eq!(r.resolve(&net, &[0, 1]), naive, "backend {}", r.kind());
        }
    }

    #[test]
    fn at_most_one_sender_decoded_per_receiver() {
        let mut rng = Rng64::new(7);
        let pts: Vec<Point> = (0..120)
            .map(|_| Point::new(rng.range_f64(0.0, 3.0), rng.range_f64(0.0, 3.0)))
            .collect();
        let net = net_of(pts);
        let tx: Vec<usize> = (0..120).filter(|_| rng.chance(0.3)).collect();
        for r in &mut backends() {
            let rec = r.resolve(&net, &tx);
            let mut seen = std::collections::HashSet::new();
            for x in &rec {
                assert!(
                    seen.insert(x.receiver),
                    "{}: receiver {} decoded twice",
                    r.kind(),
                    x.receiver
                );
                assert_eq!(tx[x.slot], x.sender, "slot must index the sender");
            }
        }
    }

    #[test]
    fn empty_transmitter_set_yields_no_receptions() {
        let net = net_of(vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)]);
        for r in &mut backends() {
            assert!(r.resolve(&net, &[]).is_empty(), "backend {}", r.kind());
        }
    }

    #[test]
    fn resolver_stats_track_work() {
        let mut rng = Rng64::new(11);
        let pts: Vec<Point> = (0..80)
            .map(|_| Point::new(rng.range_f64(0.0, 3.0), rng.range_f64(0.0, 3.0)))
            .collect();
        let net = net_of(pts);
        let tx: Vec<usize> = (0..80).filter(|_| rng.chance(0.25)).collect();
        let mut agg = AggregatedResolver::new();
        let _ = agg.resolve(&net, &tx);
        let st = agg.stats();
        assert_eq!(st.rounds, 1);
        assert_eq!(st.exact_sums, 0, "aggregated never does full naive sums");
        assert_eq!(
            st.candidates,
            st.short_circuited + st.residual_decided + st.exact_fallbacks,
            "every candidate is accounted for exactly once"
        );
        let mut grid = GridResolver::new();
        let _ = grid.resolve(&net, &tx);
        let gst = grid.stats();
        assert_eq!(gst.candidates, st.candidates, "same candidate set");
        assert_eq!(gst.exact_sums + gst.short_circuited, gst.candidates);
    }

    #[test]
    fn resolver_kind_parses_and_prints() {
        for kind in ResolverKind::ALL {
            assert_eq!(kind.name().parse::<ResolverKind>().unwrap(), kind);
            assert_eq!(format!("{kind}"), kind.name());
            assert_eq!(kind.build().kind(), kind);
        }
        assert_eq!(
            "AGG".parse::<ResolverKind>().unwrap(),
            ResolverKind::Aggregated
        );
        assert_eq!(
            "par".parse::<ResolverKind>().unwrap(),
            ResolverKind::Parallel
        );
        let err = "fft".parse::<ResolverKind>().unwrap_err();
        for name in ["naive", "grid", "aggregated", "parallel"] {
            assert!(err.contains(name), "parse error must list '{name}': {err}");
        }
    }

    #[test]
    fn parallel_is_byte_identical_across_thread_counts() {
        let mut rng = Rng64::new(808);
        let pts: Vec<Point> = (0..300)
            .map(|_| Point::new(rng.range_f64(0.0, 5.0), rng.range_f64(0.0, 5.0)))
            .collect();
        let net = net_of(pts);
        let tx: Vec<usize> = (0..300).filter(|_| rng.chance(0.3)).collect();
        let mut reference = AggregatedResolver::new();
        let want = reference.resolve(&net, &tx);
        for threads in [1, 2, 8] {
            let mut par = ParallelResolver::with_threads(threads);
            assert_eq!(par.threads(), threads.max(1));
            assert_eq!(
                par.resolve(&net, &tx),
                want,
                "parallel({threads} threads) diverged from aggregated"
            );
            par.audit(&net).expect("fresh field audits clean");
        }
    }

    #[test]
    fn persistent_parallel_tracks_an_evolving_transmitter_set() {
        // Round after round with sparse churn: the patched field must keep
        // producing exactly the receptions of a from-scratch backend, and
        // the audit must confirm its grid equals a rebuild.
        let mut rng = Rng64::new(4242);
        let pts: Vec<Point> = (0..250)
            .map(|_| Point::new(rng.range_f64(0.0, 4.0), rng.range_f64(0.0, 4.0)))
            .collect();
        let net = net_of(pts);
        let mut tx: Vec<usize> = (0..250).filter(|_| rng.chance(0.4)).collect();
        let mut par = ParallelResolver::with_threads(2);
        let mut agg = AggregatedResolver::new();
        for round in 0..25 {
            // ~4 joins and ~4 leaves per round, keeping the set sorted.
            for _ in 0..4 {
                if tx.len() > 8 {
                    tx.remove(rng.range_usize(tx.len()));
                }
                let joiner = rng.range_usize(250);
                if let Err(pos) = tx.binary_search(&joiner) {
                    tx.insert(pos, joiner);
                }
            }
            assert_eq!(
                par.resolve(&net, &tx),
                agg.resolve(&net, &tx),
                "round {round}: persistent parallel diverged"
            );
            par.audit(&net)
                .unwrap_or_else(|e| panic!("round {round}: audit failed: {e}"));
        }
    }

    #[test]
    fn persistent_field_survives_network_mutation() {
        // A network mutation between rounds must invalidate the cached
        // field (stamp mismatch → rebuild), not poison it.
        let mut rng = Rng64::new(99);
        let pts: Vec<Point> = (0..150)
            .map(|_| Point::new(rng.range_f64(0.0, 3.0), rng.range_f64(0.0, 3.0)))
            .collect();
        let mut net = net_of(pts);
        let tx: Vec<usize> = (0..150).filter(|_| rng.chance(0.35)).collect();
        let mut par = ParallelResolver::with_threads(2);
        let _ = par.resolve(&net, &tx); // seed the cache
        net.move_node(3, Point::new(1.5, 1.5));
        net.set_power(7, 2.0 * net.params().power);
        assert_eq!(
            par.resolve(&net, &tx),
            AggregatedResolver::new().resolve(&net, &tx),
            "stale cache leaked across a network mutation"
        );
        par.audit(&net).expect("rebuilt field audits clean");
    }

    #[test]
    fn persistent_aggregated_matches_the_default_aggregated() {
        let mut rng = Rng64::new(5150);
        let pts: Vec<Point> = (0..200)
            .map(|_| Point::new(rng.range_f64(0.0, 4.0), rng.range_f64(0.0, 4.0)))
            .collect();
        let net = net_of(pts);
        let mut persistent = AggregatedResolver::new().with_persistence();
        let mut plain = AggregatedResolver::new();
        for round in 0..10 {
            let tx: Vec<usize> = (0..200).filter(|_| rng.chance(0.3)).collect();
            assert_eq!(
                persistent.resolve(&net, &tx),
                plain.resolve(&net, &tx),
                "round {round}: persistence changed receptions"
            );
            persistent.audit(&net).expect("audit");
        }
    }

    #[test]
    fn unsorted_transmitter_slices_bypass_the_cache_soundly() {
        // Callers are allowed to pass unsorted sets (the equivalence suites
        // do); the cache must rebuild rather than patch, and fallback
        // summation order must follow caller order exactly.
        let mut rng = Rng64::new(31337);
        let pts: Vec<Point> = (0..180)
            .map(|_| Point::new(rng.range_f64(0.0, 3.5), rng.range_f64(0.0, 3.5)))
            .collect();
        let net = net_of(pts);
        let mut par = ParallelResolver::with_threads(2);
        let mut agg = AggregatedResolver::new();
        for round in 0..8 {
            let mut tx: Vec<usize> = (0..180).collect();
            rng.shuffle(&mut tx);
            tx.truncate(60 + round);
            assert_eq!(
                par.resolve(&net, &tx),
                agg.resolve(&net, &tx),
                "round {round}: unsorted transmitter slice mishandled"
            );
        }
    }

    #[test]
    fn sensed_power_excludes_own_signal_and_decays() {
        let net = net_of(vec![
            Point::new(0.0, 0.0),
            Point::new(0.5, 0.0),
            Point::new(2.0, 0.0),
        ]);
        let p = sensed_power(&net, &[0]);
        assert_eq!(p[0], 0.0, "a node does not sense its own transmission");
        assert!(p[1] > p[2], "closer listener senses more power");
        let both = sensed_power(&net, &[0, 1]);
        assert!(both[2] > p[2], "more transmitters, more power");
    }
}
