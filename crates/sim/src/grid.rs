//! Uniform spatial hash grid.
//!
//! All geometric queries in the simulator (communication-graph construction,
//! density estimation, nearest-transmitter search in the SINR resolver) go
//! through this index. Cells have a fixed side length; a disk query of radius
//! `r` touches `O((r/cell)²)` cells.
//!
//! The grid supports **sparse maintenance** ([`Grid::insert`],
//! [`Grid::remove`], [`Grid::move_point`]): a dynamics step that moves `k`
//! nodes costs `O(k)` hash-map updates instead of an `O(n)` rebuild. Each
//! cell's member list is kept sorted ascending, so an incrementally
//! maintained grid is **structurally identical** to one rebuilt from
//! scratch over the same points — query iteration order, and with it every
//! floating-point summation downstream, is the same either way. (Fresh
//! builds insert indices in increasing order, so they satisfy the sorted
//! invariant for free; [`Grid::build_subset`] requires its subset sorted
//! for the same reason.)

use crate::point::Point;
use std::collections::HashMap;

/// A uniform grid over a set of points, mapping cells to point indices.
///
/// ```
/// use dcluster_sim::{Grid, Point};
/// let pts = vec![Point::new(0.0, 0.0), Point::new(0.5, 0.5), Point::new(3.0, 3.0)];
/// let grid = Grid::build(&pts, 1.0);
/// let near: Vec<usize> = grid.within(&pts, Point::new(0.0, 0.0), 1.0).collect();
/// assert_eq!(near, vec![0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    cell: f64,
    cells: HashMap<(i64, i64), Vec<u32>>, // lint:allow(D1, reason = "cell buckets: keyed hot-path lookups, never iterated")
}

/// Result of [`Grid::two_nearest_within`]: the two nearest stored points,
/// with distances returned both plain and squared so callers (the SINR
/// resolver backends) never recompute `d²`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoNearest {
    /// Index of the nearest stored point.
    pub nearest: usize,
    /// Distance to `nearest`.
    pub d1: f64,
    /// Squared distance to `nearest`.
    pub d1_sq: f64,
    /// Index of the second-nearest stored point, if at least two are in
    /// range.
    pub second: Option<usize>,
    /// Distance to `second` (`f64::INFINITY` if fewer than two in range).
    pub d2: f64,
    /// Squared distance to `second` (`f64::INFINITY` if fewer than two).
    pub d2_sq: f64,
}

impl Grid {
    /// Builds a grid with the given cell side length.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not strictly positive and finite.
    pub fn build(points: &[Point], cell: f64) -> Self {
        assert!(
            cell > 0.0 && cell.is_finite(),
            "grid cell size must be positive"
        );
        let mut cells: HashMap<(i64, i64), Vec<u32>> = HashMap::new(); // lint:allow(D1, reason = "cell buckets: keyed hot-path lookups, never iterated")
        for (i, p) in points.iter().enumerate() {
            cells.entry(Self::key(p, cell)).or_default().push(i as u32);
        }
        Self { cell, cells }
    }

    /// Builds a grid over a *subset* of the points (e.g. this round's
    /// transmitters); stored indices refer to the original slice. Member
    /// lists hold the subset's order per cell; pass the subset sorted
    /// ascending (engine-produced transmitter sets are) when the grid will
    /// be maintained incrementally — the sorted-member invariant is what
    /// makes a maintained grid equal a fresh rebuild.
    pub fn build_subset(points: &[Point], subset: &[usize], cell: f64) -> Self {
        assert!(
            cell > 0.0 && cell.is_finite(),
            "grid cell size must be positive"
        );
        let mut cells: HashMap<(i64, i64), Vec<u32>> = HashMap::new(); // lint:allow(D1, reason = "cell buckets: keyed hot-path lookups, never iterated")
        for &i in subset {
            cells
                .entry(Self::key(&points[i], cell))
                .or_default()
                .push(i as u32);
        }
        Self { cell, cells }
    }

    #[inline]
    fn key(p: &Point, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// Cell side length.
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Iterates indices of stored points within distance `r` of `center`
    /// (closed ball), in unspecified order.
    pub fn within<'a>(
        &'a self,
        points: &'a [Point],
        center: Point,
        r: f64,
    ) -> impl Iterator<Item = usize> + 'a {
        let r_sq = r * r;
        self.candidate_cells(center, r)
            .flat_map(move |ids| ids.iter().copied())
            .filter_map(move |i| {
                let i = i as usize;
                (points[i].dist_sq(center) <= r_sq).then_some(i)
            })
    }

    /// Counts stored points within distance `r` of `center`.
    pub fn count_within(&self, points: &[Point], center: Point, r: f64) -> usize {
        self.within(points, center, r).count()
    }

    /// Returns the two nearest stored points within radius `r` of `center`
    /// — indices *and* distances (both plain and squared), so callers never
    /// recompute `d²`. `None` if no stored point is in range. Points at
    /// distance 0 (the querying node itself, if stored) can be excluded via
    /// `exclude`.
    pub fn two_nearest_within(
        &self,
        points: &[Point],
        center: Point,
        r: f64,
        exclude: Option<usize>,
    ) -> Option<TwoNearest> {
        let mut best: Option<(usize, f64)> = None;
        let mut second: Option<(usize, f64)> = None;
        let r_sq = r * r;
        for ids in self.candidate_cells(center, r) {
            for &i in ids {
                let i = i as usize;
                if Some(i) == exclude {
                    continue;
                }
                let d2 = points[i].dist_sq(center);
                if d2 > r_sq {
                    continue;
                }
                match best {
                    None => best = Some((i, d2)),
                    Some((b, b2)) if d2 < b2 => {
                        second = Some((b, b2));
                        best = Some((i, d2));
                    }
                    Some(_) => {
                        if second.is_none_or(|(_, s2)| d2 < s2) {
                            second = Some((i, d2));
                        }
                    }
                }
            }
        }
        best.map(|(i, d2)| TwoNearest {
            nearest: i,
            d1: d2.sqrt(),
            d1_sq: d2,
            second: second.map(|(j, _)| j),
            d2: second.map_or(f64::INFINITY, |(_, s2)| s2.sqrt()),
            d2_sq: second.map_or(f64::INFINITY, |(_, s2)| s2),
        })
    }

    /// Cell key of an arbitrary position under this grid's tiling.
    #[inline]
    pub fn key_of(&self, p: Point) -> (i64, i64) {
        Self::key(&p, self.cell)
    }

    /// Stored point indices in cell `key` (empty slice if the cell is
    /// unoccupied).
    #[inline]
    pub fn cell_members(&self, key: (i64, i64)) -> &[u32] {
        self.cells.get(&key).map_or(&[], |v| v.as_slice())
    }

    /// Inserts point index `i` located at `p` — `O(cell occupancy)` for the
    /// sorted insertion. The point must not already be stored at `p`'s cell.
    pub fn insert(&mut self, i: usize, p: Point) {
        let members = self.cells.entry(Self::key(&p, self.cell)).or_default();
        let idx = i as u32;
        match members.binary_search(&idx) {
            Ok(_) => debug_assert!(false, "point {i} already stored in its cell"),
            Err(pos) => members.insert(pos, idx),
        }
    }

    /// Removes point index `i` located at `p` (the position it was inserted
    /// under). Empty cells are dropped from the map so an incrementally
    /// maintained grid stays structurally identical to a fresh rebuild.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not stored in `p`'s cell — that means the caller's
    /// position bookkeeping has diverged from the grid.
    pub fn remove(&mut self, i: usize, p: Point) {
        let key = Self::key(&p, self.cell);
        let members = self
            .cells
            .get_mut(&key)
            .unwrap_or_else(|| panic!("removing {i} from an empty cell {key:?}")); // lint:allow(P1, reason = "grid/point desync is a bug, not bad input")
        let pos = members
            .binary_search(&(i as u32))
            .unwrap_or_else(|_| panic!("point {i} not stored in cell {key:?}")); // lint:allow(P1, reason = "grid/point desync is a bug, not bad input")
        members.remove(pos);
        if members.is_empty() {
            self.cells.remove(&key);
        }
    }

    /// Relocates point index `i` from `from` to `to`. A no-op when both
    /// positions hash to the same cell (the grid stores indices, not
    /// coordinates — callers own the position array).
    pub fn move_point(&mut self, i: usize, from: Point, to: Point) {
        if Self::key(&from, self.cell) == Self::key(&to, self.cell) {
            return;
        }
        self.remove(i, from);
        self.insert(i, to);
    }

    fn candidate_cells(&self, center: Point, r: f64) -> impl Iterator<Item = &Vec<u32>> + '_ {
        let lo_x = ((center.x - r) / self.cell).floor() as i64;
        let hi_x = ((center.x + r) / self.cell).floor() as i64;
        let lo_y = ((center.y - r) / self.cell).floor() as i64;
        let hi_y = ((center.y + r) / self.cell).floor() as i64;
        (lo_x..=hi_x)
            .flat_map(move |cx| (lo_y..=hi_y).map(move |cy| (cx, cy)))
            .filter_map(move |k| self.cells.get(&k))
    }

    /// Number of non-empty cells (diagnostics).
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    fn brute_within(points: &[Point], c: Point, r: f64) -> Vec<usize> {
        let mut v: Vec<usize> = (0..points.len())
            .filter(|&i| points[i].dist(c) <= r)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn within_matches_brute_force_on_random_clouds() {
        let mut rng = Rng64::new(42);
        for trial in 0..20 {
            let n = 50 + trial * 13;
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.range_f64(-5.0, 5.0), rng.range_f64(-5.0, 5.0)))
                .collect();
            let grid = Grid::build(&pts, 0.7);
            for _ in 0..10 {
                let c = Point::new(rng.range_f64(-5.0, 5.0), rng.range_f64(-5.0, 5.0));
                let r = rng.range_f64(0.1, 3.0);
                let mut got: Vec<usize> = grid.within(&pts, c, r).collect();
                got.sort_unstable();
                assert_eq!(got, brute_within(&pts, c, r));
            }
        }
    }

    #[test]
    fn two_nearest_matches_brute_force() {
        let mut rng = Rng64::new(7);
        let pts: Vec<Point> = (0..200)
            .map(|_| Point::new(rng.range_f64(0.0, 4.0), rng.range_f64(0.0, 4.0)))
            .collect();
        let grid = Grid::build(&pts, 0.5);
        for _ in 0..50 {
            let c = Point::new(rng.range_f64(0.0, 4.0), rng.range_f64(0.0, 4.0));
            let r = 1.5;
            let mut ds: Vec<(f64, usize)> = (0..pts.len())
                .map(|i| (pts[i].dist(c), i))
                .filter(|&(d, _)| d <= r)
                .collect();
            ds.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let got = grid.two_nearest_within(&pts, c, r, None);
            match ds.len() {
                0 => assert!(got.is_none()),
                1 => {
                    let tn = got.unwrap();
                    assert_eq!(tn.nearest, ds[0].1);
                    assert!((tn.d1 - ds[0].0).abs() < 1e-12);
                    assert!(tn.second.is_none());
                    assert!(tn.d2.is_infinite() && tn.d2_sq.is_infinite());
                }
                _ => {
                    let tn = got.unwrap();
                    assert_eq!(tn.nearest, ds[0].1);
                    assert!((tn.d1 - ds[0].0).abs() < 1e-12);
                    assert!((tn.d2 - ds[1].0).abs() < 1e-12);
                    assert!((tn.d1_sq - tn.d1 * tn.d1).abs() < 1e-12);
                    let j = tn.second.expect("two points in range");
                    assert!((pts[j].dist(c) - ds[1].0).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn subset_grid_only_sees_subset() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.1, 0.0),
            Point::new(0.2, 0.0),
        ];
        let grid = Grid::build_subset(&pts, &[0, 2], 1.0);
        let got: Vec<usize> = grid.within(&pts, Point::ORIGIN, 1.0).collect();
        assert_eq!(got.len(), 2);
        assert!(got.contains(&0) && got.contains(&2));
    }

    #[test]
    fn exclude_skips_self() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)];
        let grid = Grid::build(&pts, 1.0);
        let tn = grid
            .two_nearest_within(&pts, pts[0], 1.0, Some(0))
            .expect("neighbor in range");
        assert_eq!(tn.nearest, 1);
        assert!((tn.d1 - 0.5).abs() < 1e-12);
        assert!(tn.second.is_none());
    }

    #[test]
    fn incremental_ops_match_fresh_rebuild() {
        let mut rng = Rng64::new(77);
        let mut pts: Vec<Point> = (0..300)
            .map(|_| Point::new(rng.range_f64(0.0, 6.0), rng.range_f64(0.0, 6.0)))
            .collect();
        let mut grid = Grid::build(&pts, 0.8);
        for _ in 0..500 {
            let i = rng.range_usize(pts.len());
            let to = Point::new(rng.range_f64(-1.0, 7.0), rng.range_f64(-1.0, 7.0));
            grid.move_point(i, pts[i], to);
            pts[i] = to;
        }
        assert_eq!(
            grid,
            Grid::build(&pts, 0.8),
            "incrementally moved grid must equal a fresh rebuild, \
             including per-cell member order"
        );
    }

    #[test]
    fn remove_drops_empty_cells() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(5.0, 5.0)];
        let mut grid = Grid::build(&pts, 1.0);
        assert_eq!(grid.occupied_cells(), 2);
        grid.remove(1, pts[1]);
        assert_eq!(grid.occupied_cells(), 1);
        assert_eq!(grid, Grid::build_subset(&pts, &[0], 1.0));
        grid.insert(1, pts[1]);
        assert_eq!(grid, Grid::build(&pts, 1.0));
    }

    #[test]
    fn move_within_a_cell_is_a_noop_on_structure() {
        let mut pts = vec![Point::new(0.2, 0.2), Point::new(0.4, 0.4)];
        let mut grid = Grid::build(&pts, 1.0);
        let before = grid.clone();
        grid.move_point(0, pts[0], Point::new(0.9, 0.9));
        pts[0] = Point::new(0.9, 0.9);
        assert_eq!(grid, before, "same cell: index sets unchanged");
        assert_eq!(grid, Grid::build(&pts, 1.0));
    }

    #[test]
    #[should_panic(expected = "not stored")]
    fn removing_an_absent_point_panics() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(0.1, 0.1)];
        let mut grid = Grid::build_subset(&pts, &[0], 1.0);
        grid.remove(1, pts[1]);
    }

    #[test]
    fn negative_coordinates_are_handled() {
        let pts = vec![Point::new(-0.01, -0.01), Point::new(0.01, 0.01)];
        let grid = Grid::build(&pts, 1.0);
        assert_eq!(grid.count_within(&pts, Point::ORIGIN, 0.1), 2);
    }
}
