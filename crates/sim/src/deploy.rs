//! Deployment (workload) generators.
//!
//! These produce the node layouts used throughout the experiments: uniform
//! sensor fields, perturbed grids, Gaussian "hotspot" clusters (the dense
//! areas the paper's introduction worries about), lines and corridors for
//! multi-hop diameter sweeps.

use crate::point::Point;
use crate::rng::Rng64;

/// `n` points uniform in the axis-aligned square `[0, side]²`.
pub fn uniform_square(n: usize, side: f64, rng: &mut Rng64) -> Vec<Point> {
    (0..n)
        .map(|_| Point::new(rng.range_f64(0.0, side), rng.range_f64(0.0, side)))
        .collect()
}

/// `rows × cols` grid with spacing `spacing`, each point jittered uniformly
/// by up to `jitter` in each coordinate.
pub fn perturbed_grid(
    rows: usize,
    cols: usize,
    spacing: f64,
    jitter: f64,
    rng: &mut Rng64,
) -> Vec<Point> {
    let mut pts = Vec::with_capacity(rows * cols);
    for i in 0..rows {
        for j in 0..cols {
            pts.push(Point::new(
                j as f64 * spacing + rng.range_f64(-jitter, jitter),
                i as f64 * spacing + rng.range_f64(-jitter, jitter),
            ));
        }
    }
    pts
}

/// `centers` cluster centers uniform in `[0, side]²`, each with
/// `per_cluster` points at Gaussian offsets of standard deviation `sigma` —
/// the "dense hotspot" workload.
pub fn gaussian_clusters(
    centers: usize,
    per_cluster: usize,
    sigma: f64,
    side: f64,
    rng: &mut Rng64,
) -> Vec<Point> {
    let mut pts = Vec::with_capacity(centers * per_cluster);
    for _ in 0..centers {
        let c = Point::new(rng.range_f64(0.0, side), rng.range_f64(0.0, side));
        for _ in 0..per_cluster {
            pts.push(Point::new(
                c.x + rng.next_gaussian() * sigma,
                c.y + rng.next_gaussian() * sigma,
            ));
        }
    }
    pts
}

/// `n` points on a horizontal line with the given spacing (multi-hop path;
/// with `spacing ≤ comm_radius` the communication graph is a path).
pub fn line(n: usize, spacing: f64) -> Vec<Point> {
    (0..n)
        .map(|i| Point::new(i as f64 * spacing, 0.0))
        .collect()
}

/// A corridor `length × width` with `n` uniform points — controlled-diameter,
/// controlled-density multi-hop workload.
pub fn corridor(n: usize, length: f64, width: f64, rng: &mut Rng64) -> Vec<Point> {
    (0..n)
        .map(|_| Point::new(rng.range_f64(0.0, length), rng.range_f64(0.0, width)))
        .collect()
}

/// A corridor with a guaranteed backbone: points uniform in the corridor
/// *plus* a spine of points every `spine_spacing` along the center line, so
/// the communication graph is connected for spine spacings ≤ comm radius.
pub fn corridor_with_spine(
    n: usize,
    length: f64,
    width: f64,
    spine_spacing: f64,
    rng: &mut Rng64,
) -> Vec<Point> {
    let mut pts = corridor(n, length, width, rng);
    let mut x = 0.0;
    while x <= length {
        pts.push(Point::new(x, width / 2.0));
        x += spine_spacing;
    }
    pts
}

/// `n` points evenly spaced on a circle of radius `radius` centered at
/// `(radius, radius)`.
pub fn ring(n: usize, radius: f64) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let a = std::f64::consts::TAU * i as f64 / n as f64;
            Point::new(radius + radius * a.cos(), radius + radius * a.sin())
        })
        .collect()
}

/// Rejects points closer than `min_sep` to an already-kept point (greedy
/// filter; keeps first occurrence). Useful to bound density from above.
pub fn with_min_separation(points: Vec<Point>, min_sep: f64) -> Vec<Point> {
    let mut kept: Vec<Point> = Vec::with_capacity(points.len());
    'outer: for p in points {
        for q in &kept {
            if p.dist(*q) < min_sep {
                continue 'outer;
            }
        }
        kept.push(p);
    }
    kept
}

/// A uniform square deployment tuned to hit (approximately) a target
/// communication-graph degree `target_delta` with `n` nodes: the side is
/// chosen so that the expected number of nodes within the comm radius of a
/// point is `target_delta`.
pub fn uniform_with_target_degree(
    n: usize,
    target_delta: usize,
    comm_radius: f64,
    rng: &mut Rng64,
) -> Vec<Point> {
    let area_per_node = std::f64::consts::PI * comm_radius * comm_radius / target_delta as f64;
    let side = (n as f64 * area_per_node).sqrt();
    uniform_square(n, side.max(comm_radius), rng)
}

/// Per-node transmit powers for a heterogeneous deployment: node `v` gets
/// `base · (1 + spread · h(v))` with `h(v) ∈ [0, 1)` hashed
/// deterministically from `seed` — a mixed fleet of radios (e.g.
/// `spread = 0.5` for up to 1.5× the model power). `spread = 0` reproduces
/// the paper's uniform-power setting exactly.
pub fn power_profile(n: usize, base: f64, spread: f64, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|v| {
            let h = (crate::rng::hash64(seed, &[v as u64]) >> 11) as f64 / (1u64 << 53) as f64;
            if spread == 0.0 {
                base
            } else {
                base * (1.0 + spread * h)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_profile_is_deterministic_and_bounded() {
        let a = power_profile(100, 2.0, 0.5, 9);
        let b = power_profile(100, 2.0, 0.5, 9);
        assert_eq!(a, b, "same seed, same profile");
        assert!(a.iter().all(|&p| (2.0..3.0).contains(&p)));
        assert_ne!(a, power_profile(100, 2.0, 0.5, 10));
        assert_eq!(
            power_profile(10, 2.0, 0.0, 9),
            vec![2.0; 10],
            "zero spread is exactly uniform"
        );
    }

    #[test]
    fn uniform_square_stays_in_bounds() {
        let mut rng = Rng64::new(1);
        let pts = uniform_square(500, 3.0, &mut rng);
        assert_eq!(pts.len(), 500);
        assert!(pts
            .iter()
            .all(|p| (0.0..3.0).contains(&p.x) && (0.0..3.0).contains(&p.y)));
    }

    #[test]
    fn grid_has_expected_count_and_spacing() {
        let mut rng = Rng64::new(2);
        let pts = perturbed_grid(4, 5, 1.0, 0.0, &mut rng);
        assert_eq!(pts.len(), 20);
        assert!((pts[1].x - pts[0].x - 1.0).abs() < 1e-12);
    }

    #[test]
    fn line_is_evenly_spaced() {
        let pts = line(10, 0.5);
        for w in pts.windows(2) {
            assert!((w[0].dist(w[1]) - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn min_separation_filter_enforces_separation() {
        let mut rng = Rng64::new(3);
        let pts = with_min_separation(uniform_square(400, 2.0, &mut rng), 0.2);
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                assert!(pts[i].dist(pts[j]) >= 0.2);
            }
        }
        assert!(!pts.is_empty());
    }

    #[test]
    fn gaussian_clusters_form_dense_spots() {
        let mut rng = Rng64::new(4);
        let pts = gaussian_clusters(3, 30, 0.05, 10.0, &mut rng);
        assert_eq!(pts.len(), 90);
    }

    #[test]
    fn target_degree_is_roughly_achieved() {
        let mut rng = Rng64::new(5);
        let pts = uniform_with_target_degree(600, 12, 0.8, &mut rng);
        let net = crate::Network::builder(pts).build().unwrap();
        let delta = net.max_degree();
        // Max degree concentrates a bit above the mean target; just check
        // the right ballpark (this guards against unit mistakes).
        assert!(
            (8..=40).contains(&delta),
            "max degree {delta} far from target 12"
        );
    }

    #[test]
    fn corridor_with_spine_is_connected() {
        let mut rng = Rng64::new(6);
        let pts = corridor_with_spine(60, 12.0, 1.0, 0.5, &mut rng);
        let net = crate::Network::builder(pts).build().unwrap();
        assert!(net.comm_graph().is_connected());
    }

    #[test]
    fn ring_points_lie_on_circle() {
        let pts = ring(16, 2.0);
        let c = Point::new(2.0, 2.0);
        for p in &pts {
            assert!((p.dist(c) - 2.0).abs() < 1e-9);
        }
    }
}
