//! Synchronous round execution engine.
//!
//! The paper's model (§1.1): algorithms work in synchronous rounds; in each
//! round a node either transmits or listens, receptions are resolved by the
//! SINR rule, and nodes perform local computation. [`RoundBehavior`] is the
//! protocol interface; the [`Engine`] drives it against a [`Network`].
//!
//! **Locality discipline.** A behavior's `transmit` decision for node `v`
//! must depend only on `v`'s own state, `v`'s id/parameters, and the current
//! round number (which is global knowledge in the synchronous model);
//! `receive` is the only channel through which information crosses nodes.
//! Behaviors in this workspace keep per-node state in indexed vectors and
//! touch only the entry of the node passed in.

use crate::network::Network;
use crate::radio::{Reception, ResolverKind, ResolverStats, SinrResolver};
use dcluster_obs::{Event, PhaseTable, SharedTracer};

/// A synchronous per-node protocol executed by the [`Engine`].
///
/// `M` is the message type; the model limits messages to `O(log N)` bits,
/// so message types carry a constant number of IDs/labels.
pub trait RoundBehavior<M> {
    /// Decides whether node `node` transmits in `round`, and with what
    /// message. Returning `None` means the node listens.
    fn transmit(&mut self, net: &Network, node: usize, round: u64) -> Option<M>;

    /// Delivers a message received by `node` in `round` from `sender`.
    fn receive(&mut self, net: &Network, node: usize, round: u64, sender: usize, msg: &M);

    /// Hook invoked once per round after all deliveries (optional).
    fn end_round(&mut self, _net: &Network, _round: u64) {}
}

/// Cumulative execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Rounds executed.
    pub rounds: u64,
    /// Total transmissions (≈ energy).
    pub transmissions: u64,
    /// Total successful receptions.
    pub receptions: u64,
}

/// Statistics of the most recently executed round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Round number that was executed.
    pub round: u64,
    /// Transmitters in that round.
    pub transmissions: u64,
    /// Successful receptions in that round.
    pub receptions: u64,
}

/// Drives [`RoundBehavior`]s over a network, maintaining a global round
/// counter across sequential protocol stages (deterministic protocols are
/// time-multiplexed by round number, so the counter must persist).
///
/// Reception resolution is delegated to a [`SinrResolver`] backend owned
/// by the engine; [`Engine::new`] picks the network's scale-aware default
/// ([`Network::default_resolver`]), [`Engine::with_resolver_kind`] pins a
/// specific one. All backends produce identical receptions, so the choice
/// affects wall clock only — never protocol outcomes.
#[derive(Debug)]
pub struct Engine<'n> {
    net: &'n Network,
    resolver: Box<dyn SinrResolver>,
    round: u64,
    stats: EngineStats,
    last_round: RoundStats,
    tx_nodes: Vec<usize>,
    tx_msgs_scratch: usize,
    /// Optional event sink (`None` = tracing disabled; the per-round cost
    /// is then a single `Option` check).
    tracer: Option<SharedTracer>,
    /// Always-on per-phase aggregation (pays only at phase boundaries),
    /// so traced and untraced runs render byte-identical reports.
    phases: PhaseTable,
    /// Open [`Engine::begin_phase`] frames:
    /// `(phase, start_round, start_tx, start_rx)`.
    phase_stack: Vec<(&'static str, u64, u64, u64)>,
}

impl<'n> Engine<'n> {
    /// Creates an engine over `net` starting at round 0, with the
    /// network's default resolver backend.
    pub fn new(net: &'n Network) -> Self {
        Self::with_resolver_kind(net, net.default_resolver())
    }

    /// Creates an engine with an explicit resolver backend.
    pub fn with_resolver_kind(net: &'n Network, kind: ResolverKind) -> Self {
        Self::with_resolver(net, kind.build())
    }

    /// Creates an engine honoring the `DCLUSTER_RESOLVER` environment
    /// variable when set, else the network's scale-aware default — the
    /// constructor examples and ad-hoc drivers should use, so they
    /// exercise the same backend-selection path as the bench binaries.
    ///
    /// # Errors
    ///
    /// Returns the parse error (naming every valid backend) when
    /// `DCLUSTER_RESOLVER` is set to an unknown name.
    pub fn from_env(net: &'n Network) -> Result<Self, String> {
        Ok(match ResolverKind::from_env()? {
            Some(kind) => Self::with_resolver_kind(net, kind),
            None => Self::new(net),
        })
    }

    /// Creates an engine with a caller-constructed resolver backend.
    pub fn with_resolver(net: &'n Network, resolver: Box<dyn SinrResolver>) -> Self {
        Self {
            net,
            resolver,
            round: 0,
            stats: EngineStats::default(),
            last_round: RoundStats::default(),
            tx_nodes: Vec::new(),
            tx_msgs_scratch: 0,
            tracer: None,
            phases: PhaseTable::new(),
            phase_stack: Vec::new(),
        }
    }

    /// Attaches an event tracer; every subsequent round and phase span is
    /// emitted into it. Tracing never changes protocol outcomes — the
    /// tracer observes the event stream and nothing flows back.
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.tracer = Some(tracer);
    }

    /// Detaches the tracer (phase aggregation stays on).
    pub fn clear_tracer(&mut self) {
        self.tracer = None;
    }

    /// Opens a named phase span. Spans nest; an inner phase's rounds also
    /// count toward its enclosing phases. Protocol code brackets its
    /// stages with this and [`Engine::end_phase`].
    pub fn begin_phase(&mut self, phase: &'static str) {
        if let Some(t) = &self.tracer {
            t.borrow_mut().on_event(&Event::PhaseStart {
                phase,
                round: self.round,
            });
        }
        self.phase_stack.push((
            phase,
            self.round,
            self.stats.transmissions,
            self.stats.receptions,
        ));
    }

    /// Closes the innermost open phase span, folding its costs into the
    /// per-phase table ([`Engine::phase_table`]). A stray call with no
    /// open span is ignored (debug builds assert).
    pub fn end_phase(&mut self) {
        let Some((phase, round0, tx0, rx0)) = self.phase_stack.pop() else {
            debug_assert!(false, "end_phase with no open phase span");
            return;
        };
        let rounds = self.round - round0;
        let tx = self.stats.transmissions - tx0;
        let rx = self.stats.receptions - rx0;
        self.phases.record(phase, rounds, tx, rx);
        if let Some(t) = &self.tracer {
            t.borrow_mut().on_event(&Event::PhaseEnd {
                phase,
                round: self.round,
                rounds,
                tx,
                rx,
            });
        }
    }

    /// The per-phase cost table accumulated so far (always on, tracer or
    /// not). Rendered by the scenario `Report`.
    pub fn phase_table(&self) -> &PhaseTable {
        &self.phases
    }

    /// The network being simulated.
    pub fn network(&self) -> &'n Network {
        self.net
    }

    /// The backend resolving receptions.
    pub fn resolver_kind(&self) -> ResolverKind {
        self.resolver.kind()
    }

    /// The resolver backend's cumulative work counters.
    pub fn resolver_stats(&self) -> ResolverStats {
        self.resolver.stats()
    }

    /// Audits the resolver's incrementally-maintained state (the
    /// persistent backends' cached interference field) against a rebuild
    /// from scratch. Backends without such state trivially pass.
    pub fn audit_resolver(&self) -> Result<(), String> {
        self.resolver.audit(self.net)
    }

    /// Statistics of the most recently executed round (zeroed before the
    /// first [`Engine::step`]).
    pub fn last_round_stats(&self) -> RoundStats {
        self.last_round
    }

    /// Current global round number (next round to execute).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Statistics so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Runs `rounds` rounds of `behavior`. Returns the receptions of the
    /// *last* executed round (occasionally useful for single-round probes).
    pub fn run<M, B>(&mut self, behavior: &mut B, rounds: u64) -> Vec<Reception>
    where
        B: RoundBehavior<M> + ?Sized,
    {
        let mut last = Vec::new();
        for _ in 0..rounds {
            last = self.step(behavior);
        }
        last
    }

    /// Executes a single round; returns its receptions.
    pub fn step<M, B>(&mut self, behavior: &mut B) -> Vec<Reception>
    where
        B: RoundBehavior<M> + ?Sized,
    {
        let round = self.round;
        self.tx_nodes.clear();
        let mut msgs: Vec<M> = Vec::with_capacity(self.tx_msgs_scratch);
        for v in 0..self.net.len() {
            if let Some(m) = behavior.transmit(self.net, v, round) {
                self.tx_nodes.push(v);
                msgs.push(m);
            }
        }
        self.tx_msgs_scratch = msgs.len();
        let receptions = self.resolver.resolve(self.net, &self.tx_nodes);
        for r in &receptions {
            behavior.receive(self.net, r.receiver, round, r.sender, &msgs[r.slot]);
        }
        behavior.end_round(self.net, round);
        self.stats.rounds += 1;
        self.stats.transmissions += self.tx_nodes.len() as u64;
        self.stats.receptions += receptions.len() as u64;
        self.last_round = RoundStats {
            round,
            transmissions: self.tx_nodes.len() as u64,
            receptions: receptions.len() as u64,
        };
        if let Some(t) = &self.tracer {
            t.borrow_mut().on_event(&Event::Round {
                round,
                tx: self.tx_nodes.len() as u64,
                rx: receptions.len() as u64,
                cache: self.resolver.last_cache_op(),
            });
        }
        self.round += 1;
        receptions
    }

    /// Runs `behavior` until `done` returns true or `max_rounds` elapse;
    /// returns the number of rounds executed in this call.
    ///
    /// The `done` predicate is a *harness* (observer) facility — e.g. "stop
    /// simulating once every node is awake"; per-node behavior must not rely
    /// on it.
    pub fn run_until<M, B, F>(&mut self, behavior: &mut B, max_rounds: u64, mut done: F) -> u64
    where
        B: RoundBehavior<M> + ?Sized,
        F: FnMut(&B) -> bool,
    {
        let start = self.round;
        while self.round - start < max_rounds {
            if done(behavior) {
                break;
            }
            self.step(behavior);
        }
        self.round - start
    }
}

/// A behavior defined by closures — handy for tests and tiny protocols.
pub struct FnBehavior<T, R> {
    /// Transmit decision closure.
    pub tx: T,
    /// Reception handler closure.
    pub rx: R,
}

impl<M, T, R> RoundBehavior<M> for FnBehavior<T, R>
where
    T: FnMut(&Network, usize, u64) -> Option<M>,
    R: FnMut(&Network, usize, u64, usize, &M),
{
    fn transmit(&mut self, net: &Network, node: usize, round: u64) -> Option<M> {
        (self.tx)(net, node, round)
    }
    fn receive(&mut self, net: &Network, node: usize, round: u64, sender: usize, msg: &M) {
        (self.rx)(net, node, round, sender, msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    fn line(n: usize, spacing: f64) -> Network {
        let pts: Vec<Point> = (0..n)
            .map(|i| Point::new(i as f64 * spacing, 0.0))
            .collect();
        Network::builder(pts).build().unwrap()
    }

    #[test]
    fn round_robin_flood_crosses_a_line() {
        // Node i transmits in rounds ≡ i (mod n) once it knows the token.
        let net = line(5, 0.7);
        let n = net.len();
        let mut knows = vec![false; n];
        knows[0] = true;
        let mut engine = Engine::new(&net);
        // Can't borrow `knows` in both closures at once; use a tiny struct.
        struct Flood {
            knows: Vec<bool>,
        }
        impl RoundBehavior<u8> for Flood {
            fn transmit(&mut self, net: &Network, v: usize, round: u64) -> Option<u8> {
                (self.knows[v] && round % net.len() as u64 == v as u64).then_some(1)
            }
            fn receive(&mut self, _net: &Network, v: usize, _r: u64, _s: usize, _m: &u8) {
                self.knows[v] = true;
            }
        }
        let mut flood = Flood { knows };
        let used = engine.run_until(&mut flood, 1000, |b| b.knows.iter().all(|&k| k));
        assert!(flood.knows.iter().all(|&k| k), "token reached everyone");
        assert!(used <= 5 * 5, "at most n rounds per hop, got {used}");
        assert_eq!(engine.stats().rounds, used);
    }

    #[test]
    fn engine_counts_transmissions_and_receptions() {
        let net = line(2, 0.5);
        let mut engine = Engine::new(&net);
        let mut b = FnBehavior {
            tx: |_: &Network, v: usize, _: u64| (v == 0).then_some(42u32),
            rx: |_: &Network, _: usize, _: u64, _: usize, m: &u32| assert_eq!(*m, 42),
        };
        engine.run(&mut b, 3);
        let s = engine.stats();
        assert_eq!(s.rounds, 3);
        assert_eq!(s.transmissions, 3);
        assert_eq!(s.receptions, 3);
        assert_eq!(engine.round(), 3);
    }

    #[test]
    fn backends_are_selectable_and_tracked() {
        let net = line(3, 0.6); // node 2 at 1.2 > range: exactly one hearer
        for kind in crate::radio::ResolverKind::ALL {
            let mut engine = Engine::with_resolver_kind(&net, kind);
            assert_eq!(engine.resolver_kind(), kind);
            let mut b = FnBehavior {
                tx: |_: &Network, v: usize, _: u64| (v == 0).then_some(1u8),
                rx: |_: &Network, _: usize, _: u64, _: usize, _: &u8| {},
            };
            engine.run(&mut b, 2);
            assert_eq!(engine.resolver_stats().rounds, 2);
            let lr = engine.last_round_stats();
            assert_eq!(lr.round, 1);
            assert_eq!(lr.transmissions, 1);
            assert_eq!(lr.receptions, 1, "node 1 hears node 0 ({kind})");
        }
    }

    #[test]
    fn stats_accumulate_across_sequential_behaviors() {
        // The engine outlives individual behaviors: a protocol stack runs
        // stage after stage on one engine, and EngineStats / RoundStats /
        // the phase table must all account across that whole sequence.
        let net = line(2, 0.5);
        let mut engine = Engine::new(&net);
        let recorder = dcluster_obs::shared(dcluster_obs::Recorder::new());
        engine.set_tracer(recorder.clone());

        engine.begin_phase("chatter");
        let mut chatter = FnBehavior {
            tx: |_: &Network, v: usize, _: u64| (v == 0).then_some(7u8),
            rx: |_: &Network, _: usize, _: u64, _: usize, m: &u8| assert_eq!(*m, 7),
        };
        engine.run(&mut chatter, 3);
        engine.end_phase();

        engine.begin_phase("silence");
        let mut silence = FnBehavior {
            tx: |_: &Network, _: usize, _: u64| None::<u8>,
            rx: |_: &Network, _: usize, _: u64, _: usize, _: &u8| {},
        };
        engine.run(&mut silence, 2);
        engine.end_phase();

        // Cumulative stats span both behaviors.
        let s = engine.stats();
        assert_eq!(s.rounds, 5);
        assert_eq!(s.transmissions, 3);
        assert_eq!(s.receptions, 3);
        assert_eq!(engine.round(), 5);
        // Last-round stats describe the final (silent) round only.
        let lr = engine.last_round_stats();
        assert_eq!(lr.round, 4);
        assert_eq!(lr.transmissions, 0);
        assert_eq!(lr.receptions, 0);
        // The phase table kept the two stages apart, in first-seen order.
        let phases = engine.phase_table().summaries();
        assert_eq!(phases.len(), 2);
        assert_eq!(
            (phases[0].phase.as_str(), phases[0].rounds, phases[0].tx),
            ("chatter", 3, 3)
        );
        assert_eq!(
            (phases[1].phase.as_str(), phases[1].rounds, phases[1].tx),
            ("silence", 2, 0)
        );
        // The tracer saw every round plus both span brackets.
        let rec = recorder.borrow();
        let kinds: Vec<&str> = rec.events().iter().map(|e| e.kind()).collect();
        assert_eq!(kinds.iter().filter(|k| **k == "round").count(), 5);
        assert_eq!(kinds.iter().filter(|k| **k == "phase_start").count(), 2);
        assert_eq!(kinds.iter().filter(|k| **k == "phase_end").count(), 2);
    }

    #[test]
    fn run_until_stops_immediately_when_done() {
        let net = line(2, 0.5);
        let mut engine = Engine::new(&net);
        let mut b = FnBehavior {
            tx: |_: &Network, _: usize, _: u64| None::<u8>,
            rx: |_: &Network, _: usize, _: u64, _: usize, _: &u8| {},
        };
        let used = engine.run_until(&mut b, 100, |_| true);
        assert_eq!(used, 0);
    }
}
