//! Deterministic pseudo-randomness.
//!
//! The library must be bit-for-bit reproducible across runs and platforms:
//! randomized selector families are instantiated from *fixed seeds that are
//! part of the protocol* (every node derives the same family), and all
//! experiments are seeded. We therefore ship a tiny, well-understood
//! generator (SplitMix64, Steele et al. 2014) instead of depending on an
//! external RNG crate whose stream could change between versions.

/// SplitMix64 step: advances `state` and returns the next 64-bit output.
///
/// This is the reference algorithm from Steele, Lea & Flood, "Fast
/// splittable pseudorandom number generators" (OOPSLA 2014).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless 64-bit mix of a seed and a sequence of words.
///
/// Used for O(1) membership tests of randomized selector families: the
/// family is *defined* as `member(round, id) ⇔ hash64(seed, &[round, id]) <
/// threshold`, so no set is ever materialized.
#[inline]
pub fn hash64(seed: u64, words: &[u64]) -> u64 {
    let mut s = seed ^ 0xD1B5_4A32_D192_ED03;
    let mut acc = splitmix64(&mut s);
    for &w in words {
        let mut t = acc ^ w.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        acc = splitmix64(&mut t);
    }
    acc
}

/// Stateless Bernoulli trial: true with probability `p`, decided by
/// hashing `seed` and `words`. The dynamics subsystem's churn schedules
/// are *defined* through this — "node `v` crashes in epoch `e` iff
/// `hash_chance(seed, &[e, v], p)`" — so every component (and every
/// re-run) sees the same deterministic event stream without materializing
/// it.
#[inline]
pub fn hash_chance(seed: u64, words: &[u64], p: f64) -> bool {
    ((hash64(seed, words) >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
}

/// A small deterministic PRNG (SplitMix64 stream).
///
/// ```
/// use dcluster_sim::rng::Rng64;
/// let mut a = Rng64::new(1);
/// let mut b = Rng64::new(1);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derives an independent child generator (for parallel sub-streams).
    pub fn fork(&mut self, tag: u64) -> Self {
        Self {
            state: hash64(self.next_u64(), &[tag]),
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn range_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "range_u64 requires n > 0");
        // Lemire-style rejection-free for our (non-cryptographic) purposes:
        // widening multiply keeps bias below 2^-64, irrelevant here.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[0, n)`.
    #[inline]
    pub fn range_usize(&mut self, n: usize) -> usize {
        self.range_u64(n as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal via Box–Muller (one value per call).
    pub fn next_gaussian(&mut self) -> f64 {
        let u1 = self.next_f64().max(1e-300);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.range_usize(i + 1);
            xs.swap(i, j);
        }
    }

    /// Samples `k` distinct values from `0..n` (k ≤ n), in random order.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_distinct(&mut self, n: u64, k: usize) -> Vec<u64> {
        assert!(
            k as u64 <= n,
            "cannot sample {k} distinct values from 0..{n}"
        );
        if (k as u64) * 3 >= n {
            // Dense case: shuffle a full range prefix.
            let mut all: Vec<u64> = (0..n).collect();
            self.shuffle(&mut all);
            all.truncate(k);
            all
        } else {
            // Sparse case: rejection sampling with a set.
            let mut seen = std::collections::HashSet::with_capacity(k * 2); // lint:allow(D1, reason = "rejection-sampling dedup; output order set by the draw sequence")
            let mut out = Vec::with_capacity(k);
            while out.len() < k {
                let v = self.range_u64(n);
                if seen.insert(v) {
                    out.push(v);
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 0 from the public-domain C version.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        let mut c = Rng64::new(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_is_in_bounds_and_roughly_uniform() {
        let mut r = Rng64::new(11);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.range_usize(10)] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn sample_distinct_yields_distinct_values() {
        let mut r = Rng64::new(5);
        for &(n, k) in &[(100u64, 10usize), (20, 20), (1_000_000, 50)] {
            let s = r.sample_distinct(n, k);
            assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), k);
            assert!(s.iter().all(|&v| v < n));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng64::new(9);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn gaussian_has_sane_moments() {
        let mut r = Rng64::new(123);
        let n = 50_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.next_gaussian();
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn hash_chance_hits_its_probability() {
        let mut hits = 0usize;
        for e in 0..1000u64 {
            for v in 0..100u64 {
                if hash_chance(42, &[e, v], 0.1) {
                    hits += 1;
                }
            }
        }
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate} far from 0.1");
        assert!(!hash_chance(1, &[2, 3], 0.0));
        assert!(hash_chance(1, &[2, 3], 1.0));
        assert_eq!(hash_chance(1, &[2, 3], 0.5), hash_chance(1, &[2, 3], 0.5));
    }

    #[test]
    fn hash64_depends_on_all_words() {
        let a = hash64(1, &[1, 2, 3]);
        assert_ne!(a, hash64(1, &[1, 2, 4]));
        assert_ne!(a, hash64(1, &[0, 2, 3]));
        assert_ne!(a, hash64(2, &[1, 2, 3]));
        assert_eq!(a, hash64(1, &[1, 2, 3]));
    }
}
