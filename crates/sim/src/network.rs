//! Static description of a deployed wireless network.

use crate::graph::Graph;
use crate::grid::Grid;
use crate::point::Point;
use crate::SinrParams;
use std::collections::HashMap;
use std::fmt;

/// Error building a [`Network`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// The deployment contains no nodes.
    Empty,
    /// Two nodes share the same identifier.
    DuplicateId(u64),
    /// An identifier is zero or exceeds `max_id` (IDs live in `[1, N]`).
    IdOutOfRange(u64),
    /// `ids` and `points` have different lengths.
    LengthMismatch {
        /// Number of deployment points.
        points: usize,
        /// Number of identifiers supplied.
        ids: usize,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::Empty => write!(f, "deployment contains no nodes"),
            NetworkError::DuplicateId(id) => write!(f, "duplicate node id {id}"),
            NetworkError::IdOutOfRange(id) => {
                write!(f, "node id {id} outside the allowed range [1, N]")
            }
            NetworkError::LengthMismatch { points, ids } => {
                write!(f, "{points} points but {ids} ids")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// An immutable deployed network: node positions, identifiers in `[1, N]`
/// (the paper's ID space with `N = n^{O(1)}`), SINR parameters, and cached
/// geometric structures (spatial grid, communication graph).
///
/// Nodes are referred to by *index* (`0..n`) internally; messages and
/// transmission schedules use the paper *IDs*. [`Network::id`] and
/// [`Network::index_of`] translate.
#[derive(Debug, Clone)]
pub struct Network {
    points: Vec<Point>,
    ids: Vec<u64>,
    max_id: u64,
    params: SinrParams,
    grid: Grid,
    comm: Graph,
    id_to_idx: HashMap<u64, usize>,
}

impl Network {
    /// Starts building a network over the given positions.
    pub fn builder(points: Vec<Point>) -> NetworkBuilder {
        NetworkBuilder {
            points,
            ids: None,
            max_id: None,
            params: SinrParams::default(),
            seed: 0,
        }
    }

    /// Number of nodes `n`.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff the network has no nodes (builders reject this, so `false`
    /// for any constructed network).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Position of node `v` (by index).
    #[inline]
    pub fn pos(&self, v: usize) -> Point {
        self.points[v]
    }

    /// All positions, indexable by node index.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Paper ID of node `v` (in `[1, N]`).
    #[inline]
    pub fn id(&self, v: usize) -> u64 {
        self.ids[v]
    }

    /// All ids, indexable by node index.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Index of the node with paper ID `id`, if present.
    pub fn index_of(&self, id: u64) -> Option<usize> {
        self.id_to_idx.get(&id).copied()
    }

    /// The ID-space bound `N` (all IDs are ≤ `N`; schedules are built over
    /// `[N]`).
    pub fn max_id(&self) -> u64 {
        self.max_id
    }

    /// SINR model parameters.
    pub fn params(&self) -> &SinrParams {
        &self.params
    }

    /// Spatial index over all nodes (cell size = transmission range).
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The communication graph: edges between nodes at distance ≤
    /// `range·(1−ε)` (paper §1.1).
    pub fn comm_graph(&self) -> &Graph {
        &self.comm
    }

    /// Nodes within distance `r` of node `v` **excluding** `v` itself.
    ///
    /// Allocates a fresh vector; hot paths should use
    /// [`Network::neighbors_within_into`] with a reused buffer instead.
    pub fn neighbors_within(&self, v: usize, r: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.neighbors_within_into(v, r, &mut out);
        out
    }

    /// Collects the nodes within distance `r` of node `v` (excluding `v`)
    /// into a caller-provided buffer, clearing it first — the
    /// allocation-free form for per-node loops.
    pub fn neighbors_within_into(&self, v: usize, r: f64, out: &mut Vec<usize>) {
        out.clear();
        out.extend(
            self.grid
                .within(&self.points, self.points[v], r)
                .filter(|&u| u != v),
        );
    }

    /// The scale-aware default [`ResolverKind`](crate::radio::ResolverKind)
    /// for this network: dense or large deployments default to the
    /// cell-aggregated backend (whose per-receiver cost is bounded by
    /// occupied cells, not `|T|`); small sparse ones keep the plain grid
    /// backend and skip the per-round aggregation overhead. All backends
    /// return identical receptions, so this is purely a performance choice.
    pub fn default_resolver(&self) -> crate::radio::ResolverKind {
        let n = self.len();
        if n >= 4096 || (n >= 512 && self.max_degree() >= 64) {
            crate::radio::ResolverKind::Aggregated
        } else {
            crate::radio::ResolverKind::Grid
        }
    }

    /// Network density Γ: the largest number of nodes in a unit ball
    /// (radius = transmission range), measured over balls centered at nodes.
    ///
    /// Any unit ball containing `m` nodes yields a node-centered ball of
    /// radius 2 containing those `m` nodes, so node-centered measurements
    /// bound the true density within a constant factor (Fact 1 of the paper
    /// ties density and communication-graph degree the same way).
    pub fn density(&self) -> usize {
        let r = self.params.range();
        (0..self.len())
            .map(|v| self.grid.count_within(&self.points, self.points[v], r))
            .max()
            .unwrap_or(0)
    }

    /// Maximum communication-graph degree ∆.
    pub fn max_degree(&self) -> usize {
        self.comm.max_degree()
    }
}

/// Builder for [`Network`] (see [`Network::builder`]).
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    points: Vec<Point>,
    ids: Option<Vec<u64>>,
    max_id: Option<u64>,
    params: SinrParams,
    seed: u64,
}

impl NetworkBuilder {
    /// Sets SINR parameters (default: [`SinrParams::default`]).
    pub fn params(mut self, params: SinrParams) -> Self {
        self.params = params;
        self
    }

    /// Sets explicit node IDs (must be distinct, in `[1, max_id]`).
    pub fn ids(mut self, ids: Vec<u64>) -> Self {
        self.ids = Some(ids);
        self
    }

    /// Sets the ID-space bound `N` (default: `max(4, n²)` when IDs are
    /// auto-assigned, or the largest explicit ID).
    pub fn max_id(mut self, max_id: u64) -> Self {
        self.max_id = Some(max_id);
        self
    }

    /// Seed used when auto-assigning random distinct IDs; `seed = 0` assigns
    /// the deterministic sequence `1..=n` instead.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Finishes construction.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] if the deployment is empty, IDs are
    /// duplicated/out of range, or lengths mismatch.
    pub fn build(self) -> Result<Network, NetworkError> {
        let n = self.points.len();
        if n == 0 {
            return Err(NetworkError::Empty);
        }
        let max_id = self.max_id.unwrap_or_else(|| {
            self.ids
                .as_ref()
                .map(|ids| ids.iter().copied().max().unwrap_or(0))
                .unwrap_or((n as u64 * n as u64).max(4))
        });
        let ids = match self.ids {
            Some(ids) => {
                if ids.len() != n {
                    return Err(NetworkError::LengthMismatch {
                        points: n,
                        ids: ids.len(),
                    });
                }
                ids
            }
            None if self.seed == 0 => (1..=n as u64).collect(),
            None => {
                let mut rng = crate::rng::Rng64::new(self.seed);
                rng.sample_distinct(max_id, n)
                    .into_iter()
                    .map(|v| v + 1)
                    .collect()
            }
        };
        let mut id_to_idx = HashMap::with_capacity(n);
        for (i, &id) in ids.iter().enumerate() {
            if id == 0 || id > max_id.max(ids.len() as u64) {
                return Err(NetworkError::IdOutOfRange(id));
            }
            if id_to_idx.insert(id, i).is_some() {
                return Err(NetworkError::DuplicateId(id));
            }
        }
        let range = self.params.range();
        let grid = Grid::build(&self.points, range);
        let comm_r = self.params.comm_radius();
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (v, nbrs) in adj.iter_mut().enumerate() {
            for u in grid.within(&self.points, self.points[v], comm_r) {
                if u != v {
                    nbrs.push(u as u32);
                }
            }
            nbrs.sort_unstable();
        }
        Ok(Network {
            points: self.points,
            ids,
            max_id: max_id.max(n as u64),
            params: self.params,
            grid,
            comm: Graph::from_adjacency(adj),
            id_to_idx,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(n_side: usize, spacing: f64) -> Vec<Point> {
        let mut pts = Vec::new();
        for i in 0..n_side {
            for j in 0..n_side {
                pts.push(Point::new(i as f64 * spacing, j as f64 * spacing));
            }
        }
        pts
    }

    #[test]
    fn build_assigns_sequential_ids_by_default() {
        let net = Network::builder(square(3, 0.5)).build().unwrap();
        assert_eq!(net.len(), 9);
        assert_eq!(net.id(0), 1);
        assert_eq!(net.id(8), 9);
        assert_eq!(net.index_of(5), Some(4));
        assert_eq!(net.index_of(100), None);
    }

    #[test]
    fn random_ids_are_distinct_and_in_range() {
        let net = Network::builder(square(4, 0.5))
            .seed(99)
            .max_id(1000)
            .build()
            .unwrap();
        let mut ids = net.ids().to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 16);
        assert!(ids.iter().all(|&i| (1..=1000).contains(&i)));
    }

    #[test]
    fn comm_graph_uses_one_minus_epsilon_radius() {
        // Two nodes at distance 0.85 with ε=0.2 (comm radius 0.8): no edge,
        // but at 0.75: edge.
        let near = Network::builder(vec![Point::new(0.0, 0.0), Point::new(0.75, 0.0)])
            .build()
            .unwrap();
        assert_eq!(near.comm_graph().degree(0), 1);
        let far = Network::builder(vec![Point::new(0.0, 0.0), Point::new(0.85, 0.0)])
            .build()
            .unwrap();
        assert_eq!(far.comm_graph().degree(0), 0);
    }

    #[test]
    fn density_counts_unit_ball_population() {
        // 5 nodes clustered within 0.1, one far away.
        let mut pts: Vec<Point> = (0..5).map(|i| Point::new(0.01 * i as f64, 0.0)).collect();
        pts.push(Point::new(10.0, 10.0));
        let net = Network::builder(pts).build().unwrap();
        assert_eq!(net.density(), 5);
    }

    #[test]
    fn neighbors_within_buffer_reuse_matches_allocating_form() {
        let net = Network::builder(square(5, 0.3)).build().unwrap();
        let mut buf = vec![999usize; 7]; // stale content must be cleared
        for v in 0..net.len() {
            net.neighbors_within_into(v, 0.5, &mut buf);
            let mut a = buf.clone();
            let mut b = net.neighbors_within(v, 0.5);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
            assert!(!a.contains(&v), "self excluded");
        }
    }

    #[test]
    fn default_resolver_scales_with_size() {
        let small = Network::builder(square(3, 0.5)).build().unwrap();
        assert_eq!(
            small.default_resolver(),
            crate::radio::ResolverKind::Grid,
            "tiny nets skip the aggregation overhead"
        );
        let big = Network::builder(square(64, 0.5)).build().unwrap();
        assert_eq!(
            big.default_resolver(),
            crate::radio::ResolverKind::Aggregated,
            "4096-node nets default to cell aggregation"
        );
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        let err = Network::builder(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)])
            .ids(vec![3, 3])
            .build()
            .unwrap_err();
        assert_eq!(err, NetworkError::DuplicateId(3));
    }

    #[test]
    fn empty_deployment_is_rejected() {
        assert_eq!(
            Network::builder(vec![]).build().unwrap_err(),
            NetworkError::Empty
        );
    }

    #[test]
    fn zero_id_is_rejected() {
        let err = Network::builder(vec![Point::new(0.0, 0.0)])
            .ids(vec![0])
            .build()
            .unwrap_err();
        assert_eq!(err, NetworkError::IdOutOfRange(0));
    }
}
