//! Description of a deployed wireless network.
//!
//! A [`Network`] is built once from a deployment and then queried by the
//! protocols; under the dynamics subsystem it can also be **mutated
//! incrementally** ([`Network::move_node`], [`Network::set_power`]): the
//! spatial grid and the communication graph are patched in `O(Δ)` per
//! touched node instead of rebuilt, and the result is structurally
//! identical to a fresh build over the updated deployment (the dynamics
//! crate's audits enforce this).
//!
//! Nodes may carry **heterogeneous transmit powers** (builder:
//! [`NetworkBuilder::powers`]); all SINR evaluation goes through
//! [`Network::signal_from`], and per-node ranges through
//! [`Network::range_of`]. With uniform power (the paper's setting and the
//! default) every formula reduces bit-for-bit to the classic
//! `SinrParams::signal` path.

use crate::graph::Graph;
use crate::grid::Grid;
use crate::point::Point;
use crate::SinrParams;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-global source of network mutation stamps. Every build and every
/// incremental mutation draws a fresh value, so a stamp observed once is
/// never reissued — caches keyed on it can trust a match absolutely, even
/// across [`Network::clone`]s (a clone shares its origin's stamp until the
/// first mutation gives it a fresh one).
static STAMP_COUNTER: AtomicU64 = AtomicU64::new(1);

fn next_stamp() -> u64 {
    STAMP_COUNTER.fetch_add(1, Ordering::Relaxed)
}

/// Error building a [`Network`].
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// The deployment contains no nodes.
    Empty,
    /// Two nodes share the same identifier.
    DuplicateId(u64),
    /// An identifier is zero or exceeds `max_id` (IDs live in `[1, N]`).
    IdOutOfRange(u64),
    /// `ids` and `points` have different lengths.
    LengthMismatch {
        /// Number of deployment points.
        points: usize,
        /// Number of identifiers supplied.
        ids: usize,
    },
    /// `powers` and `points` have different lengths.
    PowerLengthMismatch {
        /// Number of deployment points.
        points: usize,
        /// Number of powers supplied.
        powers: usize,
    },
    /// A transmit power is not strictly positive and finite.
    BadPower {
        /// Node index with the offending power.
        node: usize,
        /// The offending value.
        power: f64,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::Empty => write!(f, "deployment contains no nodes"),
            NetworkError::DuplicateId(id) => write!(f, "duplicate node id {id}"),
            NetworkError::IdOutOfRange(id) => {
                write!(f, "node id {id} outside the allowed range [1, N]")
            }
            NetworkError::LengthMismatch { points, ids } => {
                write!(f, "{points} points but {ids} ids")
            }
            NetworkError::PowerLengthMismatch { points, powers } => {
                write!(f, "{points} points but {powers} powers")
            }
            NetworkError::BadPower { node, power } => {
                write!(f, "node {node} has non-positive power {power}")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// An immutable deployed network: node positions, identifiers in `[1, N]`
/// (the paper's ID space with `N = n^{O(1)}`), SINR parameters, and cached
/// geometric structures (spatial grid, communication graph).
///
/// Nodes are referred to by *index* (`0..n`) internally; messages and
/// transmission schedules use the paper *IDs*. [`Network::id`] and
/// [`Network::index_of`] translate.
#[derive(Debug, Clone)]
pub struct Network {
    points: Vec<Point>,
    ids: Vec<u64>,
    max_id: u64,
    params: SinrParams,
    /// Per-node transmit powers (all equal to `params.power` unless the
    /// builder set heterogeneous ones).
    powers: Vec<f64>,
    /// Cached per-node transmission ranges `(powers[v]/(β·noise))^{1/α}`.
    ranges: Vec<f64>,
    /// Cached `max(ranges)` — the candidate-search radius of the resolvers.
    max_range: f64,
    /// Number of nodes whose power differs from `params.power`
    /// (0 ⇔ the paper's uniform-power setting) — maintained incrementally
    /// so `set_power` stays `O(Δ)`.
    non_model_power: usize,
    grid: Grid,
    comm: Graph,
    id_to_idx: HashMap<u64, usize>, // lint:allow(D1, reason = "id-to-index lookup table; never iterated")
    /// Mutation stamp: process-globally unique, replaced on every
    /// geometry/power mutation. See [`Network::stamp`].
    stamp: u64,
}

impl Network {
    /// Starts building a network over the given positions.
    pub fn builder(points: Vec<Point>) -> NetworkBuilder {
        NetworkBuilder {
            points,
            ids: None,
            max_id: None,
            params: SinrParams::default(),
            powers: None,
            seed: 0,
        }
    }

    /// Number of nodes `n`.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff the network has no nodes (builders reject this, so `false`
    /// for any constructed network).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Position of node `v` (by index).
    #[inline]
    pub fn pos(&self, v: usize) -> Point {
        self.points[v]
    }

    /// All positions, indexable by node index.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Paper ID of node `v` (in `[1, N]`).
    #[inline]
    pub fn id(&self, v: usize) -> u64 {
        self.ids[v]
    }

    /// All ids, indexable by node index.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Index of the node with paper ID `id`, if present.
    pub fn index_of(&self, id: u64) -> Option<usize> {
        self.id_to_idx.get(&id).copied()
    }

    /// The ID-space bound `N` (all IDs are ≤ `N`; schedules are built over
    /// `[N]`).
    pub fn max_id(&self) -> u64 {
        self.max_id
    }

    /// SINR model parameters.
    pub fn params(&self) -> &SinrParams {
        &self.params
    }

    /// Spatial index over all nodes (cell size = transmission range).
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The communication graph: edges between nodes at distance ≤
    /// `range·(1−ε)` (paper §1.1).
    pub fn comm_graph(&self) -> &Graph {
        &self.comm
    }

    /// Nodes within distance `r` of node `v` **excluding** `v` itself.
    ///
    /// Allocates a fresh vector; hot paths should use
    /// [`Network::neighbors_within_into`] with a reused buffer instead.
    pub fn neighbors_within(&self, v: usize, r: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.neighbors_within_into(v, r, &mut out);
        out
    }

    /// Collects the nodes within distance `r` of node `v` (excluding `v`)
    /// into a caller-provided buffer, clearing it first — the
    /// allocation-free form for per-node loops.
    pub fn neighbors_within_into(&self, v: usize, r: f64, out: &mut Vec<usize>) {
        out.clear();
        out.extend(
            self.grid
                .within(&self.points, self.points[v], r)
                .filter(|&u| u != v),
        );
    }

    /// The scale-aware default [`ResolverKind`](crate::radio::ResolverKind)
    /// for this network: dense or large deployments default to the
    /// cell-aggregated backend (whose per-receiver cost is bounded by
    /// occupied cells, not `|T|`); small sparse ones keep the plain grid
    /// backend and skip the per-round aggregation overhead. All backends
    /// return identical receptions, so this is purely a performance choice.
    pub fn default_resolver(&self) -> crate::radio::ResolverKind {
        let n = self.len();
        if n >= 4096 || (n >= 512 && self.max_degree() >= 64) {
            crate::radio::ResolverKind::Aggregated
        } else {
            crate::radio::ResolverKind::Grid
        }
    }

    /// Network density Γ: the largest number of nodes in a unit ball
    /// (radius = transmission range), measured over balls centered at nodes.
    ///
    /// Any unit ball containing `m` nodes yields a node-centered ball of
    /// radius 2 containing those `m` nodes, so node-centered measurements
    /// bound the true density within a constant factor (Fact 1 of the paper
    /// ties density and communication-graph degree the same way).
    pub fn density(&self) -> usize {
        let r = self.params.range();
        (0..self.len())
            .map(|v| self.grid.count_within(&self.points, self.points[v], r))
            .max()
            .unwrap_or(0)
    }

    /// Maximum communication-graph degree ∆.
    pub fn max_degree(&self) -> usize {
        self.comm.max_degree()
    }

    /// Transmit power of node `v`.
    #[inline]
    pub fn power_of(&self, v: usize) -> f64 {
        self.powers[v]
    }

    /// All transmit powers, indexable by node index.
    pub fn powers(&self) -> &[f64] {
        &self.powers
    }

    /// True iff every node transmits at the model power `params.power`
    /// (the paper's uniform-power setting). Resolvers use this to keep the
    /// nearest-transmitter fast path.
    #[inline]
    pub fn has_uniform_power(&self) -> bool {
        self.non_model_power == 0
    }

    /// Transmission range of node `v`: `(P_v / (β·noise))^{1/α}` — the
    /// farthest distance at which `v` alone can be decoded.
    #[inline]
    pub fn range_of(&self, v: usize) -> f64 {
        self.ranges[v]
    }

    /// The largest per-node transmission range (= `params.range()` under
    /// uniform power). Any decodable transmitter lies within this radius of
    /// its receiver, so it bounds every candidate search.
    #[inline]
    pub fn max_range(&self) -> f64 {
        self.max_range
    }

    /// Communication radius of node `v`: `range_of(v)·(1−ε)`. A comm-graph
    /// edge `{u, v}` requires `d(u, v) ≤ min(comm radius of u, of v)` — a
    /// bidirectional link; under uniform power this is the paper's
    /// distance-`(1−ε)` rule.
    #[inline]
    pub fn comm_radius_of(&self, v: usize) -> f64 {
        self.ranges[v] * (1.0 - self.params.epsilon)
    }

    /// Received signal strength of transmitter `w` at distance `d`:
    /// `P_w / d^α`. Bit-identical to [`SinrParams::signal`] when `w`
    /// transmits at the model power.
    #[inline]
    pub fn signal_from(&self, w: usize, d: f64) -> f64 {
        let d = d.max(1e-12);
        self.powers[w] / d.powf(self.params.alpha)
    }

    /// An opaque mutation stamp for cache invalidation: two observations of
    /// the same stamp guarantee the network's geometry and powers have not
    /// changed in between. Stamps are drawn from a process-global counter —
    /// assigned at build, replaced by [`Network::move_node`] and
    /// [`Network::set_power`] — and never reissued, so distinct `Network`
    /// values (including fresh builds over identical deployments) never
    /// alias each other's stamps.
    #[inline]
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// Moves node `v` to `to`, patching the spatial grid and the
    /// communication graph incrementally (`O(Δ)` plus the grid hash ops).
    /// The result is structurally identical to rebuilding the network from
    /// the updated deployment.
    pub fn move_node(&mut self, v: usize, to: Point) {
        self.stamp = next_stamp();
        let from = self.points[v];
        self.grid.move_point(v, from, to);
        self.points[v] = to;
        self.refresh_comm_edges(v);
    }

    /// Sets node `v`'s transmit power, recomputing its range and patching
    /// the communication edges incident to `v` — `O(Δ)` amortized: the
    /// cached `max_range` only needs a full rescan when the current
    /// maximum shrinks.
    ///
    /// # Panics
    ///
    /// Panics if `power` is not strictly positive and finite.
    pub fn set_power(&mut self, v: usize, power: f64) {
        assert!(
            power > 0.0 && power.is_finite(),
            "node {v} power must be positive, got {power}"
        );
        self.stamp = next_stamp();
        let old_range = self.ranges[v];
        if self.powers[v] != self.params.power {
            self.non_model_power -= 1;
        }
        if power != self.params.power {
            self.non_model_power += 1;
        }
        self.powers[v] = power;
        let new_range = range_for(power, &self.params);
        self.ranges[v] = new_range;
        if new_range >= self.max_range {
            self.max_range = new_range;
        } else if old_range == self.max_range {
            // The (possibly unique) maximum shrank: rescan.
            self.max_range = self.ranges.iter().copied().fold(0.0, f64::max);
        }
        self.refresh_comm_edges(v);
    }

    /// Recomputes the communication edges incident to `v` after a move or a
    /// power change (only those edges can have changed).
    fn refresh_comm_edges(&mut self, v: usize) {
        let old: Vec<u32> = self.comm.neighbors(v).to_vec();
        for u in old {
            self.comm.remove_edge(v, u as usize);
        }
        let cr_v = self.comm_radius_of(v);
        let pv = self.points[v];
        // Symmetric squared-distance test (`d² ≤ cr_u²` rather than
        // `d ≤ cr_u`): evaluating the pair from either endpoint gives the
        // same floating-point answer, so an incremental refresh of one
        // endpoint agrees exactly with a full rebuild.
        let nbrs: Vec<usize> = self.grid.within(&self.points, pv, cr_v).collect();
        for u in nbrs {
            let cr_u = self.comm_radius_of(u);
            if u != v && self.points[u].dist_sq(pv) <= cr_u * cr_u {
                self.comm.add_edge(v, u);
            }
        }
    }
}

/// Transmission range for a transmit power under the model parameters.
fn range_for(power: f64, params: &SinrParams) -> f64 {
    (power / (params.beta * params.noise)).powf(1.0 / params.alpha)
}

/// Builder for [`Network`] (see [`Network::builder`]).
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    points: Vec<Point>,
    ids: Option<Vec<u64>>,
    max_id: Option<u64>,
    params: SinrParams,
    powers: Option<Vec<f64>>,
    seed: u64,
}

impl NetworkBuilder {
    /// Sets SINR parameters (default: [`SinrParams::default`]).
    pub fn params(mut self, params: SinrParams) -> Self {
        self.params = params;
        self
    }

    /// Sets heterogeneous per-node transmit powers (default: every node at
    /// the model power `params.power`). Each power must be strictly
    /// positive and finite.
    pub fn powers(mut self, powers: Vec<f64>) -> Self {
        self.powers = Some(powers);
        self
    }

    /// Sets explicit node IDs (must be distinct, in `[1, max_id]`).
    pub fn ids(mut self, ids: Vec<u64>) -> Self {
        self.ids = Some(ids);
        self
    }

    /// Sets the ID-space bound `N` (default: `max(4, n²)` when IDs are
    /// auto-assigned, or the largest explicit ID).
    pub fn max_id(mut self, max_id: u64) -> Self {
        self.max_id = Some(max_id);
        self
    }

    /// Seed used when auto-assigning random distinct IDs; `seed = 0` assigns
    /// the deterministic sequence `1..=n` instead.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Finishes construction.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] if the deployment is empty, IDs are
    /// duplicated/out of range, or lengths mismatch.
    pub fn build(self) -> Result<Network, NetworkError> {
        let n = self.points.len();
        if n == 0 {
            return Err(NetworkError::Empty);
        }
        let max_id = self.max_id.unwrap_or_else(|| {
            self.ids
                .as_ref()
                .map(|ids| ids.iter().copied().max().unwrap_or(0))
                .unwrap_or((n as u64 * n as u64).max(4))
        });
        let ids = match self.ids {
            Some(ids) => {
                if ids.len() != n {
                    return Err(NetworkError::LengthMismatch {
                        points: n,
                        ids: ids.len(),
                    });
                }
                ids
            }
            None if self.seed == 0 => (1..=n as u64).collect(),
            None => {
                let mut rng = crate::rng::Rng64::new(self.seed);
                rng.sample_distinct(max_id, n)
                    .into_iter()
                    .map(|v| v + 1)
                    .collect()
            }
        };
        let mut id_to_idx = HashMap::with_capacity(n); // lint:allow(D1, reason = "id-to-index lookup table; never iterated")
        for (i, &id) in ids.iter().enumerate() {
            if id == 0 || id > max_id.max(ids.len() as u64) {
                return Err(NetworkError::IdOutOfRange(id));
            }
            if id_to_idx.insert(id, i).is_some() {
                return Err(NetworkError::DuplicateId(id));
            }
        }
        let powers = match self.powers {
            Some(powers) => {
                if powers.len() != n {
                    return Err(NetworkError::PowerLengthMismatch {
                        points: n,
                        powers: powers.len(),
                    });
                }
                if let Some(node) = powers.iter().position(|p| !(p.is_finite() && *p > 0.0)) {
                    return Err(NetworkError::BadPower {
                        node,
                        power: powers[node],
                    });
                }
                powers
            }
            None => vec![self.params.power; n],
        };
        let ranges: Vec<f64> = powers.iter().map(|&p| range_for(p, &self.params)).collect();
        let max_range = ranges.iter().copied().fold(0.0, f64::max);
        let non_model_power = powers.iter().filter(|&&p| p != self.params.power).count();
        let range = self.params.range();
        let grid = Grid::build(&self.points, range);
        let eps = self.params.epsilon;
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (v, nbrs) in adj.iter_mut().enumerate() {
            // Edge rule: d² ≤ min(cr_u, cr_v)² — evaluated with the same
            // squared-distance comparisons as the incremental
            // `refresh_comm_edges`, so mutate-then-query equals
            // rebuild-then-query exactly.
            let cr_v = ranges[v] * (1.0 - eps);
            for u in grid.within(&self.points, self.points[v], cr_v) {
                let cr_u = ranges[u] * (1.0 - eps);
                if u != v && self.points[u].dist_sq(self.points[v]) <= cr_u * cr_u {
                    nbrs.push(u as u32);
                }
            }
            nbrs.sort_unstable();
        }
        Ok(Network {
            points: self.points,
            ids,
            max_id: max_id.max(n as u64),
            params: self.params,
            powers,
            ranges,
            max_range,
            non_model_power,
            grid,
            comm: Graph::from_adjacency(adj),
            id_to_idx,
            stamp: next_stamp(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(n_side: usize, spacing: f64) -> Vec<Point> {
        let mut pts = Vec::new();
        for i in 0..n_side {
            for j in 0..n_side {
                pts.push(Point::new(i as f64 * spacing, j as f64 * spacing));
            }
        }
        pts
    }

    #[test]
    fn build_assigns_sequential_ids_by_default() {
        let net = Network::builder(square(3, 0.5)).build().unwrap();
        assert_eq!(net.len(), 9);
        assert_eq!(net.id(0), 1);
        assert_eq!(net.id(8), 9);
        assert_eq!(net.index_of(5), Some(4));
        assert_eq!(net.index_of(100), None);
    }

    #[test]
    fn random_ids_are_distinct_and_in_range() {
        let net = Network::builder(square(4, 0.5))
            .seed(99)
            .max_id(1000)
            .build()
            .unwrap();
        let mut ids = net.ids().to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 16);
        assert!(ids.iter().all(|&i| (1..=1000).contains(&i)));
    }

    #[test]
    fn comm_graph_uses_one_minus_epsilon_radius() {
        // Two nodes at distance 0.85 with ε=0.2 (comm radius 0.8): no edge,
        // but at 0.75: edge.
        let near = Network::builder(vec![Point::new(0.0, 0.0), Point::new(0.75, 0.0)])
            .build()
            .unwrap();
        assert_eq!(near.comm_graph().degree(0), 1);
        let far = Network::builder(vec![Point::new(0.0, 0.0), Point::new(0.85, 0.0)])
            .build()
            .unwrap();
        assert_eq!(far.comm_graph().degree(0), 0);
    }

    #[test]
    fn density_counts_unit_ball_population() {
        // 5 nodes clustered within 0.1, one far away.
        let mut pts: Vec<Point> = (0..5).map(|i| Point::new(0.01 * i as f64, 0.0)).collect();
        pts.push(Point::new(10.0, 10.0));
        let net = Network::builder(pts).build().unwrap();
        assert_eq!(net.density(), 5);
    }

    #[test]
    fn neighbors_within_buffer_reuse_matches_allocating_form() {
        let net = Network::builder(square(5, 0.3)).build().unwrap();
        let mut buf = vec![999usize; 7]; // stale content must be cleared
        for v in 0..net.len() {
            net.neighbors_within_into(v, 0.5, &mut buf);
            let mut a = buf.clone();
            let mut b = net.neighbors_within(v, 0.5);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
            assert!(!a.contains(&v), "self excluded");
        }
    }

    #[test]
    fn neighbors_within_into_clears_a_prepopulated_buffer_exactly() {
        // The buffer-reuse path must fully replace stale caller content:
        // start from a buffer longer than any result, holding
        // plausible-looking node indices, and reuse it across shrinking
        // radii — each call must leave exactly the fresh result, nothing
        // appended, nothing left over.
        let net = Network::builder(square(6, 0.3)).build().unwrap();
        let mut buf: Vec<usize> = (0..net.len()).collect(); // stale but valid-looking
        let cap_before = buf.capacity();
        for &r in &[1.1, 0.65, 0.31, 0.05] {
            for v in [0, net.len() / 2, net.len() - 1] {
                net.neighbors_within_into(v, r, &mut buf);
                assert_eq!(
                    buf,
                    net.neighbors_within(v, r),
                    "reused buffer differs from the allocating form (v={v}, r={r})"
                );
                assert!(!buf.contains(&v), "self must stay excluded");
            }
        }
        net.neighbors_within_into(0, 0.0, &mut buf);
        assert!(buf.is_empty(), "radius 0 leaves no stale entries behind");
        assert!(
            buf.capacity() >= cap_before.min(net.len()),
            "the whole point of the _into form is keeping the allocation"
        );
    }

    #[test]
    fn default_resolver_scales_with_size() {
        let small = Network::builder(square(3, 0.5)).build().unwrap();
        assert_eq!(
            small.default_resolver(),
            crate::radio::ResolverKind::Grid,
            "tiny nets skip the aggregation overhead"
        );
        let big = Network::builder(square(64, 0.5)).build().unwrap();
        assert_eq!(
            big.default_resolver(),
            crate::radio::ResolverKind::Aggregated,
            "4096-node nets default to cell aggregation"
        );
    }

    #[test]
    fn uniform_power_network_reports_the_model_range() {
        let net = Network::builder(square(3, 0.5)).build().unwrap();
        assert!(net.has_uniform_power());
        assert!((net.max_range() - net.params().range()).abs() < 1e-12);
        for v in 0..net.len() {
            assert_eq!(net.power_of(v), net.params().power);
            assert!((net.range_of(v) - 1.0).abs() < 1e-12);
            assert!((net.comm_radius_of(v) - 0.8).abs() < 1e-12);
            let d = 0.37;
            assert_eq!(net.signal_from(v, d), net.params().signal(d));
        }
    }

    #[test]
    fn comm_edges_require_bidirectional_reach_under_heterogeneous_power() {
        // Node 0 at 8× power (range 2 under α=3) can hear/reach far, but an
        // edge needs BOTH endpoints in range: at distance 0.9 > 0.8 the
        // weak node cannot reach back, so no edge; a weak pair at 0.7 has
        // one.
        let p = SinrParams::default();
        let net = Network::builder(vec![
            Point::new(0.0, 0.0),
            Point::new(0.9, 0.0),
            Point::new(0.9, 0.7),
        ])
        .powers(vec![8.0 * p.power, p.power, p.power])
        .params(p)
        .build()
        .unwrap();
        assert!(!net.has_uniform_power());
        assert!((net.range_of(0) - 2.0).abs() < 1e-12);
        assert!((net.max_range() - 2.0).abs() < 1e-12);
        assert!(!net.comm_graph().has_edge(0, 1), "weak side out of reach");
        assert!(net.comm_graph().has_edge(1, 2), "symmetric weak pair");
        assert!(net.signal_from(0, 0.5) > net.signal_from(1, 0.5));
    }

    #[test]
    fn move_node_matches_rebuild_from_scratch() {
        let mut rng = crate::rng::Rng64::new(17);
        let mut pts = crate::deploy::uniform_square(120, 3.0, &mut rng);
        let powers: Vec<f64> = (0..120)
            .map(|i| SinrParams::default().power * (1.0 + 0.3 * ((i % 5) as f64) / 4.0))
            .collect();
        let mut net = Network::builder(pts.clone())
            .powers(powers.clone())
            .build()
            .unwrap();
        for step in 0..200 {
            let v = rng.range_usize(pts.len());
            let to = Point::new(rng.range_f64(0.0, 3.0), rng.range_f64(0.0, 3.0));
            net.move_node(v, to);
            pts[v] = to;
            if step % 50 == 49 {
                let fresh = Network::builder(pts.clone())
                    .powers(powers.clone())
                    .build()
                    .unwrap();
                assert_eq!(net.grid(), fresh.grid(), "grid diverged at {step}");
                assert_eq!(
                    net.comm_graph(),
                    fresh.comm_graph(),
                    "comm graph diverged at {step}"
                );
            }
        }
    }

    #[test]
    fn set_power_updates_ranges_and_edges() {
        let mut net = Network::builder(vec![Point::new(0.0, 0.0), Point::new(0.9, 0.0)])
            .build()
            .unwrap();
        assert!(!net.comm_graph().has_edge(0, 1), "0.9 > 0.8 comm radius");
        let p = *net.params();
        net.set_power(0, 8.0 * p.power);
        net.set_power(1, 8.0 * p.power);
        assert!(net.comm_graph().has_edge(0, 1), "both ranges now 2");
        assert!(!net.has_uniform_power());
        let fresh = Network::builder(vec![Point::new(0.0, 0.0), Point::new(0.9, 0.0)])
            .powers(vec![8.0 * p.power; 2])
            .build()
            .unwrap();
        assert_eq!(net.comm_graph(), fresh.comm_graph());
        assert_eq!(net.max_range(), fresh.max_range());
        net.set_power(0, p.power);
        net.set_power(1, p.power);
        assert!(net.has_uniform_power(), "restored to the model power");
        assert!(!net.comm_graph().has_edge(0, 1));
    }

    #[test]
    fn bad_powers_are_rejected() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let err = Network::builder(pts.clone())
            .powers(vec![1.0])
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            NetworkError::PowerLengthMismatch {
                points: 2,
                powers: 1
            }
        );
        let err = Network::builder(pts).powers(vec![1.0, -0.5]).build();
        assert!(matches!(err, Err(NetworkError::BadPower { node: 1, .. })));
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        let err = Network::builder(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)])
            .ids(vec![3, 3])
            .build()
            .unwrap_err();
        assert_eq!(err, NetworkError::DuplicateId(3));
    }

    #[test]
    fn empty_deployment_is_rejected() {
        assert_eq!(
            Network::builder(vec![]).build().unwrap_err(),
            NetworkError::Empty
        );
    }

    #[test]
    fn stamps_distinguish_builds_and_change_on_mutation() {
        let mut a = Network::builder(square(3, 0.5)).build().unwrap();
        let b = Network::builder(square(3, 0.5)).build().unwrap();
        assert_ne!(a.stamp(), b.stamp(), "identical builds never alias");
        let clone = a.clone();
        let original = a.stamp();
        assert_eq!(clone.stamp(), original, "a clone shares until mutated");
        a.move_node(0, Point::new(0.1, 0.1));
        assert_ne!(a.stamp(), original, "move_node invalidates");
        let moved = a.stamp();
        a.set_power(0, 2.0 * a.params().power);
        assert_ne!(a.stamp(), moved, "set_power invalidates");
        assert_eq!(clone.stamp(), original, "untouched clone keeps its stamp");
    }

    #[test]
    fn zero_id_is_rejected() {
        let err = Network::builder(vec![Point::new(0.0, 0.0)])
            .ids(vec![0])
            .build()
            .unwrap_err();
        assert_eq!(err, NetworkError::IdOutOfRange(0));
    }
}
