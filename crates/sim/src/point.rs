//! Planar geometry primitives.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A point (or vector) in the Euclidean plane.
///
/// ```
/// use dcluster_sim::Point;
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.dist(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(self, other: Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance (cheaper; use for comparisons).
    #[inline]
    pub fn dist_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Vector length.
    #[inline]
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Midpoint of the segment `self`–`other`.
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// True iff `self` lies in the closed ball `B(center, r)`.
    #[inline]
    pub fn in_ball(self, center: Point, r: f64) -> bool {
        self.dist_sq(center) <= r * r
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    fn mul(self, s: f64) -> Point {
        Point::new(self.x * s, self.y * s)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_and_squared_agree() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-2.0, 6.0);
        assert!((a.dist(b) - 5.0).abs() < 1e-12);
        assert!((a.dist_sq(b) - 25.0).abs() < 1e-12);
        assert_eq!(a.dist(b), b.dist(a));
    }

    #[test]
    fn ball_membership_is_closed() {
        let c = Point::new(0.0, 0.0);
        assert!(Point::new(1.0, 0.0).in_ball(c, 1.0));
        assert!(!Point::new(1.0 + 1e-9, 0.0).in_ball(c, 1.0));
    }

    #[test]
    fn vector_ops() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(b - a, Point::new(2.0, -3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(a.midpoint(b), Point::new(2.0, 0.5));
    }

    #[test]
    fn triangle_inequality_holds() {
        let a = Point::new(0.3, 0.7);
        let b = Point::new(2.0, -1.0);
        let c = Point::new(-4.0, 5.0);
        assert!(a.dist(c) <= a.dist(b) + b.dist(c) + 1e-12);
    }
}
