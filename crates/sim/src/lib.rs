//! # dcluster-sim — SINR wireless network simulator substrate
//!
//! This crate is the physical-layer and execution substrate on which the
//! algorithms of *Deterministic Digital Clustering of Wireless Ad Hoc
//! Networks* (Jurdziński, Kowalski, Różański, Stachowiak — PODC 2018) are
//! reproduced. It provides:
//!
//! * 2-D [`Point`] geometry, balls, and the packing function `χ(r1, r2)`
//!   ([`metrics`]);
//! * the SINR reception model of the paper's Eq. (1) ([`radio`]): a
//!   [`SinrResolver`] trait with three provably-equivalent backends —
//!   naive oracle, grid short-circuit, and per-round cell-aggregated
//!   interference ([`field`]);
//! * a synchronous round [`engine`] executing [`engine::RoundBehavior`]
//!   protocols over a [`Network`];
//! * deployment generators for the paper's motivating scenarios
//!   ([`deploy`]);
//! * a deterministic [`rng`] (SplitMix64) so that every simulation is
//!   bit-for-bit reproducible (selector seeds are protocol constants).
//!
//! ## Model recap (paper §1.1)
//!
//! Nodes live in the Euclidean plane. A transmission from `v` is received by
//! `u` iff `v` transmits, `u` listens, and
//!
//! ```text
//! SINR(v, u, T) = (P / d(v,u)^α) / (noise + Σ_{w ∈ T\{v}} P / d(w,u)^α) ≥ β
//! ```
//!
//! with path loss `α > 2`, threshold `β > 1`, ambient noise `N > 0` and
//! uniform power `P = β·N`, so the transmission range is exactly 1. The
//! *communication graph* connects nodes at distance ≤ `1 − ε`.
//!
//! ## Quickstart
//!
//! ```
//! use dcluster_sim::{deploy, Network, SinrParams, rng::Rng64};
//!
//! let mut rng = Rng64::new(42);
//! let pts = deploy::uniform_square(200, 6.0, &mut rng);
//! let net = Network::builder(pts)
//!     .params(SinrParams::default())
//!     .seed(7)
//!     .build()
//!     .expect("valid deployment");
//! assert_eq!(net.len(), 200);
//! let g = net.comm_graph();
//! assert!(g.max_degree() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deploy;
pub mod engine;
pub mod field;
pub mod graph;
pub mod grid;
pub mod metrics;
pub mod network;
pub mod point;
pub mod radio;
pub mod rng;

pub use dcluster_obs::{
    CacheOp, Event as ObsEvent, PhaseSummary, PhaseTable, SharedTracer, Tracer,
};
pub use engine::{Engine, EngineStats, RoundBehavior, RoundStats};
pub use field::{FieldStats, InterferenceField};
pub use graph::Graph;
pub use grid::{Grid, TwoNearest};
pub use network::{Network, NetworkBuilder, NetworkError};
pub use point::Point;
pub use radio::{
    AggregatedResolver, FieldCache, GridResolver, NaiveResolver, ParallelResolver, Reception,
    ResolverKind, ResolverStats, SinrResolver,
};
pub use rng::Rng64;

/// SINR model parameters (paper §1.1).
///
/// The paper normalizes the transmission range to 1 by fixing `P = β·noise`;
/// [`SinrParams::default`] follows that convention. `epsilon` is the
/// connectivity parameter defining the communication graph (edges at distance
/// ≤ `1 − ε`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinrParams {
    /// Path-loss exponent `α > 2`.
    pub alpha: f64,
    /// SINR threshold `β > 1`.
    pub beta: f64,
    /// Ambient noise `N > 0` (the paper's `𝒩`).
    pub noise: f64,
    /// Uniform transmission power `P`.
    pub power: f64,
    /// Connectivity parameter `ε ∈ (0, 1)`.
    pub epsilon: f64,
}

impl Default for SinrParams {
    fn default() -> Self {
        // α = 3 (paper requires α > 2), β = 2 (> 1), range = (P/(β·noise))^{1/α} = 1.
        Self {
            alpha: 3.0,
            beta: 2.0,
            noise: 1.0,
            power: 2.0,
            epsilon: 0.2,
        }
    }
}

impl SinrParams {
    /// Creates parameters with the range normalized to 1 (`P = β·noise`).
    ///
    /// # Panics
    ///
    /// Panics if `alpha <= 2`, `beta <= 1`, `noise <= 0` or `epsilon` is
    /// outside `(0, 1)` — these are the model's standing assumptions.
    pub fn normalized(alpha: f64, beta: f64, noise: f64, epsilon: f64) -> Self {
        assert!(alpha > 2.0, "SINR model requires path loss alpha > 2");
        assert!(beta > 1.0, "SINR model requires threshold beta > 1");
        assert!(noise > 0.0, "SINR model requires positive ambient noise");
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must lie in (0,1)");
        Self {
            alpha,
            beta,
            noise,
            power: beta * noise,
            epsilon,
        }
    }

    /// Maximal distance at which a lone transmitter can be heard:
    /// `(P / (β·noise))^{1/α}`.
    pub fn range(&self) -> f64 {
        (self.power / (self.beta * self.noise)).powf(1.0 / self.alpha)
    }

    /// The communication-graph radius `range · (1 − ε)`.
    pub fn comm_radius(&self) -> f64 {
        self.range() * (1.0 - self.epsilon)
    }

    /// Received signal strength `P / d^α` at distance `d`.
    ///
    /// Distance 0 (a node "hearing itself") is meaningless in the model; we
    /// clamp to a tiny positive distance to keep arithmetic finite.
    pub fn signal(&self, d: f64) -> f64 {
        let d = d.max(1e-12);
        self.power / d.powf(self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_have_unit_range() {
        let p = SinrParams::default();
        assert!((p.range() - 1.0).abs() < 1e-12);
        assert!((p.comm_radius() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn normalized_constructor_sets_unit_range() {
        let p = SinrParams::normalized(4.0, 1.5, 0.5, 0.1);
        assert!((p.range() - 1.0).abs() < 1e-12);
        assert!((p.power - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha > 2")]
    fn alpha_must_exceed_two() {
        let _ = SinrParams::normalized(2.0, 1.5, 1.0, 0.1);
    }

    #[test]
    #[should_panic(expected = "beta > 1")]
    fn beta_must_exceed_one() {
        let _ = SinrParams::normalized(3.0, 1.0, 1.0, 0.1);
    }

    #[test]
    fn signal_decays_polynomially() {
        let p = SinrParams::default();
        let near = p.signal(0.5);
        let far = p.signal(1.0);
        assert!((near / far - 8.0).abs() < 1e-9, "alpha=3 => factor 2^3");
    }
}
