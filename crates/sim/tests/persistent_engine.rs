//! The persistent resolution engine must be invisible: running an
//! [`Engine`] for N rounds over an evolving transmitter set, the parallel
//! backend's sparsely-patched interference field (and the persistent
//! aggregated backend's) must produce receptions identical to backends
//! that rebuild from scratch every round — and the maintained field must
//! audit as structurally identical to a rebuild after every step
//! ([`Engine::audit_resolver`], the engine-level extension of the
//! dynamics subsystem's `World::audit_incremental` pattern).

use dcluster_sim::engine::FnBehavior;
use dcluster_sim::rng::Rng64;
use dcluster_sim::{
    AggregatedResolver, Engine, Network, ParallelResolver, Point, Reception, ResolverKind,
    SinrParams, SinrResolver,
};
use proptest::prelude::*;

/// Pre-computes an evolving transmitter schedule: a membership vector
/// mutated by `churn` random flips per round, so consecutive rounds differ
/// by a small sparse diff (the regime the field cache patches).
fn evolving_schedule(n: usize, rounds: usize, churn: usize, rng: &mut Rng64) -> Vec<Vec<bool>> {
    let mut active: Vec<bool> = (0..n).map(|_| rng.chance(0.4)).collect();
    let mut schedule = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        for _ in 0..churn {
            let v = rng.range_usize(n);
            active[v] = !active[v];
        }
        schedule.push(active.clone());
    }
    schedule
}

/// Runs `rounds` engine steps with the given resolver, recording each
/// round's receptions and auditing the resolver's maintained state after
/// every step.
fn run_engine(
    net: &Network,
    resolver: Box<dyn SinrResolver>,
    schedule: &[Vec<bool>],
) -> Result<Vec<Vec<Reception>>, String> {
    let mut engine = Engine::with_resolver(net, resolver);
    let mut per_round = Vec::with_capacity(schedule.len());
    for (r, active) in schedule.iter().enumerate() {
        let mut b = FnBehavior {
            tx: |_: &Network, v: usize, _: u64| active[v].then_some(0u8),
            rx: |_: &Network, _: usize, _: u64, _: usize, _: &u8| {},
        };
        per_round.push(engine.step(&mut b));
        engine
            .audit_resolver()
            .map_err(|e| format!("round {r}: resolver audit failed: {e}"))?;
    }
    Ok(per_round)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// N rounds of sparse field patching inside the engine equal a
    /// rebuild-from-scratch every round, across all backends — the
    /// parallel one at 1, 2 and 8 threads.
    #[test]
    fn persistent_backends_equal_fresh_rebuild_over_engine_rounds(
        seed in 0u64..10_000,
        n in 30usize..150,
        churn in 1usize..8,
    ) {
        let mut rng = Rng64::new(seed ^ 0x9e37);
        let side = (n as f64 / 12.0).sqrt().max(1.0) * 1.5;
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.range_f64(0.0, side), rng.range_f64(0.0, side)))
            .collect();
        let net = Network::builder(pts)
            .params(SinrParams::default())
            .build()
            .expect("nonempty deployment");
        let schedule = evolving_schedule(n, 12, churn, &mut rng);

        // Rebuild-every-round references.
        let naive = run_engine(&net, ResolverKind::Naive.build(), &schedule)?;
        let grid = run_engine(&net, ResolverKind::Grid.build(), &schedule)?;
        prop_assert_eq!(&naive, &grid, "grid diverged from naive");

        // Persistent backends: patched field, audited every round.
        let agg_persistent = run_engine(
            &net,
            Box::new(AggregatedResolver::new().with_persistence()),
            &schedule,
        )?;
        prop_assert_eq!(&naive, &agg_persistent, "persistent aggregated diverged");
        for threads in [1u32, 2, 8] {
            let par = run_engine(
                &net,
                Box::new(ParallelResolver::with_threads(threads)),
                &schedule,
            )?;
            prop_assert_eq!(&naive, &par, "parallel({}) diverged", threads);
        }
    }
}
