//! Every SINR resolver backend must return **exactly** the same receptions
//! as the naive oracle — the equivalence promised in `radio.rs`'s module
//! docs (for the aggregated backend: the cell sums are exact partial sums
//! and the residual bound is only used when conclusive, so the decisions
//! coincide with the full Eq. (1) sum). Property-tested three ways over
//! random, clumped and grid-boundary deployments, transmitter sets and
//! SINR parameter regimes.

use dcluster_sim::rng::Rng64;
use dcluster_sim::{Network, Point, Reception, ResolverKind, SinrParams};
use proptest::prelude::*;

/// Canonical ordering so resolver outputs compare as sets.
fn sorted(mut receptions: Vec<Reception>) -> Vec<Reception> {
    receptions.sort_by_key(|r| (r.receiver, r.sender));
    receptions
}

fn random_network(n: usize, side: f64, params: SinrParams, rng: &mut Rng64) -> Network {
    let pts: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.range_f64(0.0, side), rng.range_f64(0.0, side)))
        .collect();
    Network::builder(pts)
        .params(params)
        .build()
        .expect("nonempty deployment")
}

/// Checks every backend agrees with the oracle on one instance (error
/// message on disagreement, for `?`-chaining inside proptest cases).
fn assert_three_way(net: &Network, tx: &[usize], label: &str) -> Result<(), String> {
    let naive = sorted(ResolverKind::Naive.build().resolve(net, tx));
    for kind in [
        ResolverKind::Grid,
        ResolverKind::Aggregated,
        ResolverKind::Parallel,
    ] {
        let got = sorted(kind.build().resolve(net, tx));
        if got != naive {
            return Err(format!(
                "{label}: {kind} and naive resolvers disagree (n={}, |T|={}): \
                 {kind} found {:?}, naive found {:?}",
                net.len(),
                tx.len(),
                got,
                naive
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Equivalence on uniform deployments across densities, transmitter
    /// fractions and (alpha, beta) regimes.
    #[test]
    fn backends_equal_naive_on_uniform_deployments(
        seed in 0u64..10_000,
        n in 2usize..120,
        side_tenths in 5u32..80,
        tx_permille in 1u32..1000,
        alpha_hundredths in 210u32..500,
        beta_hundredths in 110u32..400,
    ) {
        let params = SinrParams::normalized(
            alpha_hundredths as f64 / 100.0,
            beta_hundredths as f64 / 100.0,
            1.0,
            0.2,
        );
        let mut rng = Rng64::new(seed);
        let net = random_network(n, side_tenths as f64 / 10.0, params, &mut rng);
        let tx: Vec<usize> =
            (0..n).filter(|_| rng.chance(tx_permille as f64 / 1000.0)).collect();
        assert_three_way(&net, &tx, "uniform")?;
    }

    /// Equivalence when every node transmits (nobody listens) and when a
    /// single node transmits (pure range test) — the two boundary regimes.
    #[test]
    fn backends_equal_naive_at_boundary_tx_sets(seed in 0u64..10_000, n in 1usize..60) {
        let mut rng = Rng64::new(seed);
        let net = random_network(n, 3.0, SinrParams::default(), &mut rng);

        let everyone: Vec<usize> = (0..n).collect();
        assert_three_way(&net, &everyone, "everyone-transmits")?;

        let lone = vec![rng.range_usize(n)];
        assert_three_way(&net, &lone, "lone-transmitter")?;
    }

    /// Clumped (near-duplicate) positions stress the grid bucketing, the
    /// short-circuit bound and the aggregated backend's ring cap (distant
    /// dense clumps make the occupied-cell set tiny but far apart);
    /// equivalence must survive them too.
    #[test]
    fn backends_equal_naive_on_clumped_deployments(seed in 0u64..10_000, n in 2usize..80) {
        let mut rng = Rng64::new(seed ^ 0xc1a9);
        let mut pts = Vec::with_capacity(n);
        let mut anchor = Point::new(0.0, 0.0);
        for i in 0..n {
            if i % 4 == 0 {
                anchor = Point::new(rng.range_f64(0.0, 4.0), rng.range_f64(0.0, 4.0));
            }
            pts.push(Point::new(
                anchor.x + rng.range_f64(-1e-3, 1e-3),
                anchor.y + rng.range_f64(-1e-3, 1e-3),
            ));
        }
        let net = Network::builder(pts).build().expect("nonempty");
        let tx: Vec<usize> = (0..n).filter(|_| rng.chance(0.4)).collect();
        assert_three_way(&net, &tx, "clumped")?;
    }

    /// Nodes sitting *exactly* on grid-cell boundaries (integer and
    /// half-integer lattices, including negative coordinates) — the worst
    /// case for cell bucketing and for the aggregated backend's
    /// "everything outside ring k is farther than k·cell" argument, which
    /// must hold for points on cell edges too.
    #[test]
    fn backends_equal_naive_on_grid_boundary_deployments(
        seed in 0u64..10_000,
        rows in 2usize..9,
        cols in 2usize..9,
        half_step in 0u32..2,
        tx_permille in 50u32..950,
    ) {
        let mut rng = Rng64::new(seed ^ 0xb0b0);
        let step = if half_step == 1 { 0.5 } else { 1.0 };
        // Offset so part of the lattice has negative coordinates (floor()
        // cell keys change sign there).
        let mut pts = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                pts.push(Point::new(
                    j as f64 * step - 1.0,
                    i as f64 * step - 1.0,
                ));
            }
        }
        let net = Network::builder(pts).build().expect("nonempty");
        let tx: Vec<usize> =
            (0..rows * cols).filter(|_| rng.chance(tx_permille as f64 / 1000.0)).collect();
        assert_three_way(&net, &tx, "grid-boundary")?;
    }
}
