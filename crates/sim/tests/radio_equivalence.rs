//! The fast grid-based SINR resolver must return **exactly** the same
//! receptions as the naive quadratic resolver — the equivalence promised in
//! `radio.rs`'s module docs. Property-tested over random deployments,
//! transmitter sets and SINR parameter regimes.

use dcluster_sim::radio::Radio;
use dcluster_sim::rng::Rng64;
use dcluster_sim::{Network, Point, Reception, SinrParams};
use proptest::prelude::*;

/// Canonical ordering so the two resolvers' outputs compare as sets.
fn sorted(mut receptions: Vec<Reception>) -> Vec<Reception> {
    receptions.sort_by_key(|r| (r.receiver, r.sender));
    receptions
}

fn random_network(n: usize, side: f64, params: SinrParams, rng: &mut Rng64) -> Network {
    let pts: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.range_f64(0.0, side), rng.range_f64(0.0, side)))
        .collect();
    Network::builder(pts)
        .params(params)
        .build()
        .expect("nonempty deployment")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Equivalence on uniform deployments across densities, transmitter
    /// fractions and (alpha, beta) regimes.
    #[test]
    fn fast_resolver_equals_naive(
        seed in 0u64..10_000,
        n in 2usize..120,
        side_tenths in 5u32..80,
        tx_permille in 1u32..1000,
        alpha_hundredths in 210u32..500,
        beta_hundredths in 110u32..400,
    ) {
        let params = SinrParams::normalized(
            alpha_hundredths as f64 / 100.0,
            beta_hundredths as f64 / 100.0,
            1.0,
            0.2,
        );
        let mut rng = Rng64::new(seed);
        let net = random_network(n, side_tenths as f64 / 10.0, params, &mut rng);
        let tx: Vec<usize> =
            (0..n).filter(|_| rng.chance(tx_permille as f64 / 1000.0)).collect();

        let fast = sorted(Radio::new().resolve(&net, &tx));
        let naive = sorted(Radio::resolve_naive(&net, &tx));
        prop_assert_eq!(
            fast, naive,
            "fast and naive resolvers disagree (n={}, |T|={})", n, tx.len()
        );
    }

    /// Equivalence when every node transmits (nobody listens) and when a
    /// single node transmits (pure range test) — the two boundary regimes.
    #[test]
    fn fast_resolver_equals_naive_at_boundary_tx_sets(seed in 0u64..10_000, n in 1usize..60) {
        let mut rng = Rng64::new(seed);
        let net = random_network(n, 3.0, SinrParams::default(), &mut rng);

        let everyone: Vec<usize> = (0..n).collect();
        prop_assert_eq!(
            sorted(Radio::new().resolve(&net, &everyone)),
            sorted(Radio::resolve_naive(&net, &everyone))
        );

        let lone = vec![rng.range_usize(n)];
        prop_assert_eq!(
            sorted(Radio::new().resolve(&net, &lone)),
            sorted(Radio::resolve_naive(&net, &lone))
        );
    }

    /// Clumped (near-duplicate) positions stress the grid bucketing and the
    /// short-circuit bound; equivalence must survive them too.
    #[test]
    fn fast_resolver_equals_naive_on_clumped_deployments(seed in 0u64..10_000, n in 2usize..80) {
        let mut rng = Rng64::new(seed ^ 0xc1a9);
        let mut pts = Vec::with_capacity(n);
        let mut anchor = Point::new(0.0, 0.0);
        for i in 0..n {
            if i % 4 == 0 {
                anchor = Point::new(rng.range_f64(0.0, 4.0), rng.range_f64(0.0, 4.0));
            }
            pts.push(Point::new(
                anchor.x + rng.range_f64(-1e-3, 1e-3),
                anchor.y + rng.range_f64(-1e-3, 1e-3),
            ));
        }
        let net = Network::builder(pts).build().expect("nonempty");
        let tx: Vec<usize> = (0..n).filter(|_| rng.chance(0.4)).collect();
        prop_assert_eq!(
            sorted(Radio::new().resolve(&net, &tx)),
            sorted(Radio::resolve_naive(&net, &tx))
        );
    }
}
