//! Deterministic stress harness for the parallel resolver's scheduling:
//! adversarial receiver counts (straddling every chunk boundary), thread
//! counts from degenerate to oversubscribed, and edge transmitter sets.
//! The contract under test is merge-order invariance — the chunk-ordered
//! merge must make [`ParallelResolver`] byte-identical to the sequential
//! [`AggregatedResolver`] for *every* thread count, every round, with and
//! without cross-round field persistence.
//!
//! The companion CI job runs this file under ThreadSanitizer (see
//! `tsan-parallel` in `.github/workflows/ci.yml`): the assertions here
//! check determinism, TSan checks the pool's synchronization.

use dcluster_sim::rng::Rng64;
use dcluster_sim::{
    AggregatedResolver, Network, ParallelResolver, Point, Reception, SinrParams, SinrResolver,
};

/// Thread counts under test: inline path (1), typical (2), the CI floor
/// (8), odd counts that leave ragged chunk remainders, and an
/// oversubscribed pool (more workers than chunks for small n).
const THREADS: &[u32] = &[1, 2, 3, 5, 8, 16];

fn random_network(n: usize, seed: u64) -> Network {
    let mut rng = Rng64::new(seed);
    let side = (n as f64 / 10.0).sqrt().max(1.0) * 1.4;
    let pts: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.range_f64(0.0, side), rng.range_f64(0.0, side)))
        .collect();
    Network::builder(pts)
        .params(SinrParams::default())
        .build()
        .expect("nonempty deployment")
}

fn resolve(resolver: &mut dyn SinrResolver, net: &Network, tx: &[usize]) -> Vec<Reception> {
    let mut out = Vec::new();
    resolver.resolve_into(net, tx, &mut out);
    out
}

/// Runs one transmitter set through the sequential reference and through
/// the parallel backend at every thread count, asserting exact equality.
fn assert_invariant(net: &Network, tx: &[usize], what: &str) {
    let reference = resolve(&mut AggregatedResolver::new(), net, tx);
    for &t in THREADS {
        let got = resolve(&mut ParallelResolver::with_threads(t), net, tx);
        assert_eq!(
            got,
            reference,
            "{what}: parallel({t}) diverged from aggregated (n={}, |tx|={})",
            net.len(),
            tx.len()
        );
    }
}

/// Receiver counts chosen to straddle the sharding boundaries: the chunk
/// count is `min(threads * 4, n)`, so for every thread count in
/// [`THREADS`] these values hit "fewer receivers than chunks", "exactly
/// chunks", and "chunks + 1" (ragged last chunk) at least once.
const ADVERSARIAL_N: &[usize] = &[1, 2, 3, 4, 5, 7, 8, 9, 12, 13, 20, 31, 32, 33, 63, 64, 65];

#[test]
fn chunk_boundary_sizes_merge_identically() {
    for (i, &n) in ADVERSARIAL_N.iter().enumerate() {
        let net = random_network(n, 0xC0FFEE ^ (i as u64) << 8);
        let all: Vec<usize> = (0..n).collect();
        let evens: Vec<usize> = (0..n).step_by(2).collect();
        assert_invariant(&net, &all, "all transmit");
        assert_invariant(&net, &evens, "evens transmit");
    }
}

#[test]
fn edge_transmitter_sets_merge_identically() {
    for &n in &[1usize, 2, 5, 33] {
        let net = random_network(n, 0xBEEF + n as u64);
        assert_invariant(&net, &[], "empty transmitter set");
        assert_invariant(&net, &[0], "first node only");
        assert_invariant(&net, &[n - 1], "last node only");
        let all: Vec<usize> = (0..n).collect();
        assert_invariant(&net, &all, "every node transmits");
    }
}

/// Sparse per-round flips: the regime where the persistent field cache
/// patches instead of rebuilding, so the chunk merge runs over a reused
/// field. Every backend variant must agree on every round.
#[test]
fn multi_round_persistence_is_merge_order_invariant() {
    let n = 70;
    let rounds = 20;
    let net = random_network(n, 0xD15EA5E);
    let mut rng = Rng64::new(0xFEED);
    let mut active: Vec<bool> = (0..n).map(|_| rng.chance(0.35)).collect();
    let mut schedule: Vec<Vec<usize>> = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        for _ in 0..4 {
            let v = rng.range_usize(n);
            active[v] = !active[v];
        }
        schedule.push((0..n).filter(|&v| active[v]).collect());
    }

    let mut reference = AggregatedResolver::new();
    let mut fresh: Vec<ParallelResolver> = THREADS
        .iter()
        .map(|&t| ParallelResolver::with_threads(t).without_persistence())
        .collect();
    let mut persistent: Vec<ParallelResolver> = THREADS
        .iter()
        .map(|&t| ParallelResolver::with_threads(t))
        .collect();
    for (round, tx) in schedule.iter().enumerate() {
        let expected = resolve(&mut reference, &net, tx);
        for (resolver, &t) in fresh.iter_mut().zip(THREADS) {
            let got = resolve(resolver, &net, tx);
            assert_eq!(
                got, expected,
                "round {round}: fresh parallel({t}) diverged from aggregated"
            );
        }
        for (resolver, &t) in persistent.iter_mut().zip(THREADS) {
            let got = resolve(resolver, &net, tx);
            assert_eq!(
                got, expected,
                "round {round}: persistent parallel({t}) diverged from aggregated"
            );
        }
    }
}

/// The CI gate from the issue: byte-identical receptions at 1, 2 and 8
/// threads on the same workload — rendered to bytes, not just compared
/// structurally, so a formatting-visible difference cannot hide.
#[test]
fn one_two_eight_threads_are_byte_identical() {
    let net = random_network(90, 0xAB1E);
    let tx: Vec<usize> = (0..90).step_by(3).collect();
    let render = |t: u32| -> Vec<u8> {
        let recs = resolve(&mut ParallelResolver::with_threads(t), &net, &tx);
        format!("{recs:?}").into_bytes()
    };
    let one = render(1);
    assert_eq!(one, render(2), "2 threads not byte-identical to 1");
    assert_eq!(one, render(8), "8 threads not byte-identical to 1");
}
