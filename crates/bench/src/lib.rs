//! # dcluster-bench — experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §2 for the
//! full index and EXPERIMENTS.md for recorded results):
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table1` | Table 1 — local broadcast comparison |
//! | `table2` | Table 2 — global broadcast comparison |
//! | `fig1_phases` | Figure 1 — a phase of SMSBroadcast |
//! | `fig2_proximity` | Figure 2 — proximity-graph construction |
//! | `fig3_sparsify` | Figure 3 — sparsification (clustered/unclustered) |
//! | `fig4_full_sparsify` | Figure 4 — full sparsification levels |
//! | `fig5_lowerbound_gadget` | Figures 5–6 + Lemma 13 |
//! | `fig7_lowerbound_chain` | Figure 7 + Theorem 6 |
//! | `thm1_clustering` | Theorem 1 scaling |
//! | `thm45_wakeup_leader` | Theorems 4–5 |
//! | `selector_sizes` | Lemmas 2–3 selector sizes |
//! | `ablation_wss` | why *witnessed* selection matters (Lemma 7) |
//!
//! Each binary prints a markdown table and writes CSV next to it under
//! `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::fs;
use std::path::PathBuf;

/// Prints a markdown table to stdout.
pub fn print_table<H: Display, C: Display>(title: &str, headers: &[H], rows: &[Vec<C>]) {
    println!("\n## {title}\n");
    let hdr: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("| {} |", hdr.join(" | "));
    println!(
        "|{}|",
        hdr.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        let cells: Vec<String> = row.iter().map(|c| c.to_string()).collect();
        println!("| {} |", cells.join(" | "));
    }
}

/// Writes rows as CSV under `results/<name>.csv` (relative to the CWD the
/// harness is launched from); errors are reported, not fatal.
pub fn write_csv<H: Display, C: Display>(name: &str, headers: &[H], rows: &[Vec<C>]) {
    let dir = PathBuf::from("results");
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create results dir: {e}");
        return;
    }
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| h.to_string())
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(
            &row.iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
    }
    let path = dir.join(format!("{name}.csv"));
    match fs::write(&path, out) {
        Ok(()) => println!("\n[csv] wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Experiment size tier, from the `DCLUSTER_SCALE` env var.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scale {
    /// CI smoke tier (`DCLUSTER_SCALE=ci`): small enough for a gate job.
    Ci,
    /// Default interactive tier.
    Quick,
    /// Paper-scale tier (`DCLUSTER_SCALE=full`): roughly doubles network
    /// sizes and sweep points; `scale_resolvers` sweeps to 10⁵ nodes.
    Full,
}

/// Scale knob for experiment sizes: `DCLUSTER_SCALE=ci|quick|full`
/// (default quick; unknown values fall back to quick).
pub fn scale() -> Scale {
    match std::env::var("DCLUSTER_SCALE").as_deref() {
        Ok("ci") => Scale::Ci,
        Ok("full") => Scale::Full,
        _ => Scale::Quick,
    }
}

/// True iff running at the paper-scale tier (legacy helper).
pub fn full_scale() -> bool {
    scale() == Scale::Full
}

/// Resolver backend override for the harness binaries: `--resolver=KIND`
/// or `--resolver KIND` on the command line, else the `DCLUSTER_RESOLVER`
/// env var; `None` means "use the network's scale-aware default". Unknown
/// kinds abort with the parse error (a typo must not silently fall back).
pub fn resolver_override() -> Option<dcluster_sim::ResolverKind> {
    flag_value("--resolver")
        .map(|v| match v.parse::<dcluster_sim::ResolverKind>() {
            Ok(kind) => kind,
            Err(e) => panic!("--resolver: {e}"),
        })
        // Same env fallback the examples use (`Engine::from_env`).
        .or_else(dcluster_sim::ResolverKind::from_env)
}

/// A `--flag value` / `--flag=value` string option from the command line
/// (shared by the scenario flags of the dynamics binaries).
pub fn flag_value(flag: &str) -> Option<String> {
    let eq = format!("{flag}=");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Some(v) = arg.strip_prefix(&eq) {
            return Some(v.to_string());
        }
        if arg == flag {
            return Some(
                args.next()
                    .unwrap_or_else(|| panic!("{flag} needs a value")),
            );
        }
    }
    None
}

/// Creates the engine every experiment binary should use: the
/// [`resolver_override`] backend when given, else the network's
/// scale-aware default.
pub fn engine(net: &dcluster_sim::Network) -> dcluster_sim::Engine<'_> {
    match resolver_override() {
        Some(kind) => dcluster_sim::Engine::with_resolver_kind(net, kind),
        None => dcluster_sim::Engine::new(net),
    }
}

/// Builds a connected uniform deployment targeting max degree ≈ `delta`
/// with `n` nodes (retries seeds until connected).
pub fn connected_deployment(n: usize, delta: usize, seed: u64) -> dcluster_sim::Network {
    let comm_r = dcluster_sim::SinrParams::default().comm_radius();
    for attempt in 0..50 {
        let mut rng = dcluster_sim::rng::Rng64::new(seed + attempt * 1000);
        let pts = dcluster_sim::deploy::uniform_with_target_degree(n, delta, comm_r, &mut rng);
        let net = dcluster_sim::Network::builder(pts)
            .build()
            .expect("nonempty");
        if net.comm_graph().is_connected() {
            return net;
        }
    }
    // Fall back to a spined corridor (always connected).
    let mut rng = dcluster_sim::rng::Rng64::new(seed);
    let pts = dcluster_sim::deploy::corridor_with_spine(
        n,
        (n as f64 / delta.max(1) as f64).max(3.0),
        1.5,
        0.5,
        &mut rng,
    );
    dcluster_sim::Network::builder(pts)
        .build()
        .expect("nonempty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connected_deployment_is_connected() {
        let net = connected_deployment(60, 8, 3);
        assert!(net.comm_graph().is_connected());
        assert_eq!(net.len(), 60);
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table("t", &["a", "b"], &[vec![1, 2], vec![3, 4]]);
    }

    #[test]
    fn scale_tiers_are_ordered_ci_to_full() {
        assert!(Scale::Ci < Scale::Quick);
        assert!(Scale::Quick < Scale::Full);
    }

    #[test]
    fn engine_helper_builds_a_usable_engine() {
        let net = connected_deployment(40, 6, 11);
        let engine = engine(&net);
        assert_eq!(engine.round(), 0);
        assert_eq!(engine.resolver_kind(), net.default_resolver());
    }
}
