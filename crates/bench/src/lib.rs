//! # dcluster-bench — experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §2 for the
//! full index and EXPERIMENTS.md for recorded results):
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table1` | Table 1 — local broadcast comparison |
//! | `table2` | Table 2 — global broadcast comparison |
//! | `fig1_phases` | Figure 1 — a phase of SMSBroadcast |
//! | `fig2_proximity` | Figure 2 — proximity-graph construction |
//! | `fig3_sparsify` | Figure 3 — sparsification (clustered/unclustered) |
//! | `fig4_full_sparsify` | Figure 4 — full sparsification levels |
//! | `fig5_lowerbound_gadget` | Figures 5–6 + Lemma 13 |
//! | `fig7_lowerbound_chain` | Figure 7 + Theorem 6 |
//! | `thm1_clustering` | Theorem 1 scaling |
//! | `thm45_wakeup_leader` | Theorems 4–5 |
//! | `selector_sizes` | Lemmas 2–3 selector sizes |
//! | `ablation_wss` | why *witnessed* selection matters (Lemma 7) |
//! | `scenario_smoke` | determinism gate over committed `scenarios/*.scn` |
//!
//! Every network-driven binary builds its world through the **Scenario
//! API** (`dcluster-scenario`): sweep points are [`ScenarioSpec`]s run by
//! a [`Runner`], and `--scenario <file>.scn` replaces the built-in sweep
//! with a spec file. `--resolver KIND` pins the SINR backend everywhere.
//! Each binary prints markdown tables and writes CSV under
//! `$DCLUSTER_RESULTS_DIR` (default `results/`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dcluster_scenario::{
    connected_deployment, epoch_row, format_table, full_scale, print_table, scale, write_csv,
    DeployLayer, DynamicsSpec, Report, Runner, Scale, ScenarioSpec, Workload, WorkloadOutcome,
    EPOCH_HEADERS,
};

/// Prints a harness-level error and exits with status 1 — for CLI/env
/// mistakes, which should read as diagnostics, not panics with backtraces.
pub fn or_exit<T>(result: Result<T, impl std::fmt::Display>) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    })
}

/// The `--resolver=KIND` / `--resolver KIND` CLI flag alone (no env
/// fallback). Unknown kinds exit with the parse error, which lists every
/// valid backend (a typo must not silently fall back).
pub fn resolver_flag() -> Option<dcluster_sim::ResolverKind> {
    flag_value("--resolver").map(|v| {
        or_exit(
            v.parse::<dcluster_sim::ResolverKind>()
                .map_err(|e| format!("--resolver: {e}")),
        )
    })
}

/// Resolver backend override for the harness binaries: the `--resolver`
/// flag, else the `DCLUSTER_RESOLVER` env var; `None` means "use the
/// network's scale-aware default". Invalid values in either place exit
/// with an error naming the valid backends.
pub fn resolver_override() -> Option<dcluster_sim::ResolverKind> {
    // Same env fallback the examples use (`Runner::resolver_for`).
    resolver_flag().or_else(|| or_exit(dcluster_sim::ResolverKind::from_env()))
}

/// A `--flag value` / `--flag=value` string option from the command line
/// (shared by the scenario flags of the experiment binaries).
pub fn flag_value(flag: &str) -> Option<String> {
    let eq = format!("{flag}=");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Some(v) = arg.strip_prefix(&eq) {
            return Some(v.to_string());
        }
        if arg == flag {
            return Some(
                args.next()
                    .unwrap_or_else(|| panic!("{flag} needs a value")),
            );
        }
    }
    None
}

/// The JSONL trace destination for workload binaries: the `--trace
/// <file>` flag, else the `DCLUSTER_TRACE` env var. `None` (the default)
/// disables the sink; tracing never changes results, only records them.
/// An unwritable destination exits with an error naming the path — same
/// policy as `DCLUSTER_RESULTS_DIR`.
pub fn trace_flag() -> Option<std::path::PathBuf> {
    flag_value("--trace")
        .or_else(|| {
            std::env::var("DCLUSTER_TRACE")
                .ok()
                .filter(|v| !v.is_empty())
        })
        .map(std::path::PathBuf::from)
}

/// The spec named by `--scenario <file>.scn`, if given; parse errors
/// abort naming the file and line.
pub fn scenario_override() -> Option<ScenarioSpec> {
    flag_value("--scenario").map(|path| match ScenarioSpec::load(&path) {
        Ok(spec) => spec,
        Err(e) => panic!("--scenario: {e}"),
    })
}

/// The standard `--scenario` entry point for workload binaries: when the
/// flag is present, runs the spec (its own `workload` line, else
/// `default`) through a [`Runner`] honoring `--resolver`, prints the
/// report and writes its CSV, and returns `true` — the binary should then
/// skip its built-in sweep. Exits non-zero if the workload's success
/// criterion fails.
pub fn run_scenario_flag(default: Workload) -> bool {
    let Some(spec) = scenario_override() else {
        return false;
    };
    let workload = spec.workload.clone().unwrap_or(default);
    // Flag-only override: a spec's pinned `resolver` line outranks the
    // ambient DCLUSTER_RESOLVER env, but never an explicit flag.
    let runner = Runner::new(spec)
        .with_resolver_override(resolver_flag())
        .with_trace(trace_flag());
    let report = or_exit(runner.run(&workload));
    report.print();
    report.write_csv();
    if !report.ok() {
        eprintln!("FAIL: scenario '{}' did not complete", report.scenario);
        std::process::exit(1);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connected_deployment_is_connected() {
        let net = connected_deployment(60, 8, 3).unwrap();
        assert!(net.comm_graph().is_connected());
        assert_eq!(net.len(), 60);
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table("t", &["a", "b"], &[vec![1, 2], vec![3, 4]]);
    }

    #[test]
    fn scale_tiers_are_ordered_ci_to_full() {
        assert!(Scale::Ci < Scale::Quick);
        assert!(Scale::Quick < Scale::Full);
    }

    #[test]
    fn runner_built_engine_matches_the_scale_aware_default() {
        let spec = ScenarioSpec::degree("t", 11, 40, 6);
        let runner = Runner::new(spec);
        let net = runner.build_network().unwrap();
        let engine = runner.engine(&net).unwrap();
        assert_eq!(engine.round(), 0);
        assert_eq!(engine.resolver_kind(), net.default_resolver());
    }
}
