//! **Figure 7 + Theorem 6** — chained gadgets with buffer paths: total
//! rounds scale as `D·∆^{1−1/α}`. The experiment sweeps ∆ at fixed gadget
//! count and fits the exponent of rounds/D against ∆.

use dcluster_bench::{print_table, write_csv};
use dcluster_lowerbound::adversary::MultiScale;
use dcluster_lowerbound::facts::check_fact_3;
use dcluster_lowerbound::{build_chain, lower_bound_params, measure_chain};

fn main() {
    let p = lower_bound_params();
    let gadgets = 3usize;
    let deltas = [4usize, 8, 16, 32];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut pts: Vec<(f64, f64)> = Vec::new();

    for &delta in &deltas {
        let chain = build_chain(gadgets, delta, &p);
        assert!(check_fact_3(&chain, &p), "Fact 3 must hold on the chain");
        // The multi-scale tape crosses buffer paths in O(L) per hop, so
        // only the adversarial gadget cores scale with Δ — isolating the
        // Theorem 6 effect.
        let strat = MultiScale { seed: 5, scales: 8 };
        let m = measure_chain(&chain, &p, &strat, 20_000_000);
        let rounds = m.rounds.expect("broadcast must cross the chain");
        let diam = m.diameter.max(1);
        let per_d = rounds as f64 / diam as f64;
        // Average incremental gadget-to-gadget delay.
        let times: Vec<u64> = m.per_gadget.iter().map(|t| t.unwrap_or(rounds)).collect();
        let mut incr = Vec::new();
        let mut prev = 0u64;
        for &t in &times {
            incr.push(t.saturating_sub(prev));
            prev = t;
        }
        let avg_gadget = incr.iter().sum::<u64>() as f64 / incr.len() as f64;
        let predicted = (delta as f64).powf(1.0 - 1.0 / p.alpha);
        rows.push(vec![
            delta.to_string(),
            chain.kappa().to_string(),
            m.nodes.to_string(),
            diam.to_string(),
            rounds.to_string(),
            format!("{avg_gadget:.0}"),
            format!("{per_d:.2}"),
            format!("{predicted:.2}"),
        ]);
        pts.push((delta as f64, per_d));
    }
    print_table(
        &format!("Figure 7 / Theorem 6 — {gadgets} chained gadgets, rounds vs Δ"),
        &[
            "Δ",
            "κ (buffer)",
            "n",
            "D",
            "rounds",
            "avg gadget delay",
            "rounds/D",
            "Δ^(1−1/α)",
        ],
        &rows,
    );
    // Log-log slope of rounds/D against Δ ≈ 1 − 1/α.
    if pts.len() >= 2 {
        let (x0, y0) = (pts[0].0.ln(), pts[0].1.ln());
        let (x1, y1) = (pts[pts.len() - 1].0.ln(), pts[pts.len() - 1].1.ln());
        let slope = (y1 - y0) / (x1 - x0);
        println!(
            "\nfitted exponent of rounds/D vs Δ: {:.2} (theory 1 − 1/α = {:.2})",
            slope,
            1.0 - 1.0 / p.alpha
        );
    }
    write_csv(
        "fig7_lowerbound_chain",
        &[
            "delta",
            "kappa",
            "n",
            "diameter",
            "rounds",
            "avg_gadget",
            "rounds_per_d",
            "predicted",
        ],
        &rows,
    );
}
