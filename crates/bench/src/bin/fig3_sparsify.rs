//! **Figure 3** — one sparsification pass, clustered vs unclustered:
//! densities drop to ≤ ¾Γ; children link to same-cluster parents.
//!
//! A sub-protocol probe: scenario specs supply the two deployments
//! (`--scenario <file>.scn` runs both variants on that deployment).

use dcluster_bench::{
    print_table, resolver_override, scenario_override, write_csv, Runner, ScenarioSpec,
};
use dcluster_core::mis::MisStrategy;
use dcluster_core::sparsify::{
    sparsification, sparsification_u, subset_density, IndependentSetRule,
};
use dcluster_core::SeedSeq;

fn main() {
    let override_spec = scenario_override();
    let mut rows: Vec<Vec<String>> = Vec::new();

    for (variant, seed) in [
        ("clustered (local minima)", 31u64),
        ("unclustered (LOCAL MIS)", 32),
    ] {
        let spec = override_spec
            .clone()
            .unwrap_or_else(|| ScenarioSpec::uniform(format!("fig3-{seed}"), seed, 60, 1.8));
        let params = spec.params;
        let runner = Runner::new(spec).with_resolver_override(resolver_override());
        let net = runner.build_network().expect("sweep spec is valid");
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = runner.engine(&net).expect("sweep spec is valid");
        let all: Vec<usize> = (0..net.len()).collect();
        let gamma = net.density();
        let clusters = vec![1u64; net.len()];
        let (kept, links, rounds) = if variant.starts_with("clustered") {
            let out = sparsification(
                &mut engine,
                &params,
                &mut seeds,
                gamma,
                &all,
                &clusters,
                IndependentSetRule::LocalMinima,
            );
            (out.kept, out.links.len(), engine.stats().rounds)
        } else {
            let out = sparsification_u(
                &mut engine,
                &params,
                &mut seeds,
                gamma,
                &all,
                MisStrategy::GreedyById,
            );
            (out.last().to_vec(), out.links.len(), engine.stats().rounds)
        };
        let density_after = subset_density(&engine, &kept);
        rows.push(vec![
            variant.to_string(),
            net.len().to_string(),
            gamma.to_string(),
            kept.len().to_string(),
            density_after.to_string(),
            links.to_string(),
            rounds.to_string(),
        ]);
    }
    print_table(
        "Figure 3 — Sparsification (Alg. 2/3, Lemmas 8–9)",
        &[
            "variant",
            "n",
            "Γ before",
            "kept",
            "density after",
            "child links",
            "rounds",
        ],
        &rows,
    );
    println!("\nLemma 8/9 target: density after ≤ ¾·Γ.");
    write_csv(
        "fig3_sparsify",
        &[
            "variant",
            "n",
            "gamma",
            "kept",
            "density_after",
            "links",
            "rounds",
        ],
        &rows,
    );
}
