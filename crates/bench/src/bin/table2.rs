//! **Table 2** — global broadcast: the paper's comparison measured on
//! identical corridor deployments (diameter-dominated multi-hop networks).
//!
//! Shapes to verify: randomized decay and the location baseline scale with
//! `D·polylog` (density-independent); the no-features deterministic sweep
//! pays `D·N`; THIS WORK pays `D·Δ·polylog` — better than the sweep,
//! worse than randomization/location, exactly the paper's message that
//! extra features help *globally* (Theorem 6) but not locally.
//!
//! Sweep points are corridor scenario specs (the committed
//! `scenarios/table2_d*.scn` files are these exact specs); pass
//! `--scenario <file>.scn` to run one spec instead of the sweep.

use dcluster_baselines::global;
use dcluster_bench::{
    full_scale, print_table, resolver_override, run_scenario_flag, write_csv, Runner, ScenarioSpec,
    Workload, WorkloadOutcome,
};

/// The sweep's scenario spec for a corridor of the given length.
fn corridor_spec(len: f64, i: usize) -> ScenarioSpec {
    let n = (len * 6.0) as usize;
    ScenarioSpec::corridor(format!("table2-len{len}"), 500 + i as u64, n, len, 1.2, 0.5).workload(
        Workload::GlobalBroadcast {
            source: 0,
            token: 1,
        },
    )
}

fn main() {
    if run_scenario_flag(Workload::GlobalBroadcast {
        source: 0,
        token: 1,
    }) {
        return;
    }
    let lengths: Vec<f64> = if full_scale() {
        vec![6.0, 12.0, 18.0]
    } else {
        vec![6.0, 12.0]
    };
    let cap = 5_000_000u64;

    let algos = [
        "[10]/[25] randomized decay    O(D log² n)",
        "[26] location, deterministic  O(D log² n)*",
        "[27]-class det. ID sweep      Θ(D·N)",
        "ssf flooding (no witnesses)   (empirical)",
        "THIS WORK deterministic       O(D(Δ+log* N) log N)",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut csv: Vec<Vec<String>> = Vec::new();
    let mut headers = vec!["algorithm (model, theory)".to_string()];

    let runners: Vec<Runner> = lengths
        .iter()
        .enumerate()
        .map(|(i, &len)| {
            Runner::new(corridor_spec(len, i)).with_resolver_override(resolver_override())
        })
        .collect();
    let nets: Vec<(dcluster_sim::Network, u32)> = runners
        .iter()
        .map(|r| {
            let net = r.build_network().expect("sweep spec is valid");
            let d = net.comm_graph().diameter().unwrap_or(0);
            (net, d)
        })
        .collect();
    for (net, d) in &nets {
        headers.push(format!("rounds @ D={d} (n={})", net.len()));
    }

    for (ai, name) in algos.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for (i, (net, d)) in nets.iter().enumerate() {
            let delta = net.max_degree().max(2);
            let rounds = match ai {
                0 => global::decay_flood(net, 0, 3, cap).rounds,
                1 => global::location_grid_flood(net, 0, delta, 4, 0.05, cap).rounds,
                2 => global::round_robin_flood(net, 0, cap).rounds,
                3 => global::ssf_flood(net, 0, delta, 0.1, cap).rounds,
                _ => {
                    let report = runners[i]
                        .run_on(
                            net.clone(),
                            &Workload::GlobalBroadcast {
                                source: 0,
                                token: 1,
                            },
                        )
                        .expect("sweep spec is valid");
                    let WorkloadOutcome::GlobalBroadcast { delivered_all, .. } = report.outcome
                    else {
                        unreachable!("global workload returns a global outcome");
                    };
                    assert!(delivered_all, "this-work broadcast must complete");
                    report.rounds
                }
            };
            row.push(format!("{rounds}"));
            csv.push(vec![
                name.split_whitespace().next().unwrap_or("?").to_string(),
                d.to_string(),
                net.len().to_string(),
                rounds.to_string(),
            ]);
        }
        rows.push(row);
        eprintln!("done: {name}");
    }

    print_table(
        "Table 2 — global broadcast on spined corridors",
        &headers,
        &rows,
    );
    write_csv(
        "table2_global_broadcast",
        &["algo", "diameter", "n", "rounds"],
        &csv,
    );
    println!(
        "\nNotes: N = n² IDs; the paper's lower-bound row Ω(D·Δ^(1−1/α)) is \
         reproduced by fig7_lowerbound_chain. (*) simplified variant, DESIGN.md §3."
    );
}
