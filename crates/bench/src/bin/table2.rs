//! **Table 2** — global broadcast: the paper's comparison measured on
//! identical corridor deployments (diameter-dominated multi-hop networks).
//!
//! Shapes to verify: randomized decay and the location baseline scale with
//! `D·polylog` (density-independent); the no-features deterministic sweep
//! pays `D·N`; THIS WORK pays `D·Δ·polylog` — better than the sweep,
//! worse than randomization/location, exactly the paper's message that
//! extra features help *globally* (Theorem 6) but not locally.

use dcluster_baselines::global;
use dcluster_bench::{engine as make_engine, full_scale, print_table, write_csv};
use dcluster_core::{global_broadcast, ProtocolParams, SeedSeq};
use dcluster_sim::{deploy, rng::Rng64, Network};

fn corridor(len: f64, n: usize, seed: u64) -> Network {
    let mut rng = Rng64::new(seed);
    let pts = deploy::corridor_with_spine(n, len, 1.2, 0.5, &mut rng);
    Network::builder(pts).build().expect("nonempty")
}

fn main() {
    let lengths: Vec<f64> = if full_scale() {
        vec![6.0, 12.0, 18.0]
    } else {
        vec![6.0, 12.0]
    };
    let cap = 5_000_000u64;

    let algos = [
        "[10]/[25] randomized decay    O(D log² n)",
        "[26] location, deterministic  O(D log² n)*",
        "[27]-class det. ID sweep      Θ(D·N)",
        "ssf flooding (no witnesses)   (empirical)",
        "THIS WORK deterministic       O(D(Δ+log* N) log N)",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut csv: Vec<Vec<String>> = Vec::new();
    let mut headers = vec!["algorithm (model, theory)".to_string()];

    let nets: Vec<(Network, u32)> = lengths
        .iter()
        .enumerate()
        .map(|(i, &len)| {
            let n = (len * 6.0) as usize;
            let net = corridor(len, n, 500 + i as u64);
            let d = net.comm_graph().diameter().unwrap_or(0);
            (net, d)
        })
        .collect();
    for (net, d) in &nets {
        headers.push(format!("rounds @ D={d} (n={})", net.len()));
    }

    for (ai, name) in algos.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for (net, d) in &nets {
            let delta = net.max_degree().max(2);
            let rounds = match ai {
                0 => global::decay_flood(net, 0, 3, cap).rounds,
                1 => global::location_grid_flood(net, 0, delta, 4, 0.05, cap).rounds,
                2 => global::round_robin_flood(net, 0, cap).rounds,
                3 => global::ssf_flood(net, 0, delta, 0.1, cap).rounds,
                _ => {
                    let params = ProtocolParams::practical();
                    let mut seeds = SeedSeq::new(params.seed);
                    let mut engine = make_engine(net);
                    let out =
                        global_broadcast(&mut engine, &params, &mut seeds, 0, net.density(), 1);
                    assert!(out.delivered_all, "this-work broadcast must complete");
                    out.rounds
                }
            };
            row.push(format!("{rounds}"));
            csv.push(vec![
                name.split_whitespace().next().unwrap_or("?").to_string(),
                d.to_string(),
                net.len().to_string(),
                rounds.to_string(),
            ]);
        }
        rows.push(row);
        eprintln!("done: {name}");
    }

    print_table(
        "Table 2 — global broadcast on spined corridors",
        &headers,
        &rows,
    );
    write_csv(
        "table2_global_broadcast",
        &["algo", "diameter", "n", "rounds"],
        &csv,
    );
    println!(
        "\nNotes: N = n² IDs; the paper's lower-bound row Ω(D·Δ^(1−1/α)) is \
         reproduced by fig7_lowerbound_chain. (*) simplified variant, DESIGN.md §3."
    );
}
