//! **Ablation (Lemma 7)** — why *witnessed* selection matters: run
//! Algorithm 1's filtering with a plain ssf (no witness guarantee) versus
//! the wss, and count close pairs lost and candidate purges.
//!
//! With a plain ssf a node may never observe a round that discredits a far
//! candidate, so candidate sets overflow κ and get purged — losing close
//! pairs. The wss's witnessed selections guarantee the evidence arrives.
//!
//! The schedule-length sweep is a grid of scenario specs with overridden
//! `params len_factor=…` lines; `--scenario <file>.scn` ablates that one
//! spec instead (its `params` line sets the budget).

use dcluster_bench::{
    print_table, resolver_override, scenario_override, write_csv, Runner, ScenarioSpec,
};
use dcluster_core::proximity::build_proximity_graph;
use dcluster_core::run::{ReplayUnit, SchedHandle, SeedSeq};
use dcluster_core::{Msg, ProtocolParams};
use dcluster_selectors::ssf::RandomSsf;
use dcluster_sim::metrics::close_pairs;
use dcluster_sim::Network;

/// Plain-ssf variant of Alg. 1 (exchange + filter only, no witness
/// property): returns (candidate overflow purges, close pairs covered).
fn ssf_variant(runner: &Runner, net: &Network, params: &ProtocolParams) -> (usize, usize) {
    let ssf = RandomSsf::with_len(
        0xAB1A7E,
        params.kappa,
        params.sched_len(RandomSsf::recommended_len(net.max_id(), params.kappa)),
    );
    let nodes: Vec<usize> = (0..net.len()).collect();
    let unit = ReplayUnit::snapshot(net, SchedHandle::Ssf(ssf), &nodes, &vec![0; net.len()]);
    let mut engine = runner.engine(net).expect("sweep spec is valid");
    let mut heard: Vec<Vec<(u64, usize)>> = vec![Vec::new(); net.len()];
    unit.run(
        &mut engine,
        |v| Msg::Hello {
            id: net.id(v),
            cluster: 0,
        },
        &mut |recv, lr, sender, _| heard[recv].push((lr, sender)),
    );
    let mut purges = 0usize;
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); net.len()];
    for v in 0..net.len() {
        let mut uv: Vec<usize> = heard[v].iter().map(|&(_, s)| s).collect();
        uv.sort_unstable();
        uv.dedup();
        let mut keep = Vec::new();
        'c: for &w in &uv {
            for &(r, u) in &heard[v] {
                if u != w && unit.sched.contains(r, net.id(w), 0) {
                    continue 'c;
                }
            }
            keep.push(w);
        }
        if keep.len() > params.kappa {
            purges += 1;
            keep.clear();
        }
        adj[v] = keep;
    }
    let pairs = close_pairs(net.points(), None, net.density(), 1.0, net.params().epsilon);
    let covered = pairs
        .iter()
        .filter(|cp| adj[cp.u].contains(&cp.w) && adj[cp.w].contains(&cp.u))
        .count();
    (purges, covered)
}

fn main() {
    let mut specs: Vec<ScenarioSpec> = Vec::new();
    if let Some(spec) = scenario_override() {
        specs.push(spec);
    } else {
        // Sweep the schedule-length budget downwards: the witnessed
        // property degrades gracefully (filtering evidence is *guaranteed*
        // to arrive within the schedule), while plain ssf filtering
        // starves.
        for &factor in &[0.02f64, 0.004, 0.001] {
            for (i, &n) in [80usize, 140].iter().enumerate() {
                let params = ProtocolParams {
                    len_factor: factor,
                    min_sched_len: 16,
                    ..ProtocolParams::practical()
                };
                specs.push(
                    ScenarioSpec::uniform(format!("ablate-f{factor}-n{n}"), 60 + i as u64, n, 2.0)
                        .params(params),
                );
            }
        }
    }
    let mut rows: Vec<Vec<String>> = Vec::new();
    for spec in specs {
        let params = spec.params;
        let runner = Runner::new(spec).with_resolver_override(resolver_override());
        let net = runner.build_network().expect("sweep spec is valid");
        let pairs = close_pairs(net.points(), None, net.density(), 1.0, net.params().epsilon);

        // wss (the paper's construction).
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = runner.engine(&net).expect("sweep spec is valid");
        let members: Vec<usize> = (0..net.len()).collect();
        let p = build_proximity_graph(
            &mut engine,
            &params,
            &mut seeds,
            &members,
            &vec![0; net.len()],
            false,
        );
        let wss_cov = pairs.iter().filter(|cp| p.has_edge(cp.u, cp.w)).count();

        // plain ssf.
        let (purges, ssf_cov) = ssf_variant(&runner, &net, &params);

        rows.push(vec![
            format!("{}", params.len_factor),
            net.len().to_string(),
            net.density().to_string(),
            pairs.len().to_string(),
            format!("{wss_cov}/{}", pairs.len()),
            format!("{ssf_cov}/{}", pairs.len()),
            purges.to_string(),
        ]);
    }
    print_table(
        "Ablation — witnessed (wss) vs plain ssf in Algorithm 1",
        &[
            "len factor",
            "n",
            "Γ",
            "close pairs",
            "wss covered",
            "ssf covered",
            "ssf purges",
        ],
        &rows,
    );
    println!(
        "\nThe wss's witnessed selections implement implicit collision \
         detection; without them evidence against far candidates may never \
         arrive (purges, lost pairs)."
    );
    write_csv(
        "ablation_wss",
        &[
            "len_factor",
            "n",
            "gamma",
            "pairs",
            "wss_cov",
            "ssf_cov",
            "purges",
        ],
        &rows,
    );
}
