//! **Figure 4** — full sparsification: the level sets `A_0 ⊇ A_1 ⊇ …` and
//! their (3/4)^i density decay (Lemma 10).

use dcluster_bench::{engine as make_engine, print_table, write_csv};
use dcluster_core::sparsify::{full_sparsification, max_cluster_size};
use dcluster_core::{ProtocolParams, SeedSeq};
use dcluster_sim::{deploy, rng::Rng64, Network};

fn main() {
    let mut rng = Rng64::new(44);
    let net = Network::builder(deploy::uniform_square(70, 1.6, &mut rng))
        .build()
        .expect("nonempty");
    let params = ProtocolParams::practical();
    let mut seeds = SeedSeq::new(params.seed);
    let mut engine = make_engine(&net);
    let all: Vec<usize> = (0..net.len()).collect();
    let gamma = net.density();
    let clusters = vec![1u64; net.len()];
    let out = full_sparsification(&mut engine, &params, &mut seeds, gamma, &all, &clusters);

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (i, level) in out.levels.iter().enumerate() {
        let bound = (gamma as f64 * 0.75f64.powi(i as i32)).ceil();
        rows.push(vec![
            format!("A_{i}"),
            level.len().to_string(),
            max_cluster_size(level, &clusters).to_string(),
            format!("{bound}"),
        ]);
    }
    print_table(
        &format!("Figure 4 — FullSparsification levels (Γ = {gamma}, one cluster)"),
        &["level", "|A_i|", "cluster density", "Lemma 10 bound ¾^i·Γ"],
        &rows,
    );
    println!(
        "\nlinks: {}, units: {}, rounds: {}",
        out.links.len(),
        out.units.len(),
        engine.stats().rounds
    );
    write_csv(
        "fig4_full_sparsify",
        &["level", "size", "density", "bound"],
        &rows,
    );
}
