//! **Figure 4** — full sparsification: the level sets `A_0 ⊇ A_1 ⊇ …` and
//! their (3/4)^i density decay (Lemma 10).
//!
//! A sub-protocol probe over a scenario-spec deployment (the committed
//! `scenarios/fig4_levels.scn` is this exact spec; `--scenario` swaps it).

use dcluster_bench::{
    print_table, resolver_override, scenario_override, write_csv, Runner, ScenarioSpec,
};
use dcluster_core::sparsify::{full_sparsification, max_cluster_size};
use dcluster_core::SeedSeq;

fn main() {
    let spec =
        scenario_override().unwrap_or_else(|| ScenarioSpec::uniform("fig4-levels", 44, 70, 1.6));
    let params = spec.params;
    let runner = Runner::new(spec).with_resolver_override(resolver_override());
    let net = runner.build_network().expect("sweep spec is valid");
    let mut seeds = SeedSeq::new(params.seed);
    let mut engine = runner.engine(&net).expect("sweep spec is valid");
    let all: Vec<usize> = (0..net.len()).collect();
    let gamma = net.density();
    let clusters = vec![1u64; net.len()];
    let out = full_sparsification(&mut engine, &params, &mut seeds, gamma, &all, &clusters);

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (i, level) in out.levels.iter().enumerate() {
        let bound = (gamma as f64 * 0.75f64.powi(i as i32)).ceil();
        rows.push(vec![
            format!("A_{i}"),
            level.len().to_string(),
            max_cluster_size(level, &clusters).to_string(),
            format!("{bound}"),
        ]);
    }
    print_table(
        &format!("Figure 4 — FullSparsification levels (Γ = {gamma}, one cluster)"),
        &["level", "|A_i|", "cluster density", "Lemma 10 bound ¾^i·Γ"],
        &rows,
    );
    println!(
        "\nlinks: {}, units: {}, rounds: {}",
        out.links.len(),
        out.units.len(),
        engine.stats().rounds
    );
    write_csv(
        "fig4_full_sparsify",
        &["level", "size", "density", "bound"],
        &rows,
    );
}
