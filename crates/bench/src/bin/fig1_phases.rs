//! **Figure 1** — a phase of the global broadcast algorithm: awake layers
//! grow hop by hop; every layer ends 1-clustered.
//!
//! Prints the per-phase trace (newly awake, clusters, stage rounds) on a
//! hotspot network like the figure's — a layered scenario spec (one
//! Gaussian clump over a spined corridor, sharing the deployment RNG).
//! Pass `--scenario <file>.scn` to trace a different workload.

use dcluster_bench::{
    print_table, resolver_override, run_scenario_flag, write_csv, DeployLayer, Runner,
    ScenarioSpec, Workload, WorkloadOutcome,
};

/// The figure's workload: three hotspots along a line — black/red/blue
/// clusters of the figure.
fn fig1_spec() -> ScenarioSpec {
    ScenarioSpec::new("fig1", 11)
        .layer(DeployLayer::Clumped {
            centers: 1,
            per: 10,
            sigma: 0.15,
            side: 0.1,
        })
        .layer(DeployLayer::Corridor {
            n: 30,
            length: 5.0,
            width: 1.0,
            spine: 0.45,
        })
        .workload(Workload::GlobalBroadcast {
            source: 0,
            token: 99,
        })
}

fn main() {
    let workload = Workload::GlobalBroadcast {
        source: 0,
        token: 99,
    };
    if run_scenario_flag(workload.clone()) {
        return;
    }
    let runner = Runner::new(fig1_spec()).with_resolver_override(resolver_override());
    let net = runner.build_network().expect("sweep spec is valid");
    assert!(
        net.comm_graph().is_connected(),
        "workload must be connected"
    );
    let out = runner.run_on(net, &workload).expect("sweep spec is valid");
    let WorkloadOutcome::GlobalBroadcast {
        delivered_all,
        phases,
        report,
        ..
    } = &out.outcome
    else {
        unreachable!("global workload returns a global outcome");
    };
    assert!(delivered_all);

    let rows: Vec<Vec<String>> = phases
        .iter()
        .map(|p| {
            vec![
                p.phase.to_string(),
                p.newly_awake.to_string(),
                p.awake_total.to_string(),
                p.rounds.to_string(),
                p.stage1_rounds.to_string(),
                p.stage2_rounds.to_string(),
                p.stage3_rounds.to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 1 — SMSBroadcast phase trace (hotspot + corridor)",
        &[
            "phase",
            "newly awake",
            "awake total",
            "rounds",
            "stage1 (label)",
            "stage2 (SNS×Δ)",
            "stage3 (radius)",
        ],
        &rows,
    );
    println!(
        "\nfinal clustering: {} clusters, max radius {:.3}, ≤{} clusters per unit ball, \
         unassigned {}",
        report.clusters, report.max_radius, report.max_clusters_per_unit_ball, report.unassigned
    );
    println!("total rounds: {}", out.rounds);
    write_csv(
        "fig1_phases",
        &[
            "phase",
            "newly_awake",
            "awake_total",
            "rounds",
            "stage1",
            "stage2",
            "stage3",
        ],
        &rows,
    );
}
