//! **Figure 1** — a phase of the global broadcast algorithm: awake layers
//! grow hop by hop; every layer ends 1-clustered.
//!
//! Prints the per-phase trace (newly awake, clusters, stage rounds) on a
//! hotspot network like the figure's.

use dcluster_bench::{engine as make_engine, print_table, write_csv};
use dcluster_core::check::check_clustering;
use dcluster_core::{global_broadcast, ProtocolParams, SeedSeq};
use dcluster_sim::{deploy, rng::Rng64, Network};

fn main() {
    // Three hotspots along a line — black/red/blue clusters of the figure.
    let mut rng = Rng64::new(11);
    let mut pts = deploy::gaussian_clusters(1, 10, 0.15, 0.1, &mut rng);
    pts.extend(deploy::corridor_with_spine(30, 5.0, 1.0, 0.45, &mut rng));
    let net = Network::builder(pts).build().expect("nonempty");
    assert!(
        net.comm_graph().is_connected(),
        "workload must be connected"
    );

    let params = ProtocolParams::practical();
    let mut seeds = SeedSeq::new(params.seed);
    let mut engine = make_engine(&net);
    let out = global_broadcast(&mut engine, &params, &mut seeds, 0, net.density(), 99);
    assert!(out.delivered_all);

    let rows: Vec<Vec<String>> = out
        .phases
        .iter()
        .map(|p| {
            vec![
                p.phase.to_string(),
                p.newly_awake.to_string(),
                p.awake_total.to_string(),
                p.rounds.to_string(),
                p.stage1_rounds.to_string(),
                p.stage2_rounds.to_string(),
                p.stage3_rounds.to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 1 — SMSBroadcast phase trace (hotspot + corridor)",
        &[
            "phase",
            "newly awake",
            "awake total",
            "rounds",
            "stage1 (label)",
            "stage2 (SNS×Δ)",
            "stage3 (radius)",
        ],
        &rows,
    );
    let rep = check_clustering(&net, &out.cluster_of);
    println!(
        "\nfinal clustering: {} clusters, max radius {:.3}, ≤{} clusters per unit ball, \
         unassigned {}",
        rep.clusters, rep.max_radius, rep.max_clusters_per_unit_ball, rep.unassigned
    );
    println!("total rounds: {}", out.rounds);
    write_csv(
        "fig1_phases",
        &[
            "phase",
            "newly_awake",
            "awake_total",
            "rounds",
            "stage1",
            "stage2",
            "stage3",
        ],
        &rows,
    );
}
