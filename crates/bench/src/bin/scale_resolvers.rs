//! **Resolver scaling sweep** — wall clock and agreement of the four
//! SINR resolver backends on uniform deployments, up to 10⁵ nodes.
//!
//! Two sweep modes per network size:
//!
//! * **rotate** — deterministic rotating transmitter sets at two
//!   densities: consecutive rounds are unrelated, so every backend
//!   (including the persistent ones, whose sparse-patch heuristic bails
//!   to a rebuild on large diffs) pays the full per-round field cost;
//! * **evolve** — a saturated membership set (99.95% transmit — the
//!   busy-tone/wake-up-storm regime, where the round cost *is* the
//!   interference field) churned by ~0.01% of the nodes per round: the
//!   persistent backends patch the cached field with the sparse diff
//!   instead of rebuilding it, and the per-round speedup over
//!   rebuild-from-scratch `aggregated` is recorded (the ROADMAP's ≥2×
//!   target at 10⁵ nodes).
//!
//! Both modes audit that every backend returns identical receptions
//! (the naive oracle joins only at sizes where its `O(n·|T|)` cost stays
//! reasonable); the audit reuses one resolver instance per backend
//! across rounds, so the persistent patch path is what gets audited.
//!
//! Scale tiers (`DCLUSTER_SCALE`):
//!
//! * `ci` — n up to ≈2·10³; additionally acts as the CI gate: exits
//!   non-zero if any backend disagrees anywhere or `aggregated`'s total
//!   rotate-mode wall clock regresses to more than 2× of `grid`'s.
//! * `quick` (default) — n up to 2·10⁴.
//! * `full` — n up to 10⁵ (the ROADMAP scale target).
//!
//! Deployments are scenario specs; `--scenario <file>.scn` sweeps that
//! one deployment instead of the size ladder.
//!
//! Output: markdown table, `results/scale_resolvers.csv`, and
//! `BENCH_resolvers.json` (committed reference numbers).

use dcluster_bench::{
    print_table, scale, scenario_override, write_csv, Runner, Scale, ScenarioSpec,
};
use dcluster_core::check::audit_resolver_equivalence;
use dcluster_sim::{rng::Rng64, Network, ResolverKind};
use std::time::Instant;

/// Rounds resolved per (n, density) configuration.
const ROUNDS: usize = 8;
/// Naive oracle joins the audit only up to this size.
const NAIVE_CAP: usize = 4_000;
/// Transmit fraction of the evolve mode (saturated: almost everyone
/// transmits, so per-round cost is dominated by the interference field,
/// which the persistent backends patch instead of rebuilding).
const EVOLVE_FRAC: f64 = 0.9995;
/// Fraction of nodes whose membership flips per evolve round. Kept
/// sparse (0.01%) so churn does not accumulate a listener pool across
/// rounds — the regime stays saturated and the field cost dominant.
const EVOLVE_CHURN: f64 = 0.000_1;

struct Row {
    mode: &'static str,
    n: usize,
    tx_frac: f64,
    tx_avg: usize,
    kind: ResolverKind,
    millis: f64,
    receptions: u64,
}

/// Times `ROUNDS` resolves of `tx_sets` through one persistent resolver
/// instance (so the backend's cross-round state — if any — is in play).
fn time_kind(net: &Network, kind: ResolverKind, tx_sets: &[Vec<usize>]) -> (f64, u64) {
    let mut resolver = kind.build();
    let mut out = Vec::new();
    let mut receptions = 0u64;
    let start = Instant::now();
    for tx in tx_sets {
        resolver.resolve_into(net, tx, &mut out);
        receptions += out.len() as u64;
    }
    (start.elapsed().as_secs_f64() * 1e3, receptions)
}

fn main() {
    let tier = scale();
    let ns: &[usize] = match tier {
        Scale::Ci => &[500, 1_000, 2_000],
        Scale::Quick => &[1_000, 4_000, 20_000],
        Scale::Full => &[1_000, 10_000, 100_000],
    };
    let tx_fracs = [0.05f64, 0.3];
    // Constant node density (≈40 per unit ball) so |T| — not the geometry —
    // is what grows along the sweep.
    let side_of = |n: usize| (n as f64 / 40.0).sqrt() * 2.0;
    let specs: Vec<ScenarioSpec> = match scenario_override() {
        Some(spec) => vec![spec],
        None => ns
            .iter()
            .map(|&n| {
                ScenarioSpec::uniform(format!("scale-n{n}"), 0x5ca1e + n as u64, n, side_of(n))
            })
            .collect(),
    };

    let mut rows: Vec<Row> = Vec::new();
    let mut disagreements = 0u32;
    for spec in specs {
        let net: Network = Runner::new(spec)
            .build_network()
            .expect("sweep spec is valid");
        let n = net.len();

        // Mode 1: rotating, unrelated transmitter sets.
        for &frac in &tx_fracs {
            // Deterministic rotating transmitter sets: round r transmits the
            // nodes whose (index + r·stride) hashes under the fraction.
            let tx_sets: Vec<Vec<usize>> = (0..ROUNDS)
                .map(|r| {
                    let mut rr = Rng64::new((n as u64) << 8 | r as u64);
                    (0..n).filter(|_| rr.chance(frac)).collect()
                })
                .collect();
            let tx_avg = tx_sets.iter().map(Vec::len).sum::<usize>() / ROUNDS;

            let mut audited: Vec<ResolverKind> = vec![
                ResolverKind::Grid,
                ResolverKind::Aggregated,
                ResolverKind::Parallel,
            ];
            if n <= NAIVE_CAP {
                audited.insert(0, ResolverKind::Naive);
            }
            if let Some(d) = audit_resolver_equivalence(&net, &tx_sets, &audited) {
                disagreements += 1;
                eprintln!(
                    "DISAGREEMENT at n={n}, tx_frac={frac}: {} vs {} in audited round {} \
                     ({} vs {} receptions)",
                    d.disagreeing,
                    d.reference,
                    d.round,
                    d.got.len(),
                    d.expected.len()
                );
            }

            for kind in audited {
                let (millis, receptions) = time_kind(&net, kind, &tx_sets);
                rows.push(Row {
                    mode: "rotate",
                    n,
                    tx_frac: frac,
                    tx_avg,
                    kind,
                    millis,
                    receptions,
                });
            }
            eprintln!("done: n={n}, tx_frac={frac} (rotate)");
        }

        // Mode 2: saturated membership with sparse churn — the persistent
        // backends patch the cached field instead of rebuilding it.
        {
            let mut rng = Rng64::new(0xE01_5E7 ^ n as u64);
            let mut member: Vec<bool> = (0..n).map(|_| rng.chance(EVOLVE_FRAC)).collect();
            let flips = ((n as f64 * EVOLVE_CHURN) as usize).max(1);
            let tx_sets: Vec<Vec<usize>> = (0..ROUNDS)
                .map(|_| {
                    for _ in 0..flips {
                        let v = rng.range_usize(n);
                        member[v] = !member[v];
                    }
                    (0..n).filter(|&v| member[v]).collect()
                })
                .collect();
            let tx_avg = tx_sets.iter().map(Vec::len).sum::<usize>() / ROUNDS;

            // Grid is pathological at dense |T| and large n; the oracle of
            // this mode is `aggregated` (itself audited against naive and
            // grid in rotate mode and at small n here).
            let mut audited: Vec<ResolverKind> =
                vec![ResolverKind::Aggregated, ResolverKind::Parallel];
            if n <= NAIVE_CAP {
                audited.insert(0, ResolverKind::Naive);
            }
            if let Some(d) = audit_resolver_equivalence(&net, &tx_sets, &audited) {
                disagreements += 1;
                eprintln!(
                    "DISAGREEMENT at n={n} (evolve): {} vs {} in audited round {} \
                     ({} vs {} receptions)",
                    d.disagreeing,
                    d.reference,
                    d.round,
                    d.got.len(),
                    d.expected.len()
                );
            }

            let mut timed = std::collections::HashMap::new(); // lint:allow(D1, reason = "keyed by backend; read back by key in fixed list order")
            for kind in [ResolverKind::Aggregated, ResolverKind::Parallel] {
                let (millis, receptions) = time_kind(&net, kind, &tx_sets);
                timed.insert(kind, millis);
                rows.push(Row {
                    mode: "evolve",
                    n,
                    tx_frac: EVOLVE_FRAC,
                    tx_avg,
                    kind,
                    millis,
                    receptions,
                });
            }
            let agg = timed[&ResolverKind::Aggregated];
            let par = timed[&ResolverKind::Parallel];
            eprintln!(
                "done: n={n} (evolve): aggregated(rebuild) {agg:.1} ms, \
                 parallel(persistent) {par:.1} ms, speedup {:.2}x",
                agg / par.max(1e-9)
            );
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.mode.to_string(),
                r.n.to_string(),
                format!("{:.2}", r.tx_frac),
                r.tx_avg.to_string(),
                r.kind.name().to_string(),
                format!("{:.2}", r.millis),
                r.receptions.to_string(),
            ]
        })
        .collect();
    let headers = [
        "mode",
        "n",
        "tx_frac",
        "tx_avg",
        "resolver",
        "ms_total",
        "receptions",
    ];
    print_table(
        &format!("Resolver scaling sweep ({ROUNDS} rounds per config, tier {tier:?})"),
        &headers,
        &table,
    );
    write_csv("scale_resolvers", &headers, &table);
    write_json(&rows, tier);

    // CI gate: exact agreement plus bounded regression of the newer
    // backends (rotate mode only: grid runs no evolve rounds).
    if disagreements > 0 {
        eprintln!("FAIL: {disagreements} resolver disagreement(s)");
        std::process::exit(1);
    }
    if tier == Scale::Ci {
        let total = |k: ResolverKind| -> f64 {
            rows.iter()
                .filter(|r| r.kind == k && r.mode == "rotate")
                .map(|r| r.millis)
                .sum::<f64>()
        };
        let (grid, agg) = (total(ResolverKind::Grid), total(ResolverKind::Aggregated));
        eprintln!("ci gate: grid {grid:.1} ms total, aggregated {agg:.1} ms total");
        if agg > 2.0 * grid {
            eprintln!(
                "FAIL: aggregated resolver regressed >2x vs grid ({agg:.1} ms vs {grid:.1} ms)"
            );
            std::process::exit(1);
        }
        println!("\nci gate: OK (agreement + wall clock within 2x of grid)");
    }
}

/// Writes the committed reference-number artifact (schema: one object per
/// (mode, n, tx_frac, resolver) with total milliseconds over the rounds).
fn write_json(rows: &[Row], tier: Scale) {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"bench\": \"scale_resolvers\",\n  \"tier\": \"{tier:?}\",\n  \"rounds_per_config\": {ROUNDS},\n  \"rows\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"n\": {}, \"tx_frac\": {}, \"tx_avg\": {}, \"resolver\": \"{}\", \"ms_total\": {:.3}, \"receptions\": {}}}{}\n",
            r.mode,
            r.n,
            r.tx_frac,
            r.tx_avg,
            r.kind.name(),
            r.millis,
            r.receptions,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    match std::fs::write("BENCH_resolvers.json", &out) {
        Ok(()) => println!("[json] wrote BENCH_resolvers.json"),
        Err(e) => eprintln!("warning: cannot write BENCH_resolvers.json: {e}"),
    }
}
