//! **Theorems 4–5** — wake-up and leader election on multi-hop networks.
//!
//! Each corridor is one scenario spec run through the wake-up and leader
//! workloads; `--scenario <file>.scn` runs one spec (leader workload by
//! default) instead of the sweep.

use dcluster_bench::{
    print_table, resolver_override, run_scenario_flag, write_csv, Runner, ScenarioSpec, Workload,
    WorkloadOutcome,
};

fn main() {
    if run_scenario_flag(Workload::LeaderElection) {
        return;
    }
    let mut rows: Vec<Vec<String>> = Vec::new();

    for (i, &len) in [4.0f64, 8.0, 12.0].iter().enumerate() {
        let n = (len * 5.0) as usize;
        let spec =
            ScenarioSpec::corridor(format!("thm45-len{len}"), 800 + i as u64, n, len, 1.2, 0.5);
        let runner = Runner::new(spec).with_resolver_override(resolver_override());
        let net = runner.build_network().expect("sweep spec is valid");
        let d = net.comm_graph().diameter().unwrap_or(0);

        // Theorem 4: wake-up from a single spontaneous node.
        let w = runner
            .run_on(net.clone(), &Workload::Wakeup { sources: vec![0] })
            .expect("sweep spec is valid");
        let WorkloadOutcome::Wakeup { all_awake, .. } = w.outcome else {
            unreachable!("wakeup workload returns a wakeup outcome");
        };
        assert!(all_awake);

        // Theorem 4: wake-up from scattered spontaneous nodes.
        let spont: Vec<usize> = (0..net.len()).step_by(5).collect();
        let w2 = runner
            .run_on(net.clone(), &Workload::Wakeup { sources: spont })
            .expect("sweep spec is valid");
        let WorkloadOutcome::Wakeup { all_awake, .. } = w2.outcome else {
            unreachable!("wakeup workload returns a wakeup outcome");
        };
        assert!(all_awake);

        // Theorem 5: leader election.
        let le = runner
            .run_on(net.clone(), &Workload::LeaderElection)
            .expect("sweep spec is valid");
        let WorkloadOutcome::Leader { leader_id, probes } = le.outcome else {
            unreachable!("leader workload returns a leader outcome");
        };

        rows.push(vec![
            d.to_string(),
            net.len().to_string(),
            le.density.to_string(),
            w.rounds.to_string(),
            w2.rounds.to_string(),
            le.rounds.to_string(),
            probes.to_string(),
            leader_id.to_string(),
        ]);
        eprintln!("done D={d}");
    }
    print_table(
        "Theorems 4–5 — wake-up and leader election (spined corridors)",
        &[
            "D",
            "n",
            "Δ",
            "wake-up (1 src)",
            "wake-up (n/5 src)",
            "leader rounds",
            "probes",
            "leader id",
        ],
        &rows,
    );
    println!(
        "\nTheorem 4: O(D(Δ+log* N) log N); Theorem 5 pays an extra log N \
         factor for the binary search (probes ≈ log₂ N)."
    );
    write_csv(
        "thm45_wakeup_leader",
        &[
            "D",
            "n",
            "delta",
            "wakeup1",
            "wakeup_many",
            "leader_rounds",
            "probes",
            "leader_id",
        ],
        &rows,
    );
}
