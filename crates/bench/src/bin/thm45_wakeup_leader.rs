//! **Theorems 4–5** — wake-up and leader election on multi-hop networks.

use dcluster_bench::{engine as make_engine, print_table, write_csv};
use dcluster_core::leader::leader_election;
use dcluster_core::wakeup::wakeup;
use dcluster_core::{ProtocolParams, SeedSeq};
use dcluster_sim::{deploy, rng::Rng64, Network};

fn main() {
    let params = ProtocolParams::practical();
    let mut rows: Vec<Vec<String>> = Vec::new();

    for (i, &len) in [4.0f64, 8.0, 12.0].iter().enumerate() {
        let mut rng = Rng64::new(800 + i as u64);
        let n = (len * 5.0) as usize;
        let pts = deploy::corridor_with_spine(n, len, 1.2, 0.5, &mut rng);
        let net = Network::builder(pts).build().expect("nonempty");
        let d = net.comm_graph().diameter().unwrap_or(0);
        let delta = net.density();

        // Theorem 4: wake-up from a single spontaneous node.
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = make_engine(&net);
        let w = wakeup(&mut engine, &params, &mut seeds, &[0], delta);
        assert!(w.all_awake);

        // Theorem 4: wake-up from scattered spontaneous nodes.
        let mut seeds2 = SeedSeq::new(params.seed);
        let mut engine2 = make_engine(&net);
        let spont: Vec<usize> = (0..net.len()).step_by(5).collect();
        let w2 = wakeup(&mut engine2, &params, &mut seeds2, &spont, delta);
        assert!(w2.all_awake);

        // Theorem 5: leader election.
        let mut seeds3 = SeedSeq::new(params.seed);
        let mut engine3 = make_engine(&net);
        let le = leader_election(&mut engine3, &params, &mut seeds3, delta);

        rows.push(vec![
            d.to_string(),
            net.len().to_string(),
            delta.to_string(),
            w.rounds.to_string(),
            w2.rounds.to_string(),
            le.rounds.to_string(),
            le.probes.to_string(),
            le.leader_id.to_string(),
        ]);
        eprintln!("done D={d}");
    }
    print_table(
        "Theorems 4–5 — wake-up and leader election (spined corridors)",
        &[
            "D",
            "n",
            "Δ",
            "wake-up (1 src)",
            "wake-up (n/5 src)",
            "leader rounds",
            "probes",
            "leader id",
        ],
        &rows,
    );
    println!(
        "\nTheorem 4: O(D(Δ+log* N) log N); Theorem 5 pays an extra log N \
         factor for the binary search (probes ≈ log₂ N)."
    );
    write_csv(
        "thm45_wakeup_leader",
        &[
            "D",
            "n",
            "delta",
            "wakeup1",
            "wakeup_many",
            "leader_rounds",
            "probes",
            "leader_id",
        ],
        &rows,
    );
}
