//! **Figures 5–6 + Lemma 13** — the single-gadget lower bound: the
//! adversarial ID assignment forces every deterministic strategy to spend
//! Ω(∆) rounds before the target hears anything.

use dcluster_bench::{print_table, write_csv};
use dcluster_lowerbound::adversary::{HashedCoin, MultiScale, RoundRobin, SsfStrategy};
use dcluster_lowerbound::{adversarial_assignment, lower_bound_params, measure_gadget, Gadget};
use dcluster_selectors::ssf::RandomSsf;

fn main() {
    let p = lower_bound_params();
    let deltas = [4usize, 8, 12, 16, 24, 32];
    let mut rows: Vec<Vec<String>> = Vec::new();

    for &delta in &deltas {
        let g = Gadget::new(delta, &p, 0.0);
        let ids: Vec<u64> = (1..=(delta as u64 + 2)).collect();
        let mut cells = vec![delta.to_string()];
        // Three deterministic strategies, same adversary.
        // The ssf's k must cover the whole awake core (Δ+2 contenders),
        // otherwise unique selection is never guaranteed.
        let rr = RoundRobin {
            period: (delta + 8) as u64,
        };
        let k_core = delta + 4;
        let ssf_len = (8 * k_core * k_core) as u64;
        let ssf = SsfStrategy(RandomSsf::with_len(3, k_core, ssf_len));
        let coin = HashedCoin {
            seed: 17,
            k: (delta / 2).max(2) as u64,
        };

        let game_rr = adversarial_assignment(&rr, delta, &ids, 2_000_000);
        let t_rr = measure_gadget(&g, &p, &game_rr.assignment, 900, 901, &rr, 2_000_000);
        cells.push(fmt(t_rr));

        let game_ssf = adversarial_assignment(&ssf, delta, &ids, 2_000_000);
        let t_ssf = measure_gadget(&g, &p, &game_ssf.assignment, 900, 901, &ssf, 2_000_000);
        cells.push(fmt(t_ssf));

        let game_coin = adversarial_assignment(&coin, delta, &ids, 2_000_000);
        let t_coin = measure_gadget(&g, &p, &game_coin.assignment, 900, 901, &coin, 2_000_000);
        cells.push(fmt(t_coin));

        let ms = MultiScale {
            seed: 23,
            scales: 8,
        };
        let game_ms = adversarial_assignment(&ms, delta, &ids, 2_000_000);
        let t_ms = measure_gadget(&g, &p, &game_ms.assignment, 900, 901, &ms, 2_000_000);
        cells.push(fmt(t_ms));

        cells.push((delta / 2).to_string());
        rows.push(cells);
    }
    print_table(
        "Figures 5–6 — rounds until t hears, adversarial IDs (Lemma 13)",
        &[
            "Δ",
            "round-robin",
            "ssf strategy",
            "hashed-coin",
            "multi-scale",
            "Ω(Δ) reference (Δ/2)",
        ],
        &rows,
    );
    println!(
        "\nregime: α = {}, β = {} (> 2^α), ε = {} — Facts 2.1/2.2 machine-checked.",
        p.alpha, p.beta, p.epsilon
    );
    write_csv(
        "fig5_lowerbound_gadget",
        &[
            "delta",
            "round_robin",
            "ssf",
            "hashed_coin",
            "multi_scale",
            "reference",
        ],
        &rows,
    );
}

fn fmt(x: Option<u64>) -> String {
    x.map_or_else(|| "—".to_string(), |v| v.to_string())
}
