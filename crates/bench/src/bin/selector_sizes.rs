//! **Lemmas 2–3** — selector sizes: measured/recommended lengths of ssf,
//! wss and wcss versus `k`, `l`, `N`, against the paper's bounds.

use dcluster_bench::{print_table, write_csv};
use dcluster_selectors::{theory, RsSsf};

fn main() {
    let n_univ = 1u64 << 20;
    let mut rows: Vec<Vec<String>> = Vec::new();
    for &k in &[2usize, 4, 8, 16] {
        let rs = RsSsf::new(n_univ, k);
        rows.push(vec![
            k.to_string(),
            format!("{:.0}", theory::ssf_optimal(n_univ, k)),
            format!("{}", rs.field_size() * rs.field_size()),
            format!("{:.0}", theory::wss(n_univ, k)),
            format!("{:.0}", theory::wcss(n_univ, k, 4)),
            format!("{:.0}", theory::wcss(n_univ, k, 8)),
        ]);
    }
    print_table(
        "Lemmas 2–3 — selector sizes over [N], N = 2^20",
        &[
            "k",
            "ssf optimal k²ln(N/k)",
            "ssf Reed–Solomon q²",
            "wss O(k³ log N) (L.2)",
            "wcss l=4 (L.3)",
            "wcss l=8 (L.3)",
        ],
        &rows,
    );
    println!(
        "\nShapes: wss/ssf ≈ Θ(k); wcss grows with l as (k+l)·l — both match \
         the lemmas' bounds."
    );
    write_csv(
        "selector_sizes",
        &["k", "ssf_opt", "ssf_rs", "wss", "wcss_l4", "wcss_l8"],
        &rows,
    );
}
