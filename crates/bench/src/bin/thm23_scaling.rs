//! **Theorems 2–3** — normalized scaling of the headline algorithms:
//! local broadcast rounds/Δ should be ≈ flat (linear in Δ, Theorem 2 vs
//! the universal Ω(Δ)); global broadcast rounds/(D·Δ) likewise
//! (Theorem 3).
//!
//! Both sweeps run scenario specs through the unified Runner;
//! `--scenario <file>.scn` runs one spec (local workload) instead.

use dcluster_bench::{
    full_scale, print_table, resolver_override, run_scenario_flag, write_csv, Runner, ScenarioSpec,
    Workload, WorkloadOutcome,
};

fn main() {
    if run_scenario_flag(Workload::LocalBroadcast) {
        return;
    }

    // --- Theorem 2: local broadcast vs Δ.
    let deltas: Vec<usize> = if full_scale() {
        vec![4, 8, 12, 18]
    } else {
        vec![4, 8, 12]
    };
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (i, &delta) in deltas.iter().enumerate() {
        let spec = ScenarioSpec::degree(format!("thm2-d{delta}"), 300 + i as u64, 70, delta);
        let out = Runner::new(spec)
            .with_resolver_override(resolver_override())
            .run(&Workload::LocalBroadcast)
            .expect("sweep spec is valid");
        let WorkloadOutcome::LocalBroadcast { complete, .. } = out.outcome else {
            unreachable!("local workload returns a local outcome");
        };
        assert!(complete);
        let gamma = out.density;
        rows.push(vec![
            gamma.to_string(),
            out.rounds.to_string(),
            format!("{:.0}", out.rounds as f64 / gamma as f64),
            gamma.to_string(), // the Ω(Δ) reference
        ]);
        eprintln!("local done Γ={gamma}");
    }
    print_table(
        "Theorem 2 — local broadcast scaling (n = 70)",
        &["Γ (≈Δ)", "rounds", "rounds/Γ (≈flat)", "Ω(Δ) reference"],
        &rows,
    );
    write_csv(
        "thm2_local_scaling",
        &["gamma", "rounds", "rounds_per_gamma", "lb"],
        &rows,
    );

    // --- Theorem 3: global broadcast vs D at similar Δ.
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (i, &len) in [5.0f64, 10.0, 15.0].iter().enumerate() {
        let n = (len * 5.0) as usize;
        let spec =
            ScenarioSpec::corridor(format!("thm3-len{len}"), 400 + i as u64, n, len, 1.2, 0.5);
        let runner = Runner::new(spec).with_resolver_override(resolver_override());
        let net = runner.build_network().expect("sweep spec is valid");
        let d = net.comm_graph().diameter().unwrap_or(1).max(1);
        let out = runner
            .run_on(
                net,
                &Workload::GlobalBroadcast {
                    source: 0,
                    token: 1,
                },
            )
            .expect("sweep spec is valid");
        let WorkloadOutcome::GlobalBroadcast {
            delivered_all,
            phases,
            ..
        } = &out.outcome
        else {
            unreachable!("global workload returns a global outcome");
        };
        assert!(delivered_all);
        let gamma = out.density;
        rows.push(vec![
            d.to_string(),
            gamma.to_string(),
            out.rounds.to_string(),
            phases.len().to_string(),
            format!("{:.0}", out.rounds as f64 / (d as f64 * gamma as f64)),
        ]);
        eprintln!("global done D={d}");
    }
    print_table(
        "Theorem 3 — global broadcast scaling (spined corridors)",
        &["D", "Γ (≈Δ)", "rounds", "phases", "rounds/(D·Γ) (≈flat)"],
        &rows,
    );
    write_csv(
        "thm3_global_scaling",
        &["D", "gamma", "rounds", "phases", "normalized"],
        &rows,
    );
    println!(
        "\nTheorem 2: O(Δ·log N·log* N) ⇒ rounds/Δ flat up to polylog; \
         Theorem 3: O(D(Δ+log* N) log N) ⇒ rounds/(D·Δ) flat up to polylog."
    );
}
