//! **Theorems 2–3** — normalized scaling of the headline algorithms:
//! local broadcast rounds/Δ should be ≈ flat (linear in Δ, Theorem 2 vs
//! the universal Ω(Δ)); global broadcast rounds/(D·Δ) likewise
//! (Theorem 3).

use dcluster_bench::{
    connected_deployment, engine as make_engine, full_scale, print_table, write_csv,
};
use dcluster_core::{global_broadcast, local_broadcast, ProtocolParams, SeedSeq};
use dcluster_sim::{deploy, rng::Rng64, Network};

fn main() {
    let params = ProtocolParams::practical();

    // --- Theorem 2: local broadcast vs Δ.
    let deltas: Vec<usize> = if full_scale() {
        vec![4, 8, 12, 18]
    } else {
        vec![4, 8, 12]
    };
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (i, &delta) in deltas.iter().enumerate() {
        let net = connected_deployment(70, delta, 300 + i as u64);
        let gamma = net.density();
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = make_engine(&net);
        let out = local_broadcast(&mut engine, &params, &mut seeds, gamma);
        assert!(out.complete);
        rows.push(vec![
            gamma.to_string(),
            out.rounds.to_string(),
            format!("{:.0}", out.rounds as f64 / gamma as f64),
            gamma.to_string(), // the Ω(Δ) reference
        ]);
        eprintln!("local done Γ={gamma}");
    }
    print_table(
        "Theorem 2 — local broadcast scaling (n = 70)",
        &["Γ (≈Δ)", "rounds", "rounds/Γ (≈flat)", "Ω(Δ) reference"],
        &rows,
    );
    write_csv(
        "thm2_local_scaling",
        &["gamma", "rounds", "rounds_per_gamma", "lb"],
        &rows,
    );

    // --- Theorem 3: global broadcast vs D at similar Δ.
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (i, &len) in [5.0f64, 10.0, 15.0].iter().enumerate() {
        let mut rng = Rng64::new(400 + i as u64);
        let n = (len * 5.0) as usize;
        let pts = deploy::corridor_with_spine(n, len, 1.2, 0.5, &mut rng);
        let net = Network::builder(pts).build().expect("nonempty");
        let d = net.comm_graph().diameter().unwrap_or(1).max(1);
        let gamma = net.density();
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = make_engine(&net);
        let out = global_broadcast(&mut engine, &params, &mut seeds, 0, gamma, 1);
        assert!(out.delivered_all);
        rows.push(vec![
            d.to_string(),
            gamma.to_string(),
            out.rounds.to_string(),
            out.phases.len().to_string(),
            format!("{:.0}", out.rounds as f64 / (d as f64 * gamma as f64)),
        ]);
        eprintln!("global done D={d}");
    }
    print_table(
        "Theorem 3 — global broadcast scaling (spined corridors)",
        &["D", "Γ (≈Δ)", "rounds", "phases", "rounds/(D·Γ) (≈flat)"],
        &rows,
    );
    write_csv(
        "thm3_global_scaling",
        &["D", "gamma", "rounds", "phases", "normalized"],
        &rows,
    );
    println!(
        "\nTheorem 2: O(Δ·log N·log* N) ⇒ rounds/Δ flat up to polylog; \
         Theorem 3: O(D(Δ+log* N) log N) ⇒ rounds/(D·Δ) flat up to polylog."
    );
}
