//! **Figure 2** — proximity-graph construction (Algorithm 1): exchange,
//! filtering, confirmation; every close pair ends up an edge, degrees stay
//! ≤ κ.
//!
//! A sub-protocol probe: the scenario spec supplies the deployment and
//! resolver (`--scenario <file>.scn` swaps in a different one); the probe
//! logic runs Algorithm 1 directly.

use dcluster_bench::{
    print_table, resolver_override, scenario_override, write_csv, Runner, ScenarioSpec,
};
use dcluster_core::proximity::build_proximity_graph;
use dcluster_core::{ProtocolParams, SeedSeq};
use dcluster_sim::metrics::close_pairs;

fn main() {
    let specs: Vec<ScenarioSpec> = match scenario_override() {
        Some(spec) => vec![spec],
        None => [40usize, 80, 120]
            .iter()
            .enumerate()
            .map(|(i, &n)| ScenarioSpec::uniform(format!("fig2-n{n}"), 21 + i as u64, n, 3.0))
            .collect(),
    };
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut kappa = ProtocolParams::practical().kappa;
    for spec in specs {
        let params = spec.params;
        kappa = params.kappa;
        let runner = Runner::new(spec).with_resolver_override(resolver_override());
        let net = runner.build_network().expect("sweep spec is valid");
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = runner.engine(&net).expect("sweep spec is valid");
        let members: Vec<usize> = (0..net.len()).collect();
        let p = build_proximity_graph(
            &mut engine,
            &params,
            &mut seeds,
            &members,
            &vec![0; net.len()],
            false,
        );
        let pairs = close_pairs(net.points(), None, net.density(), 1.0, net.params().epsilon);
        let covered = pairs.iter().filter(|cp| p.has_edge(cp.u, cp.w)).count();
        rows.push(vec![
            net.len().to_string(),
            net.density().to_string(),
            p.edges().len().to_string(),
            p.max_degree().to_string(),
            format!("{covered}/{}", pairs.len()),
            engine.stats().rounds.to_string(),
        ]);
    }
    print_table(
        "Figure 2 — ProximityGraphConstruction (Alg. 1, Lemma 7)",
        &[
            "n",
            "density Γ",
            "H edges",
            "max degree (≤ κ)",
            "close pairs covered",
            "rounds",
        ],
        &rows,
    );
    println!("\nκ = {kappa} (degree cap); rounds = (κ+1)·|wss| = O(log N)");
    write_csv(
        "fig2_proximity",
        &[
            "n",
            "gamma",
            "edges",
            "max_degree",
            "close_pairs_covered",
            "rounds",
        ],
        &rows,
    );
}
