//! **Figure 2** — proximity-graph construction (Algorithm 1): exchange,
//! filtering, confirmation; every close pair ends up an edge, degrees stay
//! ≤ κ.

use dcluster_bench::{engine as make_engine, print_table, write_csv};
use dcluster_core::proximity::build_proximity_graph;
use dcluster_core::{ProtocolParams, SeedSeq};
use dcluster_sim::metrics::close_pairs;
use dcluster_sim::{deploy, rng::Rng64, Network};

fn main() {
    let params = ProtocolParams::practical();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (i, &n) in [40usize, 80, 120].iter().enumerate() {
        let mut rng = Rng64::new(21 + i as u64);
        let net = Network::builder(deploy::uniform_square(n, 3.0, &mut rng))
            .build()
            .expect("nonempty");
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = make_engine(&net);
        let members: Vec<usize> = (0..net.len()).collect();
        let p = build_proximity_graph(
            &mut engine,
            &params,
            &mut seeds,
            &members,
            &vec![0; net.len()],
            false,
        );
        let pairs = close_pairs(net.points(), None, net.density(), 1.0, net.params().epsilon);
        let covered = pairs.iter().filter(|cp| p.has_edge(cp.u, cp.w)).count();
        rows.push(vec![
            n.to_string(),
            net.density().to_string(),
            p.edges().len().to_string(),
            p.max_degree().to_string(),
            format!("{covered}/{}", pairs.len()),
            engine.stats().rounds.to_string(),
        ]);
    }
    print_table(
        "Figure 2 — ProximityGraphConstruction (Alg. 1, Lemma 7)",
        &[
            "n",
            "density Γ",
            "H edges",
            "max degree (≤ κ)",
            "close pairs covered",
            "rounds",
        ],
        &rows,
    );
    println!(
        "\nκ = {} (degree cap); rounds = (κ+1)·|wss| = O(log N)",
        params.kappa
    );
    write_csv(
        "fig2_proximity",
        &[
            "n",
            "gamma",
            "edges",
            "max_degree",
            "close_pairs_covered",
            "rounds",
        ],
        &rows,
    );
}
