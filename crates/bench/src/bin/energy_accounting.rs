//! **Energy experiment** — transmissions as an energy proxy (the paper's
//! motivation: "wireless ad hoc networks are usually built from
//! computationally limited devices run on batteries").
//!
//! Compares total transmissions and transmissions per node for local
//! broadcast: this work vs the randomized and feedback baselines, on the
//! same scenario-spec deployments. `--scenario <file>.scn` runs one spec
//! through the local workload instead.

use dcluster_baselines::local::{self, FeedbackPreset};
use dcluster_bench::{
    print_table, resolver_override, run_scenario_flag, write_csv, Runner, ScenarioSpec, Workload,
    WorkloadOutcome,
};

fn main() {
    if run_scenario_flag(Workload::LocalBroadcast) {
        return;
    }
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (i, &delta) in [6usize, 12].iter().enumerate() {
        let spec = ScenarioSpec::degree(format!("energy-d{delta}"), 650 + i as u64, 70, delta);
        let runner = Runner::new(spec).with_resolver_override(resolver_override());
        let net = runner.build_network().expect("sweep spec is valid");
        let d_real = net.max_degree().max(1);
        let cap = 3_000_000;

        let ours = runner
            .run_on(net.clone(), &Workload::LocalBroadcast)
            .expect("sweep spec is valid");
        let WorkloadOutcome::LocalBroadcast { complete, .. } = ours.outcome else {
            unreachable!("local workload returns a local outcome");
        };
        assert!(complete);

        let gmw = local::gmw_known_delta(&net, d_real, 7, cap);
        let fb = local::feedback(&net, d_real, FeedbackPreset::HalldorssonMitra, 7, cap);

        for (name, rounds, tx) in [
            ("THIS WORK (deterministic)", ours.rounds, ours.transmissions),
            ("[16] randomized", gmw.rounds, gmw.transmissions),
            ("[19] feedback", fb.rounds, fb.transmissions),
        ] {
            rows.push(vec![
                format!("Δ≈{d_real}"),
                name.to_string(),
                rounds.to_string(),
                tx.to_string(),
                format!("{:.1}", tx as f64 / net.len() as f64),
                format!("{:.4}", tx as f64 / rounds.max(1) as f64 / net.len() as f64),
            ]);
        }
        eprintln!("done Δ≈{d_real}");
    }
    print_table(
        "Energy — transmissions during local broadcast (n = 70)",
        &[
            "net",
            "algorithm",
            "rounds",
            "total tx",
            "tx per node",
            "duty cycle",
        ],
        &rows,
    );
    println!(
        "\nDeterministic schedules are sparse by construction (selector \
         membership ≈ 1/κ), so per-round duty cycle stays low; the paper's \
         energy argument for determinism is visible in the duty-cycle column."
    );
    write_csv(
        "energy_accounting",
        &[
            "net",
            "algo",
            "rounds",
            "tx_total",
            "tx_per_node",
            "duty_cycle",
        ],
        &rows,
    );
}
