//! **Energy experiment** — transmissions as an energy proxy (the paper's
//! motivation: "wireless ad hoc networks are usually built from
//! computationally limited devices run on batteries").
//!
//! Compares total transmissions and transmissions per node for local
//! broadcast: this work vs the randomized and feedback baselines.

use dcluster_baselines::local::{self, FeedbackPreset};
use dcluster_bench::{connected_deployment, engine as make_engine, print_table, write_csv};
use dcluster_core::{local_broadcast, ProtocolParams, SeedSeq};

fn main() {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (i, &delta) in [6usize, 12].iter().enumerate() {
        let net = connected_deployment(70, delta, 650 + i as u64);
        let d_real = net.max_degree().max(1);
        let cap = 3_000_000;

        let params = ProtocolParams::practical();
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = make_engine(&net);
        let ours = local_broadcast(&mut engine, &params, &mut seeds, net.density());
        assert!(ours.complete);
        let ours_tx = engine.stats().transmissions;

        let gmw = local::gmw_known_delta(&net, d_real, 7, cap);
        let fb = local::feedback(&net, d_real, FeedbackPreset::HalldorssonMitra, 7, cap);

        for (name, rounds, tx) in [
            ("THIS WORK (deterministic)", ours.rounds, ours_tx),
            ("[16] randomized", gmw.rounds, gmw.transmissions),
            ("[19] feedback", fb.rounds, fb.transmissions),
        ] {
            rows.push(vec![
                format!("Δ≈{d_real}"),
                name.to_string(),
                rounds.to_string(),
                tx.to_string(),
                format!("{:.1}", tx as f64 / net.len() as f64),
                format!("{:.4}", tx as f64 / rounds.max(1) as f64 / net.len() as f64),
            ]);
        }
        eprintln!("done Δ≈{d_real}");
    }
    print_table(
        "Energy — transmissions during local broadcast (n = 70)",
        &[
            "net",
            "algorithm",
            "rounds",
            "total tx",
            "tx per node",
            "duty cycle",
        ],
        &rows,
    );
    println!(
        "\nDeterministic schedules are sparse by construction (selector \
         membership ≈ 1/κ), so per-round duty cycle stays low; the paper's \
         energy argument for determinism is visible in the duty-cycle column."
    );
    write_csv(
        "energy_accounting",
        &[
            "net",
            "algo",
            "rounds",
            "tx_total",
            "tx_per_node",
            "duty_cycle",
        ],
        &rows,
    );
}
