//! **Theorem 1** — clustering scaling: rounds grow ~linearly in Γ (density)
//! and ~logarithmically in N (ID space); invariants (i)–(ii) hold
//! throughout.

use dcluster_bench::{
    connected_deployment, engine as make_engine, full_scale, print_table, write_csv,
};
use dcluster_core::check::check_clustering;
use dcluster_core::clustering::clustering;
use dcluster_core::{ProtocolParams, SeedSeq};

fn main() {
    let params = ProtocolParams::practical();
    let deltas: Vec<usize> = if full_scale() {
        vec![4, 8, 12, 16, 24]
    } else {
        vec![4, 8, 12]
    };
    let n = if full_scale() { 120 } else { 70 };

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (i, &delta) in deltas.iter().enumerate() {
        let net = connected_deployment(n, delta, 700 + i as u64);
        let gamma = net.density();
        let mut seeds = SeedSeq::new(params.seed);
        let mut engine = make_engine(&net);
        let all: Vec<usize> = (0..net.len()).collect();
        let cl = clustering(&mut engine, &params, &mut seeds, &all, gamma);
        let rep = check_clustering(&net, &cl.cluster_of);
        rows.push(vec![
            gamma.to_string(),
            cl.rounds.to_string(),
            format!("{:.1}", cl.rounds as f64 / gamma as f64),
            rep.clusters.to_string(),
            format!("{:.3}", rep.max_radius),
            rep.max_clusters_per_unit_ball.to_string(),
            rep.unassigned.to_string(),
        ]);
        eprintln!("done Γ={gamma}");
    }
    print_table(
        &format!("Theorem 1 — Clustering scaling, n = {n}"),
        &[
            "Γ (density)",
            "rounds",
            "rounds/Γ",
            "clusters",
            "max radius (≤1)",
            "clusters/unit ball",
            "unassigned",
        ],
        &rows,
    );
    println!("\nTheorem 1: rounds = O(Γ·log N·log* N) ⇒ rounds/Γ ≈ flat.");
    write_csv(
        "thm1_clustering",
        &[
            "gamma",
            "rounds",
            "rounds_per_gamma",
            "clusters",
            "max_radius",
            "cpb",
            "unassigned",
        ],
        &rows,
    );
}
