//! **Theorem 1** — clustering scaling: rounds grow ~linearly in Γ (density)
//! and ~logarithmically in N (ID space); invariants (i)–(ii) hold
//! throughout.
//!
//! Sweep points are `ScenarioSpec::degree` specs run through the
//! clustering workload; `--scenario <file>.scn` runs one spec instead.

use dcluster_bench::{
    full_scale, print_table, resolver_override, run_scenario_flag, write_csv, Runner, ScenarioSpec,
    Workload, WorkloadOutcome,
};

fn main() {
    if run_scenario_flag(Workload::Clustering) {
        return;
    }
    let deltas: Vec<usize> = if full_scale() {
        vec![4, 8, 12, 16, 24]
    } else {
        vec![4, 8, 12]
    };
    let n = if full_scale() { 120 } else { 70 };

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (i, &delta) in deltas.iter().enumerate() {
        let spec = ScenarioSpec::degree(format!("thm1-d{delta}"), 700 + i as u64, n, delta);
        let out = Runner::new(spec)
            .with_resolver_override(resolver_override())
            .run(&Workload::Clustering)
            .expect("sweep spec is valid");
        let WorkloadOutcome::Clustering { report: rep, .. } = &out.outcome else {
            unreachable!("clustering workload returns a clustering outcome");
        };
        let gamma = out.density;
        rows.push(vec![
            gamma.to_string(),
            out.rounds.to_string(),
            format!("{:.1}", out.rounds as f64 / gamma as f64),
            rep.clusters.to_string(),
            format!("{:.3}", rep.max_radius),
            rep.max_clusters_per_unit_ball.to_string(),
            rep.unassigned.to_string(),
        ]);
        eprintln!("done Γ={gamma}");
    }
    print_table(
        &format!("Theorem 1 — Clustering scaling, n = {n}"),
        &[
            "Γ (density)",
            "rounds",
            "rounds/Γ",
            "clusters",
            "max radius (≤1)",
            "clusters/unit ball",
            "unassigned",
        ],
        &rows,
    );
    println!("\nTheorem 1: rounds = O(Γ·log N·log* N) ⇒ rounds/Γ ≈ flat.");
    write_csv(
        "thm1_clustering",
        &[
            "gamma",
            "rounds",
            "rounds_per_gamma",
            "clusters",
            "max_radius",
            "cpb",
            "unassigned",
        ],
        &rows,
    );
}
