//! **Scenario smoke gate** — runs committed `scenarios/*.scn` files
//! end-to-end through the unified Runner and gates on **report
//! determinism**: every spec is executed twice and the two structured
//! reports must be equal (and their markdown renderings byte-identical).
//!
//! Usage: `scenario_smoke [file.scn ...]` — defaults to the two CI specs
//! (`scenarios/ci_clustering.scn`, `scenarios/ci_maintenance.scn`).
//! Exits non-zero on a parse error, a failed workload, a spec whose
//! round-trip through the text format is not the identity, or any
//! determinism violation.
//!
//! The gate also runs each spec **with a JSONL tracer attached** and
//! checks (a) the traced report renders byte-identically to the untraced
//! one (observability must be inert), and (b) two traced runs produce
//! byte-identical trace files.

use dcluster_bench::{resolver_override, Runner, ScenarioSpec};
use std::fs;

fn main() {
    let mut files: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with("--") && a.ends_with(".scn"))
        .collect();
    if files.is_empty() {
        files = vec![
            "scenarios/ci_clustering.scn".into(),
            "scenarios/ci_maintenance.scn".into(),
        ];
    }
    let mut failures = 0u32;
    for file in &files {
        let spec = match ScenarioSpec::load(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("FAIL: --scenario {e}");
                failures += 1;
                continue;
            }
        };
        // The text format must be a lossless encoding of the spec.
        match ScenarioSpec::parse(&spec.to_text()) {
            Ok(rt) if rt == spec => {}
            Ok(_) => {
                eprintln!("FAIL: {file}: parse(to_text(spec)) != spec");
                failures += 1;
            }
            Err(e) => {
                eprintln!("FAIL: {file}: canonical text does not re-parse: {e}");
                failures += 1;
            }
        }
        let runner = Runner::new(spec).with_resolver_override(resolver_override());
        let first = runner.run_default().expect("committed spec runs");
        let second = runner.run_default().expect("committed spec runs");
        first.print();
        if first != second {
            eprintln!(
                "FAIL: {file}: reruns of scenario '{}' differ",
                first.scenario
            );
            failures += 1;
        }
        if first.to_markdown() != second.to_markdown() {
            eprintln!("FAIL: {file}: rendered reports differ across reruns");
            failures += 1;
        }
        if !first.ok() {
            eprintln!(
                "FAIL: {file}: workload '{}' did not complete",
                first.workload
            );
            failures += 1;
        }

        // Trace gate: tracing must be observationally inert, and traces
        // themselves must be deterministic.
        let trace_a = std::env::temp_dir().join(format!("smoke_{}_a.jsonl", first.scenario));
        let trace_b = std::env::temp_dir().join(format!("smoke_{}_b.jsonl", first.scenario));
        let traced = runner
            .clone()
            .with_trace(Some(trace_a.clone()))
            .run_default()
            .expect("committed spec runs traced");
        if traced.to_markdown() != first.to_markdown() {
            eprintln!("FAIL: {file}: attaching a tracer changed the rendered report");
            failures += 1;
        }
        let _ = runner
            .clone()
            .with_trace(Some(trace_b.clone()))
            .run_default()
            .expect("committed spec runs traced");
        match (fs::read(&trace_a), fs::read(&trace_b)) {
            (Ok(a), Ok(b)) if a == b && !a.is_empty() => {}
            (Ok(a), Ok(b)) => {
                eprintln!(
                    "FAIL: {file}: trace reruns differ ({} vs {} bytes)",
                    a.len(),
                    b.len()
                );
                failures += 1;
            }
            (ra, rb) => {
                eprintln!("FAIL: {file}: trace files unreadable: {ra:?} / {rb:?}");
                failures += 1;
            }
        }
        let _ = fs::remove_file(&trace_a);
        let _ = fs::remove_file(&trace_b);

        eprintln!(
            "done: {file} ({}, workload {}, {} rounds)",
            first.scenario, first.workload, first.rounds
        );
    }
    if failures > 0 {
        eprintln!("FAIL: {failures} scenario smoke failure(s)");
        std::process::exit(1);
    }
    println!(
        "\nci gate: OK ({} scenario file(s), byte-identical reports across reruns)",
        files.len()
    );
}
