//! **Scenario smoke gate** — runs committed `scenarios/*.scn` files
//! end-to-end through the unified Runner and gates on **report
//! determinism**: every spec is executed twice and the two structured
//! reports must be equal (and their markdown renderings byte-identical).
//!
//! Usage: `scenario_smoke [file.scn ...]` — defaults to the two CI specs
//! (`scenarios/ci_clustering.scn`, `scenarios/ci_maintenance.scn`).
//! Exits non-zero on a parse error, a failed workload, a spec whose
//! round-trip through the text format is not the identity, or any
//! determinism violation.

use dcluster_bench::{resolver_override, Runner, ScenarioSpec};

fn main() {
    let mut files: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with("--") && a.ends_with(".scn"))
        .collect();
    if files.is_empty() {
        files = vec![
            "scenarios/ci_clustering.scn".into(),
            "scenarios/ci_maintenance.scn".into(),
        ];
    }
    let mut failures = 0u32;
    for file in &files {
        let spec = match ScenarioSpec::load(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("FAIL: --scenario {e}");
                failures += 1;
                continue;
            }
        };
        // The text format must be a lossless encoding of the spec.
        match ScenarioSpec::parse(&spec.to_text()) {
            Ok(rt) if rt == spec => {}
            Ok(_) => {
                eprintln!("FAIL: {file}: parse(to_text(spec)) != spec");
                failures += 1;
            }
            Err(e) => {
                eprintln!("FAIL: {file}: canonical text does not re-parse: {e}");
                failures += 1;
            }
        }
        let runner = Runner::new(spec).with_resolver_override(resolver_override());
        let first = runner.run_default().expect("committed spec runs");
        let second = runner.run_default().expect("committed spec runs");
        first.print();
        if first != second {
            eprintln!(
                "FAIL: {file}: reruns of scenario '{}' differ",
                first.scenario
            );
            failures += 1;
        }
        if first.to_markdown() != second.to_markdown() {
            eprintln!("FAIL: {file}: rendered reports differ across reruns");
            failures += 1;
        }
        if !first.ok() {
            eprintln!(
                "FAIL: {file}: workload '{}' did not complete",
                first.workload
            );
            failures += 1;
        }
        eprintln!(
            "done: {file} ({}, workload {}, {} rounds)",
            first.scenario, first.workload, first.rounds
        );
    }
    if failures > 0 {
        eprintln!("FAIL: {failures} scenario smoke failure(s)");
        std::process::exit(1);
    }
    println!(
        "\nci gate: OK ({} scenario file(s), byte-identical reports across reruns)",
        files.len()
    );
}
