//! **Cluster maintenance under dynamics** — the dynamics subsystem's
//! experiment binary and CI gate.
//!
//! Two parts:
//!
//! 1. **Maintenance sweep** (protocol scale): a seeded scenario spec
//!    (degree deployment + the selected mobility/churn/power dynamics)
//!    runs through the unified Runner's maintenance workload; each epoch
//!    the `MaintenanceDriver` re-runs Theorem 1 clustering over the awake
//!    set and records cluster lifetimes, re-elections and coverage
//!    violations. Every resolver backend drives the identical scenario
//!    and must produce **identical** epoch reports; the primary backend's
//!    scenario is run twice and must be **byte-identical** across runs.
//! 2. **Incremental-vs-rebuild sweep** (10⁴–10⁵ nodes): a waypoint
//!    mobility workload where `k ≪ n` nodes move per epoch, comparing the
//!    wall clock of incremental world maintenance (`O(k·Δ)`) against
//!    rebuilding the network from scratch, and of sparse
//!    `InterferenceField` maintenance against per-round field rebuilds —
//!    with equality audits on the maintained structures.
//!
//! Flags: `--mobility none|waypoint|walk|group` (default `waypoint`),
//! `--churn on|off` (default `on`), `--power uniform|het` (default
//! `het`), `--resolver naive|grid|aggregated` — the *primary* backend
//! whose run is recorded and rerun for the determinism check (default
//! `aggregated`; the other backends always run too, for the agreement
//! gate) — or `--scenario <file>.scn` to run one committed spec through
//! the maintenance workload instead.
//! Tiers via `DCLUSTER_SCALE=ci|quick|full`; the `ci` tier exits non-zero
//! on any agreement/determinism/audit/coverage failure or if incremental
//! maintenance is slower than rebuilding.
//!
//! Output: markdown tables, `results/dynamics_maintenance.csv`,
//! `BENCH_dynamics.json`.

use dcluster_bench::{
    epoch_row, flag_value, print_table, resolver_override, run_scenario_flag, scale, write_csv,
    DynamicsSpec, Runner, Scale, ScenarioSpec, Workload, WorkloadOutcome, EPOCH_HEADERS,
};
use dcluster_core::maintenance::EpochReport;
use dcluster_dynamics::{MobilityKind, World, WorldUpdate};
use dcluster_sim::{InterferenceField, ResolverKind};
use std::time::Instant;

/// Fraction of nodes that are mobile in the maintenance sweep.
const MOBILE_FRAC: f64 = 0.2;
/// Heterogeneous power spread (powers in `[P, 1.3·P]`).
const POWER_SPREAD: f64 = 0.3;
/// Churn rates (awake→sleep, sleep→wake per epoch).
const P_SLEEP: f64 = 0.08;
const P_WAKE: f64 = 0.35;
/// Master scenario seed.
const SEED: u64 = 0xD15C0;

#[derive(Debug, Clone, Copy)]
struct Scenario {
    mobility: MobilityKind,
    churn: bool,
    het_power: bool,
}

fn scenario_from_flags() -> Scenario {
    let mobility = flag_value("--mobility")
        .map(|v| {
            v.parse::<MobilityKind>()
                .unwrap_or_else(|e| panic!("--mobility: {e}"))
        })
        .unwrap_or(MobilityKind::Waypoint);
    let churn = match flag_value("--churn").as_deref() {
        None | Some("on") | Some("true") => true,
        Some("off") | Some("false") => false,
        Some(other) => panic!("--churn: expected on|off, got '{other}'"),
    };
    let het_power = match flag_value("--power").as_deref() {
        None | Some("het") | Some("heterogeneous") => true,
        Some("uniform") => false,
        Some(other) => panic!("--power: expected uniform|het, got '{other}'"),
    };
    Scenario {
        mobility,
        churn,
        het_power,
    }
}

/// The flag combination as a declarative spec: degree deployment seeded
/// with the historical master seed, dynamics with the historical
/// sub-seed derivations (mobility `seed^1`, churn `seed^2`, power
/// `seed^3` — the Runner's convention), default speeds matching
/// `MobilityKind::build`.
fn spec_for(sc: Scenario, n: usize, epochs: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::degree("dynamics-maintenance", SEED, n, 8)
        .epochs(epochs)
        .workload(Workload::Maintenance);
    spec = match sc.mobility {
        MobilityKind::None => spec,
        MobilityKind::Waypoint => spec.dynamics(DynamicsSpec::Waypoint {
            speed: 0.25,
            frac: MOBILE_FRAC,
        }),
        MobilityKind::Walk => spec.dynamics(DynamicsSpec::Walk {
            step: 0.2,
            frac: MOBILE_FRAC,
        }),
        MobilityKind::Group => spec.dynamics(DynamicsSpec::Group {
            speed: 0.2,
            frac: MOBILE_FRAC,
            groups: 4,
        }),
    };
    if sc.churn {
        spec = spec.dynamics(DynamicsSpec::Churn {
            sleep: P_SLEEP,
            wake: P_WAKE,
        });
    }
    if sc.het_power {
        spec = spec.dynamics(DynamicsSpec::HetPower {
            spread: POWER_SPREAD,
        });
    }
    spec
}

/// Runs the full maintenance scenario with one resolver backend; returns
/// the per-epoch reports (the deterministic fingerprint of the run).
fn run_scenario(spec: &ScenarioSpec, kind: ResolverKind) -> Vec<EpochReport> {
    let report = Runner::new(spec.clone())
        .with_resolver_override(Some(kind))
        .run(&Workload::Maintenance)
        .expect("sweep spec is valid");
    let WorkloadOutcome::Maintenance { epochs, .. } = report.outcome else {
        unreachable!("maintenance workload returns a maintenance outcome");
    };
    epochs
}

struct ScalingRow {
    n: usize,
    movers: usize,
    incr_ms: f64,
    rebuild_ms: f64,
    field_incr_ms: f64,
    field_rebuild_ms: f64,
}

/// Part 2: incremental world + field maintenance vs rebuild-from-scratch
/// on a large mobility workload (`k ≪ n` movers per epoch).
fn scaling_sweep(ns: &[usize], epochs: u64) -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    for &n in ns {
        let side = (n as f64 / 40.0).sqrt() * 2.0; // ≈40 nodes per unit ball
        let net = Runner::new(ScenarioSpec::uniform(
            "dynamics-scaling",
            SEED + n as u64,
            n,
            side,
        ))
        .build_network()
        .expect("sweep spec is valid");
        let mut world = World::new(net);
        // 1% movers: the sparse regime incremental maintenance targets.
        let mut model = MobilityKind::Waypoint
            .build(n, (side, side), 0.01, SEED ^ 1)
            .expect("waypoint");
        // A persistent transmitter field over a fixed 10% subset.
        let tx: Vec<usize> = (0..n).step_by(10).collect();
        let mut in_tx = vec![false; n];
        for &t in &tx {
            in_tx[t] = true;
        }
        let cell = world.network().params().range();
        let mut field = InterferenceField::build(
            world.network().points(),
            world.network().powers(),
            &tx,
            cell,
        );
        let (mut incr_ms, mut rebuild_ms) = (0.0f64, 0.0f64);
        let (mut field_incr_ms, mut field_rebuild_ms) = (0.0f64, 0.0f64);
        let mut movers = 0usize;
        for epoch in 0..epochs {
            let mut updates = Vec::new();
            model.advance(&world, &mut updates);
            movers += updates.len();
            // Maintain the persistent field for the transmitters that move
            // (positions read before the world applies the batch).
            for u in &updates {
                let WorldUpdate::Move { node, to } = *u else {
                    continue;
                };
                if !in_tx[node] {
                    continue;
                }
                let from = world.network().pos(node);
                let t0 = Instant::now();
                field.move_transmitter(node, from, to);
                field_incr_ms += t0.elapsed().as_secs_f64() * 1e3;
            }
            // Incremental world apply vs rebuild-from-scratch.
            let t0 = Instant::now();
            world.apply(&updates);
            incr_ms += t0.elapsed().as_secs_f64() * 1e3;
            let t1 = Instant::now();
            let rebuilt = world.rebuilt_network();
            rebuild_ms += t1.elapsed().as_secs_f64() * 1e3;
            let t2 = Instant::now();
            let fresh_field =
                InterferenceField::build(rebuilt.points(), rebuilt.powers(), &tx, cell);
            field_rebuild_ms += t2.elapsed().as_secs_f64() * 1e3;
            // Equality audits: maintained structures == rebuilt ones.
            assert_eq!(
                field.grid(),
                fresh_field.grid(),
                "n={n} epoch {epoch}: maintained field diverged from rebuild"
            );
            if epoch == epochs - 1 {
                world
                    .audit_incremental()
                    .expect("incremental world maintenance must equal a rebuild");
            }
        }
        rows.push(ScalingRow {
            n,
            movers,
            incr_ms,
            rebuild_ms,
            field_incr_ms,
            field_rebuild_ms,
        });
        eprintln!("scaling: n={n} done ({movers} moves over {epochs} epochs)");
    }
    rows
}

fn main() {
    if run_scenario_flag(Workload::Maintenance) {
        return;
    }
    let tier = scale();
    let sc = scenario_from_flags();
    let primary = resolver_override().unwrap_or(ResolverKind::Aggregated);
    let (n, epochs) = match tier {
        Scale::Ci => (80, 3),
        Scale::Quick => (150, 5),
        Scale::Full => (300, 8),
    };
    let scaling_ns: &[usize] = match tier {
        Scale::Ci => &[10_000],
        Scale::Quick => &[10_000, 20_000],
        Scale::Full => &[10_000, 50_000, 100_000],
    };
    println!(
        "# dynamics_maintenance — tier {tier:?}, mobility {}, churn {}, power {}, primary resolver {primary}",
        sc.mobility,
        if sc.churn { "on" } else { "off" },
        if sc.het_power { "het" } else { "uniform" },
    );
    let spec = spec_for(sc, n, epochs);

    // ---- Part 1: maintenance sweep, all backends + determinism check.
    let mut failures = 0u32;
    let reference = run_scenario(&spec, primary);
    let rerun = run_scenario(&spec, primary);
    if reference != rerun {
        eprintln!("FAIL: repeated {primary} runs are not byte-identical");
        failures += 1;
    }
    for kind in ResolverKind::ALL {
        if kind == primary {
            continue;
        }
        let got = run_scenario(&spec, kind);
        for (a, b) in reference.iter().zip(&got) {
            // The resolver field differs by construction; everything else
            // (clusters, lifetimes, violations, rounds) must be identical.
            let same = a.epoch == b.epoch
                && a.awake == b.awake
                && a.rounds == b.rounds
                && a.clusters == b.clusters
                && a.re_elections == b.re_elections
                && a.retained == b.retained
                && a.coverage_violations == b.coverage_violations
                && a.report == b.report;
            if !same {
                eprintln!(
                    "FAIL: {kind} disagrees with {primary} at epoch {} \
                     ({} vs {} clusters, {} vs {} rounds)",
                    a.epoch, b.clusters, a.clusters, b.rounds, a.rounds
                );
                failures += 1;
            }
        }
    }
    let unassigned_total: usize = reference.iter().map(|r| r.report.unassigned).sum();
    let violations_total: usize = reference.iter().map(|r| r.coverage_violations).sum();
    let worst_radius = reference
        .iter()
        .map(|r| r.report.max_radius)
        .fold(0.0f64, f64::max);

    let maint_table: Vec<Vec<String>> = reference.iter().map(epoch_row).collect();
    print_table(
        &format!("Maintenance sweep (n = {n}, {epochs} epochs, resolver {primary})"),
        &EPOCH_HEADERS,
        &maint_table,
    );
    write_csv("dynamics_maintenance", &EPOCH_HEADERS, &maint_table);

    // ---- Part 2: incremental vs rebuild scaling.
    let scaling = scaling_sweep(scaling_ns, 5);
    let scale_headers = [
        "n",
        "moves_total",
        "incr_ms",
        "rebuild_ms",
        "world_speedup",
        "field_incr_ms",
        "field_rebuild_ms",
        "field_speedup",
    ];
    let scale_table: Vec<Vec<String>> = scaling
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                r.movers.to_string(),
                format!("{:.2}", r.incr_ms),
                format!("{:.2}", r.rebuild_ms),
                format!("{:.1}x", r.rebuild_ms / r.incr_ms.max(1e-9)),
                format!("{:.3}", r.field_incr_ms),
                format!("{:.2}", r.field_rebuild_ms),
                format!("{:.1}x", r.field_rebuild_ms / r.field_incr_ms.max(1e-9)),
            ]
        })
        .collect();
    print_table(
        "Incremental world/field maintenance vs rebuild-from-scratch (5 epochs, 1% movers)",
        &scale_headers,
        &scale_table,
    );
    write_json(sc, tier, primary, n, &reference, &scaling);

    // ---- CI gate.
    if unassigned_total > 0 {
        eprintln!("FAIL: {unassigned_total} awake node(s) left unclustered");
        failures += 1;
    }
    if worst_radius > 2.0 {
        // Hard sanity bound: maintenance must never degrade past a
        // 2-clustering. The per-epoch distance to the paper's radius-1
        // bound is recorded as `violations`, not gated (heterogeneous
        // power legitimately stretches it).
        eprintln!("FAIL: cluster radius {worst_radius:.3} exceeds the hard bound 2");
        failures += 1;
    }
    if tier == Scale::Ci {
        for r in &scaling {
            if r.incr_ms > r.rebuild_ms {
                eprintln!(
                    "FAIL: incremental maintenance slower than rebuild at n={} \
                     ({:.2} ms vs {:.2} ms)",
                    r.n, r.incr_ms, r.rebuild_ms
                );
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("FAIL: {failures} gate failure(s)");
        std::process::exit(1);
    }
    println!(
        "\nci gate: OK (byte-identical reruns, {} backends agree, \
         {violations_total} coverage violations recorded, worst radius {worst_radius:.3})",
        ResolverKind::ALL.len()
    );
}

/// Committed reference numbers (`BENCH_dynamics.json`).
fn write_json(
    sc: Scenario,
    tier: Scale,
    primary: ResolverKind,
    n: usize,
    reports: &[EpochReport],
    scaling: &[ScalingRow],
) {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"bench\": \"dynamics_maintenance\",\n  \"tier\": \"{tier:?}\",\n  \
         \"mobility\": \"{}\",\n  \"churn\": {},\n  \"power\": \"{}\",\n  \
         \"resolver\": \"{primary}\",\n  \"n\": {n},\n  \"maintenance\": [\n",
        sc.mobility,
        sc.churn,
        if sc.het_power { "het" } else { "uniform" },
    ));
    for (i, r) in reports.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"epoch\": {}, \"awake\": {}, \"clusters\": {}, \"re_elections\": {}, \
             \"retained\": {}, \"violations\": {}, \"max_radius\": {:.4}, \
             \"clusters_per_ball\": {}, \"rounds\": {}}}{}\n",
            r.epoch,
            r.awake,
            r.clusters,
            r.re_elections,
            r.retained,
            r.coverage_violations,
            r.report.max_radius,
            r.report.max_clusters_per_unit_ball,
            r.rounds,
            if i + 1 == reports.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"incremental_vs_rebuild\": [\n");
    for (i, r) in scaling.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n\": {}, \"moves\": {}, \"incr_ms\": {:.3}, \"rebuild_ms\": {:.3}, \
             \"field_incr_ms\": {:.4}, \"field_rebuild_ms\": {:.3}}}{}\n",
            r.n,
            r.movers,
            r.incr_ms,
            r.rebuild_ms,
            r.field_incr_ms,
            r.field_rebuild_ms,
            if i + 1 == scaling.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    match std::fs::write("BENCH_dynamics.json", &out) {
        Ok(()) => println!("[json] wrote BENCH_dynamics.json"),
        Err(e) => eprintln!("warning: cannot write BENCH_dynamics.json: {e}"),
    }
}
