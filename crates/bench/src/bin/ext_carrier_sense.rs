//! **Extension experiment** — the paper's concluding open question: does
//! *carrier sensing* help global broadcast the way randomization and
//! location do?
//!
//! Measured answer (shape): yes — a deterministic CSMA-style flood with a
//! busy/idle oracle crosses corridors in `D·poly(Δ)` rounds with *small*
//! constants, escaping the Theorem 6 Ω(D·Δ^{1−1/α}) regime that binds the
//! pure model, and landing in the same league as randomized decay.
//!
//! Deployments come from scenario specs; `--scenario <file>.scn` runs the
//! three baselines on that spec's deployment instead.

use dcluster_baselines::global;
use dcluster_bench::{print_table, scenario_override, write_csv, Runner, ScenarioSpec};

fn main() {
    let specs: Vec<ScenarioSpec> = match scenario_override() {
        Some(spec) => vec![spec],
        None => [5.0f64, 10.0, 15.0]
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                let n = (len * 5.0) as usize;
                ScenarioSpec::corridor(format!("ext-len{len}"), 910 + i as u64, n, len, 1.2, 0.5)
            })
            .collect(),
    };
    let mut rows: Vec<Vec<String>> = Vec::new();
    for spec in specs {
        let net = Runner::new(spec)
            .build_network()
            .expect("sweep spec is valid");
        let d = net.comm_graph().diameter().unwrap_or(0);
        let delta = net.max_degree().max(2);
        let cap = 5_000_000;

        let cs = global::carrier_sense_flood(&net, 0, 2 * delta as u64, cap);
        let decay = global::decay_flood(&net, 0, 3, cap);
        let sweep = global::round_robin_flood(&net, 0, cap);
        assert!(cs.reached_all && decay.reached_all && sweep.reached_all);

        rows.push(vec![
            d.to_string(),
            net.len().to_string(),
            delta.to_string(),
            cs.rounds.to_string(),
            decay.rounds.to_string(),
            sweep.rounds.to_string(),
        ]);
        eprintln!("done D={d}");
    }
    print_table(
        "Extension — carrier sensing vs randomization vs pure determinism (global broadcast)",
        &[
            "D",
            "n",
            "Δ",
            "carrier-sense det.",
            "randomized decay",
            "pure det. ID sweep",
        ],
        &rows,
    );
    println!(
        "\nThe paper proves pure determinism pays Ω(D·Δ^(1−1/α)) globally \
         (Theorem 6) and leaves carrier sensing open; the busy/idle oracle \
         behaves like randomization here — another *model feature* that \
         helps globally."
    );
    write_csv(
        "ext_carrier_sense",
        &["D", "n", "delta", "carrier_sense", "decay", "id_sweep"],
        &rows,
    );
}
