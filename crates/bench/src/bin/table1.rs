//! **Table 1** — local broadcast: every row of the paper's comparison,
//! measured on the same deployments.
//!
//! Paper's claim shapes to verify: the randomized ∆-aware baseline and this
//! work both scale linearly in ∆ (ours with a polylog factor and *no* extra
//! model features); feedback rows flatten to `O(∆ + polylog)`; the
//! location row is deterministic but pays more.
//!
//! Sweep points are scenario specs (`ScenarioSpec::degree`); pass
//! `--scenario <file>.scn` to run one spec instead of the sweep.

use dcluster_baselines::local::{self, FeedbackPreset};
use dcluster_bench::{
    full_scale, print_table, resolver_override, run_scenario_flag, write_csv, Runner, ScenarioSpec,
    Workload, WorkloadOutcome,
};

fn main() {
    if run_scenario_flag(Workload::LocalBroadcast) {
        return;
    }
    let deltas: Vec<usize> = if full_scale() {
        vec![4, 8, 12, 16, 24]
    } else {
        vec![4, 8, 12]
    };
    let n = if full_scale() { 150 } else { 80 };
    let cap = 3_000_000u64;

    let algos = [
        "[16] randomized, Δ known      O(Δ log n)",
        "[16] randomized, Δ unknown    O(Δ log³ n)",
        "[35] randomized               O(Δ log n + log² n)",
        "[19] feedback (HM)            O(Δ + log² n)",
        "[4]  feedback (BP)            O(Δ + log n loglog n)",
        "[22] location, deterministic  O(Δ log³ n)*",
        "THIS WORK total (incl. clustering setup)",
        "THIS WORK steady state (label sweeps only)",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut csv: Vec<Vec<String>> = Vec::new();

    let runner_for = |delta: usize, di: usize| {
        Runner::new(ScenarioSpec::degree(
            format!("table1-d{delta}"),
            42 + di as u64,
            n,
            delta,
        ))
        .with_resolver_override(resolver_override())
    };

    // "This work" runs once per deployment; total and steady-state are two
    // views of the same execution.
    let mut ours: Vec<(u64, u64)> = Vec::new();
    for (di, &delta) in deltas.iter().enumerate() {
        let report = runner_for(delta, di)
            .run(&Workload::LocalBroadcast)
            .expect("sweep spec is valid");
        let WorkloadOutcome::LocalBroadcast {
            complete,
            sweep_rounds,
            ..
        } = report.outcome
        else {
            unreachable!("local workload returns a local outcome");
        };
        assert!(complete, "this-work local broadcast must complete");
        ours.push((report.rounds, sweep_rounds));
        eprintln!("done: this work @ Δ≈{delta}");
    }

    for (ai, name) in algos.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for (di, &delta) in deltas.iter().enumerate() {
            let net = runner_for(delta, di)
                .build_network()
                .expect("sweep spec is valid");
            let d_real = net.max_degree().max(1);
            let rounds = match ai {
                0 => local::gmw_known_delta(&net, d_real, 7, cap).rounds,
                1 => local::gmw_unknown_delta(&net, 7, cap).rounds,
                2 => local::yu_growth(&net, d_real, 7, cap).rounds,
                3 => local::feedback(&net, d_real, FeedbackPreset::HalldorssonMitra, 7, cap).rounds,
                4 => local::feedback(&net, d_real, FeedbackPreset::BarenboimPeleg, 7, cap).rounds,
                5 => local::location_grid(&net, d_real, 4, 0.05).rounds,
                6 => ours[di].0,
                _ => ours[di].1,
            };
            row.push(format!("{rounds}"));
            csv.push(vec![
                name.split_whitespace().next().unwrap_or("?").to_string(),
                delta.to_string(),
                d_real.to_string(),
                rounds.to_string(),
            ]);
        }
        rows.push(row);
        eprintln!("done: {name}");
    }

    let mut headers = vec!["algorithm (model, theory)".to_string()];
    headers.extend(deltas.iter().map(|d| format!("rounds @ Δ≈{d}")));
    print_table(
        &format!("Table 1 — local broadcast, n = {n} (uniform, connected)"),
        &headers,
        &rows,
    );
    write_csv(
        "table1_local_broadcast",
        &["algo", "delta_target", "delta_real", "rounds"],
        &csv,
    );
    println!(
        "\nNotes: all runs on identical deployments; caps {cap} rounds. \
         (*) our [22] variant is the simplified grid+ssf version (DESIGN.md §3)."
    );
}
