//! Micro-benchmarks of the SINR reception resolver backends — naive
//! oracle vs grid short-circuit vs cell-aggregated interference — across
//! transmitter densities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcluster_sim::{deploy, rng::Rng64, Network, ResolverKind};

fn bench_resolvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("radio_resolve");
    group.sample_size(20);
    for &n in &[200usize, 800] {
        let mut rng = Rng64::new(9);
        let net = Network::builder(deploy::uniform_square(
            n,
            (n as f64 / 40.0).sqrt() * 2.0,
            &mut rng,
        ))
        .build()
        .unwrap();
        for &frac in &[0.05f64, 0.3] {
            let tx: Vec<usize> = (0..n).filter(|_| rng.chance(frac)).collect();
            for kind in ResolverKind::ALL {
                group.bench_with_input(
                    BenchmarkId::new(kind.name(), format!("n{n}_tx{}", tx.len())),
                    &tx,
                    |b, tx| {
                        let mut resolver = kind.build();
                        b.iter(|| resolver.resolve(&net, std::hint::black_box(tx)))
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_resolvers);
criterion_main!(benches);
