//! Meso-benchmark: Theorem 1 clustering wall-clock on small fields
//! (simulated-round counts are what the experiment binaries report; this
//! tracks simulator throughput).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcluster_core::clustering::clustering;
use dcluster_core::{ProtocolParams, SeedSeq};
use dcluster_sim::{deploy, rng::Rng64, Engine, Network};

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering");
    group.sample_size(10);
    for &n in &[30usize, 60] {
        let mut rng = Rng64::new(13);
        let net = Network::builder(deploy::uniform_square(n, 2.5, &mut rng))
            .build()
            .unwrap();
        let gamma = net.density();
        group.bench_with_input(BenchmarkId::from_parameter(n), &net, |b, net| {
            b.iter(|| {
                let params = ProtocolParams::practical();
                let mut seeds = SeedSeq::new(params.seed);
                let mut engine = Engine::new(net);
                let all: Vec<usize> = (0..net.len()).collect();
                clustering(&mut engine, &params, &mut seeds, &all, gamma)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
