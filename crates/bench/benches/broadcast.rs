//! Meso-benchmarks: this-work local broadcast vs the fastest baselines
//! (wall-clock; round counts are reported by `table1`/`table2`).

use criterion::{criterion_group, criterion_main, Criterion};
use dcluster_baselines::local;
use dcluster_core::{local_broadcast, ProtocolParams, SeedSeq};
use dcluster_sim::{deploy, rng::Rng64, Engine, Network};

fn bench_local(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_broadcast");
    group.sample_size(10);
    let mut rng = Rng64::new(5);
    let net = Network::builder(deploy::uniform_square(40, 2.5, &mut rng))
        .build()
        .unwrap();
    let delta = net.max_degree().max(1);

    group.bench_function("this_work", |b| {
        b.iter(|| {
            let params = ProtocolParams::practical();
            let mut seeds = SeedSeq::new(params.seed);
            let mut engine = Engine::new(&net);
            local_broadcast(&mut engine, &params, &mut seeds, net.density())
        })
    });
    group.bench_function("gmw_known_delta", |b| {
        b.iter(|| local::gmw_known_delta(&net, delta, 7, 1_000_000))
    });
    group.bench_function("feedback_hm", |b| {
        b.iter(|| {
            local::feedback(
                &net,
                delta,
                local::FeedbackPreset::HalldorssonMitra,
                7,
                1_000_000,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_local);
criterion_main!(benches);
