//! Selector micro-benchmarks: membership tests and property verification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcluster_selectors::{verify, RandomSsf, RandomWss, RsSsf, Schedule};
use dcluster_sim::rng::Rng64;

fn bench_membership(c: &mut Criterion) {
    let mut group = c.benchmark_group("selector_membership");
    let rs = RsSsf::new(1 << 20, 8);
    let rand = RandomSsf::new(5, 1 << 20, 8, 1.0);
    group.bench_function("rs_ssf_contains", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for r in 0..1000u64 {
                acc += rs.contains(std::hint::black_box(r), 123_456) as u64;
            }
            acc
        })
    });
    group.bench_function("random_ssf_contains", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for r in 0..1000u64 {
                acc += rand.contains(std::hint::black_box(r), 123_456) as u64;
            }
            acc
        })
    });
    group.finish();
}

fn bench_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("selector_verify");
    group.sample_size(10);
    for &k in &[3usize, 6] {
        let wss = RandomWss::new(7, 4096, k, 1.0);
        group.bench_with_input(BenchmarkId::new("wss_property", k), &k, |b, &k| {
            let mut rng = Rng64::new(1);
            b.iter(|| {
                let mut ids = rng.sample_distinct(4096, k + 1);
                for v in &mut ids {
                    *v += 1;
                }
                let y = ids.pop().unwrap();
                verify::is_wss_for(&wss, &ids, y)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_membership, bench_verification);
criterion_main!(benches);
