//! Property tests for the dynamics subsystem's central contract: a world
//! maintained **incrementally** (sparse grid/comm-graph/field updates) is
//! observationally identical to one **rebuilt from scratch** after every
//! update — byte-identical receptions across all three SINR resolver
//! backends, under mobility, churn and heterogeneous power.
//!
//! Structural equality (same grid cells in the same member order) is what
//! pins the floating-point summation order, so the reception equality here
//! is exact `Vec<Reception>` equality, not set equality.

use dcluster_dynamics::{Churn, DynamicsModel, MobilityKind, World, WorldUpdate};
use dcluster_sim::rng::Rng64;
use dcluster_sim::{deploy, Network, Point, Reception, ResolverKind};
use proptest::prelude::*;

/// Deterministic transmitter sets over the awake nodes (ascending — the
/// order every engine-produced set has).
fn tx_sets(world: &World, rounds: usize, salt: u64) -> Vec<Vec<usize>> {
    (0..rounds)
        .map(|r| {
            world
                .awake_nodes()
                .into_iter()
                .filter(|&v| dcluster_sim::rng::hash_chance(salt, &[r as u64, v as u64], 0.3))
                .collect()
        })
        .collect()
}

fn resolve_all(net: &Network, tx: &[Vec<usize>], kind: ResolverKind) -> Vec<Vec<Reception>> {
    let mut resolver = kind.build();
    tx.iter().map(|t| resolver.resolve(net, t)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Scenario-driven worlds: waypoint/walk/group mobility + churn +
    /// heterogeneous power, evolved incrementally for several epochs, must
    /// resolve identically to a from-scratch rebuild on every backend.
    #[test]
    fn evolved_world_resolves_identically_to_rebuild(
        seed in 0u64..10_000,
        n in 20usize..90,
        epochs in 1u64..8,
        mobility in 0usize..3,
        spread_tenths in 0u32..6,
    ) {
        let mut rng = Rng64::new(seed);
        let side = 3.5;
        let base = Network::builder(deploy::uniform_square(n, side, &mut rng))
            .build()
            .expect("nonempty");
        let spread = spread_tenths as f64 / 10.0;
        let net = dcluster_dynamics::with_power_profile(&base, spread, seed ^ 5);
        let mut world = World::new(net);
        let kind = [MobilityKind::Waypoint, MobilityKind::Walk, MobilityKind::Group][mobility];
        let mut models: Vec<Box<dyn DynamicsModel>> = vec![Box::new(Churn::new(seed ^ 7, 0.15, 0.4))];
        if let Some(m) = kind.build(n, (side, side), 0.5, seed ^ 9) {
            models.push(m);
        }
        for _ in 0..epochs {
            world.step(&mut models);
        }
        // Structural audit: incremental grid + comm graph == rebuild.
        world.audit_incremental()?;
        // Observational audit: byte-identical receptions per backend.
        let rebuilt = world.rebuilt_network();
        let tx = tx_sets(&world, 4, seed ^ 11);
        for kind in ResolverKind::ALL {
            let inc = resolve_all(world.network(), &tx, kind);
            let fresh = resolve_all(&rebuilt, &tx, kind);
            prop_assert_eq!(
                &inc, &fresh,
                "{} receptions diverged between incremental and rebuilt worlds", kind
            );
        }
        // Cross-backend agreement still holds on the evolved world.
        let naive = resolve_all(world.network(), &tx, ResolverKind::Naive);
        for kind in [
            ResolverKind::Grid,
            ResolverKind::Aggregated,
            ResolverKind::Parallel,
        ] {
            let got = resolve_all(world.network(), &tx, kind);
            for (round, (a, b)) in naive.iter().zip(&got).enumerate() {
                let mut a = a.clone();
                let mut b = b.clone();
                a.sort_by_key(|r| r.receiver);
                b.sort_by_key(|r| r.receiver);
                prop_assert_eq!(
                    a, b,
                    "{} disagrees with naive on evolved world (round {})", kind, round
                );
            }
        }
    }

    /// Raw update streams (moves, power changes, sleep/wake) applied
    /// incrementally keep the world equal to its rebuild.
    #[test]
    fn raw_update_stream_matches_rebuild(
        seed in 0u64..10_000,
        n in 10usize..60,
        batches in 1usize..6,
    ) {
        let mut rng = Rng64::new(seed ^ 0xABCD);
        let side = 3.0;
        let net = Network::builder(deploy::uniform_square(n, side, &mut rng))
            .build()
            .expect("nonempty");
        let base_power = net.params().power;
        let mut world = World::new(net);
        for _ in 0..batches {
            let updates: Vec<WorldUpdate> = (0..8)
                .map(|_| {
                    let node = rng.range_usize(n);
                    match rng.range_usize(4) {
                        0 => WorldUpdate::Move {
                            node,
                            to: Point::new(rng.range_f64(0.0, side), rng.range_f64(0.0, side)),
                        },
                        1 => WorldUpdate::SetPower {
                            node,
                            power: base_power * (0.5 + 2.0 * rng.next_f64()),
                        },
                        2 => WorldUpdate::Sleep { node },
                        _ => WorldUpdate::Wake { node },
                    }
                })
                .collect();
            world.apply(&updates);
            world.audit_incremental()?;
        }
        let rebuilt = world.rebuilt_network();
        let tx = tx_sets(&world, 3, seed ^ 13);
        for kind in ResolverKind::ALL {
            prop_assert_eq!(
                resolve_all(world.network(), &tx, kind),
                resolve_all(&rebuilt, &tx, kind),
                "{} receptions diverged after raw update batches", kind
            );
        }
    }
}
