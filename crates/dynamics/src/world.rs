//! The mutable world: a network plus awake flags, updated incrementally.

use crate::DynamicsModel;
use dcluster_sim::{Network, Point};

/// One atomic change to the world, produced by a [`DynamicsModel`] and
/// applied by [`World::apply`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorldUpdate {
    /// Node relocates to `to` (grid + comm graph patched incrementally).
    Move {
        /// Node index.
        node: usize,
        /// New position.
        to: Point,
    },
    /// Node changes transmit power (range + comm edges patched).
    SetPower {
        /// Node index.
        node: usize,
        /// New power (strictly positive, finite).
        power: f64,
    },
    /// Node goes silent (crash or sleep): it stops participating in
    /// protocols but remains physically deployed — mirroring the wake-up
    /// problem's inactive nodes, which can still be woken by radio.
    Sleep {
        /// Node index.
        node: usize,
    },
    /// Node (re-)activates — a spontaneous wake-up or a join.
    Wake {
        /// Node index.
        node: usize,
    },
}

/// Cumulative counts of applied updates (transition-counting: redundant
/// sleeps/wakes are not counted).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorldStats {
    /// Applied `Move` updates.
    pub moves: u64,
    /// Applied `SetPower` updates.
    pub power_changes: u64,
    /// Awake → asleep transitions.
    pub sleeps: u64,
    /// Asleep → awake transitions.
    pub wakes: u64,
}

/// A network evolving under dynamics: positions, powers and awake flags,
/// with **incremental** structure maintenance (see the crate docs).
#[derive(Debug, Clone)]
pub struct World {
    net: Network,
    awake: Vec<bool>,
    epoch: u64,
    stats: WorldStats,
}

impl World {
    /// Wraps a deployed network; every node starts awake.
    pub fn new(net: Network) -> Self {
        let n = net.len();
        Self {
            net,
            awake: vec![true; n],
            epoch: 0,
            stats: WorldStats::default(),
        }
    }

    /// The current network (positions/powers/grid/comm graph are all
    /// up to date with every applied update).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Epochs stepped so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Cumulative update counts.
    pub fn stats(&self) -> WorldStats {
        self.stats
    }

    /// True iff node `v` is awake (participating in protocols).
    #[inline]
    pub fn is_awake(&self, v: usize) -> bool {
        self.awake[v]
    }

    /// Awake flags, indexable by node index.
    pub fn awake(&self) -> &[bool] {
        &self.awake
    }

    /// Indices of the awake nodes, ascending.
    pub fn awake_nodes(&self) -> Vec<usize> {
        (0..self.net.len()).filter(|&v| self.awake[v]).collect()
    }

    /// Number of awake nodes.
    pub fn awake_count(&self) -> usize {
        self.awake.iter().filter(|&&a| a).count()
    }

    /// Applies an update stream incrementally — `O(Δ)` per touched node.
    pub fn apply(&mut self, updates: &[WorldUpdate]) {
        for &u in updates {
            match u {
                WorldUpdate::Move { node, to } => {
                    self.net.move_node(node, to);
                    self.stats.moves += 1;
                }
                WorldUpdate::SetPower { node, power } => {
                    self.net.set_power(node, power);
                    self.stats.power_changes += 1;
                }
                WorldUpdate::Sleep { node } => {
                    if std::mem::replace(&mut self.awake[node], false) {
                        self.stats.sleeps += 1;
                    }
                }
                WorldUpdate::Wake { node } => {
                    if !std::mem::replace(&mut self.awake[node], true) {
                        self.stats.wakes += 1;
                    }
                }
            }
        }
    }

    /// One scenario epoch: every model appends its updates (all seeing the
    /// pre-epoch world), the concatenated stream is applied, and the epoch
    /// counter advances. Returns the number of updates applied.
    pub fn step(&mut self, models: &mut [Box<dyn DynamicsModel>]) -> usize {
        let mut updates = Vec::new();
        for m in models.iter_mut() {
            m.advance(self, &mut updates);
        }
        self.apply(&updates);
        self.epoch += 1;
        updates.len()
    }

    /// Rebuilds the network **from scratch** out of the current positions,
    /// powers and parameters — the reference the incremental maintenance
    /// is audited against (and the slow path it replaces).
    pub fn rebuilt_network(&self) -> Network {
        Network::builder(self.net.points().to_vec())
            .ids(self.net.ids().to_vec())
            .max_id(self.net.max_id())
            .params(*self.net.params())
            .powers(self.net.powers().to_vec())
            .build()
            .expect("re-building an already-valid network cannot fail")
    }

    /// Audits that the incrementally maintained structures are
    /// **identical** to a rebuild from scratch: same spatial grid (cell
    /// contents *and* per-cell member order — which pins every downstream
    /// floating-point summation order), same communication graph, same
    /// cached ranges. `Err` describes the first divergence.
    pub fn audit_incremental(&self) -> Result<(), String> {
        let fresh = self.rebuilt_network();
        if self.net.grid() != fresh.grid() {
            return Err(format!(
                "grid diverged after {} epochs ({} vs {} occupied cells)",
                self.epoch,
                self.net.grid().occupied_cells(),
                fresh.grid().occupied_cells()
            ));
        }
        if self.net.comm_graph() != fresh.comm_graph() {
            return Err(format!(
                "comm graph diverged after {} epochs ({} vs {} edges)",
                self.epoch,
                self.net.comm_graph().edge_count(),
                fresh.comm_graph().edge_count()
            ));
        }
        if self.net.max_range() != fresh.max_range() {
            return Err(format!(
                "max_range cache diverged: {} vs {}",
                self.net.max_range(),
                fresh.max_range()
            ));
        }
        for v in 0..self.net.len() {
            if self.net.range_of(v) != fresh.range_of(v) {
                return Err(format!(
                    "range cache of node {v} diverged: {} vs {}",
                    self.net.range_of(v),
                    fresh.range_of(v)
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcluster_sim::deploy;
    use dcluster_sim::rng::Rng64;

    fn world(n: usize, seed: u64) -> World {
        let mut rng = Rng64::new(seed);
        let net = Network::builder(deploy::uniform_square(n, 3.0, &mut rng))
            .build()
            .unwrap();
        World::new(net)
    }

    #[test]
    fn apply_moves_and_audits_clean() {
        let mut w = world(80, 1);
        let mut rng = Rng64::new(2);
        for _ in 0..10 {
            let updates: Vec<WorldUpdate> = (0..8)
                .map(|_| WorldUpdate::Move {
                    node: rng.range_usize(80),
                    to: Point::new(rng.range_f64(0.0, 3.0), rng.range_f64(0.0, 3.0)),
                })
                .collect();
            w.apply(&updates);
        }
        assert_eq!(w.stats().moves, 80);
        w.audit_incremental().expect("incremental == rebuild");
    }

    #[test]
    fn sleep_wake_transitions_are_counted_once() {
        let mut w = world(5, 3);
        w.apply(&[
            WorldUpdate::Sleep { node: 2 },
            WorldUpdate::Sleep { node: 2 }, // redundant
            WorldUpdate::Wake { node: 2 },
            WorldUpdate::Wake { node: 0 }, // already awake
        ]);
        assert_eq!(w.stats().sleeps, 1);
        assert_eq!(w.stats().wakes, 1);
        assert_eq!(w.awake_count(), 5);
        w.apply(&[WorldUpdate::Sleep { node: 4 }]);
        assert_eq!(w.awake_nodes(), vec![0, 1, 2, 3]);
        assert!(!w.is_awake(4));
    }

    #[test]
    fn set_power_keeps_audit_clean() {
        let mut w = world(40, 4);
        let base = w.network().params().power;
        w.apply(&[
            WorldUpdate::SetPower {
                node: 3,
                power: 4.0 * base,
            },
            WorldUpdate::SetPower {
                node: 17,
                power: 0.5 * base,
            },
        ]);
        assert!(!w.network().has_uniform_power());
        assert_eq!(w.stats().power_changes, 2);
        w.audit_incremental()
            .expect("power changes maintained incrementally");
    }

    #[test]
    fn rebuilt_network_preserves_identity() {
        let w = world(30, 5);
        let fresh = w.rebuilt_network();
        assert_eq!(fresh.ids(), w.network().ids());
        assert_eq!(fresh.max_id(), w.network().max_id());
        assert_eq!(fresh.len(), 30);
    }
}
