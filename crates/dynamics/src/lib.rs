//! # dcluster-dynamics — scenario engine for evolving networks
//!
//! The paper's clustering is defined for *static* SINR networks, but its
//! motivating deployments — sensors in a rescue area, ad hoc fleets —
//! move, sleep, crash and wake. This crate is the deterministic scenario
//! engine that evolves a deployed [`Network`] **between protocol rounds**:
//!
//! * a [`World`] wraps a network plus per-node awake flags and applies
//!   [`WorldUpdate`] streams **incrementally** — a step that touches `k`
//!   nodes costs `O(k·Δ)` grid/comm-graph maintenance instead of an
//!   `O(n·Δ)` rebuild, and is audited to be structurally identical to a
//!   rebuild ([`World::audit_incremental`]);
//! * composable [`DynamicsModel`]s generate the updates: mobility
//!   ([`mobility::RandomWaypoint`], [`mobility::RandomWalk`],
//!   [`mobility::GroupDrift`]), churn ([`churn::Churn`] — deterministic
//!   Poisson-like sleep/wake streams layered on the paper's wake-up
//!   semantics), and heterogeneous power
//!   ([`dcluster_sim::deploy::power_profile`] at deployment,
//!   [`WorldUpdate::SetPower`] at run time);
//! * everything is seeded and hash-driven: the same seeds replay the exact
//!   same world history, byte for byte, which is what lets the
//!   `dynamics_maintenance` bench gate on bit-identical repeated runs.
//!
//! The cluster-maintenance driver consuming these worlds lives in
//! `dcluster-core::maintenance`; the experiment binary in
//! `dcluster-bench` (`dynamics_maintenance`).
//!
//! ## Quickstart
//!
//! ```
//! use dcluster_dynamics::{mobility::RandomWaypoint, churn::Churn, DynamicsModel, World};
//! use dcluster_sim::{deploy, rng::Rng64, Network};
//!
//! let mut rng = Rng64::new(3);
//! let net = Network::builder(deploy::uniform_square(60, 3.0, &mut rng))
//!     .build()
//!     .expect("valid deployment");
//! let mut world = World::new(net);
//! let mut models: Vec<Box<dyn DynamicsModel>> = vec![
//!     Box::new(RandomWaypoint::new(60, (3.0, 3.0), 0.2, 0.25, 7)),
//!     Box::new(Churn::new(11, 0.05, 0.3)),
//! ];
//! for _ in 0..5 {
//!     world.step(&mut models);
//! }
//! assert_eq!(world.epoch(), 5);
//! world.audit_incremental().expect("incremental == rebuild");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod mobility;
pub mod world;

pub use churn::Churn;
pub use mobility::{GroupDrift, MobilityKind, RandomWalk, RandomWaypoint};
pub use world::{World, WorldStats, WorldUpdate};

use dcluster_sim::Network;

/// A composable generator of world updates, advanced once per epoch.
///
/// Implementations must be **deterministic**: the same construction seed
/// and the same world history always produce the same update stream. They
/// must not inspect anything but the world passed in (no ambient state),
/// so that scenarios replay exactly.
pub trait DynamicsModel {
    /// Short stable name (CLI flags, traces).
    fn name(&self) -> &'static str;

    /// Appends this epoch's updates for `world` to `out`. Implementations
    /// see the world *before* any of this epoch's updates are applied;
    /// [`World::step`] applies the concatenated stream afterwards.
    fn advance(&mut self, world: &World, out: &mut Vec<WorldUpdate>);
}

/// Convenience: a fresh network deployed like `net` but with every node's
/// power drawn from [`dcluster_sim::deploy::power_profile`] — the standard
/// heterogeneous-power variant of a scenario.
///
/// # Panics
///
/// Panics if the profile produces an invalid power (it cannot for
/// `base > 0`, `spread ≥ 0`).
pub fn with_power_profile(net: &Network, spread: f64, seed: u64) -> Network {
    let powers = dcluster_sim::deploy::power_profile(net.len(), net.params().power, spread, seed);
    Network::builder(net.points().to_vec())
        .ids(net.ids().to_vec())
        .max_id(net.max_id())
        .params(*net.params())
        .powers(powers)
        .build()
        .expect("re-building an already-valid network cannot fail")
}
