//! Mobility models: random waypoint, bounded random walk, group drift.
//!
//! Each model owns a deterministic RNG and a fixed **mobile subset** of
//! the nodes (chosen by hashing at construction): real deployments mix
//! static sensors with mobile units, and a sub-linear mover count per
//! epoch is exactly the regime where incremental world maintenance beats
//! rebuilding. Asleep nodes do not move (a crashed sensor stays put); they
//! resume from wherever they stopped when woken.

use crate::{DynamicsModel, World, WorldUpdate};
use dcluster_sim::rng::{hash_chance, Rng64};
use dcluster_sim::Point;

/// Which mobility model a scenario uses (CLI-facing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MobilityKind {
    /// No mobility.
    None,
    /// [`RandomWaypoint`].
    Waypoint,
    /// [`RandomWalk`].
    Walk,
    /// [`GroupDrift`].
    Group,
}

impl MobilityKind {
    /// Stable lower-case name (CLI flags, JSON).
    pub fn name(self) -> &'static str {
        match self {
            MobilityKind::None => "none",
            MobilityKind::Waypoint => "waypoint",
            MobilityKind::Walk => "walk",
            MobilityKind::Group => "group",
        }
    }

    /// Instantiates the model for an `n`-node world on `[0, w]×[0, h]`
    /// with default speeds scaled to the transmission range (= 1), or
    /// `None` for [`MobilityKind::None`]. `mobile_frac` is the fraction of
    /// nodes that move at all.
    pub fn build(
        self,
        n: usize,
        bounds: (f64, f64),
        mobile_frac: f64,
        seed: u64,
    ) -> Option<Box<dyn DynamicsModel>> {
        match self {
            MobilityKind::None => None,
            MobilityKind::Waypoint => Some(Box::new(RandomWaypoint::new(
                n,
                bounds,
                0.25,
                mobile_frac,
                seed,
            ))),
            MobilityKind::Walk => {
                Some(Box::new(RandomWalk::new(n, bounds, 0.2, mobile_frac, seed)))
            }
            MobilityKind::Group => Some(Box::new(GroupDrift::new(
                n,
                bounds,
                0.2,
                mobile_frac,
                4,
                seed,
            ))),
        }
    }
}

impl std::fmt::Display for MobilityKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for MobilityKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "none" | "off" => Ok(MobilityKind::None),
            "waypoint" | "rwp" => Ok(MobilityKind::Waypoint),
            "walk" | "rw" => Ok(MobilityKind::Walk),
            "group" | "hotspot" => Ok(MobilityKind::Group),
            other => Err(format!(
                "unknown mobility '{other}' (expected none|waypoint|walk|group)"
            )),
        }
    }
}

/// The deterministic mobile subset: node `v` is mobile iff
/// `hash(seed, v) < frac` — stable under churn and replay.
fn mobile_subset(n: usize, frac: f64, seed: u64) -> Vec<usize> {
    (0..n)
        .filter(|&v| hash_chance(seed ^ 0x6d6f_6269, &[v as u64], frac))
        .collect()
}

fn clamp(p: Point, bounds: (f64, f64)) -> Point {
    Point::new(p.x.clamp(0.0, bounds.0), p.y.clamp(0.0, bounds.1))
}

/// Random waypoint: each mobile node walks in a straight line toward a
/// uniformly drawn target at a fixed speed, then draws the next target —
/// the classic MANET mobility benchmark.
#[derive(Debug)]
pub struct RandomWaypoint {
    bounds: (f64, f64),
    speed: f64,
    mobile: Vec<usize>,
    targets: Vec<Point>,
    rng: Rng64,
}

impl RandomWaypoint {
    /// Creates the model: `mobile_frac` of the `n` nodes move at `speed`
    /// distance units per epoch inside `[0, bounds.0]×[0, bounds.1]`.
    pub fn new(n: usize, bounds: (f64, f64), speed: f64, mobile_frac: f64, seed: u64) -> Self {
        let mobile = mobile_subset(n, mobile_frac, seed);
        let mut rng = Rng64::new(seed);
        let targets = mobile
            .iter()
            .map(|_| Point::new(rng.range_f64(0.0, bounds.0), rng.range_f64(0.0, bounds.1)))
            .collect();
        Self {
            bounds,
            speed,
            mobile,
            targets,
            rng,
        }
    }
}

impl DynamicsModel for RandomWaypoint {
    fn name(&self) -> &'static str {
        "waypoint"
    }

    fn advance(&mut self, world: &World, out: &mut Vec<WorldUpdate>) {
        for (i, &v) in self.mobile.iter().enumerate() {
            if !world.is_awake(v) {
                continue;
            }
            let cur = world.network().pos(v);
            let tgt = self.targets[i];
            let d = cur.dist(tgt);
            let to = if d <= self.speed {
                self.targets[i] = Point::new(
                    self.rng.range_f64(0.0, self.bounds.0),
                    self.rng.range_f64(0.0, self.bounds.1),
                );
                tgt
            } else {
                Point::new(
                    cur.x + (tgt.x - cur.x) / d * self.speed,
                    cur.y + (tgt.y - cur.y) / d * self.speed,
                )
            };
            out.push(WorldUpdate::Move { node: v, to });
        }
    }
}

/// Bounded random walk: each mobile node takes an independent uniformly
/// oriented step per epoch, clamped to the deployment rectangle.
#[derive(Debug)]
pub struct RandomWalk {
    bounds: (f64, f64),
    step: f64,
    mobile: Vec<usize>,
    rng: Rng64,
}

impl RandomWalk {
    /// Creates the model (`step` distance units per epoch).
    pub fn new(n: usize, bounds: (f64, f64), step: f64, mobile_frac: f64, seed: u64) -> Self {
        Self {
            bounds,
            step,
            mobile: mobile_subset(n, mobile_frac, seed),
            rng: Rng64::new(seed ^ 0x77a1),
        }
    }
}

impl DynamicsModel for RandomWalk {
    fn name(&self) -> &'static str {
        "walk"
    }

    fn advance(&mut self, world: &World, out: &mut Vec<WorldUpdate>) {
        for &v in &self.mobile {
            if !world.is_awake(v) {
                continue;
            }
            let a = self.rng.range_f64(0.0, std::f64::consts::TAU);
            let cur = world.network().pos(v);
            let to = clamp(
                Point::new(cur.x + self.step * a.cos(), cur.y + self.step * a.sin()),
                self.bounds,
            );
            out.push(WorldUpdate::Move { node: v, to });
        }
    }
}

/// Group / hotspot drift: mobile nodes belong to a few groups whose
/// virtual centers drift across the field; members track their group's
/// drift with individual jitter. Models vehicle convoys or rescue teams —
/// dense moving hotspots, the introduction's worry case.
#[derive(Debug)]
pub struct GroupDrift {
    bounds: (f64, f64),
    speed: f64,
    mobile: Vec<usize>,
    group_of: Vec<usize>,
    velocities: Vec<(f64, f64)>,
    rng: Rng64,
}

impl GroupDrift {
    /// Creates the model with `groups` drifting groups.
    pub fn new(
        n: usize,
        bounds: (f64, f64),
        speed: f64,
        mobile_frac: f64,
        groups: usize,
        seed: u64,
    ) -> Self {
        let mobile = mobile_subset(n, mobile_frac, seed);
        let groups = groups.max(1);
        let group_of = (0..mobile.len()).map(|i| i % groups).collect();
        let mut rng = Rng64::new(seed ^ 0x6772_6f75);
        let velocities = (0..groups)
            .map(|_| {
                let a = rng.range_f64(0.0, std::f64::consts::TAU);
                (speed * a.cos(), speed * a.sin())
            })
            .collect();
        Self {
            bounds,
            speed,
            mobile,
            group_of,
            velocities,
            rng,
        }
    }
}

impl DynamicsModel for GroupDrift {
    fn name(&self) -> &'static str {
        "group"
    }

    fn advance(&mut self, world: &World, out: &mut Vec<WorldUpdate>) {
        // Reflect group velocities off the walls using the group's first
        // awake member as the probe (groups stay coherent: members share
        // the drift, so any member works).
        let mut probed = vec![false; self.velocities.len()];
        for (i, &v) in self.mobile.iter().enumerate() {
            let g = self.group_of[i];
            if probed[g] || !world.is_awake(v) {
                continue;
            }
            probed[g] = true;
            let p = world.network().pos(v);
            let (vx, vy) = self.velocities[g];
            if p.x + vx < 0.0 || p.x + vx > self.bounds.0 {
                self.velocities[g].0 = -vx;
            }
            if p.y + vy < 0.0 || p.y + vy > self.bounds.1 {
                self.velocities[g].1 = -vy;
            }
        }
        let jitter = self.speed * 0.25;
        for (i, &v) in self.mobile.iter().enumerate() {
            if !world.is_awake(v) {
                continue;
            }
            let (vx, vy) = self.velocities[self.group_of[i]];
            let cur = world.network().pos(v);
            let to = clamp(
                Point::new(
                    cur.x + vx + self.rng.range_f64(-jitter, jitter),
                    cur.y + vy + self.rng.range_f64(-jitter, jitter),
                ),
                self.bounds,
            );
            out.push(WorldUpdate::Move { node: v, to });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcluster_sim::{deploy, Network};

    fn test_world(n: usize) -> World {
        let mut rng = Rng64::new(1);
        World::new(
            Network::builder(deploy::uniform_square(n, 4.0, &mut rng))
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn kinds_parse_and_print() {
        for kind in [
            MobilityKind::None,
            MobilityKind::Waypoint,
            MobilityKind::Walk,
            MobilityKind::Group,
        ] {
            assert_eq!(kind.name().parse::<MobilityKind>().unwrap(), kind);
            assert_eq!(format!("{kind}"), kind.name());
        }
        assert!("teleport".parse::<MobilityKind>().is_err());
        assert!(MobilityKind::None.build(10, (1.0, 1.0), 0.5, 1).is_none());
        assert!(MobilityKind::Waypoint
            .build(10, (1.0, 1.0), 0.5, 1)
            .is_some());
    }

    #[test]
    fn waypoint_moves_only_the_mobile_subset_and_stays_in_bounds() {
        let mut w = test_world(100);
        let mut m = RandomWaypoint::new(100, (4.0, 4.0), 0.3, 0.2, 5);
        let mobile: std::collections::HashSet<usize> = m.mobile.iter().copied().collect();
        assert!(
            !mobile.is_empty() && mobile.len() < 60,
            "a strict subset moves"
        );
        for _ in 0..30 {
            let mut ups = Vec::new();
            m.advance(&w, &mut ups);
            for u in &ups {
                let WorldUpdate::Move { node, to } = u else {
                    panic!("waypoint only emits moves");
                };
                assert!(mobile.contains(node));
                assert!((0.0..=4.0).contains(&to.x) && (0.0..=4.0).contains(&to.y));
            }
            w.apply(&ups);
        }
        w.audit_incremental().unwrap();
    }

    #[test]
    fn waypoint_converges_toward_its_target() {
        let mut w = test_world(50);
        let mut m = RandomWaypoint::new(50, (4.0, 4.0), 0.5, 1.0, 9);
        let v = m.mobile[0];
        let tgt = m.targets[0];
        let before = w.network().pos(v).dist(tgt);
        let mut ups = Vec::new();
        m.advance(&w, &mut ups);
        w.apply(&ups);
        let after = w.network().pos(v).dist(tgt);
        assert!(
            after < before || before <= 0.5,
            "one step must close the distance ({before} -> {after})"
        );
    }

    #[test]
    fn asleep_nodes_do_not_move() {
        let mut w = test_world(40);
        let mut m = RandomWalk::new(40, (4.0, 4.0), 0.2, 1.0, 3);
        w.apply(&[WorldUpdate::Sleep { node: 7 }]);
        let mut ups = Vec::new();
        m.advance(&w, &mut ups);
        assert!(
            ups.iter()
                .all(|u| !matches!(u, WorldUpdate::Move { node: 7, .. })),
            "sleeping node 7 must stay put"
        );
        assert!(!ups.is_empty());
    }

    #[test]
    fn group_drift_keeps_groups_coherent() {
        let mut w = test_world(60);
        let mut m = GroupDrift::new(60, (4.0, 4.0), 0.15, 0.5, 3, 11);
        for _ in 0..20 {
            let mut ups = Vec::new();
            m.advance(&w, &mut ups);
            w.apply(&ups);
        }
        w.audit_incremental().unwrap();
        // Same-group members moved with the same drift (up to jitter):
        // their pairwise spread should not have exploded beyond the field.
        for u in 0..60 {
            let p = w.network().pos(u);
            assert!((0.0..=4.0).contains(&p.x) && (0.0..=4.0).contains(&p.y));
        }
    }

    #[test]
    fn models_replay_identically_from_the_same_seed() {
        let run = |seed: u64| {
            let mut w = test_world(70);
            let mut m: Vec<Box<dyn DynamicsModel>> = vec![
                Box::new(RandomWaypoint::new(70, (4.0, 4.0), 0.25, 0.3, seed)),
                Box::new(Churn::new(seed ^ 9, 0.1, 0.4)),
            ];
            for _ in 0..12 {
                w.step(&mut m);
            }
            (w.network().points().to_vec(), w.awake().to_vec(), w.stats())
        };
        use crate::Churn;
        assert_eq!(run(5), run(5), "same seed, same world history");
        assert_ne!(run(5).0, run(6).0, "different seed, different history");
    }
}
