//! Churn: deterministic Poisson-like sleep/wake event streams.
//!
//! Per epoch, every awake node crashes/sleeps with probability `p_sleep`
//! and every asleep node wakes with probability `p_wake`, decided by
//! [`hash_chance`] over `(seed, epoch, node)` — geometric (memoryless)
//! on/off dwell times, i.e. the discrete analogue of a Poisson on/off
//! process, yet fully deterministic and replayable. The stream composes
//! with the paper's wake-up machinery (Theorem 4): woken nodes are exactly
//! the "spontaneously activated" set a wake-up window starts from, and the
//! cluster-maintenance driver re-runs clustering over the awake set each
//! epoch.
//!
//! Node 0 is an **anchor**: it never sleeps. The wake-up problem requires
//! at least one active node, and every maintenance scenario needs a
//! nonempty participant set; pinning one node (rather than resampling) is
//! the determinism-preserving way to get both.

use crate::{DynamicsModel, World, WorldUpdate};
use dcluster_sim::rng::hash_chance;

/// Deterministic sleep/wake churn (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct Churn {
    seed: u64,
    p_sleep: f64,
    p_wake: f64,
}

impl Churn {
    /// Creates the schedule: per epoch, awake nodes sleep w.p. `p_sleep`,
    /// asleep nodes wake w.p. `p_wake`.
    ///
    /// # Panics
    ///
    /// Panics unless both probabilities lie in `[0, 1]`.
    pub fn new(seed: u64, p_sleep: f64, p_wake: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_sleep) && (0.0..=1.0).contains(&p_wake),
            "churn probabilities must lie in [0, 1]"
        );
        Self {
            seed,
            p_sleep,
            p_wake,
        }
    }

    /// The event (if any) this schedule fires for node `v` at `epoch` given
    /// its awake state — exposed so tests and analyzers can reconstruct
    /// the stream without a [`World`].
    pub fn event(&self, epoch: u64, v: usize, awake: bool) -> Option<WorldUpdate> {
        if awake {
            (v != 0 && hash_chance(self.seed, &[epoch, v as u64, 0], self.p_sleep))
                .then_some(WorldUpdate::Sleep { node: v })
        } else {
            hash_chance(self.seed, &[epoch, v as u64, 1], self.p_wake)
                .then_some(WorldUpdate::Wake { node: v })
        }
    }
}

impl DynamicsModel for Churn {
    fn name(&self) -> &'static str {
        "churn"
    }

    fn advance(&mut self, world: &World, out: &mut Vec<WorldUpdate>) {
        let epoch = world.epoch();
        for v in 0..world.network().len() {
            if let Some(u) = self.event(epoch, v, world.is_awake(v)) {
                out.push(u);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcluster_sim::rng::Rng64;
    use dcluster_sim::{deploy, Network};

    fn test_world(n: usize) -> World {
        let mut rng = Rng64::new(8);
        World::new(
            Network::builder(deploy::uniform_square(n, 3.0, &mut rng))
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn anchor_node_never_sleeps() {
        let mut w = test_world(50);
        let mut models: Vec<Box<dyn DynamicsModel>> = vec![Box::new(Churn::new(3, 0.9, 0.1))];
        for _ in 0..40 {
            w.step(&mut models);
            assert!(w.is_awake(0), "anchor must stay awake");
            assert!(w.awake_count() >= 1);
        }
        assert!(
            w.stats().sleeps > 0 && w.stats().wakes > 0,
            "heavy churn produces both event kinds"
        );
    }

    #[test]
    fn churn_rates_are_roughly_honoured() {
        let c = Churn::new(77, 0.2, 0.0);
        let fired = (0..10_000u64)
            .filter(|&e| c.event(e, 5, true).is_some())
            .count();
        let rate = fired as f64 / 10_000.0;
        assert!((rate - 0.2).abs() < 0.02, "sleep rate {rate} far from 0.2");
        assert!(c.event(1, 5, false).is_none(), "p_wake = 0 never wakes");
    }

    #[test]
    fn stream_is_replayable() {
        let c = Churn::new(9, 0.3, 0.3);
        for e in 0..100 {
            for v in 0..20 {
                assert_eq!(c.event(e, v, true), c.event(e, v, true));
                assert_eq!(c.event(e, v, false), c.event(e, v, false));
            }
        }
    }
}
