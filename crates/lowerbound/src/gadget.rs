//! The Figure 5/6 gadget geometry.

use dcluster_sim::{Point, SinrParams};

/// A single lower-bound gadget: `s, v_0, …, v_{∆+1}, t` on a line.
///
/// Distances (Figure 6): `d(v_i, v_{i+1}) = ε/2^{∆−i}` for `i < ∆`,
/// `d(v_∆, v_{∆+1}) = 2ε`, `d(s, v_0) = ε`, `d(v_{∆+1}, t) = 1−ε`. Hence
/// `2ε < d(v_0, v_{∆+1}) < 3ε`, and `t` is within range of `v_{∆+1}` only.
#[derive(Debug, Clone)]
pub struct Gadget {
    points: Vec<Point>,
    delta: usize,
}

/// Gadget core sizes above this lose the geometric-sequence separation to
/// f64 rounding (`ε/2^∆` underflows relative to the coordinate scale).
pub const MAX_DELTA: usize = 40;

impl Gadget {
    /// Builds the gadget for core parameter `delta` at horizontal offset
    /// `x0` (the source sits at `(x0, 0)`).
    ///
    /// # Panics
    ///
    /// Panics if `delta` is 0 or exceeds [`MAX_DELTA`].
    pub fn new(delta: usize, params: &SinrParams, x0: f64) -> Self {
        assert!(
            (1..=MAX_DELTA).contains(&delta),
            "delta must be in [1, {MAX_DELTA}]"
        );
        let eps = params.epsilon;
        let mut points = Vec::with_capacity(delta + 4);
        points.push(Point::new(x0, 0.0)); // s
        let mut x = x0 + eps; // v_0
        points.push(Point::new(x, 0.0));
        for i in 0..delta {
            x += eps / 2f64.powi((delta - i) as i32); // d(v_i, v_{i+1}) = ε/2^{∆−i}
            points.push(Point::new(x, 0.0)); // v_{i+1}
        }
        // The last core hop is 2ε (Figure 6): v_∆ → v_{∆+1}.
        x += 2.0 * eps;
        points.push(Point::new(x, 0.0)); // v_{∆+1}
                                         // t at 1−ε beyond v_{∆+1} (0.999 float-safety margin keeps the
                                         // v_{∆+1}–t communication edge robust to accumulated rounding).
        let range = params.range();
        points.push(Point::new(x + range * (1.0 - eps) * 0.999, 0.0));
        Self { points, delta }
    }

    /// Core parameter ∆ (the core has `∆ + 2` nodes `v_0 … v_{∆+1}`).
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// All points: `[s, v_0, …, v_{∆+1}, t]`.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Index of the source `s`.
    pub fn source(&self) -> usize {
        0
    }

    /// Index of core node `v_i` (`i ≤ ∆+1`).
    pub fn core(&self, i: usize) -> usize {
        debug_assert!(i <= self.delta + 1);
        1 + i
    }

    /// Indices of the whole core `v_0 … v_{∆+1}`.
    pub fn core_range(&self) -> std::ops::Range<usize> {
        1..(self.delta + 3)
    }

    /// Index of the target `t`.
    pub fn target(&self) -> usize {
        self.points.len() - 1
    }

    /// Number of nodes (`∆ + 4`).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always false (a gadget has ≥ 5 nodes).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_bound_params;

    #[test]
    fn geometry_matches_figure_six() {
        let p = lower_bound_params();
        let eps = p.epsilon;
        let g = Gadget::new(10, &p, 0.0);
        assert_eq!(g.len(), 14);
        let pts = g.points();
        // d(s, v0) = ε.
        assert!((pts[g.core(0)].x - pts[g.source()].x - eps).abs() < 1e-12);
        // Geometric steps double.
        for i in 0..9 {
            let d1 = pts[g.core(i + 1)].x - pts[g.core(i)].x;
            let d2 = pts[g.core(i + 2)].x - pts[g.core(i + 1)].x;
            if i + 2 <= 10 {
                let ratio = d2 / d1;
                // The final hop is pinned to 2ε, so skip the last ratio.
                if i + 2 < 11 {
                    assert!((ratio - 2.0).abs() < 1e-9, "step ratio {ratio} at {i}");
                }
            }
        }
        // 2ε < d(v0, v_{∆+1}) < 3ε (paper, Figure 6).
        let span = pts[g.core(11)].x - pts[g.core(0)].x;
        assert!(span > 2.0 * eps && span < 3.0 * eps, "core span {span}");
        // d(v_{∆+1}, t) = (1 − ε)·0.999 (float-safety margin).
        let dt = pts[g.target()].x - pts[g.core(11)].x;
        assert!((dt - (1.0 - eps) * 0.999).abs() < 1e-12);
    }

    #[test]
    fn only_the_last_core_node_reaches_t() {
        let p = lower_bound_params();
        let g = Gadget::new(12, &p, 0.0);
        let pts = g.points();
        let t = pts[g.target()];
        for i in g.core_range() {
            let d = pts[i].dist(t);
            if i == g.core(g.delta() + 1) {
                assert!(d <= 1.0, "v_Δ+1 must be in range of t");
            } else {
                assert!(d > 1.0, "node {i} at distance {d} ≤ 1 from t");
            }
        }
        // s is also out of range of t.
        assert!(pts[g.source()].dist(t) > 1.0);
    }

    #[test]
    fn source_covers_the_whole_core() {
        let p = lower_bound_params();
        let g = Gadget::new(20, &p, 3.0);
        let pts = g.points();
        for i in g.core_range() {
            assert!(
                pts[g.source()].dist(pts[i]) <= 4.0 * p.epsilon,
                "core must lie within 4ε of s"
            );
        }
    }

    #[test]
    #[should_panic(expected = "delta must be in")]
    fn oversized_delta_is_rejected() {
        let p = lower_bound_params();
        let _ = Gadget::new(MAX_DELTA + 1, &p, 0.0);
    }
}
