//! Machine-checked versions of Fact 2 and Fact 3.

use crate::gadget::Gadget;
use crate::nu;
use dcluster_sim::radio::{GridResolver, SinrResolver};
use dcluster_sim::{Network, SinrParams};

/// Builds the gadget as a network with sequential IDs.
fn gadget_net(g: &Gadget, params: &SinrParams) -> Network {
    Network::builder(g.points().to_vec())
        .params(*params)
        .build()
        .expect("valid gadget")
}

/// **Fact 2.1**: if `v_i` and `v_j` (`i < j`) transmit, then none of
/// `v_{j+1}, …, v_{∆+1}` receives anything. Returns the violating triple
/// `(i, j, receiver)` if any exists (checked exhaustively over all pairs).
pub fn check_fact_2_1(g: &Gadget, params: &SinrParams) -> Option<(usize, usize, usize)> {
    let net = gadget_net(g, params);
    let delta = g.delta();
    let mut radio = GridResolver::new();
    for i in 0..=delta {
        for j in (i + 1)..=(delta + 1) {
            let tx = vec![g.core(i), g.core(j)];
            for r in radio.resolve(&net, &tx) {
                for m in (j + 1)..=(delta + 1) {
                    if r.receiver == g.core(m) {
                        return Some((i, j, m));
                    }
                }
            }
        }
    }
    None
}

/// **Fact 2.2**: `t` receives only if `v_{∆+1}` is the sole core
/// transmitter. Checked over all transmitter pairs including `v_{∆+1}`,
/// plus the positive case (alone ⇒ received).
pub fn check_fact_2_2(g: &Gadget, params: &SinrParams) -> bool {
    let net = gadget_net(g, params);
    let delta = g.delta();
    let last = g.core(delta + 1);
    let mut radio = GridResolver::new();
    // Positive: alone, v_{∆+1} reaches t.
    let alone = radio.resolve(&net, &[last]);
    if !alone
        .iter()
        .any(|r| r.receiver == g.target() && r.sender == last)
    {
        return false;
    }
    // Negative: any companion transmitter silences t.
    for i in 0..=delta {
        let tx = vec![g.core(i), last];
        if radio
            .resolve(&net, &tx)
            .iter()
            .any(|r| r.receiver == g.target())
        {
            return false;
        }
    }
    // Also: s transmitting together with v_{∆+1} silences t.
    let tx = vec![g.source(), last];
    !radio
        .resolve(&net, &tx)
        .iter()
        .any(|r| r.receiver == g.target())
}

/// **Fact 3**: in a Figure 7 chain, the interference any core node of any
/// gadget suffers from *outside* that gadget is below `ν`, even with every
/// outside node transmitting at once (the worst case). Returns the maximal
/// outside interference observed, for comparison against [`nu`].
pub fn worst_outside_interference(
    chain_points: &[dcluster_sim::Point],
    gadget_member: &[bool],
    core_positions: &[usize],
    params: &SinrParams,
) -> f64 {
    let mut worst: f64 = 0.0;
    for &c in core_positions {
        let mut inter = 0.0;
        for (i, p) in chain_points.iter().enumerate() {
            if !gadget_member[i] {
                inter += params.signal(p.dist(chain_points[c]));
            }
        }
        worst = worst.max(inter);
    }
    worst
}

/// Convenience: check Fact 3 for a freshly built chain (every non-member
/// of each gadget transmitting).
pub fn check_fact_3(chain: &crate::chain::Chain, params: &SinrParams) -> bool {
    let bound = nu(params);
    for gi in 0..chain.gadget_count() {
        let members = chain.gadget_mask(gi);
        let core: Vec<usize> = chain.core_indices(gi);
        let w = worst_outside_interference(chain.points(), &members, &core, params);
        if w > bound {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::build_chain;
    use crate::lower_bound_params;

    #[test]
    fn fact_2_1_holds_exhaustively() {
        let p = lower_bound_params();
        for delta in [4usize, 8, 16, 24] {
            let g = Gadget::new(delta, &p, 0.0);
            assert_eq!(
                check_fact_2_1(&g, &p),
                None,
                "Fact 2.1 violated for ∆ = {delta}"
            );
        }
    }

    #[test]
    fn fact_2_2_holds() {
        let p = lower_bound_params();
        for delta in [4usize, 12, 20] {
            let g = Gadget::new(delta, &p, 0.0);
            assert!(check_fact_2_2(&g, &p), "Fact 2.2 violated for ∆ = {delta}");
        }
    }

    #[test]
    fn fact_2_1_fails_in_the_default_regime() {
        // Demonstrates why the lower-bound regime needs β > 2^α: with the
        // default (α=3, β=2) two adjacent transmitters do NOT block the
        // next node.
        let p = SinrParams::default();
        let g = Gadget::new(12, &p, 0.0);
        assert!(
            check_fact_2_1(&g, &p).is_some(),
            "default β ≤ 2^α should break the blocking argument"
        );
    }

    #[test]
    fn fact_3_holds_on_chains() {
        let p = lower_bound_params();
        let chain = build_chain(3, 8, &p);
        assert!(check_fact_3(&chain, &p), "outside interference exceeds ν");
    }
}
