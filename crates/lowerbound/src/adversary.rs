//! The Lemma 13 adversarial ID-assignment game.
//!
//! Any deterministic algorithm run on the gadget behaves, at each node, as
//! a function of (its ID, rounds since wake-up, messages received). The
//! adversary exploits this: all core nodes wake simultaneously (first
//! transmission of `s`) and — as long as their reception histories stay
//! identical — remain *interchangeable*. The adversary watches which
//! unassigned IDs would transmit next and pins them to the **front** of
//! the line, two per event, maintaining the invariant that in every round
//! either no core node transmits, exactly one transmits (everybody hears
//! the same message — histories stay uniform), or at least two transmit
//! with all unassigned nodes positioned beyond the second transmitter
//! (Fact 2: they hear nothing — histories stay uniform). `v_{∆+1}` thus
//! receives its identity only after `Ω(∆)` assignment events, and `t`
//! (which only `v_{∆+1}` can reach, and only as the *sole* core
//! transmitter — Fact 2.2) stays deaf for `Ω(∆)` rounds.

use crate::gadget::Gadget;
use dcluster_selectors::ssf::RandomSsf;
use dcluster_selectors::Schedule;
use dcluster_sim::engine::{Engine, RoundBehavior};
use dcluster_sim::network::Network;
use dcluster_sim::rng::hash64;

/// A deterministic transmission strategy: the per-node algorithm the lower
/// bound quantifies over. `history` is the node's reception log
/// `(round_since_wake, sender_id)` — identical for interchangeable nodes.
pub trait DeterministicStrategy {
    /// Does the node with `id` transmit at `round` (counted from its
    /// wake-up) given its reception history?
    fn transmits(&self, id: u64, round: u64, history: &[(u64, u64)]) -> bool;
}

/// Round-robin by ID: `id ≡ round (mod period)` — the collision-free sweep.
#[derive(Debug, Clone, Copy)]
pub struct RoundRobin {
    /// Sweep period (usually the ID-space bound `N`).
    pub period: u64,
}

impl DeterministicStrategy for RoundRobin {
    fn transmits(&self, id: u64, round: u64, _history: &[(u64, u64)]) -> bool {
        id % self.period == round % self.period
    }
}

/// ssf-driven strategy: transmit iff the ssf schedules your ID.
#[derive(Debug, Clone, Copy)]
pub struct SsfStrategy(pub RandomSsf);

impl DeterministicStrategy for SsfStrategy {
    fn transmits(&self, id: u64, round: u64, _history: &[(u64, u64)]) -> bool {
        self.0.contains(round % self.0.len(), id)
    }
}

/// A pseudo-random tape with density `1/k` — the "derandomized coin"
/// strategy (what a randomized algorithm looks like once its coins are
/// fixed, which is exactly the lower bound's adversary model).
#[derive(Debug, Clone, Copy)]
pub struct HashedCoin {
    /// Tape seed.
    pub seed: u64,
    /// Inverse transmission probability.
    pub k: u64,
}

impl DeterministicStrategy for HashedCoin {
    fn transmits(&self, id: u64, round: u64, _history: &[(u64, u64)]) -> bool {
        (hash64(self.seed, &[id, round]) as u128 * self.k as u128) >> 64 == 0
    }
}

/// The strongest oblivious strategy here: a **multi-scale tape**
/// interleaving densities `1/2, 1/4, …, 1/2^L` round-robin (the classic
/// decay idea, derandomized into a fixed tape). Whatever the local
/// contention `m ≤ 2^L`, every `L` rounds one round has density `≈ 1/m`,
/// so sparse regions (buffer paths) are crossed in `O(L)` rounds per hop —
/// yet the Lemma 13 adversary still extracts Ω(Δ) inside a gadget,
/// which is exactly Theorem 6's point.
#[derive(Debug, Clone, Copy)]
pub struct MultiScale {
    /// Tape seed.
    pub seed: u64,
    /// Number of density scales (`L`), covering contention up to `2^L`.
    pub scales: u32,
}

impl DeterministicStrategy for MultiScale {
    fn transmits(&self, id: u64, round: u64, _history: &[(u64, u64)]) -> bool {
        let j = (round % self.scales as u64) as u32 + 1; // density 2^-j
        let k = 1u64 << j.min(63);
        (hash64(self.seed, &[id, round]) as u128 * k as u128) >> 64 == 0
    }
}

/// Outcome of the assignment game.
#[derive(Debug, Clone)]
pub struct GameOutcome {
    /// `assignment[i]` = ID given to core position `v_i`.
    pub assignment: Vec<u64>,
    /// Rounds played until every ID was pinned (≥ #events ≥ (∆+2)/2 − 1).
    pub rounds_to_assign: u64,
    /// Assignment events (each pins two IDs).
    pub events: usize,
}

/// Plays the Lemma 13 game for a gadget with core parameter `delta`
/// against `strategy`, using the ID pool `ids` (`|ids| ≥ ∆ + 2`).
///
/// # Panics
///
/// Panics if fewer than `∆ + 2` IDs are supplied.
pub fn adversarial_assignment<S: DeterministicStrategy>(
    strategy: &S,
    delta: usize,
    ids: &[u64],
    max_rounds: u64,
) -> GameOutcome {
    let core = delta + 2;
    assert!(ids.len() >= core, "need at least ∆+2 candidate IDs");
    let mut pool: Vec<u64> = ids[..core].to_vec();
    let mut assignment: Vec<u64> = Vec::with_capacity(core);
    let mut history: Vec<(u64, u64)> = Vec::new(); // uniform reception log
    let mut events = 0usize;
    let mut rounds = 0u64;

    for round in 1..=max_rounds {
        rounds = round;
        if pool.len() <= 2 {
            break;
        }
        // Who would transmit this round?
        let assigned_tx: Vec<u64> = assignment
            .iter()
            .copied()
            .filter(|&id| strategy.transmits(id, round, &history))
            .collect();
        let pool_tx: Vec<u64> = pool
            .iter()
            .copied()
            .filter(|&id| strategy.transmits(id, round, &history))
            .collect();

        match (assigned_tx.len(), pool_tx.len()) {
            (_, w) if w >= 2 => {
                // ≥2 unassigned would transmit: pin the two earliest to the
                // next front positions — everyone beyond the second
                // transmitter hears nothing (Fact 2.1).
                for id in pool_tx.iter().take(2) {
                    assignment.push(*id);
                    pool.retain(|x| x != id);
                }
                events += 1;
            }
            (a, 1) => {
                // One unassigned transmitter: pin it forward together with
                // an arbitrary silent companion.
                let j = pool_tx[0];
                assignment.push(j);
                pool.retain(|&x| x != j);
                let k = pool[0];
                assignment.push(k);
                pool.remove(0);
                events += 1;
                if a == 0 {
                    // j was the sole transmitter: its message reaches every
                    // core node — uniformly. Histories stay identical.
                    history.push((round, j));
                }
            }
            (1, 0) => {
                // Sole assigned transmitter: uniform reception.
                history.push((round, assigned_tx[0]));
            }
            _ => { /* 0 transmitters, or ≥2 assigned: nothing uniform-breaking */ }
        }
    }

    // Pool is down to ≤2: put the later-transmitting one at v_{∆+1} to
    // maximize the remaining delay.
    if pool.len() == 2 {
        let next_tx = |id: u64| {
            (rounds + 1..rounds + 1_000_000)
                .find(|&r| strategy.transmits(id, r, &history))
                .unwrap_or(u64::MAX)
        };
        let (a, b) = (pool[0], pool[1]);
        if next_tx(a) <= next_tx(b) {
            assignment.push(a);
            assignment.push(b);
        } else {
            assignment.push(b);
            assignment.push(a);
        }
    } else {
        assignment.extend(pool.iter().copied());
    }
    assert_eq!(assignment.len(), core);
    GameOutcome {
        assignment,
        rounds_to_assign: rounds,
        events,
    }
}

/// Behavior running `strategy` on a real gadget network: `s` transmits
/// once at round 0 (waking the core); core nodes then follow the strategy;
/// each node's history is its true reception log. Used to *validate* the
/// game's prediction under full SINR physics.
struct GadgetRun<'a, S: DeterministicStrategy> {
    strategy: &'a S,
    awake_at: Vec<Option<u64>>,
    history: Vec<Vec<(u64, u64)>>,
    target: usize,
    target_heard_at: Option<u64>,
    source: usize,
}

impl<S: DeterministicStrategy> RoundBehavior<u64> for GadgetRun<'_, S> {
    fn transmit(&mut self, net: &Network, v: usize, round: u64) -> Option<u64> {
        if v == self.source {
            return (round == 0).then(|| net.id(v));
        }
        if v == self.target {
            return None;
        }
        let woke = self.awake_at[v]?;
        self.strategy
            .transmits(net.id(v), round - woke, &self.history[v])
            .then(|| net.id(v))
    }
    fn receive(&mut self, _net: &Network, v: usize, round: u64, _s: usize, msg: &u64) {
        if self.awake_at[v].is_none() {
            self.awake_at[v] = Some(round);
        }
        let woke = self.awake_at[v].unwrap();
        self.history[v].push((round - woke, *msg));
        if v == self.target && self.target_heard_at.is_none() {
            self.target_heard_at = Some(round);
        }
    }
}

/// Runs `strategy` on the real gadget (SINR physics) under the adversarial
/// assignment; returns the round at which `t` first decodes a message
/// (`None` if it never does within `max_rounds`).
pub fn measure_gadget<S: DeterministicStrategy>(
    gadget: &Gadget,
    params: &dcluster_sim::SinrParams,
    assignment: &[u64],
    source_id: u64,
    target_id: u64,
    strategy: &S,
    max_rounds: u64,
) -> Option<u64> {
    let mut ids = vec![0u64; gadget.len()];
    ids[gadget.source()] = source_id;
    ids[gadget.target()] = target_id;
    for (i, &id) in assignment.iter().enumerate() {
        ids[gadget.core(i)] = id;
    }
    let max_id = ids.iter().copied().max().unwrap();
    let net = dcluster_sim::Network::builder(gadget.points().to_vec())
        .params(*params)
        .ids(ids)
        .max_id(max_id)
        .build()
        .expect("valid gadget network");
    let mut engine = Engine::new(&net);
    let mut run = GadgetRun {
        strategy,
        awake_at: {
            let mut w = vec![None; net.len()];
            w[gadget.source()] = Some(0);
            w
        },
        history: vec![Vec::new(); net.len()],
        target: gadget.target(),
        target_heard_at: None,
        source: gadget.source(),
    };
    engine.run_until(&mut run, max_rounds, |r| r.target_heard_at.is_some());
    run.target_heard_at
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_bound_params;

    #[test]
    fn game_assigns_everyone_and_counts_events() {
        let strat = RoundRobin { period: 64 };
        let ids: Vec<u64> = (1..=18).collect();
        let out = adversarial_assignment(&strat, 16, &ids, 100_000);
        assert_eq!(out.assignment.len(), 18);
        let mut sorted = out.assignment.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, ids, "assignment must be a permutation of the pool");
        assert!(out.events >= 16 / 2, "≥ ∆/2 events, got {}", out.events);
    }

    #[test]
    fn round_robin_takes_omega_delta_on_the_gadget() {
        let p = lower_bound_params();
        for delta in [8usize, 16, 24] {
            let g = Gadget::new(delta, &p, 0.0);
            let strat = RoundRobin {
                period: (delta + 6) as u64,
            };
            let ids: Vec<u64> = (1..=(delta as u64 + 2)).collect();
            let out = adversarial_assignment(&strat, delta, &ids, 1_000_000);
            let heard = measure_gadget(&g, &p, &out.assignment, 1000, 1001, &strat, 1_000_000);
            let rounds = heard.expect("round robin eventually delivers");
            assert!(
                rounds as usize >= delta / 2,
                "∆={delta}: t heard after only {rounds} rounds"
            );
        }
    }

    #[test]
    fn hashed_coin_also_suffers_linear_delay() {
        let p = lower_bound_params();
        let delta = 16;
        let g = Gadget::new(delta, &p, 0.0);
        let strat = HashedCoin { seed: 99, k: 8 };
        let ids: Vec<u64> = (1..=(delta as u64 + 2)).collect();
        let out = adversarial_assignment(&strat, delta, &ids, 2_000_000);
        let heard = measure_gadget(&g, &p, &out.assignment, 1000, 1001, &strat, 2_000_000);
        if let Some(rounds) = heard {
            assert!(
                rounds as usize >= delta / 4,
                "adversary should force ≥ ∆/4 rounds, got {rounds}"
            );
        }
    }

    #[test]
    fn multi_scale_pays_omega_delta_despite_adapting_to_contention() {
        let p = lower_bound_params();
        let delta = 24;
        let g = Gadget::new(delta, &p, 0.0);
        let strat = MultiScale { seed: 3, scales: 8 };
        let ids: Vec<u64> = (1..=(delta as u64 + 2)).collect();
        let out = adversarial_assignment(&strat, delta, &ids, 2_000_000);
        assert!(out.events >= delta / 2, "the adversary needs Ω(Δ) events");
        let heard = measure_gadget(&g, &p, &out.assignment, 900, 901, &strat, 2_000_000);
        if let Some(rounds) = heard {
            assert!(
                rounds as usize >= delta / 4,
                "multi-scale should still pay Ω(Δ): {rounds}"
            );
        }
    }

    #[test]
    fn multi_scale_densities_cycle() {
        let strat = MultiScale { seed: 1, scales: 4 };
        // Round density 1/2 at j=1 rounds: measure empirically.
        let mut dense = 0;
        let mut sparse = 0;
        for id in 0..4000u64 {
            if strat.transmits(id, 0, &[]) {
                dense += 1; // round 0: j = 1, p = 1/2
            }
            if strat.transmits(id, 3, &[]) {
                sparse += 1; // round 3: j = 4, p = 1/16
            }
        }
        assert!(
            (dense as f64 - 2000.0).abs() < 200.0,
            "p=1/2 rate: {dense}/4000"
        );
        assert!(
            (sparse as f64 - 250.0).abs() < 100.0,
            "p=1/16 rate: {sparse}/4000"
        );
    }

    #[test]
    fn adversarial_order_is_no_faster_than_friendly_order() {
        // Friendly: v_{∆+1} gets the earliest-transmitting ID.
        let p = lower_bound_params();
        let delta = 12;
        let g = Gadget::new(delta, &p, 0.0);
        let strat = RoundRobin { period: 40 };
        let ids: Vec<u64> = (1..=(delta as u64 + 2)).collect();
        let adv = adversarial_assignment(&strat, delta, &ids, 1_000_000);
        let adv_rounds = measure_gadget(&g, &p, &adv.assignment, 1000, 1001, &strat, 1_000_000)
            .expect("delivers");
        // Friendly assignment: smallest ID (earliest round-robin slot) last.
        let mut friendly = ids.clone();
        friendly.sort_unstable_by(|a, b| b.cmp(a)); // v_{∆+1} ← id 1
        let fr_rounds =
            measure_gadget(&g, &p, &friendly, 1000, 1001, &strat, 1_000_000).expect("delivers");
        assert!(
            adv_rounds >= fr_rounds,
            "adversarial ({adv_rounds}) must be ≥ friendly ({fr_rounds})"
        );
    }
}
