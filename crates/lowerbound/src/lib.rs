//! # dcluster-lowerbound — Theorem 6 as an executable game
//!
//! The paper's lower bound `Ω(D·∆^{1−1/α})` for deterministic global
//! broadcast is proved with a *gadget* network (Figures 5–6) and an
//! adversarial ID assignment (Lemma 13). This crate makes all of it
//! executable:
//!
//! * [`gadget`] — the Figure 5/6 geometry: core nodes on a line at
//!   geometrically growing distances `ε/2^{∆−i}`, a source `s` within `ε`,
//!   and a target `t` exactly `1−ε` beyond the last core node (so only
//!   `v_{∆+1}` can reach it).
//! * [`adversary`] — the Lemma 13 game against any
//!   [`adversary::DeterministicStrategy`]: IDs are assigned to core
//!   positions lazily, two per "event", so that for `Ω(∆)` rounds either no
//!   core node or at least two core nodes transmit — and `t` hears nothing.
//! * [`chain`] — Figure 7: gadgets chained with `κ = ∆^{1/α}/(1−ε)`-node
//!   buffer paths, giving the `D`-dependent bound.
//! * [`facts`] — numeric verification of Fact 2 (geometric-sequence
//!   blocking) and Fact 3 (outside-gadget interference ≤ ν).
//!
//! ## Parameter regime
//!
//! Fact 2's blocking argument compares the decoder's SINR against ratios of
//! consecutive geometric distances: with two transmitters `v_i, v_j`
//! (`i < j`) the best SINR any node beyond `v_j` sees is `< 2^α`. The
//! blocking therefore needs **`β > 2^α`** — a constant relation the paper
//! leaves inside "for ε small enough". All experiments here use
//! [`lower_bound_params`] (`α = 2.5, β = 6, ε = 0.05`), under which every
//! Fact is machine-checked in [`facts`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod chain;
pub mod facts;
pub mod gadget;

pub use adversary::{adversarial_assignment, measure_gadget, DeterministicStrategy};
pub use chain::{build_chain, measure_chain, Chain};
pub use gadget::Gadget;

use dcluster_sim::SinrParams;

/// The SINR regime of the lower-bound experiments: `α = 2.5`, `β = 6`
/// (`> 2^α ≈ 5.66`, required by Fact 2), noise 1, range 1, `ε = 0.05`
/// (small enough for Fact 3's interference budget ν ≈ 55).
pub fn lower_bound_params() -> SinrParams {
    SinrParams::normalized(2.5, 6.0, 1.0, 0.05)
}

/// Lemma 13's interference budget `ν`: the largest outside interference
/// under which a sole in-gadget transmitter is still decoded across the
/// whole core (`P/(4ε)^α / (noise + ν) = β`).
pub fn nu(params: &SinrParams) -> f64 {
    params.power / (params.beta * (4.0 * params.epsilon).powf(params.alpha)) - params.noise
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_bound_regime_satisfies_the_standing_assumptions() {
        let p = lower_bound_params();
        assert!(p.alpha > 2.0);
        assert!(
            p.beta > 2.0f64.powf(p.alpha),
            "Fact 2 requires beta > 2^alpha"
        );
        assert!((p.range() - 1.0).abs() < 1e-12);
        assert!(
            nu(&p) > 0.0,
            "nu must be positive for the gadget to wake up"
        );
    }

    #[test]
    fn nu_grows_as_epsilon_shrinks() {
        let a = nu(&SinrParams::normalized(2.5, 6.0, 1.0, 0.1));
        let b = nu(&SinrParams::normalized(2.5, 6.0, 1.0, 0.05));
        assert!(b > a);
    }
}
