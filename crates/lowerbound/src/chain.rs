//! Figure 7: gadgets chained with buffer paths — the `Ω(D·∆^{1−1/α})`
//! network family.
//!
//! Between consecutive gadgets sits a path of `κ = ⌈∆^{1/α}/(1−ε)⌉` nodes
//! at spacing `(1−ε)·range`, absorbing cross-gadget interference (Fact 3).
//! The broadcast must cross every gadget, paying Ω(∆) rounds each (Lemma
//! 13), while the paths contribute only `Θ(κ)` hops of diameter — hence
//! rounds/D = `Ω(∆/κ) = Ω(∆^{1−1/α})`.
//!
//! The embedding of the single-gadget adversary into the chain is exact
//! for *oblivious* strategies (transmission = f(ID, rounds-since-wake)),
//! which is what the strategy suite in [`crate::adversary`] provides; see
//! the module docs there for the history-uniformity caveat on adaptive
//! strategies.

use crate::adversary::{adversarial_assignment, DeterministicStrategy};
use crate::gadget::Gadget;
use dcluster_sim::engine::{Engine, RoundBehavior};
use dcluster_sim::network::Network;
use dcluster_sim::{Point, SinrParams};

/// A built chain network description.
#[derive(Debug, Clone)]
pub struct Chain {
    points: Vec<Point>,
    /// Per gadget: (member index range, core index range, target index).
    gadgets: Vec<(std::ops::Range<usize>, std::ops::Range<usize>, usize)>,
    kappa: usize,
    delta: usize,
}

impl Chain {
    /// All node positions.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of gadgets.
    pub fn gadget_count(&self) -> usize {
        self.gadgets.len()
    }

    /// Buffer path length κ.
    pub fn kappa(&self) -> usize {
        self.kappa
    }

    /// Core parameter ∆.
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// Membership mask of gadget `gi` (s, core, t).
    pub fn gadget_mask(&self, gi: usize) -> Vec<bool> {
        let mut m = vec![false; self.points.len()];
        for i in self.gadgets[gi].0.clone() {
            m[i] = true;
        }
        m
    }

    /// Core node indices of gadget `gi`.
    pub fn core_indices(&self, gi: usize) -> Vec<usize> {
        self.gadgets[gi].1.clone().collect()
    }

    /// Target (t) index of gadget `gi`.
    pub fn target_of(&self, gi: usize) -> usize {
        self.gadgets[gi].2
    }

    /// The final target (last gadget's `t`).
    pub fn final_target(&self) -> usize {
        self.gadgets.last().expect("≥1 gadget").2
    }
}

/// Builds a chain of `gadget_count` gadgets with core parameter `delta`.
pub fn build_chain(gadget_count: usize, delta: usize, params: &SinrParams) -> Chain {
    assert!(gadget_count >= 1);
    let range = params.range();
    let eps = params.epsilon;
    // 0.999 float-safety margin: hops at exactly the comm radius can lose
    // their graph edge to rounding in the accumulated x coordinates.
    let hop = range * (1.0 - eps) * 0.999;
    // κ = ∆^{1/α} / (1−ε), at least 1 (paper §6).
    let kappa = ((delta as f64).powf(1.0 / params.alpha) / (1.0 - eps))
        .ceil()
        .max(1.0) as usize;

    let mut points: Vec<Point> = Vec::new();
    let mut gadgets = Vec::new();
    let mut x = 0.0;
    for gi in 0..gadget_count {
        // Buffer path w_1 … w_κ (the chain's start doubles as the source).
        for _ in 0..kappa {
            points.push(Point::new(x, 0.0));
            x += hop;
        }
        // Gadget: its s sits one hop after w_κ (x already advanced).
        let g = Gadget::new(delta, params, x);
        let start = points.len();
        points.extend_from_slice(g.points());
        let core = (start + g.core_range().start)..(start + g.core_range().end);
        let target = start + g.target();
        gadgets.push((start..points.len(), core, target));
        // Continue after t.
        x = points[target].x + hop;
        let _ = gi;
    }
    Chain {
        points,
        gadgets,
        kappa,
        delta,
    }
}

/// Outcome of a chain broadcast measurement.
#[derive(Debug, Clone)]
pub struct ChainMeasurement {
    /// Round at which the final target decoded a message (`None` = cap hit).
    pub rounds: Option<u64>,
    /// Round each gadget's target first decoded, in order.
    pub per_gadget: Vec<Option<u64>>,
    /// Hop diameter of the chain's communication graph.
    pub diameter: u32,
    /// Total nodes.
    pub nodes: usize,
}

struct ChainRun<'a, S: DeterministicStrategy> {
    strategy: &'a S,
    awake_at: Vec<Option<u64>>,
    heard_at: Vec<Option<u64>>,
}

impl<S: DeterministicStrategy> RoundBehavior<u64> for ChainRun<'_, S> {
    fn transmit(&mut self, net: &Network, v: usize, round: u64) -> Option<u64> {
        let woke = self.awake_at[v]?;
        self.strategy
            .transmits(net.id(v), round - woke, &[])
            .then(|| net.id(v))
    }
    fn receive(&mut self, _net: &Network, v: usize, round: u64, _s: usize, msg: &u64) {
        if self.awake_at[v].is_none() {
            self.awake_at[v] = Some(round + 1); // participates from next round
        }
        if self.heard_at[v].is_none() {
            self.heard_at[v] = Some(round);
        }
        let _ = msg;
    }
}

/// Measures a broadcast across the chain under `strategy`, with the Lemma
/// 13 adversarial ID assignment inside every gadget core. The source (the
/// first path node) is awake at round 0; everyone else wakes on first
/// reception.
pub fn measure_chain<S: DeterministicStrategy>(
    chain: &Chain,
    params: &SinrParams,
    strategy: &S,
    max_rounds: u64,
) -> ChainMeasurement {
    let n = chain.points.len();
    // IDs: gadget cores get adversarial pools; everyone else sequential.
    let mut ids: Vec<u64> = (1..=n as u64).collect();
    for gi in 0..chain.gadget_count() {
        let core = chain.core_indices(gi);
        let pool: Vec<u64> = core.iter().map(|&v| ids[v]).collect();
        let game = adversarial_assignment(strategy, chain.delta, &pool, max_rounds.min(500_000));
        for (slot, &v) in core.iter().enumerate() {
            ids[v] = game.assignment[slot];
        }
    }
    let net = Network::builder(chain.points.clone())
        .params(*params)
        .ids(ids)
        .build()
        .expect("valid chain network");

    let mut run = ChainRun {
        strategy,
        awake_at: {
            let mut w = vec![None; n];
            w[0] = Some(0);
            w
        },
        heard_at: vec![None; n],
    };
    let mut engine = Engine::new(&net);
    let final_t = chain.final_target();
    engine.run_until(&mut run, max_rounds, |r| r.heard_at[final_t].is_some());

    ChainMeasurement {
        rounds: run.heard_at[final_t],
        per_gadget: (0..chain.gadget_count())
            .map(|gi| run.heard_at[chain.target_of(gi)])
            .collect(),
        diameter: net.comm_graph().diameter_estimate().unwrap_or(0),
        nodes: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::HashedCoin;
    use crate::lower_bound_params;

    #[test]
    fn chain_is_connected_and_sized_right() {
        let p = lower_bound_params();
        let chain = build_chain(3, 8, &p);
        assert_eq!(chain.gadget_count(), 3);
        assert_eq!(chain.points().len(), 3 * (chain.kappa() + 8 + 4));
        let net = Network::builder(chain.points().to_vec())
            .params(p)
            .build()
            .unwrap();
        assert!(net.comm_graph().is_connected(), "chain must be connected");
    }

    #[test]
    fn kappa_follows_the_alpha_root() {
        let p = lower_bound_params();
        let small = build_chain(1, 4, &p);
        let large = build_chain(1, 32, &p);
        // κ = ∆^{1/α}/(1−ε): 32^{0.4} / 4^{0.4} = 8^{0.4} ≈ 2.3.
        assert!(large.kappa() > small.kappa());
        assert!(large.kappa() <= small.kappa() * 4);
    }

    #[test]
    fn broadcast_crosses_the_chain_and_pays_per_gadget() {
        let p = lower_bound_params();
        let delta = 8;
        let chain = build_chain(2, delta, &p);
        let strat = HashedCoin { seed: 5, k: 6 };
        let m = measure_chain(&chain, &p, &strat, 3_000_000);
        let rounds = m.rounds.expect("broadcast must eventually cross");
        // Each gadget costs Ω(∆) (≥ ∆/4 conservatively), serialized.
        assert!(
            rounds >= (2 * delta / 4) as u64,
            "2 gadgets × ∆={delta} should cost ≥ {}, got {rounds}",
            2 * delta / 4
        );
        // Per-gadget times are increasing along the chain.
        let times: Vec<u64> = m.per_gadget.iter().map(|t| t.unwrap()).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]));
    }
}
