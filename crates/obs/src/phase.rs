//! Per-phase aggregation: the summary table the scenario `Report`
//! renders (markdown + CSV).
//!
//! A [`PhaseTable`] accumulates closed phase spans in **first-seen
//! order** — deterministic because the span stream is — and merges
//! across engines (the maintenance driver folds one table per epoch
//! engine into a run-level table). Nested phases each record their own
//! totals, so an outer phase's rounds include its inner phases'.

/// Aggregate cost of one named phase across all its spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSummary {
    /// Stable phase name (`clustering`, `sparsify`, `mis`, …).
    pub phase: String,
    /// Closed spans aggregated into this row.
    pub spans: u64,
    /// Rounds consumed (incl. nested phases).
    pub rounds: u64,
    /// Transmissions during the phase.
    pub tx: u64,
    /// Successful receptions during the phase.
    pub rx: u64,
}

/// An insertion-ordered table of [`PhaseSummary`] rows.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhaseTable {
    rows: Vec<PhaseSummary>,
}

impl PhaseTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one closed span into the named phase's row.
    pub fn record(&mut self, phase: &str, rounds: u64, tx: u64, rx: u64) {
        match self.rows.iter_mut().find(|r| r.phase == phase) {
            Some(row) => {
                row.spans += 1;
                row.rounds += rounds;
                row.tx += tx;
                row.rx += rx;
            }
            None => self.rows.push(PhaseSummary {
                phase: phase.to_string(),
                spans: 1,
                rounds,
                tx,
                rx,
            }),
        }
    }

    /// Folds another table into this one (phase-by-phase; `other`'s
    /// first-seen order appends new phases).
    pub fn merge(&mut self, other: &PhaseTable) {
        for row in &other.rows {
            match self.rows.iter_mut().find(|r| r.phase == row.phase) {
                Some(mine) => {
                    mine.spans += row.spans;
                    mine.rounds += row.rounds;
                    mine.tx += row.tx;
                    mine.rx += row.rx;
                }
                None => self.rows.push(row.clone()),
            }
        }
    }

    /// The rows, in first-seen order.
    pub fn summaries(&self) -> &[PhaseSummary] {
        &self.rows
    }

    /// True iff no span has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_aggregate_by_phase_in_first_seen_order() {
        let mut t = PhaseTable::new();
        t.record("sparsify", 10, 5, 2);
        t.record("mis", 3, 1, 1);
        t.record("sparsify", 6, 2, 2);
        let rows = t.summaries();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].phase, "sparsify");
        assert_eq!(rows[0].spans, 2);
        assert_eq!(rows[0].rounds, 16);
        assert_eq!(rows[0].tx, 7);
        assert_eq!(rows[0].rx, 4);
        assert_eq!(rows[1].phase, "mis");
    }

    #[test]
    fn merge_folds_matching_phases_and_appends_new_ones() {
        let mut a = PhaseTable::new();
        a.record("clustering", 20, 9, 4);
        let mut b = PhaseTable::new();
        b.record("clustering", 22, 10, 5);
        b.record("labeling", 4, 2, 2);
        a.merge(&b);
        let rows = a.summaries();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].spans, 2);
        assert_eq!(rows[0].rounds, 42);
        assert_eq!(rows[1].phase, "labeling");
        assert!(!a.is_empty());
    }
}
