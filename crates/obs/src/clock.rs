//! The sanctioned wall-clock seam.
//!
//! **Policy.** The deterministic crate set (`core`, `sim`, `scenario`,
//! `dynamics`, `selectors`, `obs`) must not read wall-clock time —
//! `xtask lint` rule D2 rejects `std::time` there. This file is the one
//! exemption (`lint.toml` exempts `crates/obs/src/clock.rs`): code that
//! genuinely needs timing — benchmarks, the `bench` crate's harnesses —
//! takes a [`Clock`] and is handed a [`WallClock`] at the edge, while
//! library code under test gets a [`ManualClock`]. Durations measured
//! here must never flow into traces, reports or the
//! [`crate::Registry`]; those are counts-only by construction.

use std::cell::Cell;
use std::time::Instant;

/// A monotonic time source, in nanoseconds from an arbitrary origin.
pub trait Clock {
    /// Nanoseconds elapsed since the clock's origin.
    fn now_nanos(&self) -> u64;
}

/// The real wall clock (monotonic, origin = construction time).
///
/// The only sanctioned `std::time` user inside the deterministic crate
/// set; see the module docs for the policy.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose origin is now.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A deterministic, manually-advanced clock for tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: Cell<u64>,
}

impl ManualClock {
    /// A manual clock at origin 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.nanos.set(self.nanos.get() + nanos);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_deterministic() {
        let c = ManualClock::new();
        assert_eq!(c.now_nanos(), 0);
        c.advance(5);
        c.advance(7);
        assert_eq!(c.now_nanos(), 12);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }
}
