//! The versioned JSONL trace sink.
//!
//! One JSON object per line, hand-rolled (no serde). Line 1 is the
//! header carrying [`TRACE_SCHEMA`] plus the run's identity
//! ([`TraceMeta`]); every following line is one [`Event`]. Nothing in a
//! trace depends on wall-clock time or iteration order, so two runs of
//! the same scenario produce **byte-identical** files — `xtask
//! tracediff` relies on this to name the first divergent round instead
//! of just failing a byte compare.
//!
//! ## Schema (`dcluster-trace/1`)
//!
//! ```text
//! {"schema":"dcluster-trace/1","scenario":…,"workload":…,"n":…,"resolver":…,"seed":…}
//! {"ev":"phase_start","phase":"clustering","round":0}
//! {"ev":"round","round":3,"tx":17,"rx":4,"cache":"patch","ins":2,"rem":1}
//! {"ev":"round","round":4,"tx":16,"rx":5}            // no cache in play
//! {"ev":"phase_end","phase":"clustering","round":9,"rounds":9,"tx":120,"rx":41}
//! {"ev":"epoch","epoch":0,"rounds":88,"re_elections":2,"violations":0}
//! ```

use crate::{CacheOp, Event, Tracer};
use std::fmt::Write as _;
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

/// The trace schema version written into every header line. Bump on any
/// change to line shapes or field meanings.
pub const TRACE_SCHEMA: &str = "dcluster-trace/1";

/// Run identity recorded in the trace header.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceMeta {
    /// Scenario name.
    pub scenario: String,
    /// Workload name (`clustering`, `maintenance`, …).
    pub workload: String,
    /// Node count.
    pub n: usize,
    /// Resolver backend name.
    pub resolver: String,
    /// Deployment master seed.
    pub seed: u64,
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the header line for a trace (no trailing newline).
pub fn header_line(meta: &TraceMeta) -> String {
    format!(
        "{{\"schema\":\"{}\",\"scenario\":\"{}\",\"workload\":\"{}\",\"n\":{},\"resolver\":\"{}\",\"seed\":{}}}",
        escape(TRACE_SCHEMA),
        escape(&meta.scenario),
        escape(&meta.workload),
        meta.n,
        escape(&meta.resolver),
        meta.seed
    )
}

/// Renders one event as its JSONL line (no trailing newline).
pub fn event_line(ev: &Event) -> String {
    match ev {
        Event::PhaseStart { phase, round } => {
            format!(
                "{{\"ev\":\"phase_start\",\"phase\":\"{}\",\"round\":{round}}}",
                escape(phase)
            )
        }
        Event::PhaseEnd {
            phase,
            round,
            rounds,
            tx,
            rx,
        } => format!(
            "{{\"ev\":\"phase_end\",\"phase\":\"{}\",\"round\":{round},\"rounds\":{rounds},\"tx\":{tx},\"rx\":{rx}}}",
            escape(phase)
        ),
        Event::Round {
            round,
            tx,
            rx,
            cache,
        } => {
            let mut line = format!("{{\"ev\":\"round\",\"round\":{round},\"tx\":{tx},\"rx\":{rx}");
            match cache {
                None => {}
                Some(CacheOp::Rebuilt) => line.push_str(",\"cache\":\"rebuild\""),
                Some(CacheOp::Patched { inserts, removals }) => {
                    let _ = write!(line, ",\"cache\":\"patch\",\"ins\":{inserts},\"rem\":{removals}");
                }
            }
            line.push('}');
            line
        }
        Event::Epoch {
            epoch,
            rounds,
            re_elections,
            violations,
        } => format!(
            "{{\"ev\":\"epoch\",\"epoch\":{epoch},\"rounds\":{rounds},\"re_elections\":{re_elections},\"violations\":{violations}}}"
        ),
    }
}

/// A buffered JSONL file sink.
///
/// Creation writes the header eagerly, so an unwritable path fails at
/// [`JsonlSink::create`] — callers surface that as a diagnostic naming
/// the path, never a panic. Mid-stream I/O errors are latched and
/// surfaced by [`JsonlSink::finish`].
#[derive(Debug)]
pub struct JsonlSink {
    out: io::BufWriter<fs::File>,
    error: Option<io::Error>,
    events: u64,
}

impl JsonlSink {
    /// Creates (truncating) the trace file and writes the header line.
    pub fn create(path: &Path, meta: &TraceMeta) -> io::Result<Self> {
        let file = fs::File::create(path)?;
        let mut out = io::BufWriter::new(file);
        out.write_all(header_line(meta).as_bytes())?;
        out.write_all(b"\n")?;
        Ok(Self {
            out,
            error: None,
            events: 0,
        })
    }

    /// Events written so far (header excluded).
    pub fn events_written(&self) -> u64 {
        self.events
    }

    /// Flushes the sink and surfaces the first I/O error hit while
    /// streaming events, if any.
    pub fn finish(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()
    }
}

impl Tracer for JsonlSink {
    fn on_event(&mut self, ev: &Event) {
        if self.error.is_some() {
            return;
        }
        let line = event_line(ev);
        let res = self
            .out
            .write_all(line.as_bytes())
            .and_then(|()| self.out.write_all(b"\n"));
        match res {
            Ok(()) => self.events += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> TraceMeta {
        TraceMeta {
            scenario: "t".into(),
            workload: "clustering".into(),
            n: 40,
            resolver: "grid".into(),
            seed: 9,
        }
    }

    #[test]
    fn header_carries_schema_and_identity() {
        let h = header_line(&meta());
        assert!(h.starts_with("{\"schema\":\"dcluster-trace/1\""), "{h}");
        assert!(h.contains("\"scenario\":\"t\""));
        assert!(h.contains("\"seed\":9"));
    }

    #[test]
    fn event_lines_are_stable() {
        assert_eq!(
            event_line(&Event::Round {
                round: 3,
                tx: 17,
                rx: 4,
                cache: Some(CacheOp::Patched {
                    inserts: 2,
                    removals: 1
                })
            }),
            "{\"ev\":\"round\",\"round\":3,\"tx\":17,\"rx\":4,\"cache\":\"patch\",\"ins\":2,\"rem\":1}"
        );
        assert_eq!(
            event_line(&Event::Round {
                round: 4,
                tx: 16,
                rx: 5,
                cache: Some(CacheOp::Rebuilt)
            }),
            "{\"ev\":\"round\",\"round\":4,\"tx\":16,\"rx\":5,\"cache\":\"rebuild\"}"
        );
        assert_eq!(
            event_line(&Event::PhaseStart {
                phase: "mis",
                round: 0
            }),
            "{\"ev\":\"phase_start\",\"phase\":\"mis\",\"round\":0}"
        );
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn sink_writes_reread_byte_identically() {
        let path = std::env::temp_dir().join("dcluster_obs_sink_test.jsonl");
        let evs = [
            Event::PhaseStart {
                phase: "clustering",
                round: 0,
            },
            Event::Round {
                round: 0,
                tx: 3,
                rx: 1,
                cache: None,
            },
            Event::PhaseEnd {
                phase: "clustering",
                round: 1,
                rounds: 1,
                tx: 3,
                rx: 1,
            },
        ];
        let write_once = || {
            let mut sink = JsonlSink::create(&path, &meta()).unwrap();
            for ev in &evs {
                sink.on_event(ev);
            }
            assert_eq!(sink.events_written(), 3);
            sink.finish().unwrap();
            std::fs::read(&path).unwrap()
        };
        let a = write_once();
        let b = write_once();
        assert_eq!(a, b, "reruns must be byte-identical");
        assert_eq!(a.iter().filter(|&&c| c == b'\n').count(), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unwritable_path_fails_at_create() {
        let path = Path::new("/definitely/not/a/writable/dir/trace.jsonl");
        assert!(JsonlSink::create(path, &meta()).is_err());
    }
}
