//! The deterministic counter/histogram registry.
//!
//! `BTreeMap`-backed so every rendering is sorted by name, and **counts
//! only**: there is deliberately no way to put a wall-clock duration in
//! here (see the crate docs; timing lives behind [`crate::clock::Clock`]).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A power-of-two-bucketed histogram of `u64` observations.
///
/// Bucket `i` holds values whose bit length is `i`: bucket 0 is the
/// value 0, bucket 1 is 1, bucket 2 is 2–3, bucket 3 is 4–7, … — fixed
/// 65 buckets, no configuration, so two runs bucket identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; 65],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    fn observe(&mut self, value: u64) {
        let bit_len = (64 - value.leading_zeros()) as usize;
        self.buckets[bit_len] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Observations in the bucket for the given bit length
    /// (`0` = value 0, `i` = values in `[2^(i-1), 2^i)`).
    pub fn bucket(&self, bit_len: usize) -> u64 {
        self.buckets[bit_len]
    }

    /// `(lower, upper)` inclusive value range of a bucket.
    pub fn bucket_range(bit_len: usize) -> (u64, u64) {
        if bit_len == 0 {
            (0, 0)
        } else {
            (1 << (bit_len - 1), ((1u128 << bit_len) - 1) as u64)
        }
    }
}

/// A named set of counters and histograms, sorted by name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the named counter by 1.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increments the named counter by `delta`.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Records one observation into the named histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// The named counter's value (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Folds another registry into this one.
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            let mine = self.histograms.entry(k.clone()).or_default();
            for i in 0..mine.buckets.len() {
                mine.buckets[i] += h.buckets[i];
            }
            mine.count += h.count;
            mine.sum = mine.sum.saturating_add(h.sum);
        }
    }

    /// A deterministic text rendering: one sorted `name value` line per
    /// counter, then one `name count=N sum=S` line per histogram.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "{k} {v}");
        }
        for (k, h) in &self.histograms {
            let _ = writeln!(out, "{k} count={} sum={}", h.count, h.sum);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render_sorted() {
        let mut r = Registry::new();
        r.inc("zeta");
        r.add("alpha", 3);
        r.inc("zeta");
        assert_eq!(r.counter("zeta"), 2);
        assert_eq!(r.counter("alpha"), 3);
        assert_eq!(r.counter("missing"), 0);
        let text = r.render();
        let alpha = text.find("alpha").unwrap();
        let zeta = text.find("zeta").unwrap();
        assert!(alpha < zeta, "render must be name-sorted:\n{text}");
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut r = Registry::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1000] {
            r.observe("h", v);
        }
        let h = r.histogram("h").unwrap();
        assert_eq!(h.count(), 8);
        assert_eq!(h.bucket(0), 1); // 0
        assert_eq!(h.bucket(1), 1); // 1
        assert_eq!(h.bucket(2), 2); // 2, 3
        assert_eq!(h.bucket(3), 2); // 4, 7
        assert_eq!(h.bucket(4), 1); // 8
        assert_eq!(h.bucket(10), 1); // 1000
        assert_eq!(Histogram::bucket_range(0), (0, 0));
        assert_eq!(Histogram::bucket_range(3), (4, 7));
    }

    #[test]
    fn merge_is_pointwise() {
        let mut a = Registry::new();
        a.inc("c");
        a.observe("h", 5);
        let mut b = Registry::new();
        b.add("c", 4);
        b.inc("d");
        b.observe("h", 6);
        a.merge(&b);
        assert_eq!(a.counter("c"), 5);
        assert_eq!(a.counter("d"), 1);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.histogram("h").unwrap().sum(), 11);
    }
}
