//! # dcluster-obs — deterministic tracing and metrics
//!
//! The instrument panel for the rest of the workspace: a zero-cost-when-
//! disabled [`Tracer`] seam that the `Engine` and the protocol layer emit
//! **phase spans** and **round events** into, a [`Registry`] of
//! deterministic counters/histograms (counts only, never wall-clock), a
//! versioned JSONL sink ([`JsonlSink`]) behind `--trace` /
//! `DCLUSTER_TRACE`, and the one sanctioned [`Clock`](clock::Clock) seam
//! for wall-clock timing.
//!
//! ## Determinism contract
//!
//! Everything this crate records is a pure function of the simulation:
//! round numbers, transmitter/reception counts, cache patch/rebuild
//! decisions, phase names. No timestamps, no map-iteration order, no
//! thread interleavings. Two runs of the same scenario produce
//! byte-identical traces — which is what makes `xtask tracediff` a
//! *localizing* determinism check instead of a byte-compare oracle.
//!
//! Wall-clock time is deliberately not representable in [`Event`] or
//! [`Registry`]. Benchmarks that need it go through [`clock::WallClock`],
//! the only `std::time` site inside the deterministic crate set (enforced
//! by `xtask lint` rule D2 via `lint.toml` path scoping).
//!
//! ## Zero cost when disabled
//!
//! The engine holds an `Option<SharedTracer>`; with no tracer attached the
//! per-round cost is one `Option` check. Phase aggregation (the
//! [`PhaseTable`] the scenario `Report` renders) is always on, but only
//! pays at phase boundaries, never per round — so traced and untraced runs
//! produce byte-identical reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod jsonl;
pub mod phase;
pub mod registry;

pub use clock::{Clock, ManualClock, WallClock};
pub use jsonl::{JsonlSink, TraceMeta, TRACE_SCHEMA};
pub use phase::{PhaseSummary, PhaseTable};
pub use registry::{Histogram, Registry};

use std::cell::RefCell;
use std::rc::Rc;

/// What the persistent interference field did for one resolved round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOp {
    /// The cached field was discarded and rebuilt from the full
    /// transmitter set (cold start, stamp mismatch, or a diff past the
    /// rebuild heuristic).
    Rebuilt,
    /// The cached field was patched with the sparse transmitter diff.
    Patched {
        /// Transmitters inserted into the field.
        inserts: usize,
        /// Transmitters removed from the field.
        removals: usize,
    },
}

/// One observability event. Every field is a deterministic function of
/// the simulation — no timestamps (see the crate docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A named protocol phase began (engine round at entry).
    PhaseStart {
        /// Stable phase name (`clustering`, `sparsify`, `mis`, …).
        phase: &'static str,
        /// Engine round when the phase began.
        round: u64,
    },
    /// A named protocol phase ended, with its aggregate costs.
    PhaseEnd {
        /// Stable phase name.
        phase: &'static str,
        /// Engine round when the phase ended.
        round: u64,
        /// Rounds consumed by the phase (including nested phases).
        rounds: u64,
        /// Transmissions during the phase.
        tx: u64,
        /// Successful receptions during the phase.
        rx: u64,
    },
    /// One synchronous engine round.
    Round {
        /// Round number (0-based, engine-lifetime).
        round: u64,
        /// Transmitter count |T|.
        tx: u64,
        /// Successful receptions delivered.
        rx: u64,
        /// What the persistent field cache did, if the resolver has one.
        cache: Option<CacheOp>,
    },
    /// One maintenance epoch finished.
    Epoch {
        /// Epoch index (0-based).
        epoch: u64,
        /// Rounds the epoch's re-clustering consumed.
        rounds: u64,
        /// Centers re-elected this epoch.
        re_elections: u64,
        /// Coverage violations detected this epoch.
        violations: u64,
    },
}

impl Event {
    /// The stable event-kind name used in JSONL traces and counters.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::PhaseStart { .. } => "phase_start",
            Event::PhaseEnd { .. } => "phase_end",
            Event::Round { .. } => "round",
            Event::Epoch { .. } => "epoch",
        }
    }
}

/// A sink for [`Event`]s. Implementations must be deterministic: the
/// trace they produce may depend only on the event stream. (`Debug` is a
/// supertrait so engines holding a tracer stay debug-printable.)
pub trait Tracer: std::fmt::Debug {
    /// Observes one event.
    fn on_event(&mut self, ev: &Event);
}

/// The shape the engine holds a tracer in: shared, interior-mutable,
/// single-threaded (the engine itself is single-threaded; resolver
/// worker threads never see the tracer).
pub type SharedTracer = Rc<RefCell<dyn Tracer>>;

/// Wraps any tracer into the [`SharedTracer`] handle the engine accepts.
pub fn shared<T: Tracer + 'static>(t: T) -> Rc<RefCell<T>> {
    Rc::new(RefCell::new(t))
}

/// A tracer that drops every event — the explicit no-op impl.
///
/// The engine's disabled state is `None`, not a `NoopTracer`; this type
/// exists for call sites that need *some* tracer (tests, generic code).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    fn on_event(&mut self, _ev: &Event) {}
}

/// An in-memory recording tracer: keeps the full event stream and feeds
/// a [`Registry`] (event-kind counters, per-round |T|/reception
/// histograms, silent-round count — the direct input for the ROADMAP's
/// round-compression item).
#[derive(Debug, Default)]
pub struct Recorder {
    events: Vec<Event>,
    registry: Registry,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded event stream, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The derived counters/histograms.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Consumes the recorder, returning the event stream.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

impl Tracer for Recorder {
    fn on_event(&mut self, ev: &Event) {
        self.registry.inc(ev.kind());
        if let Event::Round { tx, rx, cache, .. } = ev {
            self.registry.observe("round_tx", *tx);
            self.registry.observe("round_rx", *rx);
            if *tx == 0 {
                self.registry.inc("silent_rounds");
            }
            match cache {
                Some(CacheOp::Rebuilt) => self.registry.inc("cache_rebuilds"),
                Some(CacheOp::Patched { inserts, removals }) => {
                    self.registry.inc("cache_patches");
                    self.registry
                        .observe("cache_diff", (inserts + removals) as u64);
                }
                None => {}
            }
        }
        self.events.push(ev.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_keeps_events_and_counts_them() {
        let mut r = Recorder::new();
        r.on_event(&Event::PhaseStart {
            phase: "clustering",
            round: 0,
        });
        for round in 0..4 {
            r.on_event(&Event::Round {
                round,
                tx: if round == 2 { 0 } else { 3 },
                rx: 1,
                cache: Some(if round == 0 {
                    CacheOp::Rebuilt
                } else {
                    CacheOp::Patched {
                        inserts: 1,
                        removals: 1,
                    }
                }),
            });
        }
        r.on_event(&Event::PhaseEnd {
            phase: "clustering",
            round: 4,
            rounds: 4,
            tx: 9,
            rx: 4,
        });
        assert_eq!(r.events().len(), 6);
        assert_eq!(r.registry().counter("round"), 4);
        assert_eq!(r.registry().counter("phase_start"), 1);
        assert_eq!(r.registry().counter("silent_rounds"), 1);
        assert_eq!(r.registry().counter("cache_rebuilds"), 1);
        assert_eq!(r.registry().counter("cache_patches"), 3);
    }

    #[test]
    fn event_kinds_are_stable() {
        assert_eq!(
            Event::Round {
                round: 0,
                tx: 0,
                rx: 0,
                cache: None
            }
            .kind(),
            "round"
        );
        assert_eq!(
            Event::Epoch {
                epoch: 0,
                rounds: 0,
                re_elections: 0,
                violations: 0
            }
            .kind(),
            "epoch"
        );
    }

    #[test]
    fn shared_handle_coerces_to_dyn_tracer() {
        let rec = shared(Recorder::new());
        let dyn_handle: SharedTracer = rec.clone();
        dyn_handle.borrow_mut().on_event(&Event::Round {
            round: 7,
            tx: 2,
            rx: 1,
            cache: None,
        });
        assert_eq!(rec.borrow().events().len(), 1);
    }
}
