//! # dcluster — deterministic digital clustering of wireless ad hoc networks
//!
//! A full reproduction of *Deterministic Digital Clustering of Wireless Ad
//! Hoc Networks* (Jurdziński, Kowalski, Różański, Stachowiak — PODC 2018,
//! arXiv:1708.08647): deterministic distributed clustering, local
//! broadcast, global broadcast, wake-up and leader election in the SINR
//! model **without** randomization, location information, carrier sensing
//! or feedback — plus every substrate the paper relies on (SINR simulator,
//! selector families, LOCAL MIS), every baseline of its comparison tables,
//! and the Theorem 6 lower-bound gadget machinery.
//!
//! ## Crates
//!
//! * [`sim`] — SINR physical layer, synchronous engine, deployments.
//! * [`selectors`] — ssf / wss / wcss / cover-free families.
//! * [`core`] — the paper's algorithms (clustering, broadcasts, …).
//! * [`dynamics`] — mobility, churn and heterogeneous power: seeded
//!   scenario engine with incremental world updates.
//! * [`scenario`] — declarative workload specs (`scenarios/*.scn`) and
//!   the unified [`prelude::Runner`] every experiment driver uses.
//! * [`baselines`] — Tables 1–2 competitor algorithms.
//! * [`lowerbound`] — Theorem 6 gadgets and the Lemma 13 adversary.
//!
//! ## Quickstart
//!
//! ```
//! use dcluster::prelude::*;
//!
//! // Describe the workload: 40 sensors uniform on a 3×3 field. The same
//! // spec can be parsed from / written to a `scenarios/*.scn` file.
//! let spec = ScenarioSpec::uniform("quickstart", 7, 40, 3.0);
//!
//! // Run the paper's Theorem 1 clustering through the unified Runner.
//! let report = Runner::new(spec)
//!     .run(&Workload::Clustering)
//!     .expect("spec deploys fine");
//!
//! // Every node is in a cluster of radius ≤ 1 (the transmission range).
//! let WorkloadOutcome::Clustering { report: quality, .. } = &report.outcome else {
//!     unreachable!();
//! };
//! assert_eq!(quality.unassigned, 0);
//! assert!(quality.max_radius <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dcluster_baselines as baselines;
pub use dcluster_core as core;
pub use dcluster_dynamics as dynamics;
pub use dcluster_lowerbound as lowerbound;
pub use dcluster_scenario as scenario;
pub use dcluster_selectors as selectors;
pub use dcluster_sim as sim;

/// The most common imports in one place.
pub mod prelude {
    pub use dcluster_core::check::audit_resolver_equivalence;
    pub use dcluster_core::check::{check_clustering, local_broadcast_complete};
    pub use dcluster_core::clustering::clustering;
    pub use dcluster_core::global_broadcast::{global_broadcast, sms_broadcast};
    pub use dcluster_core::leader::leader_election;
    pub use dcluster_core::local_broadcast::local_broadcast;
    pub use dcluster_core::wakeup::wakeup;
    pub use dcluster_core::{Msg, ProtocolParams, SeedSeq, Stack, UnitTrace};
    pub use dcluster_dynamics::{Churn, DynamicsModel, MobilityKind, World, WorldUpdate};
    pub use dcluster_scenario::{
        DeployLayer, DeploySpec, DynamicsSpec, Report, Runner, Scale, ScenarioSpec, SpecError,
        Workload, WorkloadOutcome,
    };
    pub use dcluster_sim::rng::Rng64;
    pub use dcluster_sim::{
        deploy, Engine, Network, Point, ResolverKind, SinrParams, SinrResolver,
    };
}
